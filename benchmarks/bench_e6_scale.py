"""E6 — scalability of the information-sharing and communication substrates.

Paper claim (section 4): the environment must support "the distribution
of information across a number of machines over different sites",
standard repositories (X.500) and both real-time and asynchronous
communication — i.e. the substrates must hold up as groups grow and
survive failures.

Regenerated tables: directory search latency vs entry count; message
delivery ratio and simulated latency vs group size, with and without
node crashes (store-and-forward retries mask transient MTA outages).

The observability snapshot test additionally runs the whole stack
(engine + trader + exchange + MTA) instrumented through ``repro.obs``
and emits a ``BENCH_*.json``-compatible metrics blob — the trajectory
future scaling PRs measure themselves against.
"""

from __future__ import annotations

from bench_common import build_environment, emit_metrics, standard_apps
from repro.directory.dit import DirectoryInformationTree
from repro.directory.filters import parse_filter
from repro.environment.transparency import TransparencyProfile
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import OrName
from repro.messaging.ua import UserAgent
from repro.obs import MetricsRegistry, Tracer, instrument_mta
from repro.odp.objects import InterfaceRef
from repro.sim.world import World


def _directory_with(n: int) -> DirectoryInformationTree:
    dit = DirectoryInformationTree()
    dit.add("c=EU", {"objectclass": ["country"]})
    dit.add("o=Consortium,c=EU", {"objectclass": ["organization"]})
    for index in range(n):
        dit.add(
            f"cn=Person {index:04d},o=Consortium,c=EU",
            {"objectclass": ["person"], "sn": [f"Surname{index % 50}"],
             "mail": [f"p{index}@consortium.eu"]},
        )
    return dit


def test_e6_directory_search_scale(benchmark):
    sizes = [64, 256, 1024]
    rows = []
    for n in sizes:
        dit = _directory_with(n)
        where = parse_filter("(&(objectClass=person)(sn=Surname7))")
        hits = dit.search("o=Consortium,c=EU", where=where)
        rows.append((n, len(hits)))
    print("\nE6a: directory subtree search")
    for n, hits in rows:
        expected = len([i for i in range(n) if i % 50 == 7])
        print(f"  entries={n:5d} matching={hits} (expected {expected})")
        assert hits == expected

    dit = _directory_with(1024)
    where = parse_filter("(&(objectClass=person)(sn=Surname7))")
    benchmark(lambda: dit.search("o=Consortium,c=EU", where=where))


def _mhs(world: World, group: int):
    """Two MTAs; half the group at each site."""
    world.add_site("site-a", ["mta-a"] + [f"a{i}" for i in range(group // 2)])
    world.add_site("site-b", ["mta-b"] + [f"b{i}" for i in range(group - group // 2)])
    mta_a = MessageTransferAgent(world, "mta-a", "a", [("xx", "", "a")])
    mta_b = MessageTransferAgent(world, "mta-b", "b", [("xx", "", "b")])
    mta_a.add_peer("b", "mta-b")
    mta_b.add_peer("a", "mta-a")
    mta_a.routing.add_default("b")
    mta_b.routing.add_default("a")
    uas = []
    for index in range(group):
        side = "a" if index % 2 == 0 else "b"
        node = f"{side}{index // 2}"
        user = OrName(country="xx", admd="", prmd=side, surname=f"u{index}")
        ua = UserAgent(world, node, user, f"mta-{side}")
        ua.register()
        uas.append(ua)
    return mta_a, mta_b, uas


def _run_group(group: int, crash: bool) -> tuple[float, float]:
    """Returns (delivery ratio, mean simulated delivery latency)."""
    world = World(seed=group + (1000 if crash else 0))
    mta_a, mta_b, uas = _mhs(world, group)
    if crash:
        world.failures.crash_at("mta-b", at=world.now + 0.05, duration=3.0)
    sent = 0
    send_times = {}
    deliveries = {}

    def hook(mailbox, stored):
        deliveries[stored.envelope.message_id] = world.now

    mta_a.add_delivery_hook(hook)
    mta_b.add_delivery_hook(hook)
    # Senders all sit at site A (whose MTA stays up); receivers at site B.
    # A crash of mta-b therefore hits the inter-MTA transfer, which
    # store-and-forward retries must mask.
    senders = [ua for ua in uas if ua.user.prmd == "a"]
    receivers = [ua for ua in uas if ua.user.prmd == "b"]
    for index, ua in enumerate(senders):
        target = receivers[index % len(receivers)]
        message_id = ua.send([target.user], f"msg {index}", "body")
        send_times[message_id] = world.now
        sent += 1
    world.run()
    delivered = len(deliveries)
    latencies = [deliveries[m] - send_times[m] for m in deliveries]
    mean_latency = sum(latencies) / len(latencies) if latencies else float("inf")
    return delivered / sent, mean_latency


def test_e6_messaging_scale_and_failures(benchmark):
    rows = []
    for group in (4, 16, 48):
        clean_ratio, clean_latency = _run_group(group, crash=False)
        crash_ratio, crash_latency = _run_group(group, crash=True)
        rows.append((group, clean_ratio, clean_latency, crash_ratio, crash_latency))

    print("\nE6b: message delivery vs group size (ratio / mean sim latency)")
    print(f"{'group':>6} {'clean':>14} {'with MTA crash':>18}")
    for group, clean_ratio, clean_latency, crash_ratio, crash_latency in rows:
        print(f"{group:>6} {clean_ratio:>7.0%} {clean_latency * 1000:5.0f}ms "
              f"{crash_ratio:>9.0%} {crash_latency * 1000:7.0f}ms")

    for group, clean_ratio, clean_latency, crash_ratio, crash_latency in rows:
        # Shape: clean delivery is total; a 3s MTA outage is fully masked
        # by store-and-forward retries, at a latency cost.
        assert clean_ratio == 1.0
        assert crash_ratio == 1.0
        assert crash_latency > clean_latency

    benchmark(lambda: _run_group(8, crash=False))


def test_e6_observability_snapshot(benchmark):
    """The instrumented stack reports every hot layer in one snapshot."""
    world = World(seed=66)
    registry = MetricsRegistry()
    tracer = Tracer()
    env = build_environment(world, n_people=4, metrics=registry, tracer=tracer)
    for app in standard_apps():
        app.attach(env)

    # Exchange traffic: delivered (sync + async) and failed outcomes.
    env.person_leaves("p3")
    outcomes = []
    outcomes.append(env.exchange("p0", "p2", "conferencing", "message-system",
                                 {"topic": "t", "entry": "e"}))
    outcomes.append(env.exchange("p1", "p3", "conferencing", "workflow",
                                 {"topic": "t", "entry": "e"}))
    # p0 (upc) -> p1 (gmd) is cross-organisation; with every transparency
    # off the organisation dimension is the first to reject it.
    outcomes.append(env.exchange("p0", "p1", "conferencing", "message-system",
                                 {"topic": "t", "entry": "e"},
                                 profile=TransparencyProfile.all_off()))

    # Trader traffic: services found and missed.
    env.trader.export("archiving", InterfaceRef("node", "obj", "iface"))
    env.trader.import_one("archiving")

    # Messaging traffic drives the engine (per-hop delays, transfers).
    mta_a, mta_b, uas = _mhs(world, 8)
    instrument_mta(mta_a, registry)
    instrument_mta(mta_b, registry)
    for index, ua in enumerate(ua for ua in uas if ua.user.prmd == "a"):
        ua.send([uas[2 * index + 1].user], f"msg {index}", "body")
    world.run()

    snap = registry.snapshot()
    counters = snap["counters"]
    print("\nE6d: instrumented full-stack snapshot")
    print(f"  engine: scheduled={counters['sim.engine.scheduled']} "
          f"fired={counters['sim.engine.fired']}")
    print(f"  trader: imports={counters['trader.imports']} "
          f"scans={counters['trader.offer_scans']}")
    reasons = {key.rsplit('.', 1)[1]: value for key, value in counters.items()
               if key.startswith("env.exchange.reason.")}
    print(f"  exchange outcomes: {reasons}")
    print(f"  mta: delivered={counters['mta.delivered']} "
          f"relayed={counters['mta.relayed']}")
    print(f"  traces: {len(tracer.finished())} spans "
          f"(all sim-clock: {all(s.clock == 'sim' for s in tracer.finished())})")

    # Acceptance: non-zero engine event counts, trader import counts and
    # an exchange-outcome breakdown, all in one snapshot.
    assert counters["sim.engine.scheduled"] > 0
    assert counters["sim.engine.fired"] > 0
    assert counters["trader.imports"] >= 1
    assert reasons["delivered"] == 2
    assert reasons["organisation-opaque"] == 1
    assert counters["env.exchange.outcome.delivered"] == 2
    assert counters["env.exchange.outcome.failed"] == 1
    assert counters["mta.delivered"] >= 4
    assert snap["histograms"]["mta.hops"]["count"] >= 4
    assert snap["histograms"]["env.exchange.document_bytes"]["count"] == 2
    assert [s.name for s in tracer.finished()].count("env.exchange") == 3
    assert all(outcome.trace_id for outcome in outcomes)
    emit_metrics("e6_observability", registry)

    # Time the instrumented exchange hot path (its cost is what the
    # "near-zero when disabled" claim is measured against).
    benchmark(lambda: env.exchange("p0", "p2", "conferencing", "message-system",
                                   {"topic": "t", "entry": "e"}))


def test_e6_sync_vs_async_coexistence(benchmark):
    """Both modes over one network: real-time fan-out while mail flows."""
    world = World(seed=77)
    mta_a, mta_b, uas = _mhs(world, 8)
    from repro.communication.realtime import RealTimeSession

    session = RealTimeSession(world, "standup")
    heard = []
    session.join("u0", "a0", lambda s, b: None)
    session.join("u2", "a1", lambda s, b: heard.append(b))

    def run() -> tuple[int, int]:
        heard.clear()
        session.say("u0", {"text": "now"})
        uas[0].send([uas[1].user], "async note", "later")
        world.run()
        return len(heard), len(uas[1].list_inbox())

    sync_heard, async_delivered = benchmark(run)
    assert sync_heard == 1
    assert async_delivered >= 1
    # async_delivered accumulates across benchmark rounds; report per-round.
    print(f"\nE6c: synchronous and asynchronous coexist over one network: "
          f"live={sync_heard} per round, stored>=1 per round")
