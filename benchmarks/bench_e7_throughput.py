"""E11 — exchange-pipeline throughput: resolution caches and the batch API.

The paper's central claim is that *one* shared environment mediating N
applications beats N^2 pairwise gateways; this bench measures the cost
of that mediation itself.  Three configurations push the same document
stream through ``CSCWEnvironment``:

* **cold** — resolution cache disabled: every ``exchange()`` re-resolves
  org membership, policy compatibility and app formats from scratch
  (the pre-fast-path behaviour);
* **warm** — resolution cache enabled: repeated routes hit the memoised
  verdicts;
* **batch** — ``exchange_many()``: one trace span and one metrics flush
  per batch on top of the warm caches, with route resolution hoisted
  once per same-route run.  The headline stream repeats one document
  object (a fan-out/notification workload, sharing its translation);
  a fourth measurement over distinct document objects records the
  lower bound of the batch speedup without that sharing.

Regenerated table: exchanges/second per configuration plus the two
speedup ratios the fast path promises (warm >= 2x cold, batch >= 3x the
per-call warm loop), with a field-identity check proving the cached and
batched paths deliver byte-identical outcomes (modulo trace ids).

Results are written to ``BENCH_exchange.json`` (in ``BENCH_METRICS_DIR``
when set, else the current directory) — the first recorded point of the
throughput trajectory.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e7_throughput.py [--smoke]

``--smoke`` (used by ``scripts/check.sh``) runs a tiny workload and
skips the timing-ratio assertions, so the whole fast path is exercised
on every check without depending on machine speed.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import fields

from bench_common import build_environment, synthetic_converter
from repro.environment.environment import CSCWEnvironment, ExchangeRequest
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.obs import MetricsRegistry, Tracer
from repro.sim.world import World

#: organisations in the workload — org resolution scans these linearly,
#: so the cold path pays the realistic many-org mediation cost
N_ORGS = 48

#: tiny document so the measurement isolates mediation overhead, not JSON
DOCUMENT = {"fmt0-title": "minutes", "fmt0-body": "we met"}


def build_throughput_env(cache: bool) -> CSCWEnvironment:
    """A fully instrumented environment with a many-org population.

    Sender and receiver live in the *last* organisations registered, so
    uncached ``organisation_of`` lookups walk the whole population —
    the honest cost of a shared mediator serving many organisations.
    """
    env = build_environment(
        World(seed=7),
        n_people=N_ORGS,
        orgs=[f"org{i:02d}" for i in range(N_ORGS)],
        metrics=MetricsRegistry(),
        tracer=Tracer(),
        resolution_cache=cache,
    )
    sink = []
    env.applications.register(
        AppDescriptor(name="producer", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                      converter=synthetic_converter(0)),
        lambda person, document, info: None,
    )
    env.applications.register(
        AppDescriptor(name="consumer", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                      converter=synthetic_converter(1)),
        lambda person, document, info: sink.append(document),
    )
    return env


def _sender_receiver() -> tuple[str, str]:
    """The two people whose orgs sit at the end of the resolution scan."""
    return f"p{N_ORGS - 1}", f"p{N_ORGS - 2}"


def _outcome_fields(outcome) -> dict:
    return {f.name: getattr(outcome, f.name) for f in fields(outcome)
            if f.name != "trace_id"}


def run_bench(iterations: int, smoke: bool) -> dict:
    """Time the three configurations; return the result blob."""
    sender, receiver = _sender_receiver()

    # -- cold: re-resolve everything per exchange -------------------------
    cold_env = build_throughput_env(cache=False)
    cold_outcomes = []
    start = time.perf_counter()
    for _ in range(iterations):
        cold_outcomes.append(
            cold_env.exchange(sender, receiver, "producer", "consumer", DOCUMENT)
        )
    cold_s = time.perf_counter() - start

    # -- warm: memoised resolution, still one call per document -----------
    warm_env = build_throughput_env(cache=True)
    warm_env.exchange(sender, receiver, "producer", "consumer", DOCUMENT)  # prime
    warm_outcomes = []
    start = time.perf_counter()
    for _ in range(iterations):
        warm_outcomes.append(
            warm_env.exchange(sender, receiver, "producer", "consumer", DOCUMENT)
        )
    warm_s = time.perf_counter() - start

    # -- batch: one exchange_many over the same stream --------------------
    batch_env = build_throughput_env(cache=True)
    batch_env.exchange(sender, receiver, "producer", "consumer", DOCUMENT)  # prime
    requests = [
        ExchangeRequest(sender, receiver, "producer", "consumer", DOCUMENT)
        for _ in range(iterations)
    ]
    start = time.perf_counter()
    batch_outcomes = batch_env.exchange_many(requests)
    batch_s = time.perf_counter() - start

    # -- batch over distinct document objects: no within-run translation
    # sharing, so this is the lower bound of the batch speedup ----------
    distinct_env = build_throughput_env(cache=True)
    distinct_env.exchange(sender, receiver, "producer", "consumer", DOCUMENT)
    distinct_requests = [
        ExchangeRequest(sender, receiver, "producer", "consumer", dict(DOCUMENT))
        for _ in range(iterations)
    ]
    start = time.perf_counter()
    distinct_outcomes = distinct_env.exchange_many(distinct_requests)
    distinct_s = time.perf_counter() - start

    # Correctness before speed: cached and batched exchanges must produce
    # field-identical outcomes (modulo trace ids) to the cold path.
    reference = _outcome_fields(cold_outcomes[0])
    for outcome in warm_outcomes:
        assert _outcome_fields(outcome) == reference
    for outcome in batch_outcomes:
        assert _outcome_fields(outcome) == reference
    for outcome in distinct_outcomes:
        assert _outcome_fields(outcome) == reference
    assert all(outcome.delivered for outcome in cold_outcomes)

    cold_eps = iterations / cold_s
    warm_eps = iterations / warm_s
    batch_eps = iterations / batch_s
    distinct_eps = iterations / distinct_s
    blob = {
        "bench": "exchange",
        "mode": "smoke" if smoke else "full",
        "iterations": iterations,
        "organisations": N_ORGS,
        "cold_eps": round(cold_eps, 1),
        "warm_eps": round(warm_eps, 1),
        "batch_eps": round(batch_eps, 1),
        "batch_distinct_docs_eps": round(distinct_eps, 1),
        "warm_over_cold": round(warm_eps / cold_eps, 2),
        "batch_over_loop": round(batch_eps / warm_eps, 2),
        "batch_distinct_docs_over_loop": round(distinct_eps / warm_eps, 2),
        "resolution_cache": warm_env.resolution.stats(),
        "interchange_plans": {
            "hits": warm_env.interchange.plan_hits,
            "misses": warm_env.interchange.plan_misses,
        },
        "metrics": warm_env.metrics.snapshot(),
    }
    return blob


def emit(blob: dict) -> str:
    """Write ``BENCH_exchange.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_exchange.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print("\nE11: exchange-pipeline throughput "
          f"({blob['iterations']} exchanges, {blob['organisations']} orgs)")
    print(f"  cold  (no cache)      {blob['cold_eps']:>10.1f} exchanges/s")
    print(f"  warm  (cached)        {blob['warm_eps']:>10.1f} exchanges/s  "
          f"({blob['warm_over_cold']:.2f}x cold)")
    print(f"  batch (exchange_many) {blob['batch_eps']:>10.1f} exchanges/s  "
          f"({blob['batch_over_loop']:.2f}x per-call loop)")
    print(f"  batch, distinct docs  {blob['batch_distinct_docs_eps']:>10.1f} exchanges/s  "
          f"({blob['batch_distinct_docs_over_loop']:.2f}x per-call loop)")
    stats = blob["resolution_cache"]
    print(f"  cache: {stats['route_hits']} route hits / "
          f"{stats['route_misses']} misses, "
          f"{stats['invalidations']} invalidations")


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    iterations = 100 if smoke else 2000
    blob = run_bench(iterations, smoke)
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    if not smoke:
        # the fast-path acceptance bars (see ISSUE 2 / EXPERIMENTS.md)
        assert blob["warm_over_cold"] >= 2.0, (
            f"warm cache only {blob['warm_over_cold']}x cold (need >= 2x)"
        )
        assert blob["batch_over_loop"] >= 3.0, (
            f"exchange_many only {blob['batch_over_loop']}x loop (need >= 3x)"
        )
        print("  PASS: warm >= 2x cold, batch >= 3x per-call loop")
    return 0


def test_exchange_throughput_smoke():
    """Pytest entry point: exercise all three paths on a tiny workload."""
    blob = run_bench(50, smoke=True)
    assert blob["warm_eps"] > 0 and blob["batch_eps"] > 0
    stats = blob["resolution_cache"]
    assert stats["route_hits"] >= 49
    assert blob["interchange_plans"]["hits"] >= 49


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
