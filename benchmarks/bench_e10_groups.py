"""E10 (extension) — group communication via distribution lists.

Paper reference [8] (the AMIGO activity model) grounds group
communication for CSCW; X.400 realises it with MTA-expanded distribution
lists.  The claim to check: addressing a group through a list costs the
sender one submission and defers fan-out to the serving MTA, while
point-to-point addressing costs the sender N submissions — and both
deliver to everyone.

Regenerated table: sender submissions and delivery counts for group
sizes 4/16/64, list vs point-to-point.
"""

from __future__ import annotations

from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import OrName
from repro.messaging.ua import UserAgent
from repro.sim.world import World


def _setup(group: int):
    world = World(seed=group)
    nodes = ["mta"] + [f"w{i}" for i in range(group + 1)]
    world.add_site("campus", nodes)
    mta = MessageTransferAgent(world, "mta", "upc", [("es", "", "upc")])
    sender = UserAgent(
        world, "w0", OrName(country="es", admd="", prmd="upc", surname="sender"), "mta"
    )
    sender.register()
    members = []
    for index in range(group):
        user = OrName(country="es", admd="", prmd="upc", surname=f"member{index}")
        ua = UserAgent(world, f"w{index + 1}", user, "mta")
        ua.register()
        members.append(ua)
    return world, mta, sender, members


def _run(group: int, use_list: bool) -> tuple[int, int]:
    """Returns (sender submissions, total deliveries)."""
    world, mta, sender, members = _setup(group)
    if use_list:
        team = OrName(country="es", admd="", prmd="upc", surname="team")
        mta.create_distribution_list(team, [ua.user for ua in members])
        sender.send([team], "to the group", "body")
    else:
        for ua in members:
            sender.send([ua.user], "to you", "body")
    world.run()
    delivered = sum(len(ua.list_inbox()) for ua in members)
    return sender.submitted, delivered


def test_e10_list_vs_point_to_point(benchmark):
    rows = []
    for group in (4, 16, 64):
        list_subs, list_delivered = _run(group, use_list=True)
        p2p_subs, p2p_delivered = _run(group, use_list=False)
        rows.append((group, list_subs, list_delivered, p2p_subs, p2p_delivered))

    print("\nE10: group communication, list vs point-to-point")
    print(f"{'group':>6} {'list subs':>10} {'list delivered':>15} "
          f"{'p2p subs':>9} {'p2p delivered':>14}")
    for group, list_subs, list_delivered, p2p_subs, p2p_delivered in rows:
        print(f"{group:>6} {list_subs:>10} {list_delivered:>15} "
              f"{p2p_subs:>9} {p2p_delivered:>14}")

    for group, list_subs, list_delivered, p2p_subs, p2p_delivered in rows:
        # Shape: one submission covers the whole group; both deliver fully.
        assert list_subs == 1
        assert p2p_subs == group
        assert list_delivered == group
        assert p2p_delivered == group

    benchmark(lambda: _run(16, use_list=True))


def test_e10_nested_lists_single_delivery(benchmark):
    """Overlapping nested lists still deliver exactly once per member
    per expansion path that reaches them (loop control bounds the blast)."""
    world, mta, sender, members = _setup(6)
    sub_team = OrName(country="es", admd="", prmd="upc", surname="subteam")
    all_team = OrName(country="es", admd="", prmd="upc", surname="allteam")
    mta.create_distribution_list(sub_team, [ua.user for ua in members[:3]])
    mta.create_distribution_list(all_team, [sub_team] + [ua.user for ua in members[3:]])

    def run() -> int:
        sender.send([all_team], "nested", "body")
        world.run()
        return sum(len(ua.list_inbox()) for ua in members)

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total == 6
    print(f"\nE10b: nested list expansion delivered to all {total} members exactly once")
