"""E15 — adaptive control: SLO-driven auto-remediation vs static resilience.

The ODP management viewpoint asks for a platform that *reconfigures
itself* when service levels degrade.  This bench replays the seeded E13
chaos schedule — the long d0-d1 outage — and extends it with the regime
E13 never tested: a **brownout**, where the link stays up but drops a
fraction of packets.  A hard outage is the easy case (the blocked
relay's own failures trip the circuit breaker within a second); a
brownout is the hard one — successes keep resetting the breaker's
consecutive-failure streak, so a purely reactive stack keeps feeding
traffic to a link that is quietly eating its deadline budget.  Three
otherwise identical three-domain federations carry deadline-bound
interactive traffic (every exchange must deliver within ``DEADLINE_S``
simulated seconds):

* **reactive** — ``resilience=False``: gateways retry blindly until the
  deadline expires; every in-outage exchange costs its full deadline;
* **resilient** — the PR 4 stack: circuit breakers fed by health probes
  and gateway failures, failover routing once a breaker opens.  Handles
  the outage, but the brownout never feeds it the consecutive failures
  it needs, so lossy-link retries and expiries leak through;
* **adaptive** — the resilient stack plus a started
  :class:`~repro.control.plane.ControlPlane`: the first retry surge /
  health-trend dip soft-drains the degrading link while the breaker is
  still closed, failover engages immediately, and a delivered-ratio SLO
  burning drives the load-management actions (relay-budget boost,
  shadowing re-balance); recovery reverts everything.

Reported per variant: delivered / expired / dead-lettered ratios,
p50/p99 *simulated* latency, failover and control-action counts.  Full
mode asserts the acceptance criterion: adaptive strictly dominates both
baselines on delivered ratio AND p99, and two adaptive runs of the same
seed produce identical results.  Results land in ``BENCH_control.json``
(in ``BENCH_METRICS_DIR`` when set, else the current directory).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e11_control.py [--quick]

``--quick`` (used by ``scripts/check.sh``; ``--smoke`` is accepted as an
alias) runs a small workload and skips the strict-dominance assertions
that need real iteration counts.
"""

from __future__ import annotations

import json
import os
import sys

from bench_common import synthetic_converter
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.obs import MetricsRegistry, RatioSLO, SLOEngine
from repro.resilience import ChaosRunner
from repro.sim.world import World

#: shared sim seed: all variants see the identical chaos schedule
SEED = 11

#: every exchange must deliver within this many simulated seconds
DEADLINE_S = 1.0

#: brownout packet-loss fraction on the d0-d1 link
BROWNOUT_LOSS = 0.45

DOCUMENT = {"fmt0-title": "minutes", "fmt0-body": "we met"}

VARIANTS = ("reactive", "resilient", "adaptive")


def build_federation(variant: str) -> Federation:
    """Three domains (the third hosts failover), deadline-bound traffic."""
    world = World(seed=SEED)
    assignment = {f"d{index}": [f"d{index}-p0", f"d{index}-p1"] for index in range(3)}
    metrics = MetricsRegistry()
    federation = Federation.partition(
        world,
        assignment,
        metrics=metrics,
        resilience=variant != "reactive",
        default_deadline_s=DEADLINE_S,
    )
    for app_index in (0, 1):
        federation.register_application(
            AppDescriptor(
                name=f"app{app_index}",
                quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                converter=synthetic_converter(app_index),
            ),
            lambda person, document, info: None,
        )
    if variant != "reactive":
        federation.start_health_checks(period_s=1.0, timeout_s=0.5)
    if variant == "adaptive":
        slo = SLOEngine(world.engine, metrics, sample_period_s=0.5).declare(
            RatioSLO(
                "federated-delivery",
                good="env.federation.delivered",
                total="env.federation.exchanges",
                target=0.99,
                window_s=10.0,
            )
        )
        slo.start()
        federation.attach_control(slo=slo).start()
    return federation


def schedule_chaos(
    federation: Federation,
    down_s: float,
    brownout_start: float,
    brownout_s: float,
) -> ChaosRunner:
    """The E13 outage (d0-d1 dark from t=5), then a d0-d1 brownout."""
    chaos = ChaosRunner(federation.world, name="bench-e15")
    d0, d1 = federation.domain("d0").node, federation.domain("d1").node
    chaos.flap_link(d0, d1, start=5.0, down_s=down_s, up_s=5.0, flaps=1)
    chaos.degrade_link(
        d0, d1, start=brownout_start, degraded_s=brownout_s, loss=BROWNOUT_LOSS
    )
    return chaos


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of *values* (q in [0, 1])."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def run_variant(
    variant: str,
    iterations: int,
    down_s: float,
    brownout_start: float,
    brownout_s: float,
) -> dict:
    """Push the d0->d1 stream through one variant under the chaos schedule."""
    federation = build_federation(variant)
    schedule_chaos(
        federation,
        down_s=down_s,
        brownout_start=brownout_start,
        brownout_s=brownout_s,
    )
    world = federation.world
    outcomes = []
    for index in range(iterations):
        outcomes.append(
            federation.federated_exchange(
                f"d0-p{index % 2}", f"d1-p{index % 2}", "app0", "app1", DOCUMENT
            )
        )
        world.run_for(0.8)
    # settle: let health trends go clean and the control loop revert
    # every applied action before sampling its final state
    world.run_for(25.0)
    delivered = [o for o in outcomes if o.delivered]
    degraded = [o for o in delivered if any(h.role == "relay" for h in o.hops)]
    latencies = [o.latency_s for o in outcomes]
    counters = federation._metrics.snapshot()["counters"]
    control = federation.control
    result = {
        "variant": variant,
        "iterations": iterations,
        "delivered_ratio": round(len(delivered) / iterations, 4),
        "degraded_ratio": round(len(degraded) / iterations, 4),
        "expired_ratio": round(
            sum(1 for o in outcomes if o.reason_code == "deadline-exceeded")
            / iterations,
            4,
        ),
        "dead_letter_ratio": round(
            sum(1 for o in outcomes if o.reason_code == "gateway-dead-letter")
            / iterations,
            4,
        ),
        "p50_sim_latency_s": round(percentile(latencies, 0.50), 4),
        "p99_sim_latency_s": round(percentile(latencies, 0.99), 4),
        "failovers": counters.get("env.federation.failover", 0),
    }
    if control is not None:
        result["control"] = {
            "applied": control.actions_applied,
            "reverted": control.actions_reverted,
            "suppressed": control.suppressed,
            "fully_reverted": control.fully_reverted(),
        }
    return result


def run_bench(
    iterations: int,
    quick: bool,
    down_s: float,
    brownout_start: float,
    brownout_s: float,
) -> dict:
    """All three variants against the same chaos; return the result blob."""
    results = {
        variant: run_variant(variant, iterations, down_s, brownout_start, brownout_s)
        for variant in VARIANTS
    }
    adaptive, resilient = results["adaptive"], results["resilient"]
    return {
        "bench": "control",
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "outage_s": down_s,
        "brownout": {
            "start": brownout_start,
            "duration_s": brownout_s,
            "loss": BROWNOUT_LOSS,
        },
        "deadline_s": DEADLINE_S,
        "variants": [results[variant] for variant in VARIANTS],
        "comparison": {
            "delivered_gain_vs_resilient": round(
                adaptive["delivered_ratio"] - resilient["delivered_ratio"], 4
            ),
            "p99_speedup_vs_resilient": round(
                resilient["p99_sim_latency_s"]
                / max(adaptive["p99_sim_latency_s"], 1e-9),
                2,
            ),
        },
    }


def emit(blob: dict) -> str:
    """Write ``BENCH_control.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_control.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print(f"\nE15: adaptive control under seeded chaos ({blob['mode']} mode, "
          f"seed {blob['seed']}, deadline {blob['deadline_s']}s)")
    for variant in blob["variants"]:
        control = variant.get("control")
        extra = (
            f"  actions {control['applied']}/{control['reverted']} rev"
            if control
            else ""
        )
        print(f"  {variant['variant']:>10}: "
              f"delivered {variant['delivered_ratio'] * 100:5.1f}%  "
              f"expired {variant['expired_ratio'] * 100:5.1f}%  "
              f"p50 {variant['p50_sim_latency_s'] * 1000:7.1f} ms  "
              f"p99 {variant['p99_sim_latency_s'] * 1000:7.1f} ms  "
              f"failovers {variant['failovers']}{extra}")
    comparison = blob["comparison"]
    print(f"  adaptive vs resilient: "
          f"+{comparison['delivered_gain_vs_resilient'] * 100:.1f} points "
          f"delivered, p99 {comparison['p99_speedup_vs_resilient']:.2f}x faster")


def main(argv: list[str]) -> int:
    quick = "--quick" in argv or "--smoke" in argv
    if quick:
        iterations, down_s, brownout_start, brownout_s = 16, 4.0, 12.0, 6.0
    else:
        iterations, down_s, brownout_start, brownout_s = 64, 32.0, 56.0, 16.0
    blob = run_bench(
        iterations,
        quick,
        down_s=down_s,
        brownout_start=brownout_start,
        brownout_s=brownout_s,
    )
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    if not quick:
        reactive, resilient, adaptive = blob["variants"]
        # acceptance criterion: the control loop strictly dominates both
        # baselines on delivered ratio AND tail latency
        for baseline in (reactive, resilient):
            assert adaptive["delivered_ratio"] > baseline["delivered_ratio"], (
                f"adaptive delivered {adaptive['delivered_ratio']} does not "
                f"beat {baseline['variant']} {baseline['delivered_ratio']}"
            )
            assert adaptive["p99_sim_latency_s"] < baseline["p99_sim_latency_s"], (
                f"adaptive p99 {adaptive['p99_sim_latency_s']}s does not "
                f"beat {baseline['variant']} {baseline['p99_sim_latency_s']}s"
            )
        assert adaptive["control"]["applied"] > 0, "no control action fired"
        assert adaptive["control"]["fully_reverted"], (
            "control actions not fully reverted after recovery"
        )
        # determinism: the same seed replays to the identical result
        rerun = run_variant(
            "adaptive", iterations, down_s, brownout_start, brownout_s
        )
        assert rerun == adaptive, "adaptive variant is not deterministic"
        print("  PASS: adaptive strictly dominates both baselines; "
              "deterministic across reruns")
    return 0


def test_control_bench_smoke():
    """Pytest entry point: the variant machinery on a tiny workload."""
    blob = run_bench(12, quick=True, down_s=4.0, brownout_start=9.0, brownout_s=4.0)
    reactive, resilient, adaptive = blob["variants"]
    assert [v["variant"] for v in blob["variants"]] == list(VARIANTS)
    # every exchange is accounted for in each variant
    for variant in blob["variants"]:
        total = (
            variant["delivered_ratio"]
            + variant["expired_ratio"]
            + variant["dead_letter_ratio"]
        )
        assert total >= 0.99
    assert adaptive["delivered_ratio"] >= resilient["delivered_ratio"]
    assert adaptive["control"]["applied"] > 0
    # the same seed replays to the identical adaptive result
    assert run_variant("adaptive", 12, 4.0, 9.0, 4.0) == adaptive


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
