"""E12 — federation: intra- vs cross-domain exchange cost, 1..8 domains.

The paper's openness argument is inter-organisational: environments in
different administrative domains must interoperate through explicit
boundaries.  This bench measures what that boundary costs.  For each
domain count (1, 2, 4, 8) it builds a :class:`repro.federation.Federation`
on one sim engine, homes a small population in every domain, and pushes
the same document stream four ways:

* **intra** — sender and receiver share a home domain: per-request
  ``federated_exchange`` calls running the local pipeline, no gateway;
* **intra batch** — the same stream through ``federated_exchange_many``
  (the home env's batched pipeline, one call per run);
* **cross (per-request)** — receiver lives in the next domain over:
  origin-side checks, one gateway relay over a WAN link per exchange,
  the full local pipeline at the target, and the reply hop back;
* **cross (fast path)** — the same cross-domain stream through
  ``federated_exchange_many``: consecutive same-route requests ship as
  **one** batched gateway relay per run.

The headline ``cross_over_intra_wall`` compares the batched cross-domain
fast path against a plain per-request intra-domain call — the "is the
boundary still a multiple?" question ROADMAP's ≤2x target asks —
and ``batch_speedup`` compares the fast path against the per-request
cross path (target ≥3x).  The sweep also asserts the fast path's
bookkeeping: exactly **2** ``env.federation.home.hit`` lookups per
batched request (one per endpoint — the redundant re-resolution inside
``_federated_exchange`` is gone), one batched relay per (pair, run), and
outcome field parity between the per-request and batched cross paths.
Results land in ``BENCH_federation.json`` (in ``BENCH_METRICS_DIR`` when
set, else the current directory).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e8_federation.py [--quick]

``--quick`` (used by ``scripts/check.sh``; ``--smoke`` is accepted as an
alias) runs a small workload over 1 and 2 domains only and relaxes the
wall-clock assertions that need real iteration counts.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from dataclasses import fields as dataclass_fields

from bench_common import synthetic_converter
from repro.environment.environment import ExchangeRequest
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.obs import MetricsRegistry
from repro.sim.world import World

#: people homed in each domain
PEOPLE_PER_DOMAIN = 4

DOCUMENT = {"fmt0-title": "minutes", "fmt0-body": "we met"}


def outcome_fields(outcome) -> dict:
    """An ``ExchangeOutcome``'s fields minus the per-span trace id."""
    return {
        f.name: getattr(outcome, f.name)
        for f in dataclass_fields(outcome)
        if f.name != "trace_id"
    }


def build_federation(n_domains: int) -> Federation:
    """A federation of *n_domains* with apps registered everywhere."""
    world = World(seed=7)
    assignment = {
        f"d{index}": [f"d{index}-p{p}" for p in range(PEOPLE_PER_DOMAIN)]
        for index in range(n_domains)
    }
    federation = Federation.partition(
        world, assignment, metrics=MetricsRegistry()
    )
    for app_index in (0, 1):
        federation.register_application(
            AppDescriptor(
                name=f"app{app_index}",
                quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                converter=synthetic_converter(app_index),
            ),
            lambda person, document, info: None,
        )
    return federation


def run_sweep(n_domains: int, iterations: int) -> dict:
    """Measure intra- and cross-domain exchange, per-request and batched.

    GC is paused across the timed phases (and collected between them):
    the wall ratios compare path costs, and a collection landing inside
    one phase but not another would skew them.
    """
    federation = build_federation(n_domains)

    def request(sender: str, receiver: str) -> ExchangeRequest:
        return ExchangeRequest(sender, receiver, "app0", "app1", DOCUMENT)

    def counter(name: str) -> int:
        return federation._metrics.snapshot()["counters"].get(name, 0)

    def relay_count() -> int:
        return sum(
            domain.gateway_to(peer.name).stats()["relays"]
            for domain in federation.domains()
            for peer in federation.domains()
            if peer.name in domain.gateways
        )

    # warm every path once (route caches, metric handles, allocator)
    # before anything is timed
    federation.federated_exchange("d0-p0", "d0-p1", "app0", "app1", DOCUMENT)
    if n_domains > 1:
        federation.federated_exchange("d0-p0", "d1-p1", "app0", "app1", DOCUMENT)
        federation.federated_exchange_many(
            [request("d0-p0", "d1-p1"), request("d0-p0", "d1-p1")]
        )
    gc.collect()
    gc.disable()

    # -- intra: both parties in domain 0, one call per exchange -----------
    start = time.perf_counter()
    intra_outcomes = [
        federation.federated_exchange(
            "d0-p0", "d0-p1", "app0", "app1", DOCUMENT
        )
        for _ in range(iterations)
    ]
    intra_s = time.perf_counter() - start
    assert all(outcome.delivered for outcome in intra_outcomes)

    # -- intra, batched: the same stream through one exchange_many call ---
    intra_requests = [request("d0-p0", "d0-p1") for _ in range(iterations)]
    gc.collect()
    start = time.perf_counter()
    intra_batch = federation.federated_exchange_many(intra_requests)
    intra_batch_s = time.perf_counter() - start
    assert all(outcome.delivered for outcome in intra_batch)
    assert [outcome_fields(o.outcome) for o in intra_batch] == [
        outcome_fields(o.outcome) for o in intra_outcomes
    ], "batched intra outcomes drifted from the per-request path"

    sweep = {
        "domains": n_domains,
        "iterations": iterations,
        "intra_eps": round(iterations / intra_s, 1),
        "intra_wall_us": round(intra_s / iterations * 1e6, 1),
        "intra_batch_eps": round(iterations / intra_batch_s, 1),
        "intra_batch_wall_us": round(intra_batch_s / iterations * 1e6, 1),
    }
    if n_domains == 1:
        gc.enable()
        return sweep

    # -- cross, per-request: sender in domain i, receiver in (i+1) % n ----
    pairs = [
        (f"d{index}-p0", f"d{(index + 1) % n_domains}-p1")
        for index in range(n_domains)
    ]
    gc.collect()
    start = time.perf_counter()
    cross_seq_outcomes = [
        federation.federated_exchange(
            *pairs[i % len(pairs)], "app0", "app1", DOCUMENT
        )
        for i in range(iterations)
    ]
    cross_seq_s = time.perf_counter() - start
    assert all(outcome.delivered for outcome in cross_seq_outcomes)
    assert all(outcome.cross_domain for outcome in cross_seq_outcomes)

    forward_hops = []
    return_hops = []
    for outcome in cross_seq_outcomes:
        origin, deliver, reply = outcome.hops
        forward_hops.append(deliver.time - origin.time)
        return_hops.append(reply.time - deliver.time)

    # -- cross, fast path: same-route runs batched into single relays -----
    per_pair = max(1, iterations // len(pairs))
    batch_requests = [
        request(sender, receiver)
        for sender, receiver in pairs
        for _ in range(per_pair)
    ]
    batch_total = len(batch_requests)
    relays_before = relay_count()
    hits_before = counter("env.federation.home.hit")
    gc.collect()
    start = time.perf_counter()
    cross_batch = federation.federated_exchange_many(batch_requests)
    cross_batch_s = time.perf_counter() - start
    gc.enable()
    batch_relays = relay_count() - relays_before
    batch_hits = counter("env.federation.home.hit") - hits_before
    assert all(outcome.delivered for outcome in cross_batch)
    assert all(outcome.cross_domain for outcome in cross_batch)
    # the fast path's bookkeeping, asserted every run: one batched relay
    # per (pair, run), and exactly two home lookups per request (one per
    # endpoint — no re-resolution inside the dispatch path)
    assert batch_relays == len(pairs), (
        f"expected {len(pairs)} batched relays, saw {batch_relays}"
    )
    assert batch_hits == 2 * batch_total, (
        f"expected {2 * batch_total} home-cache hits for {batch_total} "
        f"batched requests, saw {batch_hits}"
    )
    # field parity: the fast path must decide every exchange exactly as
    # the per-request path does (same reasons, fidelity, sizes, routing)
    for j, outcome in enumerate(cross_batch):
        expected = cross_seq_outcomes[j // per_pair]
        assert outcome_fields(outcome.outcome) == outcome_fields(expected.outcome)
        assert (outcome.origin, outcome.target) == (expected.origin, expected.target)

    sweep.update(
        {
            # headline cross numbers are the batched fast path
            "cross_eps": round(batch_total / cross_batch_s, 1),
            "cross_wall_us": round(cross_batch_s / batch_total * 1e6, 1),
            "cross_seq_eps": round(iterations / cross_seq_s, 1),
            "cross_seq_wall_us": round(cross_seq_s / iterations * 1e6, 1),
            # batched cross-domain fast path vs a per-request intra call
            "cross_over_intra_wall": round(
                (cross_batch_s / batch_total) / (intra_s / iterations), 2
            ),
            # batched fast path vs the per-request cross path
            "batch_speedup": round(
                (cross_seq_s / iterations) / (cross_batch_s / batch_total), 2
            ),
            "cross_sim_latency_s": round(
                sum(o.latency_s for o in cross_seq_outcomes) / iterations, 4
            ),
            "cross_batch_sim_latency_s": round(
                sum(o.latency_s for o in cross_batch) / batch_total, 4
            ),
            "forward_hop_s": round(sum(forward_hops) / len(forward_hops), 4),
            "return_hop_s": round(sum(return_hops) / len(return_hops), 4),
            "gateway_relays": relay_count(),
            "cross_batch_relays": batch_relays,
            "home_hits_per_batch_request": round(batch_hits / batch_total, 2),
        }
    )
    counters = federation._metrics.snapshot()["counters"]
    sweep["federation_counters"] = {
        key: counters[key]
        for key in sorted(counters)
        if key.startswith(("env.federation.", "gateway."))
    }
    return sweep


def run_bench(domain_counts: list[int], iterations: int, quick: bool) -> dict:
    """Run all sweeps; return the result blob."""
    sweeps = [run_sweep(n, iterations) for n in domain_counts]
    return {
        "bench": "federation",
        "mode": "quick" if quick else "full",
        "people_per_domain": PEOPLE_PER_DOMAIN,
        "sweeps": sweeps,
    }


def emit(blob: dict) -> str:
    """Write ``BENCH_federation.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_federation.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print(f"\nE12: federated exchange cost ({blob['mode']} mode, "
          f"{blob['people_per_domain']} people/domain)")
    for sweep in blob["sweeps"]:
        line = (f"  {sweep['domains']} domain(s): "
                f"intra {sweep['intra_eps']:>8.1f} ex/s")
        if "cross_eps" in sweep:
            line += (f"   cross {sweep['cross_eps']:>8.1f} ex/s batched "
                     f"/ {sweep['cross_seq_eps']:>8.1f} seq "
                     f"({sweep['cross_over_intra_wall']:.2f}x intra wall, "
                     f"batch {sweep['batch_speedup']:.2f}x seq, "
                     f"sim RTT {sweep['cross_sim_latency_s'] * 1000:.1f} ms = "
                     f"{sweep['forward_hop_s'] * 1000:.1f} fwd + "
                     f"{sweep['return_hop_s'] * 1000:.1f} ret)")
        print(line)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv or "--smoke" in argv
    domain_counts = [1, 2] if quick else [1, 2, 4, 8]
    iterations = 48 if quick else 240
    blob = run_bench(domain_counts, iterations, quick)
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    # the fast-path guard (run in both modes; scripts/check.sh relies on
    # it in --quick): the batched cross-domain path must stay within 2x
    # of a per-request intra call, and well ahead of per-request cross.
    # Quick mode uses a looser speedup floor against CI timing noise.
    min_speedup = 2.0 if quick else 3.0
    for sweep in blob["sweeps"]:
        if "cross_eps" not in sweep:
            continue
        n = sweep["domains"]
        assert sweep["cross_over_intra_wall"] <= 2.0, (
            f"{n}-domain batched cross exchange costs "
            f"{sweep['cross_over_intra_wall']}x a per-request intra "
            "exchange (fast-path regression: budget is 2.0x)"
        )
        assert sweep["batch_speedup"] >= min_speedup, (
            f"{n}-domain batch speedup {sweep['batch_speedup']}x under "
            f"the {min_speedup}x floor (fast-path regression)"
        )
    print(f"  PASS: batched cross <= 2.0x intra wall, "
          f">= {min_speedup}x per-request cross, "
          "one relay per run, 2 home hits per request")
    if not quick:
        two = next(s for s in blob["sweeps"] if s["domains"] == 2)
        eight = next(s for s in blob["sweeps"] if s["domains"] == 8)
        # the boundary is paid in simulated WAN latency on every relay
        assert two["cross_sim_latency_s"] > 0.1, (
            f"cross-domain sim RTT {two['cross_sim_latency_s']}s looks free"
        )
        # scaling the domain count must not degrade per-exchange cost by
        # more than ~3x (pairwise wiring is O(N^2) in setup, not per-op)
        assert eight["cross_seq_wall_us"] < two["cross_seq_wall_us"] * 3.0, (
            f"8-domain cross exchange {eight['cross_seq_wall_us']}us vs "
            f"2-domain {two['cross_seq_wall_us']}us"
        )
        print("  PASS: relay pays sim latency; per-op cost flat in domain count")
    return 0


def test_federation_bench_smoke():
    """Pytest entry point: the sweep machinery on a tiny workload."""
    blob = run_bench([1, 2], 6, quick=True)
    assert [s["domains"] for s in blob["sweeps"]] == [1, 2]
    two = blob["sweeps"][1]
    assert two["intra_eps"] > 0 and two["cross_eps"] > 0
    assert two["forward_hop_s"] > 0 and two["return_hop_s"] > 0
    # 6 per-request relays + one batched relay per pair (2 pairs) + the
    # 2 warmup relays (one per-request, one batched run of 2)
    assert two["gateway_relays"] == 10
    assert two["cross_batch_relays"] == 2
    # remote = 6 per-request + 6 batched + 3 warmup cross exchanges
    assert two["federation_counters"]["env.federation.remote"] == 15
    assert two["home_hits_per_batch_request"] == 2.0


def test_federation_bench_rerun_determinism():
    """Same seed, same workload: simulated results are bit-identical."""
    keys = (
        "cross_sim_latency_s", "cross_batch_sim_latency_s",
        "forward_hop_s", "return_hop_s", "gateway_relays",
        "cross_batch_relays", "home_hits_per_batch_request",
        "federation_counters",
    )
    first, second = (run_sweep(2, 6) for _ in range(2))
    assert {k: first[k] for k in keys} == {k: second[k] for k in keys}


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
