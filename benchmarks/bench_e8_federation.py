"""E12 — federation: intra- vs cross-domain exchange cost, 1..8 domains.

The paper's openness argument is inter-organisational: environments in
different administrative domains must interoperate through explicit
boundaries.  This bench measures what that boundary costs.  For each
domain count (1, 2, 4, 8) it builds a :class:`repro.federation.Federation`
on one sim engine, homes a small population in every domain, and pushes
the same document stream two ways:

* **intra** — sender and receiver share a home domain: the exchange runs
  the local pipeline, no gateway involved;
* **cross** — receiver lives in the next domain over: origin-side checks,
  gateway relay over a WAN link, the full local pipeline at the target,
  and the reply hop back.

Reported per sweep: wall-clock throughput for both paths, the cross/intra
mediation-cost ratio, and the *simulated* per-hop latency split (forward
relay vs reply) taken from the hop metadata every federated outcome
carries.  Results land in ``BENCH_federation.json`` (in
``BENCH_METRICS_DIR`` when set, else the current directory).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e8_federation.py [--quick]

``--quick`` (used by ``scripts/check.sh``; ``--smoke`` is accepted as an
alias) runs a small workload over 1 and 2 domains only and skips the
shape assertions that need real iteration counts.
"""

from __future__ import annotations

import json
import os
import sys
import time

from bench_common import synthetic_converter
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.obs import MetricsRegistry
from repro.sim.world import World

#: people homed in each domain
PEOPLE_PER_DOMAIN = 4

DOCUMENT = {"fmt0-title": "minutes", "fmt0-body": "we met"}


def build_federation(n_domains: int) -> Federation:
    """A federation of *n_domains* with apps registered everywhere."""
    world = World(seed=7)
    assignment = {
        f"d{index}": [f"d{index}-p{p}" for p in range(PEOPLE_PER_DOMAIN)]
        for index in range(n_domains)
    }
    federation = Federation.partition(
        world, assignment, metrics=MetricsRegistry()
    )
    for app_index in (0, 1):
        federation.register_application(
            AppDescriptor(
                name=f"app{app_index}",
                quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                converter=synthetic_converter(app_index),
            ),
            lambda person, document, info: None,
        )
    return federation


def run_sweep(n_domains: int, iterations: int) -> dict:
    """Measure intra- and cross-domain exchange for one domain count."""
    federation = build_federation(n_domains)

    # -- intra: both parties in domain 0 ----------------------------------
    start = time.perf_counter()
    intra_outcomes = [
        federation.federated_exchange(
            "d0-p0", "d0-p1", "app0", "app1", DOCUMENT
        )
        for _ in range(iterations)
    ]
    intra_s = time.perf_counter() - start
    assert all(outcome.delivered for outcome in intra_outcomes)

    sweep = {
        "domains": n_domains,
        "iterations": iterations,
        "intra_eps": round(iterations / intra_s, 1),
        "intra_wall_us": round(intra_s / iterations * 1e6, 1),
    }
    if n_domains == 1:
        return sweep

    # -- cross: sender in domain i, receiver in domain (i+1) % n ----------
    pairs = [
        (f"d{index}-p0", f"d{(index + 1) % n_domains}-p1")
        for index in range(n_domains)
    ]
    start = time.perf_counter()
    cross_outcomes = [
        federation.federated_exchange(
            *pairs[i % len(pairs)], "app0", "app1", DOCUMENT
        )
        for i in range(iterations)
    ]
    cross_s = time.perf_counter() - start
    assert all(outcome.delivered for outcome in cross_outcomes)
    assert all(outcome.cross_domain for outcome in cross_outcomes)

    forward_hops = []
    return_hops = []
    for outcome in cross_outcomes:
        origin, deliver, reply = outcome.hops
        forward_hops.append(deliver.time - origin.time)
        return_hops.append(reply.time - deliver.time)
    relays = sum(
        domain.gateway_to(peer.name).stats()["relays"]
        for domain in federation.domains()
        for peer in federation.domains()
        if peer.name in domain.gateways
    )
    sweep.update(
        {
            "cross_eps": round(iterations / cross_s, 1),
            "cross_wall_us": round(cross_s / iterations * 1e6, 1),
            "cross_over_intra_wall": round(
                (cross_s / iterations) / (intra_s / iterations), 2
            ),
            "cross_sim_latency_s": round(
                sum(o.latency_s for o in cross_outcomes) / iterations, 4
            ),
            "forward_hop_s": round(sum(forward_hops) / len(forward_hops), 4),
            "return_hop_s": round(sum(return_hops) / len(return_hops), 4),
            "gateway_relays": relays,
        }
    )
    counters = federation._metrics.snapshot()["counters"]
    sweep["federation_counters"] = {
        key: counters[key]
        for key in sorted(counters)
        if key.startswith(("env.federation.", "gateway."))
    }
    return sweep


def run_bench(domain_counts: list[int], iterations: int, quick: bool) -> dict:
    """Run all sweeps; return the result blob."""
    sweeps = [run_sweep(n, iterations) for n in domain_counts]
    return {
        "bench": "federation",
        "mode": "quick" if quick else "full",
        "people_per_domain": PEOPLE_PER_DOMAIN,
        "sweeps": sweeps,
    }


def emit(blob: dict) -> str:
    """Write ``BENCH_federation.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_federation.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print(f"\nE12: federated exchange cost ({blob['mode']} mode, "
          f"{blob['people_per_domain']} people/domain)")
    for sweep in blob["sweeps"]:
        line = (f"  {sweep['domains']} domain(s): "
                f"intra {sweep['intra_eps']:>8.1f} ex/s")
        if "cross_eps" in sweep:
            line += (f"   cross {sweep['cross_eps']:>8.1f} ex/s "
                     f"({sweep['cross_over_intra_wall']:.2f}x wall cost, "
                     f"sim RTT {sweep['cross_sim_latency_s'] * 1000:.1f} ms = "
                     f"{sweep['forward_hop_s'] * 1000:.1f} fwd + "
                     f"{sweep['return_hop_s'] * 1000:.1f} ret)")
        print(line)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv or "--smoke" in argv
    domain_counts = [1, 2] if quick else [1, 2, 4, 8]
    iterations = 24 if quick else 240
    blob = run_bench(domain_counts, iterations, quick)
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    if not quick:
        two = next(s for s in blob["sweeps"] if s["domains"] == 2)
        eight = next(s for s in blob["sweeps"] if s["domains"] == 8)
        # the boundary is paid in simulated WAN latency on every relay
        assert two["cross_sim_latency_s"] > 0.1, (
            f"cross-domain sim RTT {two['cross_sim_latency_s']}s looks free"
        )
        # scaling the domain count must not degrade per-exchange cost by
        # more than ~3x (pairwise wiring is O(N^2) in setup, not per-op)
        assert eight["cross_wall_us"] < two["cross_wall_us"] * 3.0, (
            f"8-domain cross exchange {eight['cross_wall_us']}us vs "
            f"2-domain {two['cross_wall_us']}us"
        )
        print("  PASS: relay pays sim latency; per-op cost flat in domain count")
    return 0


def test_federation_bench_smoke():
    """Pytest entry point: the sweep machinery on a tiny workload."""
    blob = run_bench([1, 2], 6, quick=True)
    assert [s["domains"] for s in blob["sweeps"]] == [1, 2]
    two = blob["sweeps"][1]
    assert two["intra_eps"] > 0 and two["cross_eps"] > 0
    assert two["forward_hop_s"] > 0 and two["return_hop_s"] > 0
    assert two["gateway_relays"] == 6
    assert two["federation_counters"]["env.federation.remote"] == 6


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
