"""Benchmark-suite fixtures."""

from __future__ import annotations

import pytest

from repro.util.ids import reset_ids


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_ids()
    yield
    reset_ids()
