"""Shared builders for the experiment benchmarks (see DESIGN.md section 3).

Each ``bench_eN_*.py`` regenerates one experiment: it prints the
paper-shaped rows (who wins, by what factor, where crossovers fall) and
asserts the shape, while the ``benchmark`` fixture times the experiment's
hot operation.
"""

from __future__ import annotations

from repro.apps.conferencing import ConferencingSystem
from repro.apps.document import DocumentProcessor
from repro.apps.message_system import MessageSystem
from repro.apps.workflow import WorkflowSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.information.interchange import FormatConverter, make_common
from repro.org.model import Organisation, Person
from repro.sim.world import World


def synthetic_converter(index: int) -> FormatConverter:
    """A distinct format for synthetic app #index (used to scale N)."""
    key = f"fmt{index}"

    def to_common(document):
        return make_common("note", document.get(f"{key}-title", ""),
                           document.get(f"{key}-body", ""))

    def from_common(common):
        return {f"{key}-title": common["title"], f"{key}-body": common["body"]}

    return FormatConverter(key, to_common, from_common)


def build_environment(
    world: World,
    n_people: int = 2,
    orgs: list[str] | None = None,
    open_policies: bool = True,
) -> CSCWEnvironment:
    """An environment with people spread round-robin over organisations."""
    env = CSCWEnvironment(world)
    org_ids = orgs if orgs is not None else ["upc", "gmd"]
    organisations = {org_id: Organisation(org_id, org_id.upper()) for org_id in org_ids}
    for index in range(n_people):
        org_id = org_ids[index % len(org_ids)]
        person_id = f"p{index}"
        organisations[org_id].add_person(Person(person_id, f"Person {index}", org_id))
        node = f"ws-{person_id}"
        if not world.network.has_node(node):
            world.network.add_node(node, site=org_id)
        env.register_person(Communicator(person_id, node))
    for organisation in organisations.values():
        env.knowledge_base.add_organisation(organisation)
    if open_policies:
        for a in org_ids:
            for b in org_ids:
                if a != b:
                    env.knowledge_base.policies.declare(a, b, {"*"})
    return env


def standard_apps() -> list:
    """The four heterogeneous stock applications."""
    return [ConferencingSystem(), MessageSystem(), WorkflowSystem(), DocumentProcessor()]
