"""Shared builders for the experiment benchmarks (see DESIGN.md section 3).

Each ``bench_eN_*.py`` regenerates one experiment: it prints the
paper-shaped rows (who wins, by what factor, where crossovers fall) and
asserts the shape, while the ``benchmark`` fixture times the experiment's
hot operation.
"""

from __future__ import annotations

import json
import os

from repro.apps.conferencing import ConferencingSystem
from repro.apps.document import DocumentProcessor
from repro.apps.message_system import MessageSystem
from repro.apps.workflow import WorkflowSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.information.interchange import FormatConverter, make_common
from repro.org.model import Organisation, Person
from repro.sim.world import World


def synthetic_converter(index: int) -> FormatConverter:
    """A distinct format for synthetic app #index (used to scale N)."""
    key = f"fmt{index}"

    def to_common(document):
        return make_common("note", document.get(f"{key}-title", ""),
                           document.get(f"{key}-body", ""))

    def from_common(common):
        return {f"{key}-title": common["title"], f"{key}-body": common["body"]}

    return FormatConverter(key, to_common, from_common)


def build_environment(
    world: World,
    n_people: int = 2,
    orgs: list[str] | None = None,
    open_policies: bool = True,
    metrics=None,
    tracer=None,
    resolution_cache: bool = True,
) -> CSCWEnvironment:
    """An environment with people spread round-robin over organisations.

    Pass an obs *metrics* registry and/or *tracer* to build an
    instrumented environment (routed through the environment builder);
    pass ``resolution_cache=False`` for the cold-resolution baseline the
    throughput benchmark compares the exchange fast path against.
    """
    builder = (CSCWEnvironment.builder()
               .with_world(world)
               .with_resolution_cache(resolution_cache))
    if metrics is not None:
        builder = builder.with_metrics(metrics)
    if tracer is not None:
        builder = builder.with_tracer(tracer)
    env = builder.build()
    org_ids = orgs if orgs is not None else ["upc", "gmd"]
    organisations = {org_id: Organisation(org_id, org_id.upper()) for org_id in org_ids}
    for index in range(n_people):
        org_id = org_ids[index % len(org_ids)]
        person_id = f"p{index}"
        organisations[org_id].add_person(Person(person_id, f"Person {index}", org_id))
        node = f"ws-{person_id}"
        if not world.network.has_node(node):
            world.network.add_node(node, site=org_id)
        env.register_person(Communicator(person_id, node))
    for organisation in organisations.values():
        env.knowledge_base.add_organisation(organisation)
    if open_policies:
        for a in org_ids:
            for b in org_ids:
                if a != b:
                    env.knowledge_base.policies.declare(a, b, {"*"})
    return env


def standard_apps() -> list:
    """The four heterogeneous stock applications."""
    return [ConferencingSystem(), MessageSystem(), WorkflowSystem(), DocumentProcessor()]


def metrics_blob(name: str, registry) -> dict:
    """A ``BENCH_<NAME>.json``-compatible metrics blob for one bench run.

    *registry* is a :class:`repro.obs.MetricsRegistry`; the blob pairs
    the bench name with the registry's full snapshot so successive perf
    PRs can diff counters/histograms run-over-run.
    """
    return {"bench": name, "metrics": registry.snapshot()}


def emit_metrics(name: str, registry, directory: str | None = None) -> str | None:
    """Print a bench's metrics blob; optionally persist it as JSON.

    The blob is written to ``<dir>/BENCH_<NAME>.json`` when *directory*
    (or the ``BENCH_METRICS_DIR`` environment variable) names a
    directory; returns the written path, or ``None`` when print-only.
    """
    blob = metrics_blob(name, registry)
    text = json.dumps(blob, indent=2, sort_keys=True)
    print(f"\nBENCH_{name.upper()} metrics:")
    print(text)
    target = directory or os.environ.get("BENCH_METRICS_DIR")
    if not target:
        return None
    path = os.path.join(target, f"BENCH_{name.upper()}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path
