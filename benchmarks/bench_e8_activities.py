"""E8 — activity services on a Channel-Tunnel-scale programme.

Paper claim (sections 3-4): cooperative work is "numerous related
activities occurring within an organisational environment"; the
environment must manage membership, shared resources, scheduling,
monitoring and coordination across them.

Regenerated table: a synthetic programme of 30+ interrelated activities
(layered precedence DAG, shared resources, members spread over people)
is scheduled and executed; we report plan length, precedence violations
(must be zero), resource over-grants (must be zero) and monitor alerts.
"""

from __future__ import annotations

from repro.activity.coordination import ResourceCoordinator
from repro.activity.dependencies import BEFORE, SHARES_RESOURCE, DependencyGraph
from repro.activity.model import Activity, ActivityRegistry, ActivityStatus
from repro.activity.scheduler import ActivityMonitor, ActivityScheduler
from repro.org.model import Resource
from repro.sim.rng import SeededRng
from repro.sim.world import World
from repro.util.events import EventBus, EventRecorder

N_LAYERS = 6
PER_LAYER = 6
N_RESOURCES = 3


def _programme(seed: int):
    """A layered DAG of N_LAYERS x PER_LAYER activities."""
    rng = SeededRng(seed)
    registry = ActivityRegistry()
    graph = DependencyGraph()
    coordinator = ResourceCoordinator()
    for index in range(N_RESOURCES):
        coordinator.register(
            Resource(f"res{index}", f"Resource {index}", "tml", capacity=2)
        )
    names = []
    for layer in range(N_LAYERS):
        for slot in range(PER_LAYER):
            name = f"a{layer}-{slot}"
            names.append(name)
            deadline = 150.0 if rng.chance(0.3) else None
            registry.create(Activity(name, name, project="tunnel", deadline=deadline))
            if layer > 0:
                # Each activity depends on 1-2 activities of the previous layer.
                for predecessor in rng.sample(
                    [f"a{layer - 1}-{s}" for s in range(PER_LAYER)], rng.randint(1, 2)
                ):
                    graph.add(BEFORE, predecessor, name)
            if rng.chance(0.4):
                resource = f"res{rng.randint(0, N_RESOURCES - 1)}"
                partner = rng.choice(names)
                if partner != name and not graph.between(name, partner):
                    graph.add(SHARES_RESOURCE, name, partner, annotation=resource)
    return registry, graph, coordinator, names


def _execute(registry, graph, scheduler, world) -> tuple[list[str], int]:
    """Run to completion; returns (completion order, precedence violations)."""
    completion_order: list[str] = []
    violations = 0
    # Work in waves: start everything ready, complete it, repeat.
    for _ in range(N_LAYERS * PER_LAYER + 1):
        scheduler.start_ready(world.now)
        active = registry.by_status(ActivityStatus.ACTIVE)
        if not active:
            break
        for activity in active:
            for predecessor in graph.predecessors(activity.activity_id):
                if registry.get(predecessor).status is not ActivityStatus.COMPLETED:
                    violations += 1
            world.run_for(10.0)
            scheduler.complete(activity.activity_id, world.now)
            completion_order.append(activity.activity_id)
    return completion_order, violations


def test_e8_programme_execution(benchmark):
    world = World(seed=8)
    registry, graph, coordinator, names = _programme(seed=8)
    bus = EventBus()
    scheduler = ActivityScheduler(registry, graph, bus)
    alerts = EventRecorder()
    bus.subscribe("*", alerts)
    monitor = ActivityMonitor(world, registry, bus, period_s=100.0).start()

    plan = scheduler.plan(names)
    completion_order, violations = _execute(registry, graph, scheduler, world)
    monitor.stop()

    completed = [a for a in registry.all() if a.status is ActivityStatus.COMPLETED]
    overdue_alerts = [
        e for e in alerts.events if e.topic.endswith("/alert")
        and e.payload.get("reason") == "overdue"
    ]
    print("\nE8: programme of interrelated activities")
    print(f"  activities: {len(names)}, ordering edges: "
          f"{len(graph.of_kind(BEFORE))}, resource links: "
          f"{len(graph.of_kind(SHARES_RESOURCE))}")
    print(f"  plan length: {len(plan)}, completed: {len(completed)}")
    print(f"  precedence violations during execution: {violations}")
    print(f"  overdue alerts raised by the monitor: {len(overdue_alerts)}")

    assert len(plan) == len(names)
    assert len(completed) == len(names)
    assert violations == 0
    assert len(overdue_alerts) > 0  # the 150.0 deadlines pass mid-run

    def replan():
        return scheduler.plan(names)

    benchmark(replan)


def test_e8_resource_contention_never_overgrants(benchmark):
    registry, graph, coordinator, names = _programme(seed=9)
    rng = SeededRng(10)

    def contention_run() -> int:
        grants = 0
        holders_snapshot = []
        claimants = rng.sample(names, 12)
        for activity in claimants:
            if coordinator.claim("res0", activity):
                grants += 1
            holders_snapshot.append(len(coordinator.holders_of("res0")))
        # Drain: cancel queued claims first so releases do not refill,
        # then release every holder.
        for activity in claimants:
            coordinator.withdraw_claim("res0", activity)
        for activity in list(coordinator.holders_of("res0")):
            coordinator.release("res0", activity)
        assert coordinator.holders_of("res0") == []
        assert max(holders_snapshot) <= 2  # capacity bound held throughout
        return grants

    grants = benchmark(contention_run)
    print(f"\nE8b: capacity-2 resource under 12 claimants: "
          f"{grants} immediate grants, never over capacity")
    assert grants <= 2


def test_e8_negotiation_under_load(benchmark):
    """Many concurrent negotiations settle deterministically."""
    from repro.activity.negotiation import NegotiationService

    registry = ActivityRegistry()
    for index in range(20):
        registry.create(Activity(f"act{index}", f"activity {index}"))
    service = NegotiationService(registry)

    def negotiate_all() -> int:
        settled = 0
        for index in range(20):
            negotiation = service.propose_responsibility(
                f"act{index}", "tom", "mary", "mary"
            )
            if index % 3 == 0:
                negotiation.counter("mary", {"responsible": "tom"})
                negotiation.accept("tom")
            else:
                negotiation.accept("mary")
            service.settle(negotiation.negotiation_id)
            settled += 1
        return settled

    settled = benchmark(negotiate_all)
    assert settled == 20
    countered = sum(
        1 for index in range(20) if service.responsible_for(f"act{index}") == "tom"
    )
    print(f"\nE8c: 20 negotiations settled; {countered} flipped by counter-offers")
    assert countered == 7  # indices 0,3,6,9,12,15,18
