"""E2 — Figure 2 vs Figure 3: closed pairwise gateways vs the environment.

Paper claim (sections 3-4): without an environment, N heterogeneous
applications need O(N^2) hand-built gateways and anything unbuilt simply
cannot interoperate; with the environment, N converters give full
coverage.

Regenerated table: for N = 2..12, integration artifacts needed for full
coverage in each world, the cost ratio, and the coverage a fixed budget
of N artifacts buys in each world.
"""

from __future__ import annotations

from repro.apps.base import GroupwareApp
from repro.baselines.closed import ClosedWorld
from repro.environment.registry import Q_DIFFERENT_TIME_DIFFERENT_PLACE, AppDescriptor
from repro.environment.environment import CSCWEnvironment
from repro.sim.world import World

from bench_common import build_environment, synthetic_converter


class _SyntheticApp(GroupwareApp):
    quadrants = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]

    def __init__(self, index: int) -> None:
        self.app_name = f"app{index}"
        super().__init__()
        self._index = index

    def converter(self):
        return synthetic_converter(self._index)


def _closed_world(n: int) -> ClosedWorld:
    world = ClosedWorld()
    for index in range(n):
        world.add_app(_SyntheticApp(index))
    return world


def _open_world(n: int) -> tuple[CSCWEnvironment, list[_SyntheticApp]]:
    world = World(seed=1)
    env = build_environment(world, n_people=2)
    apps = [_SyntheticApp(index) for index in range(n)]
    for app in apps:
        app.attach(env)
    return env, apps


def test_e2_integration_cost_and_coverage(benchmark):
    """The headline O(N^2) vs O(N) table."""
    sizes = list(range(2, 13))
    rows = []
    for n in sizes:
        closed = _closed_world(n)
        closed_cost = closed.build_all_gateways()
        env, apps = _open_world(n)
        open_cost = env.integration_cost()

        # Coverage under a fixed budget of N artifacts.
        budget_world = _closed_world(n)
        built = 0
        for source in budget_world.app_names():
            for target in budget_world.app_names():
                if built >= n:
                    break
                if source != target:
                    budget_world.build_gateway(source, target)
                    built += 1
        rows.append(
            (n, closed_cost, open_cost, closed_cost / open_cost,
             budget_world.interop_coverage(), env.interop_coverage())
        )

    print("\nE2: integration cost to full interoperability")
    print(f"{'N':>3} {'closed(N^2-N)':>14} {'open(N)':>8} {'ratio':>6} "
          f"{'closed@N-budget':>16} {'open@N-budget':>14}")
    for n, closed_cost, open_cost, ratio, closed_cov, open_cov in rows:
        print(f"{n:>3} {closed_cost:>14} {open_cost:>8} {ratio:>6.1f} "
              f"{closed_cov:>15.0%} {open_cov:>13.0%}")

    # Shape: closed grows quadratically, open linearly; ratio = N-1.
    for n, closed_cost, open_cost, ratio, closed_cov, open_cov in rows:
        assert closed_cost == n * (n - 1)
        assert open_cost == n
        assert ratio == n - 1
        assert open_cov == 1.0
        assert closed_cov < 1.0 or n == 2

    # Time the open-world end-to-end exchange (the price of generality).
    env, apps = _open_world(4)

    def exchange_once():
        return env.exchange(
            "p0", "p1", "app0", "app1",
            {"fmt0-title": "t", "fmt0-body": "b"},
        )

    outcome = benchmark(exchange_once)
    assert outcome.delivered and outcome.translated


def test_e2_closed_world_drops_unbuilt_pairs(benchmark):
    """Delivery rate in a closed world with partial integration."""
    n = 6
    closed = _closed_world(n)
    # Only a star around app0 was ever built (a realistic history).
    for index in range(1, n):
        closed.build_gateway("app0", f"app{index}")
        closed.build_gateway(f"app{index}", "app0")

    def run_workload() -> int:
        delivered = 0
        for source in range(n):
            for target in range(n):
                if source == target:
                    continue
                ok = closed.send(
                    f"app{source}", f"app{target}", "user",
                    {f"fmt{source}-title": "t", f"fmt{source}-body": "b"},
                )
                delivered += int(ok)
        return delivered

    delivered = benchmark(run_workload)
    total = n * (n - 1)
    star_pairs = 2 * (n - 1)
    print(f"\nE2b: star-integrated closed world delivers {delivered}/{total} "
          f"pairs ({delivered / total:.0%}); environment world delivers 100%")
    assert delivered == star_pairs
