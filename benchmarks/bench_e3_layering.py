"""E3 — Figure 4: the CSCW environment layered on the ODP platform.

Paper claim (section 6.2): "The CSCW environment is located between the
basic ODP environment and CSCW applications ... a CSCW environment
augments ODP with CSCW specific functions"; open CSCW systems are a
subset of ODP systems.  The layering must therefore cost only a modest
constant factor over raw ODP invocation while adding the CSCW functions
(policy, translation, logging, scoping).

Regenerated figure: ops/sec of (a) a raw ODP channel invocation and
(b) the same logical delivery through the environment's exchange
primitive, plus the subset relation checked structurally.
"""

from __future__ import annotations

import time

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import ComputationalObject, signature
from repro.sim.world import World

from bench_common import build_environment


def _odp_setup():
    world = World(seed=2)
    world.add_site("hq", ["server", "client"])
    capsule = Capsule(world.network, "server")
    factory = BindingFactory(world.network)
    factory.register_capsule(capsule)
    sink = ComputationalObject("sink")
    sink.offer(signature("sink", "put"), {"put": lambda args: {"ok": True}})
    refs = capsule.deploy(sink)
    channel = factory.bind("client", refs["sink"])
    return world, channel


def _env_setup():
    world = World(seed=2)
    env = build_environment(world, n_people=2, orgs=["upc", "gmd"])
    ConferencingSystem().attach(env, exporter_org="upc")
    MessageSystem().attach(env, exporter_org="gmd")
    return world, env


def test_e3_raw_odp_invocation(benchmark):
    world, channel = _odp_setup()

    def invoke():
        return channel.call(world, "put", {"value": 1})

    result = benchmark(invoke)
    assert result == {"ok": True}


def test_e3_environment_exchange(benchmark):
    world, env = _env_setup()

    def exchange():
        return env.exchange(
            "p0", "p1", "conferencing", "message-system",
            {"topic": "t", "entry": "e", "conference": "c", "author": "p0"},
        )

    outcome = benchmark(exchange)
    assert outcome.delivered


def test_e3_layering_overhead_shape(benchmark):
    """The environment costs a modest constant factor over raw ODP."""
    world_odp, channel = _odp_setup()
    world_env, env = _env_setup()

    def measure() -> tuple[float, float]:
        iterations = 200
        start = time.perf_counter()
        for _ in range(iterations):
            channel.call(world_odp, "put", {"value": 1})
        odp_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(iterations):
            env.exchange(
                "p0", "p1", "conferencing", "message-system",
                {"topic": "t", "entry": "e", "conference": "c", "author": "p0"},
            )
        env_seconds = time.perf_counter() - start
        return odp_seconds, env_seconds

    odp_seconds, env_seconds = benchmark.pedantic(measure, rounds=3, iterations=1)
    factor = env_seconds / odp_seconds
    print(f"\nE3: raw ODP {odp_seconds * 5000:.1f} ms/kop, "
          f"environment {env_seconds * 5000:.1f} ms/kop, overhead factor {factor:.2f}x")
    # Shape: the environment adds CSCW functions at a bounded constant
    # factor (no asymptotic blow-up).  The raw channel crosses the
    # simulated network while exchange() is in-process, so the factor can
    # even be < 1; assert it stays within one order of magnitude.
    assert factor < 10.0


def test_e3_distributed_environment_access(benchmark):
    """Figure 4 end to end: a workstation reaches the environment server
    over the ODP platform, paying real (simulated) WAN latency."""
    from repro.communication.model import Communicator
    from repro.environment.server import EnvironmentClient, EnvironmentServer
    from repro.odp.binding import BindingFactory
    from repro.odp.node_mgmt import Capsule

    world = World(seed=4)
    world.add_site("datacenter", ["env-node"])
    world.add_site("office", ["ws0", "ws1"])
    env = build_environment(world, n_people=0)
    from repro.org.model import Person

    for pid, node in [("p0", "ws0"), ("p1", "ws1")]:
        env.knowledge_base.organisation("upc").add_person(Person(pid, pid, "upc"))
        env.register_person(Communicator(pid, node))
    ConferencingSystem().attach(env)
    MessageSystem().attach(env)
    capsule = Capsule(world.network, "env-node")
    factory = BindingFactory(world.network)
    factory.register_capsule(capsule)
    ref = EnvironmentServer(env).deploy(capsule)
    client = EnvironmentClient(world, factory, "ws0", ref)
    document = {"topic": "t", "entry": "e", "conference": "c", "author": "p0"}

    def remote_exchange():
        start = world.now
        outcome = client.exchange("p0", "p1", "conferencing", "message-system", document)
        return outcome, world.now - start

    outcome, simulated_latency = benchmark(remote_exchange)
    assert outcome.delivered
    print(f"\nE3c: workstation -> environment server over WAN: "
          f"{simulated_latency * 1000:.0f} ms simulated round trip "
          f"(the Figure 4 layering, engineering-real)")
    assert simulated_latency >= 0.16  # two WAN crossings minimum


def test_e3_cscw_env_is_subset_of_odp(benchmark):
    """Structural check: every environment service is an ODP-compatible
    construct (trades through the trader, names through ODP refs)."""
    world, env = _env_setup()

    from repro.odp.objects import InterfaceRef

    def export_and_import():
        offer = env.trader.export(
            "cscw-environment", InterfaceRef("env-node", "environment", "exchange")
        )
        found = env.trader.import_one("cscw-environment")
        env.trader.withdraw(offer.offer_id)
        return found

    found = benchmark(export_and_import)
    assert found.service_type == "cscw-environment"
    print("\nE3b: the CSCW environment itself is tradeable as an ODP service "
          "(open CSCW systems ⊆ open distributed systems)")
