"""E7 — run-time tailorability by users and developers alike.

Paper claim (section 4): "systems and the environment need to be
tailorable both by developers and users ... the traditional divide
between users and developers becomes less clear with users having
similar powers and status as system developers."

Regenerated table: a live application is retailored N times at the user
layer and N times at the system (developer) layer using the *same*
operation; out-of-bounds attempts are rejected; running sessions observe
every accepted change without redeployment.
"""

from __future__ import annotations

from repro.environment.tailoring import TailorableParameter, TailoringService
from repro.util.errors import TailoringError


def _service() -> TailoringService:
    service = TailoringService()
    service.declare("editor", TailorableParameter("ui.font_size", numeric_range=(8, 32)))
    service.declare("editor", TailorableParameter("ui.theme", choices=("light", "dark")))
    service.declare("editor", TailorableParameter("sync.interval_s", numeric_range=(1, 600)))
    service.set_default("editor", {
        "ui": {"font_size": 12, "theme": "light"}, "sync": {"interval_s": 30},
    })
    return service


def test_e7_user_developer_parity(benchmark):
    service = _service()
    observed = []
    service.on_change("editor", lambda app, config: observed.append(config))

    operations = [
        ("user", "ana", "ui.font_size", 18),
        ("system", "", "sync.interval_s", 10),
        ("user", "ana", "ui.theme", "dark"),
        ("user", "joan", "ui.font_size", 9),
        ("organisation", "upc", "ui.theme", "light"),
        ("system", "", "ui.font_size", 14),
    ]
    rejected = [
        ("user", "ana", "ui.font_size", 99),       # out of range
        ("user", "ana", "ui.theme", "plaid"),      # not a choice
        ("user", "ana", "ui.secret_flag", True),   # undeclared
    ]

    accepted = 0
    for layer, subject, path, value in operations:
        service.tailor("editor", path, value, layer=layer, subject=subject)
        accepted += 1
    rejections = 0
    for layer, subject, path, value in rejected:
        try:
            service.tailor("editor", path, value, layer=layer, subject=subject)
        except TailoringError:
            rejections += 1

    print("\nE7: live retailoring")
    print(f"  accepted operations: {accepted} (user + org + developer layers)")
    print(f"  rejected (bounded tailorability): {rejections}/{len(rejected)}")
    print(f"  live sessions notified: {len(observed)} times, no redeploy")
    print(f"  ana's effective view: "
          f"{service.effective_config('editor', user='ana', organisation='upc')}")

    assert accepted == len(operations)
    assert rejections == len(rejected)
    assert len(observed) == accepted
    # User layer overrides developer layer — the levelled divide.
    assert service.effective_value("editor", "ui.font_size", user="ana") == 18
    assert service.effective_value("editor", "ui.font_size", user="nobody") == 14
    # Org layer sits between: joan (no user theme) gets the org theme.
    assert service.effective_value(
        "editor", "ui.theme", user="joan", organisation="upc"
    ) == "light"

    fresh = _service()
    benchmark(lambda: fresh.tailor("editor", "ui.font_size", 20, subject="bench"))


def test_e7_retailoring_throughput(benchmark):
    """Sustained retailoring: N operations against a live listener set."""
    service = _service()
    notifications = []
    for _ in range(5):
        service.on_change("editor", lambda app, config: notifications.append(1))

    sizes = list(range(8, 33))

    def retailor_sweep() -> int:
        done = 0
        for index, size in enumerate(sizes):
            service.tailor("editor", "ui.font_size", size, subject=f"user{index % 7}")
            done += 1
        return done

    done = benchmark(retailor_sweep)
    assert done == len(sizes)
    assert notifications  # every accepted change reached live sessions
    print(f"\nE7b: {done} retailorings applied live, "
          f"{service.rejected} rejected overall")
