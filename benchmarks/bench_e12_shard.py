"""E16 — sharded directory/KB at scale: keyed invalidation under churn.

ISSUE 7's storm: BENCH_exchange recorded 2,306 cache invalidations for
101 exchanges because every KB mutation dropped the whole route cache.
This bench sweeps a seeded synthetic population 10^3 -> 10^5 through a
sharded environment (``with_sharding``: consistent-hashed org subtrees
across N DSAs, O(1) person->org resolution) and drives a mutation storm
against a warm cache, asserting the two scale properties the fix claims:

* **invalidations are O(1) in affected keys** — a mutation evicts only
  the routes touching the mutated entity (<= 2 here), independent of
  population size and of how many routes are cached; unrelated churn
  evicts nothing;
* **warm exchange latency is sub-linear in population** — the per-user
  cost of the shared mediator must not grow with registered users (the
  base KB's linear ``find_person`` scan made cold resolution O(people)).

Each sweep point reports install throughput, warm exchange latency,
evictions per mutation, the storm the old whole-cache behaviour would
have caused (mutations x cached routes), per-shard balance, and proof
that person resolution touched exactly one owning shard.

Results are written to ``BENCH_shard.json`` (in ``BENCH_METRICS_DIR``
when set, else the current directory).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e12_shard.py [--smoke|--quick]

``--quick`` (used by ``scripts/check.sh``) sweeps small populations with
the structural assertions intact; ``--smoke`` runs one tiny point.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.environment.environment import CSCWEnvironment
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.obs import MetricsRegistry
from repro.org.model import Person
from repro.sim.world import World
from repro.workload import PopulationGenerator, PopulationSpec

from bench_common import synthetic_converter

#: DSA shards per environment
N_SHARDS = 8
#: distinct warm routes held in the cache during the storm
PAIRS = 32
#: KB mutations fired against the warm cache per sweep point
MUTATIONS = 64
#: every k-th mutation moves a route participant (the only mutations
#: that *should* evict anything: their <= 2 cached routes)
PARTICIPANT_EVERY = 8


def build_point(population: int, organisations: int, seed: int = 11):
    """One sharded environment with its installed synthetic population."""
    world = World(seed=seed)
    env = (
        CSCWEnvironment.builder()
        .with_world(world)
        .with_name("shardbench")
        .with_metrics(MetricsRegistry())
        .with_sharding(N_SHARDS)
        .build()
    )
    spec = PopulationSpec(
        people=population,
        organisations=organisations,
        seed=seed,
        # all-pairs-open window covering every org the sampled routes and
        # participant moves can touch (constant, not O(orgs^2))
        open_policy_orgs=min(organisations, PAIRS + 2),
    )
    generator = PopulationGenerator(spec)
    start = time.perf_counter()
    report = generator.install(env)
    install_s = time.perf_counter() - start
    env.applications.register(
        AppDescriptor(name="producer", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                      converter=synthetic_converter(0)),
        lambda person, document, info: None,
    )
    env.applications.register(
        AppDescriptor(name="consumer", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                      converter=synthetic_converter(1)),
        lambda person, document, info: None,
    )
    return env, generator, report, install_s


def run_point(population: int, warm_iterations: int) -> dict:
    """Measure one population size; return its sweep row."""
    organisations = max(N_SHARDS, population // 100)
    env, generator, report, install_s = build_point(population, organisations)
    kb = env.knowledge_base
    document = {"fmt0-title": "minutes", "fmt0-body": "we met"}
    pairs = generator.sample_pairs(PAIRS)

    # -- owning-shard resolution: one read, one DSA ----------------------
    reads_before = dict(kb.directory.reads_by_shard)
    entry = kb.resolve_person_entry(pairs[0][0])
    reads_after = dict(kb.directory.reads_by_shard)
    touched = [
        shard for shard, count in reads_after.items()
        if count != reads_before[shard]
    ]
    assert len(touched) == 1, f"person read touched {touched}"
    assert touched[0] == kb.shard_of_person(pairs[0][0])
    assert entry.first("cn") == pairs[0][0]

    # -- prime the warm routes -------------------------------------------
    delivered = 0
    for sender, receiver in pairs:
        outcome = env.exchange(sender, receiver, "producer", "consumer", document)
        assert outcome.delivered, outcome
        delivered += 1

    # -- warm path timing -------------------------------------------------
    start = time.perf_counter()
    for index in range(warm_iterations):
        sender, receiver = pairs[index % PAIRS]
        outcome = env.exchange(sender, receiver, "producer", "consumer", document)
        delivered += outcome.delivered
    warm_s = time.perf_counter() - start
    assert delivered == PAIRS + warm_iterations, "warm exchanges must all deliver"

    # -- mutation storm against the warm cache ----------------------------
    stats_before = env.resolution.stats()
    routes_before = stats_before["routes_cached"]
    bound = min(population, organisations)
    participant_moves = 0
    for index in range(MUTATIONS):
        if index % PARTICIPANT_EVERY == 0:
            # a route participant changes org: their <= 2 routes must go
            mover = f"u{(participant_moves + 1) % bound}"
            target_org = f"org{(participant_moves + 2) % min(bound, PAIRS + 2)}"
            if kb.organisation_of(mover) != target_org:
                kb.move_person(mover, target_org)
                participant_moves += 1
        elif index % 2 == 0:
            # unrelated hire: must evict nothing
            kb.add_person(
                Person(f"hire{index}", f"Hire {index}", f"org{index % organisations}")
            )
        else:
            # unrelated bystander churn: must evict nothing
            bystander = f"u{bound + (index % max(1, population - bound))}"
            if population > bound:
                kb.move_person(bystander, f"org{(index + 1) % organisations}")
    stats_after = env.resolution.stats()
    evicted = stats_after["evictions"] - stats_before["evictions"]
    events = stats_after["invalidations"] - stats_before["invalidations"]
    routes_surviving = stats_after["routes_cached"]

    # keyed invalidation: only participant moves evict, <= 2 routes each
    assert evicted <= 2 * participant_moves, (
        f"{evicted} evictions for {participant_moves} participant moves"
    )
    assert events <= participant_moves, (
        f"{events} invalidation events for {participant_moves} participant moves"
    )
    # the warm cache survives the storm (old behaviour: wiped 64 times)
    assert routes_surviving >= routes_before - 2 * participant_moves

    # exchanges still deliver after the storm (routes re-resolve cleanly)
    for sender, receiver in pairs:
        outcome = env.exchange(sender, receiver, "producer", "consumer", document)
        assert outcome.delivered, outcome

    warm_us = warm_s / warm_iterations * 1e6
    return {
        "population": population,
        "organisations": organisations,
        "shards": N_SHARDS,
        "install_s": round(install_s, 3),
        "install_persons_per_s": round(population / install_s, 0),
        "warm_us_per_exchange": round(warm_us, 2),
        "warm_eps": round(warm_iterations / warm_s, 0),
        "mutations": MUTATIONS,
        "participant_moves": participant_moves,
        "evictions": evicted,
        "evictions_per_mutation": round(evicted / MUTATIONS, 3),
        "invalidation_events": events,
        "routes_cached_before_storm": routes_before,
        "routes_surviving_storm": routes_surviving,
        "old_behaviour_would_evict": MUTATIONS * routes_before,
        "shard_balance_max_over_mean": round(report.shard_balance, 2),
        "shard_entries": report.shard_entries,
    }


def run_bench(populations: list[int], warm_iterations: int, mode: str) -> dict:
    sweep = [run_point(population, warm_iterations) for population in populations]
    blob = {
        "bench": "shard",
        "mode": mode,
        "warm_iterations": warm_iterations,
        "pairs": PAIRS,
        "sweep": sweep,
    }
    if len(sweep) >= 2:
        smallest, largest = sweep[0], sweep[-1]
        growth = largest["population"] / smallest["population"]
        latency_ratio = (
            largest["warm_us_per_exchange"] / smallest["warm_us_per_exchange"]
        )
        blob["population_growth"] = round(growth, 1)
        blob["warm_latency_ratio"] = round(latency_ratio, 2)
        # sub-linear: latency may wobble with cache pressure but must not
        # track population (growth is 10-100x across the sweep)
        assert latency_ratio < growth / 2, (
            f"warm latency grew {latency_ratio:.2f}x over a {growth:.0f}x "
            "population sweep — not sub-linear"
        )
        # O(1) in affected keys: evictions per mutation must not grow
        # with population (same constant bound at every sweep point)
        per_mutation = [row["evictions_per_mutation"] for row in sweep]
        assert max(per_mutation) <= 0.5, per_mutation
        assert max(per_mutation) <= per_mutation[0] + 0.2, per_mutation
    return blob


def emit(blob: dict) -> str:
    """Write ``BENCH_shard.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_shard.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print(f"\nE16: sharded KB/directory sweep ({blob['mode']}, "
          f"{N_SHARDS} shards, {blob['pairs']} warm routes, "
          f"{MUTATIONS} mutations per point)")
    print(f"  {'population':>10}  {'orgs':>6}  {'install/s':>10}  "
          f"{'warm µs':>8}  {'evict/mut':>9}  {'storm avoided':>13}  {'balance':>7}")
    for row in blob["sweep"]:
        print(f"  {row['population']:>10}  {row['organisations']:>6}  "
              f"{row['install_persons_per_s']:>10.0f}  "
              f"{row['warm_us_per_exchange']:>8.2f}  "
              f"{row['evictions_per_mutation']:>9.3f}  "
              f"{row['old_behaviour_would_evict']:>13}  "
              f"{row['shard_balance_max_over_mean']:>7.2f}")
    if "warm_latency_ratio" in blob:
        print(f"  latency {blob['warm_latency_ratio']}x over a "
              f"{blob['population_growth']}x population sweep (sub-linear)")


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        populations, warm_iterations, mode = [300], 100, "smoke"
    elif "--quick" in argv:
        populations, warm_iterations, mode = [500, 5000], 400, "quick"
    else:
        populations, warm_iterations, mode = [1000, 10000, 100000], 2000, "full"
    blob = run_bench(populations, warm_iterations, mode)
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    print("  PASS: keyed eviction O(1) in affected keys; warm latency sub-linear")
    return 0


def test_shard_bench_smoke():
    """Pytest entry point: one tiny sweep point, structure asserted."""
    blob = run_bench([300], 100, "smoke")
    row = blob["sweep"][0]
    assert row["evictions_per_mutation"] <= 0.5
    assert row["routes_surviving_storm"] >= PAIRS - 2 * row["participant_moves"]
    assert row["old_behaviour_would_evict"] >= 50 * row["evictions"]


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
