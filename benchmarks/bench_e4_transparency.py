"""E4 — transparency ablation: what each CSCW transparency buys.

Paper claim (section 4): each transparency (organisation, time, view,
activity) hides one dimension of cooperative complexity; without it, a
class of interactions becomes impossible or disturbed.  Section 6.1 adds
that the selection must be user-tailorable.

Regenerated table: a fixed workload of exchanges that crosses every
dimension (cross-organisation, cross-format, absent receivers, multiple
concurrent activities) is replayed under five profiles — all-on and each
single ablation — reporting delivery rate and event disturbance.
"""

from __future__ import annotations

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.environment.transparency import CSCW_DIMENSIONS, TransparencyProfile
from repro.sim.world import World
from repro.util.events import EventRecorder

from bench_common import build_environment


def _build(seed: int = 4):
    world = World(seed=seed)
    env = build_environment(world, n_people=4, orgs=["upc", "gmd"])
    ConferencingSystem().attach(env, exporter_org="upc")
    MessageSystem().attach(env, exporter_org="gmd")
    # p2 is away from their workstation: exercises the time dimension.
    env.communicators.set_presence("p2", False)
    env.create_activity("act-a", "activity A",
                        members={p: "m" for p in ("p0", "p1", "p2", "p3")})
    env.create_activity("act-b", "activity B",
                        members={p: "m" for p in ("p0", "p1", "p2", "p3")})
    return world, env


#: (sender, receiver, sender_app, receiver_app, activity) — crosses orgs
#: (even/odd people are in different orgs), formats, presence, activities.
WORKLOAD = [
    ("p0", "p1", "conferencing", "message-system", "act-a"),   # org+view
    ("p0", "p2", "conferencing", "conferencing", "act-a"),      # time (same org)
    ("p1", "p3", "message-system", "message-system", "act-b"),  # plain (same org)
    ("p0", "p2", "conferencing", "message-system", "act-b"),    # view+time
    ("p1", "p0", "message-system", "conferencing", "act-a"),    # org+view
    ("p2", "p0", "conferencing", "conferencing", "act-a"),      # plain (same org)
]

DOCUMENTS = {
    "conferencing": {"topic": "t", "entry": "e", "conference": "c", "author": "x"},
    "message-system": {"subject": "s", "text": "x", "template": "plain", "fields": {}},
}


def _run_workload(env, profile) -> tuple[int, int]:
    delivered = 0
    for sender, receiver, source_app, target_app, activity in WORKLOAD:
        outcome = env.exchange(
            sender, receiver, source_app, target_app,
            DOCUMENTS[source_app], activity_id=activity, profile=profile,
        )
        delivered += int(outcome.delivered)
    return delivered, len(WORKLOAD)


def test_e4_ablation_table(benchmark):
    profiles = {"all-on": TransparencyProfile.all_on()}
    for dimension in CSCW_DIMENSIONS:
        profiles[f"-{dimension}"] = TransparencyProfile.all_on().without(dimension)
    profiles["all-off"] = TransparencyProfile.all_off()

    rows = []
    for label, profile in profiles.items():
        world, env = _build()
        # Disturbance probe: a subscriber interested ONLY in activity A.
        act_a_only = EventRecorder()
        env.bus.subscribe("activity/act-a", act_a_only)
        leaked = EventRecorder()
        env.bus.subscribe("exchange", leaked)
        delivered, total = _run_workload(env, profile)
        rows.append((label, delivered, total, len(leaked.events)))

    print("\nE4: transparency ablation")
    print(f"{'profile':>14} {'delivered':>10} {'disturbance(global leaks)':>26}")
    for label, delivered, total, leaks in rows:
        print(f"{label:>14} {delivered:>6}/{total:<3} {leaks:>18}")

    by_label = {label: (delivered, leaks) for label, delivered, total, leaks in rows}
    # Shape: full transparency delivers everything with no leaks.
    assert by_label["all-on"] == (len(WORKLOAD), 0)
    # Each ablation loses the exchanges crossing its dimension.
    assert by_label["-organisation"][0] < len(WORKLOAD)
    assert by_label["-time"][0] < len(WORKLOAD)
    assert by_label["-view"][0] < len(WORKLOAD)
    # Activity ablation still delivers but leaks every event globally.
    assert by_label["-activity"][0] == len(WORKLOAD)
    assert by_label["-activity"][1] == len(WORKLOAD)
    # All-off is the closed world: only same-org, same-format, both-present
    # exchanges survive (2 of 6 here).
    assert by_label["all-off"][0] == 2

    # Time the all-on workload.
    world, env = _build()
    benchmark(lambda: _run_workload(env, TransparencyProfile.all_on()))


def test_e4_selection_is_per_user(benchmark):
    """Section 6.1: users select their own transparency (tailorable)."""
    world, env = _build()
    wysiwis_profile = TransparencyProfile.all_on().without("view")
    default_profile = TransparencyProfile.all_on()

    def run() -> tuple[bool, bool]:
        # Same exchange, two user choices: the WYSIWIS user refuses view
        # translation (and fails across formats); the default user accepts.
        strict = env.exchange(
            "p0", "p1", "conferencing", "message-system",
            DOCUMENTS["conferencing"], profile=wysiwis_profile,
        )
        relaxed = env.exchange(
            "p0", "p1", "conferencing", "message-system",
            DOCUMENTS["conferencing"], profile=default_profile,
        )
        return strict.delivered, relaxed.delivered

    strict_ok, relaxed_ok = benchmark(run)
    assert not strict_ok and relaxed_ok
    print("\nE4b: per-user transparency selection: WYSIWIS user blocks "
          "cross-format exchange; default user cooperates")
