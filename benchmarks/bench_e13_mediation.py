"""E17 — mediated interoperation: O(N) converters, N·(N−1) reachable pairs.

The paper's trading-based openness argument, taken one step further than
the static common-form hub: applications *publish* conversion
capabilities (including direct and partial converters that bypass the
common form) on the ODP trader, and a mediator synthesizes multi-hop
conversion plans on demand.  This bench drives the full Figure-1
quadrant population through the mediator and asserts the four claims
PR 8 makes:

* **linear converters, quadratic reach** — N hub-bridged apps publish
  exactly 2N capabilities yet all N·(N−1) ordered pairs get plans; the
  pairwise baseline (``repro.baselines.closed``) needs N·(N−1) ad-hoc
  gateways for the same coverage;
* **multi-hop synthesis** — a fax-line app reaches the message system
  through a 4-hop plan (fax -> scan -> document -> common -> memo) no
  single converter covers, at the product of the partial fidelities;
* **fidelity negotiation** — a caller floor of 0.8 accepts the lossy
  plan as a negotiated downgrade; a floor of 0.95 fails structurally
  (``REASON_FIDELITY``), never silently delivering below floor;
* **keyed plan caching** — warm re-planning hits >= 0.9, and converter
  churn (withdraw + re-publish) evicts only dependent plans: the
  whole-cache invalidation counter stays at zero throughout.

The blob contains no wall-clock values, so two same-seed runs must be
byte-identical — asserted on every invocation.

Results are written to ``BENCH_mediation.json`` (in
``BENCH_METRICS_DIR`` when set, else the current directory).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e13_mediation.py [--smoke|--quick]
"""

from __future__ import annotations

import json
import os
import sys

from repro.apps.base import GroupwareApp
from repro.apps.conferencing import ConferencingSystem
from repro.apps.document import DocumentProcessor
from repro.apps.meeting_room import MeetingRoom
from repro.apps.message_system import MessageSystem
from repro.apps.shared_editor import SharedEditor
from repro.apps.workflow import WorkflowSystem
from repro.baselines.closed import ClosedWorld
from repro.communication.model import Communicator
from repro.environment.environment import (
    REASON_FIDELITY,
    CSCWEnvironment,
)
from repro.environment.registry import (
    AppDescriptor,
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
)
from repro.mediation import KIND_PARTIAL, MediationError, direct_capability
from repro.obs import MetricsRegistry
from repro.org.model import Organisation, Person
from repro.sim.world import World
from repro.util.errors import FidelityError

from bench_common import synthetic_converter

#: warm re-planning rounds over the full reachable matrix
WARM_ROUNDS = 3

FAX_DOC = {"fax-title": "signed offer", "fax-body": "terms attached"}
CONFERENCE_DOC = {"topic": "ODP", "entry": "will it help?", "author": "p0"}


class _SyntheticApp(GroupwareApp):
    """A hub-bridged app with a distinct synthetic format (scales N)."""

    quadrants = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]

    def __init__(self, index: int) -> None:
        super().__init__(f"syn{index}")
        self._converter = synthetic_converter(index)

    def converter(self):
        return self._converter


def _fax_descriptor() -> AppDescriptor:
    """A fax line: mediator-only format, partial converter to scans."""
    return AppDescriptor(
        name="faxline",
        quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
        native_format="fax",
        capabilities=[
            direct_capability(
                "fax", "scan",
                lambda d: {"scan-title": d.get("fax-title", ""),
                           "scan-body": d.get("fax-body", "")},
                fidelity=0.95, kind=KIND_PARTIAL, exporter="faxline",
            )
        ],
    )


def _scan_descriptor() -> AppDescriptor:
    """A scan store: bridges scans into the document processor's format."""
    return AppDescriptor(
        name="scanstore",
        quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
        native_format="scan",
        capabilities=[
            direct_capability(
                "scan", "document",
                lambda d: {"title": d.get("scan-title", ""),
                           "paragraphs": [d.get("scan-body", "")]},
                fidelity=0.9, kind=KIND_PARTIAL, exporter="scanstore",
            )
        ],
    )


def build_mediated_env(world: World, metrics: MetricsRegistry | None = None):
    env = CSCWEnvironment.builder().with_world(world).with_mediation()
    if metrics is not None:
        env = env.with_metrics(metrics)
    env = env.build()
    org = Organisation("upc", "UPC")
    org.add_person(Person("p0", "Person 0", "upc"))
    org.add_person(Person("p1", "Person 1", "upc"))
    env.knowledge_base.add_organisation(org)
    world.add_site("bcn", ["ws-p0", "ws-p1"])
    env.register_person(Communicator("p0", "ws-p0"))
    env.register_person(Communicator("p1", "ws-p1"))
    return env


def quadrant_apps(world: World, smoke: bool) -> list[GroupwareApp]:
    """Stock apps covering every Figure-1 quadrant (2 in smoke mode)."""
    if smoke:
        return [MessageSystem(), DocumentProcessor()]
    return [
        ConferencingSystem(),     # different-time/different-place
        MessageSystem(),          # different-time/different-place
        WorkflowSystem(),         # different-time/{same,different}-place
        DocumentProcessor(),      # different-time/same-place
        SharedEditor(world),      # same-time/different-place
        MeetingRoom(world),       # same-time/same-place
    ]


def run_matrix(smoke: bool) -> dict:
    """The quadrant-population matrix: plans, delivery, negotiation, churn."""
    world = World(seed=17)
    metrics = MetricsRegistry()
    env = build_mediated_env(world, metrics)
    apps = quadrant_apps(world, smoke)
    for app in apps:
        app.attach(env, exporter_org="upc")
    message_system = next(app for app in apps if app.name == "message-system")
    env.register_application(_fax_descriptor(), lambda person, doc, info: None)
    env.register_application(_scan_descriptor(), lambda person, doc, info: None)
    mediator = env.mediator
    formats = sorted(
        env.applications.descriptor(name).format_name
        for name in env.applications.names()
    )

    # -- plan matrix ------------------------------------------------------
    matrix: dict[str, dict[str, float]] = {}
    planned = unreachable = 0
    for source in formats:
        row: dict[str, float] = {}
        for target in formats:
            if source == target:
                continue
            try:
                plan = mediator.plan(source, target)
            except MediationError:
                unreachable += 1
                continue
            row[target] = round(plan.fidelity, 4)
            planned += 1
        matrix[source] = row
    hub_formats = [f for f in formats if f not in ("fax", "scan")]
    n_hub = len(hub_formats)
    # every hub-bridged pair plans; only the chain apps' inbound legs
    # (nothing converts INTO a fax) are unreachable
    assert planned >= n_hub * (n_hub - 1), (planned, n_hub)
    assert mediator.reachable_pairs() == planned

    # -- multi-hop synthesis ----------------------------------------------
    multi_hop = mediator.plan("fax", "memo")
    assert multi_hop.hops >= 3, multi_hop
    assert multi_hop.path == ("fax", "scan", "document", "common", "memo")
    assert abs(multi_hop.fidelity - 0.95 * 0.9) < 1e-9

    outcome = env.exchange(
        "p0", "p1", "faxline", "message-system", FAX_DOC, min_fidelity=0.8
    )
    assert outcome.delivered and outcome.translated, outcome
    assert abs(outcome.fidelity - multi_hop.fidelity) < 1e-9, outcome
    delivered_doc = message_system.inbox("p1")[-1].document
    assert delivered_doc["subject"] == FAX_DOC["fax-title"]

    # -- fidelity negotiation ---------------------------------------------
    rejected = env.exchange(
        "p0", "p1", "faxline", "message-system", FAX_DOC, min_fidelity=0.9
    )
    assert not rejected.delivered
    assert rejected.reason_code == REASON_FIDELITY
    try:
        mediator.negotiate("fax", "memo", min_fidelity=0.9)
        raise AssertionError("floor 0.9 must reject the 0.855 plan")
    except FidelityError as error:
        assert abs(error.best_fidelity - 0.855) < 1e-9
    downgrades = mediator.negotiated_downgrades
    rejections = mediator.fidelity_rejections
    assert downgrades >= 1 and rejections >= 1

    if not smoke:
        # both formats in the static hub, hub fidelity 0.9 (lossy form
        # converter): floor 0.8 delivers the downgrade, floor 0.95 fails
        accepted = env.exchange(
            "p0", "p1", "conferencing", "workflow", CONFERENCE_DOC,
            min_fidelity=0.8,
        )
        assert accepted.delivered and abs(accepted.fidelity - 0.9) < 1e-9
        refused = env.exchange(
            "p0", "p1", "conferencing", "workflow", CONFERENCE_DOC,
            min_fidelity=0.95,
        )
        assert not refused.delivered
        assert refused.reason_code == REASON_FIDELITY

    # -- warm plan-cache hit rate -----------------------------------------
    pairs = [(s, t) for s, row in matrix.items() for t in row]
    hits_before = mediator.plan_hits
    lookups = 0
    for _ in range(WARM_ROUNDS):
        for source, target in pairs:
            mediator.plan(source, target)
            lookups += 1
    warm_hit_rate = (mediator.plan_hits - hits_before) / lookups
    assert warm_hit_rate >= 0.9, warm_hit_rate

    # -- churn: keyed eviction, never a whole-cache drop -------------------
    stats_before = mediator.stats()
    cached_before = stats_before["plans_cached"]
    withdrawn = "partial:scan->document"
    dependents = {
        (s, t) for s, t in pairs if withdrawn in mediator.plan(s, t).steps
    }
    mediator.withdraw(withdrawn)
    after_withdraw = mediator.stats()
    churn_evictions = after_withdraw["plan_evictions"] - stats_before["plan_evictions"]
    # exactly the plans routing through the withdrawn hop went, no more
    assert churn_evictions == len(dependents), (churn_evictions, dependents)
    assert after_withdraw["plans_cached"] == cached_before - len(dependents)
    # the surviving plans still hit
    survivor_hits = mediator.plan_hits
    for source, target in pairs:
        if (source, target) not in dependents:
            mediator.plan(source, target)
    assert mediator.plan_hits - survivor_hits == len(pairs) - len(dependents)

    mediator.publish(_scan_descriptor().capabilities[0])
    restored = mediator.plan("fax", "memo")
    assert restored.path == multi_hop.path
    final = mediator.stats()
    assert final["whole_cache_invalidations"] == 0, final

    snapshot = metrics.snapshot()
    return {
        "apps": {
            name: {
                "format": env.applications.descriptor(name).format_name,
                "quadrants": sorted(env.applications.descriptor(name).quadrants),
            }
            for name in env.applications.names()
        },
        "formats": formats,
        "fidelity_matrix": matrix,
        "planned_pairs": planned,
        "unreachable_pairs": unreachable,
        "multi_hop": {
            "path": list(multi_hop.path),
            "hops": multi_hop.hops,
            "fidelity": round(multi_hop.fidelity, 4),
        },
        "negotiation": {
            "downgrades": downgrades,
            "rejections": rejections,
        },
        "warm_hit_rate": round(warm_hit_rate, 4),
        "churn": {
            "withdrawn": withdrawn,
            "evictions": churn_evictions,
            "dependent_plans": len(dependents),
            "whole_cache_invalidations": final["whole_cache_invalidations"],
        },
        "mediator_stats": final,
        "fidelity_histogram": snapshot.get("histograms", {}).get(
            "mediation.fidelity"
        ),
        "plan_counters": {
            name: value
            for name, value in snapshot.get("counters", {}).items()
            if name.startswith("mediation.")
        },
    }


def run_scaling(sweep: list[int]) -> list[dict]:
    """Mediated O(N) capabilities vs pairwise O(N^2) gateways."""
    rows = []
    for n in sweep:
        world = World(seed=23)
        env = build_mediated_env(world)
        for index in range(n):
            _SyntheticApp(index).attach(env, exporter_org="upc")
        mediator = env.mediator
        assert mediator.capability_count() == 2 * n
        assert mediator.reachable_pairs() == n * (n - 1)
        for i in range(n):
            for j in range(n):
                if i != j:
                    mediator.plan(f"fmt{i}", f"fmt{j}")
        assert mediator.stats()["plans_cached"] >= n * (n - 1)

        closed = ClosedWorld()
        for index in range(n):
            closed.add_app(_SyntheticApp(index))
        gateways = closed.build_all_gateways()
        assert gateways == n * (n - 1)
        rows.append({
            "apps": n,
            "mediated_capabilities": 2 * n,
            "pairwise_gateways": gateways,
            "reachable_pairs": n * (n - 1),
            "capability_advantage": round(gateways / (2 * n), 2),
        })
    return rows


def run_bench(mode: str) -> dict:
    smoke = mode == "smoke"
    sweep = {"smoke": [4], "quick": [4, 8, 16]}.get(mode, [4, 8, 16, 32])
    return {
        "bench": "mediation",
        "mode": mode,
        "matrix": run_matrix(smoke),
        "scaling": run_scaling(sweep),
    }


def emit(blob: dict) -> str:
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_mediation.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    matrix = blob["matrix"]
    print(f"\nE17: mediated interoperation ({blob['mode']})")
    print(f"  formats: {', '.join(matrix['formats'])}")
    print(f"  planned pairs: {matrix['planned_pairs']} "
          f"(+{matrix['unreachable_pairs']} unreachable chain legs)")
    hop = matrix["multi_hop"]
    print(f"  multi-hop: {' -> '.join(hop['path'])} "
          f"({hop['hops']} hops, fidelity {hop['fidelity']})")
    print(f"  negotiation: {matrix['negotiation']['downgrades']} downgrades, "
          f"{matrix['negotiation']['rejections']} rejections")
    print(f"  warm plan-cache hit rate: {matrix['warm_hit_rate']}")
    churn = matrix["churn"]
    print(f"  churn: withdrew {churn['withdrawn']} -> {churn['evictions']} keyed "
          f"evictions ({churn['whole_cache_invalidations']} whole-cache drops)")
    print(f"  {'apps':>6}  {'capabilities':>12}  {'gateways':>9}  {'advantage':>9}")
    for row in blob["scaling"]:
        print(f"  {row['apps']:>6}  {row['mediated_capabilities']:>12}  "
              f"{row['pairwise_gateways']:>9}  {row['capability_advantage']:>8}x")


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        mode = "smoke"
    elif "--quick" in argv:
        mode = "quick"
    else:
        mode = "full"
    blob = run_bench(mode)
    rerun = run_bench(mode)
    assert blob == rerun, "same-seed reruns must produce identical blobs"
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    print("  PASS: O(N) capabilities for N(N-1) pairs; multi-hop plan; "
          "negotiated downgrade; warm hits >= 0.9; zero whole-cache drops")
    return 0


def test_mediation_bench_smoke():
    """Pytest entry point: smoke matrix + one sweep point, determinism."""
    blob = run_bench("smoke")
    assert blob == run_bench("smoke")
    matrix = blob["matrix"]
    assert matrix["multi_hop"]["hops"] >= 3
    assert matrix["warm_hit_rate"] >= 0.9
    assert matrix["churn"]["whole_cache_invalidations"] == 0
    assert blob["scaling"][0]["pairwise_gateways"] == 12


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
