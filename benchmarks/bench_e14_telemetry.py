"""E18 — telemetry at scale: labelled families, sampling, flat windows.

ISSUE 10's claim: the telemetry v3 stack keeps its cost *bounded* while
the system underneath it grows.  This bench replays an E16-style sharded
population (``with_sharding``, synthetic org/person install, warm
exchange routes) with a deterministic failure stream (every
``ERROR_EVERY``-th exchange targets a ghost receiver, the E13 chaos
stand-in for a single-domain soak) at 10^3 -> 10^4 exchanges, and pins
four scale properties:

* **cardinality stays capped** — the labelled metric families
  (``env.exchange.outcomes{domain,outcome}``,
  ``directory.ops{shard,op}``, ...) keep every per-family cardinality
  under :data:`~repro.obs.metrics.CARDINALITY_LIMIT` while the
  population grows 10x,
* **sampling cuts tracer overhead >= 2x** — head sampling at p=0.1
  (seeded, deterministic) costs at most half the full-rate tracing
  pipeline's wall overhead over the untraced baseline (instrumentation
  *plus* the in-loop exporter drain that serializes recorded spans,
  where full-rate pays for its volume), while **retaining 100% of
  error traces** via tail bias, every one of them a connected span
  tree,
* **windowed SLO memory is flat** — the engine's ring cells are
  identical mid-soak and at the end, and never exceed the slot budget,
* **same-seed reruns are byte-identical** — metric snapshots and span
  JSONL from two runs of the same seed compare equal as strings.

Results land in ``BENCH_telemetry.json`` (in ``BENCH_METRICS_DIR`` when
set, else the current directory); ``scripts/check.sh`` reads the blob
back and fails the build on a cardinality breach, lost error traces, or
an overhead cut below 2x.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e14_telemetry.py [--quick|--smoke]
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import sys
import time

from bench_common import synthetic_converter
from repro.environment.environment import CSCWEnvironment
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.obs import (
    CARDINALITY_LIMIT,
    MetricsRegistry,
    SLOEngine,
    TraceAnalyzer,
    Tracer,
    profile_spans,
    to_jsonl,
)
from repro.sim.world import World
from repro.workload import PopulationGenerator, PopulationSpec

SEED = 11
N_SHARDS = 8
#: warm exchange routes cycled by the soak
PAIRS = 32
#: every k-th exchange targets a ghost receiver: a deterministic error
#: stream the tail-biased sampler must retain at 100%
ERROR_EVERY = 25
#: sim seconds advanced between exchange bursts (ticks the SLO sampler)
TICK_EVERY, TICK_S = 8, 0.5
SAMPLING_P = 0.1
SLO_WINDOW_S = 30.0
SLO_PERIOD_S = 2.5
#: the sampled tracer must cost at most half the full-rate tracer
REDUCTION_FLOOR = 2.0

DOCUMENT = {"fmt0-title": "minutes", "fmt0-body": "we met"}

#: tracer variants: no tracer, record-everything, head-sampled p=0.1
VARIANTS = ("off", "full", "sampled")


def build_env(population: int, organisations: int, variant: str):
    """One sharded telemetry-instrumented environment; returns handles."""
    world = World(seed=SEED)
    tracer = Tracer() if variant != "off" else None
    builder = (
        CSCWEnvironment.builder()
        .with_world(world)
        .with_name("telemetry")
        .with_metrics(MetricsRegistry())
        .with_sharding(N_SHARDS)
    )
    if tracer is not None:
        builder.with_tracer(tracer)
    if variant == "sampled":
        builder.with_trace_sampling(SAMPLING_P, seed=SEED)
    env = builder.build()
    generator = PopulationGenerator(
        PopulationSpec(
            people=population,
            organisations=organisations,
            seed=SEED,
            open_policy_orgs=min(organisations, PAIRS + 2),
        )
    )
    generator.install(env)
    for name, app_index in (("producer", 0), ("consumer", 1)):
        env.applications.register(
            AppDescriptor(
                name=name,
                quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                converter=synthetic_converter(app_index),
            ),
            lambda person, document, info: None,
        )
    slo = SLOEngine(
        world.engine, env.metrics, sample_period_s=SLO_PERIOD_S
    ).add_ratio(
        "delivered",
        "env.exchange.outcome.delivered",
        "env.exchange.attempted",
        target=0.9,
        window_s=SLO_WINDOW_S,
    )
    slo.start()
    return world, env, generator, tracer, slo


class Session:
    """One variant's environment plus its soak cursor.

    Splitting the soak into resumable bursts lets the overhead
    measurement interleave all three variants at a fine grain (see
    :func:`measure_overhead`) instead of differencing whole-run walls.
    """

    def __init__(self, population: int, variant: str) -> None:
        organisations = max(N_SHARDS, population // 100)
        (
            self.world, self.env, generator, self.tracer, self.slo
        ) = build_env(population, organisations, variant)
        self.variant = variant
        self.pairs = generator.sample_pairs(PAIRS)
        self.index = 0
        self.errors_expected = 0
        self.cells_mid: dict[str, int] = {}
        self.wall_s = 0.0
        #: spans already shipped by the in-loop exporter (kept for the
        #: post-run analysis; a real exporter would release them)
        self.exported: list = []
        self.export_bytes = 0

    def burst(self, count: int, mid_mark: int | None = None) -> float:
        """Run *count* exchanges, timed; returns the burst's wall time.

        The timed loop includes the exporter tick: every
        ``TICK_EVERY``-th exchange drains the tracer and serializes the
        batch to JSONL, the way an in-process exporter ships spans.
        That is where full-rate tracing pays for its volume — the
        sampled tracer drains only what head sampling kept plus the
        tail-retained error traces.
        """
        env, world, pairs = self.env, self.world, self.pairs
        drain = env.tracer.drain
        started = time.perf_counter()
        for _ in range(count):
            index = self.index
            sender, receiver = pairs[index % PAIRS]
            if index % ERROR_EVERY == ERROR_EVERY - 1:
                receiver = f"ghost-{index}"
                self.errors_expected += 1
            env.exchange(sender, receiver, "producer", "consumer", DOCUMENT)
            if index % TICK_EVERY == TICK_EVERY - 1:
                world.run_for(TICK_S)
                batch = drain()
                if batch:
                    self.export_bytes += len(to_jsonl(batch))
                    self.exported.extend(batch)
            self.index = index + 1
        elapsed = time.perf_counter() - started
        self.wall_s += elapsed
        if mid_mark is not None and self.index >= mid_mark and not self.cells_mid:
            self.cells_mid = self.slo.window_cells()
        return elapsed

    def spans(self) -> list:
        """Every recorded span: exported batches plus the undrained tail."""
        if self.tracer is None:
            return []
        return self.exported + self.tracer.finished()

    def as_run(self) -> dict:
        return {
            "variant": self.variant,
            "wall_s": self.wall_s,
            "errors_expected": self.errors_expected,
            "cells_mid": self.cells_mid or self.slo.window_cells(),
            "cells_end": self.slo.window_cells(),
            "env": self.env,
            "tracer": self.tracer,
            "slo": self.slo,
            "spans": self.spans(),
            "export_bytes": self.export_bytes,
        }


def run_variant(population: int, exchanges: int, variant: str) -> dict:
    """One soak; returns wall time, error bookkeeping, and raw handles."""
    session = Session(population, variant)
    gc.collect()
    session.burst(exchanges // 2, mid_mark=exchanges // 2)
    session.burst(exchanges - exchanges // 2)
    return session.as_run()


def error_trace_ids(spans) -> set[str]:
    """Trace ids whose env.exchange span settled with a failure reason."""
    return {
        span.trace_id
        for span in spans
        if span.name == "env.exchange"
        and span.tags.get("reason_code") not in (None, "delivered")
    }


def analyse_sampled(run: dict) -> dict:
    """Retention, connectivity, cardinality, and window memory for a run."""
    tracer: Tracer = run["tracer"]
    spans = run["spans"]
    analyzer = TraceAnalyzer(spans)
    summary = analyzer.summary()
    retained_errors = len(error_trace_ids(spans))
    cardinality = run["env"].metrics.cardinality()
    profile = profile_spans(spans)
    return {
        "errors_expected": run["errors_expected"],
        "errors_retained": retained_errors,
        "error_retention": (
            round(retained_errors / run["errors_expected"], 4)
            if run["errors_expected"]
            else 1.0
        ),
        "traces": summary["traces"],
        "spans": summary["spans"],
        "connected": summary["connected"],
        "disconnected": summary["disconnected"],
        "sampled_in": tracer.sampled_in,
        "sampled_out": tracer.sampled_out,
        "tail_retained": tracer.tail_retained,
        "families": len(cardinality),
        "max_cardinality": max(cardinality.values()) if cardinality else 0,
        "slo": run["slo"].evaluate(),
        "window_cells_mid": run["cells_mid"],
        "window_cells_end": run["cells_end"],
        "profile_layers": [row["layer"] for row in profile.layers()[:3]],
    }


def measure_overhead(population: int, exchanges: int, repeats: int) -> dict:
    """Tracer overhead over the untraced baseline, per variant.

    Whole-run walls cannot be differenced on a noisy shared box: a CPU
    steal burst landing on one 0.5 s run swamps a 0.1 s overhead.  So
    the three variants run *interleaved*, in rotated round-robin bursts
    of ``BURST`` exchanges each — noise at any instant hits whichever
    variant happens to be running, and over ~40 rounds it spreads
    evenly.  Overheads are then differences of per-variant totals from
    the same wall-clock span.  The median over ``repeats`` independent
    passes (fresh environments each) shrugs off pass-level outliers.
    """
    full_overheads, sampled_overheads, walls = [], [], {v: [] for v in VARIANTS}
    burst = max(50, min(250, exchanges // 20))
    for _ in range(repeats):
        sessions = {v: Session(population, v) for v in VARIANTS}
        for session in sessions.values():  # warm-up burst, untimed
            session.burst(burst)
            session.wall_s = 0.0
        # the three installed populations are live heap: freeze them so
        # generational GC does not rescan them mid-burst
        gc.collect()
        gc.freeze()
        rounds = max(1, (exchanges - burst) // burst)
        for step in range(rounds):
            order = VARIANTS[step % 3:] + VARIANTS[:step % 3]
            for variant in order:
                sessions[variant].burst(burst)
            if step % 8 == 7:
                # spans exported since the last freeze are live heap too;
                # re-freezing between bursts keeps generational sweeps
                # (and their lumpy attribution) out of the timed loops
                gc.collect()
                gc.freeze()
        gc.unfreeze()
        off = sessions["off"].wall_s
        for variant in VARIANTS:
            walls[variant].append(sessions[variant].wall_s)
        full_overheads.append(sessions["full"].wall_s - off)
        sampled_overheads.append(sessions["sampled"].wall_s - off)
        last_sampled = sessions["sampled"].as_run()
        del sessions
        gc.collect()
    full_overhead = statistics.median(full_overheads)
    sampled_overhead = statistics.median(sampled_overheads)
    # a sampled overhead at or below measurement noise is a full win
    reduction = (
        full_overhead / sampled_overhead
        if sampled_overhead > 1e-9
        else float("inf")
    )
    return {
        "population": population,
        "exchanges": exchanges,
        "repeats": repeats,
        "wall_s": {
            variant: round(statistics.median(walls[variant]), 4)
            for variant in VARIANTS
        },
        "full_overhead_s": round(full_overhead, 4),
        "sampled_overhead_s": round(sampled_overhead, 4),
        "overhead_reduction": (
            round(reduction, 2) if reduction != float("inf") else "inf"
        ),
        "reduction_floor": REDUCTION_FLOOR,
        "sampled_run": last_sampled,
    }


def snapshot_bytes(run: dict) -> tuple[str, str]:
    """The two determinism artefacts: metric snapshot and span JSONL."""
    snapshot = json.dumps(
        run["env"].metrics.snapshot(), sort_keys=True, indent=2
    )
    return snapshot, to_jsonl(run["spans"])


def run_bench(populations: list[int], exchanges: list[int], mode: str,
              repeats: int) -> dict:
    # -- sweep: cardinality + retention at each population size ----------
    sweep = []
    for population, count in zip(populations, exchanges):
        run = run_variant(population, count, "sampled")
        row = {"population": population, "exchanges": count}
        row.update(analyse_sampled(run))
        sweep.append(row)

    # -- overhead: paired triples at the largest point -------------------
    overhead = measure_overhead(populations[-1], exchanges[-1], repeats)
    overhead_row = analyse_sampled(overhead.pop("sampled_run"))

    # -- determinism: two same-seed runs at the smallest point -----------
    first = run_variant(populations[0], exchanges[0], "sampled")
    second = run_variant(populations[0], exchanges[0], "sampled")
    first_snapshot, first_jsonl = snapshot_bytes(first)
    second_snapshot, second_jsonl = snapshot_bytes(second)
    determinism = {
        "snapshot_identical": first_snapshot == second_snapshot,
        "jsonl_identical": first_jsonl == second_jsonl,
        "snapshot_bytes": len(first_snapshot),
        "jsonl_spans": len(first["spans"]),
    }

    return {
        "bench": "telemetry",
        "mode": mode,
        "seed": SEED,
        "shards": N_SHARDS,
        "sampling_p": SAMPLING_P,
        "cardinality_limit": CARDINALITY_LIMIT,
        "sweep": sweep,
        "overhead": overhead,
        "overhead_point": overhead_row,
        "determinism": determinism,
    }


def emit(blob: dict) -> str:
    """Write ``BENCH_telemetry.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_telemetry.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print(f"\nE18: telemetry at scale ({blob['mode']} mode, seed {blob['seed']}, "
          f"{blob['shards']} shards, p={blob['sampling_p']})")
    print(f"  {'population':>10}  {'exchanges':>9}  {'families':>8}  "
          f"{'max card':>8}  {'errors':>6}  {'retained':>8}  {'traces':>6}")
    for row in blob["sweep"]:
        print(f"  {row['population']:>10}  {row['exchanges']:>9}  "
              f"{row['families']:>8}  {row['max_cardinality']:>8}  "
              f"{row['errors_expected']:>6}  {row['errors_retained']:>8}  "
              f"{row['traces']:>6}")
    overhead = blob["overhead"]
    print(f"  walls (median): off {overhead['wall_s']['off']:.3f}s  "
          f"full {overhead['wall_s']['full']:.3f}s  "
          f"sampled {overhead['wall_s']['sampled']:.3f}s")
    print(f"  tracer overhead: full {overhead['full_overhead_s']:.4f}s, "
          f"sampled {overhead['sampled_overhead_s']:.4f}s "
          f"({overhead['overhead_reduction']}x cut, floor "
          f"{overhead['reduction_floor']}x)")
    cells = blob["sweep"][-1]
    print(f"  slo window cells: mid {cells['window_cells_mid']} "
          f"end {cells['window_cells_end']}")
    determinism = blob["determinism"]
    print(f"  determinism: snapshot {determinism['snapshot_identical']}, "
          f"jsonl {determinism['jsonl_identical']} "
          f"({determinism['jsonl_spans']} spans)")
    print(f"  hot layers: {cells['profile_layers']}")


def check(blob: dict, strict: bool) -> None:
    """E18 acceptance; the overhead cut is asserted in full mode only."""
    limit = blob["cardinality_limit"]
    for row in blob["sweep"] + [blob["overhead_point"]]:
        assert row["max_cardinality"] <= limit, (
            f"family cardinality {row['max_cardinality']} breaches the "
            f"cap {limit} at population {row.get('population', '?')}"
        )
        assert row["error_retention"] == 1.0, (
            f"tail bias lost error traces: {row['errors_retained']} of "
            f"{row['errors_expected']} retained"
        )
        assert row["disconnected"] == 0, (
            f"{row['disconnected']} retained traces lost their root"
        )
        assert row["errors_expected"] > 0, "error stream never fired"
    if len(blob["sweep"]) >= 2:
        growth = (
            blob["sweep"][-1]["population"] / blob["sweep"][0]["population"]
        )
        assert growth >= 2, "sweep must grow the population"
    slots = int(SLO_WINDOW_S / SLO_PERIOD_S)
    last = blob["sweep"][-1]
    for checkpoint in ("window_cells_mid", "window_cells_end"):
        for name, cells in last[checkpoint].items():
            assert cells <= slots, f"{name} {checkpoint}: {cells} > {slots}"
    determinism = blob["determinism"]
    assert determinism["snapshot_identical"], "metric snapshots diverged"
    assert determinism["jsonl_identical"], "span exports diverged"
    assert determinism["jsonl_spans"] > 0, "sampled run retained nothing"
    if strict:
        # rings full by mid-soak: the cell count must not move afterwards
        assert last["window_cells_mid"] == last["window_cells_end"], (
            "SLO window memory grew between mid-soak and the end: "
            f"{last['window_cells_mid']} -> {last['window_cells_end']}"
        )
        overhead = blob["overhead"]
        reduction = overhead["overhead_reduction"]
        assert reduction == "inf" or reduction >= REDUCTION_FLOOR, (
            f"p={SAMPLING_P} sampling cut tracer overhead only "
            f"{reduction}x (floor {REDUCTION_FLOOR}x)"
        )


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        populations, exchanges, mode, repeats = [200], [200], "smoke", 1
    elif "--quick" in argv:
        populations, exchanges, mode, repeats = (
            [300, 1500], [400, 1200], "quick", 1
        )
    else:
        populations, exchanges, mode, repeats = (
            [1000, 10000], [1000, 10000], "full", 5
        )
    blob = run_bench(populations, exchanges, mode, repeats)
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    check(blob, strict=mode == "full")
    if mode == "full":
        print("  PASS: capped cardinality, >=2x sampling cut with 100% "
              "error retention, flat window memory, byte-identical reruns")
    return 0


def test_telemetry_bench_smoke():
    """Pytest entry point: the full machinery on a tiny soak."""
    blob = run_bench([200], [200], "smoke", repeats=1)
    check(blob, strict=False)
    row = blob["sweep"][0]
    assert row["sampled_out"] > 0, "head sampling never dropped a trace"
    # errors the head sample happened to keep need no tail rescue, so
    # tail_retained can undershoot errors_expected — but never hit zero
    assert row["tail_retained"] > 0, "tail retention never fired"


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
