"""E5 — the organisational knowledge base as trading policy.

Paper claim (section 6.1): "the organisational knowledge base considered
in the Mocca environment will be associated to the trader, containing or
dictating among other the trading policy."

Regenerated table: a service population exported by many organisations
with a sparse policy graph; importers from each organisation select
offers through (a) a plain ODP trader and (b) the same trader with the
KB's policy hook.  Reported: policy-violating selections (plain > 0,
policy-aware = 0) and selection success.
"""

from __future__ import annotations

from repro.odp.objects import InterfaceRef
from repro.odp.trader import ImportContext, Trader
from repro.org.knowledge_base import OrganisationalKnowledgeBase
from repro.org.model import Organisation
from repro.org.policy import INTERACTION_SERVICE_IMPORT
from repro.sim.rng import SeededRng
from repro.util.errors import NoOfferError

N_ORGS = 8
OFFERS_PER_ORG = 4


def _knowledge_base(rng: SeededRng) -> OrganisationalKnowledgeBase:
    kb = OrganisationalKnowledgeBase()
    org_ids = [f"org{i}" for i in range(N_ORGS)]
    for org_id in org_ids:
        kb.add_organisation(Organisation(org_id, org_id.upper()))
    # Sparse policy graph: each org partners with ~1/3 of the others.
    for a in org_ids:
        for b in org_ids:
            if a < b and rng.chance(0.33):
                kb.policies.declare(a, b, {INTERACTION_SERVICE_IMPORT}, symmetric=True)
    return kb


def _populate(trader: Trader) -> None:
    rng = SeededRng(99)
    for org_index in range(N_ORGS):
        for offer_index in range(OFFERS_PER_ORG):
            trader.export(
                "printing",
                InterfaceRef(f"node-{org_index}-{offer_index}", "svc", "main"),
                {"cost": rng.randint(1, 10)},
                exporter=f"org{org_index}",
            )


def _violations(kb, trader: Trader, label: str) -> tuple[int, int, int]:
    """(selections, violations, failures) for importers from every org."""
    selections = violations = failures = 0
    for org_index in range(N_ORGS):
        importer_org = f"org{org_index}"
        context = ImportContext(importer=f"buyer-{org_index}", organisation=importer_org)
        try:
            offer = trader.import_one("printing", preference="min:cost", context=context)
        except NoOfferError:
            failures += 1
            continue
        selections += 1
        compatible = kb.policies.compatible(
            importer_org, offer.exporter, INTERACTION_SERVICE_IMPORT
        )
        if not compatible:
            violations += 1
    return selections, violations, failures


def test_e5_policy_aware_trading(benchmark):
    rng = SeededRng(7)
    kb = _knowledge_base(rng)

    plain = Trader("plain")
    _populate(plain)
    plain_result = _violations(kb, plain, "plain")

    aware = Trader("policy-aware")
    aware.add_policy_hook(kb.trader_policy_hook())
    _populate(aware)
    aware_result = _violations(kb, aware, "aware")

    print("\nE5: trading with vs without the organisational knowledge base")
    print(f"{'trader':>14} {'selections':>11} {'policy violations':>18} {'no-offer':>9}")
    for label, (selections, violations, failures) in [
        ("plain ODP", plain_result), ("org-KB hook", aware_result),
    ]:
        print(f"{label:>14} {selections:>11} {violations:>18} {failures:>9}")

    # Shape: plain trading violates policies; KB-augmented trading never
    # does (it may instead fail when no compatible exporter exists).
    assert plain_result[1] > 0
    assert aware_result[1] == 0
    assert aware_result[0] + aware_result[2] == N_ORGS

    # Time the policy-aware import (the added check must be cheap).
    context = ImportContext(importer="buyer-0", organisation="org0")

    def import_once():
        try:
            return aware.import_one("printing", preference="min:cost", context=context)
        except NoOfferError:
            return None

    benchmark(import_once)


def test_e5_federated_trading_respects_policy(benchmark):
    """Federation + policy: linked traders inherit the importer's policy
    constraints because hooks run in the trader that owns the offers."""
    rng = SeededRng(13)
    kb = _knowledge_base(rng)
    local = Trader("local")
    local.add_policy_hook(kb.trader_policy_hook())
    remote = Trader("remote")
    remote.add_policy_hook(kb.trader_policy_hook())
    remote.export("archiving", InterfaceRef("far", "svc", "main"), exporter="org5")
    local.link(remote)

    compatible_org = next(
        (f"org{i}" for i in range(N_ORGS)
         if kb.policies.compatible(f"org{i}", "org5", INTERACTION_SERVICE_IMPORT)
         and f"org{i}" != "org5"),
        None,
    )
    incompatible_org = next(
        f"org{i}" for i in range(N_ORGS)
        if not kb.policies.compatible(f"org{i}", "org5", INTERACTION_SERVICE_IMPORT)
    )

    def run():
        results = {}
        if compatible_org is not None:
            results["compatible"] = local.import_one(
                "archiving", context=ImportContext(organisation=compatible_org)
            )
        try:
            local.import_one(
                "archiving", context=ImportContext(organisation=incompatible_org)
            )
            results["incompatible"] = "selected"
        except NoOfferError:
            results["incompatible"] = "refused"
        return results

    results = benchmark(run)
    assert results["incompatible"] == "refused"
    if compatible_org is not None:
        assert results["compatible"].exporter == "org5"
    print(f"\nE5b: federated import refused for {incompatible_org} "
          f"(no policy with org5), granted for {compatible_org}")
