"""E1 — Figure 1: the groupware time-space matrix, populated and crossed.

Paper claim (section 2): CSCW systems divide into four quadrants by
interaction form (same/different time) and geography (same/different
place); open CSCW systems must let "remote/local cooperation ...
synchronous/asynchronous working" co-exist (section 3).

Regenerated figure: the populated matrix, plus a cross-quadrant flow —
each quadrant's application exchanges with every other through the
environment, which a closed world cannot do at all.
"""

from __future__ import annotations

from repro.apps.conferencing import ConferencingSystem
from repro.apps.meeting_room import MeetingRoom
from repro.apps.shared_editor import SharedEditor
from repro.apps.workflow import WorkflowSystem
from repro.environment.registry import QUADRANTS
from repro.sim.world import World

from bench_common import build_environment


def _matrix_world():
    world = World(seed=5)
    world.colocated(3)
    world.add_site("remote", ["r1", "r2"])
    env = build_environment(world, n_people=4, orgs=["upc"])
    meeting = MeetingRoom(world)
    editor = SharedEditor(world)
    conferencing = ConferencingSystem()
    workflow = WorkflowSystem()
    for app in (meeting, editor, conferencing, workflow):
        app.attach(env)
    return world, env, {
        "meeting-room": meeting,
        "shared-editor": editor,
        "conferencing": conferencing,
        "workflow": workflow,
    }


def test_e1_matrix_population_and_cross_quadrant_flow(benchmark):
    world, env, apps = _matrix_world()

    coverage = env.applications.coverage_matrix()
    print("\nE1: populated time-space matrix")
    for quadrant in QUADRANTS:
        print(f"  {quadrant:36s} -> {', '.join(coverage[quadrant]) or '-'}")
    # Shape: every quadrant has at least one application.
    for quadrant in QUADRANTS:
        assert coverage[quadrant], f"quadrant {quadrant} unpopulated"

    # Cross-quadrant exchanges: every ordered app pair delivers.
    app_names = sorted(apps)
    documents = {
        "meeting-room": {"text": "board item", "category": "c", "author": "p0"},
        "shared-editor": {"title": "doc", "lines": ["line"]},
        "conferencing": {"topic": "t", "entry": "e", "conference": "c", "author": "p0"},
        "workflow": {"form_name": "f", "slots": {"a": 1}},
    }

    def cross_quadrant_flow() -> int:
        delivered = 0
        for source in app_names:
            for target in app_names:
                if source == target:
                    continue
                outcome = env.exchange(
                    "p0", "p1", source, target, documents[source]
                )
                delivered += int(outcome.delivered)
        return delivered

    delivered = benchmark(cross_quadrant_flow)
    total = len(app_names) * (len(app_names) - 1)
    print(f"  cross-quadrant deliveries: {delivered}/{total}")
    assert delivered == total


def test_e1_quadrant_latency_shape(benchmark):
    """Co-located (LAN) fan-out must beat remote (WAN) fan-out on latency."""
    world = World(seed=6)
    world.colocated(2)              # ws1, ws2 in one room
    world.add_site("far-a", ["fa1"])
    world.add_site("far-b", ["fb1"])

    from repro.communication.realtime import RealTimeSession

    local = RealTimeSession(world, "local")
    local.join("a", "ws1", lambda s, b: None)
    local.join("b", "ws2", lambda s, b: None)
    remote = RealTimeSession(world, "remote")
    remote.join("c", "fa1", lambda s, b: None)
    remote.join("d", "fb1", lambda s, b: None)

    def measure() -> tuple[float, float]:
        start = world.now
        local.say("a", {"text": "ping"})
        world.run()
        local_latency = world.now - start
        start = world.now
        remote.say("c", {"text": "ping"})
        world.run()
        remote_latency = world.now - start
        return local_latency, remote_latency

    local_latency, remote_latency = benchmark(measure)
    print(f"\nE1b: same-place latency {local_latency * 1000:.2f} ms vs "
          f"different-place latency {remote_latency * 1000:.2f} ms "
          f"({remote_latency / local_latency:.0f}x)")
    assert remote_latency > local_latency * 10
