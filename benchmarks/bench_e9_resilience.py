"""E13 — resilience: breakers + failover vs bare retry under seeded chaos.

The paper's engineering-viewpoint concern is that an open CSCW federation
must keep functioning when parts of it misbehave.  This bench replays the
*same* seeded chaos schedule — a flapping WAN link between two domains,
with down-windows longer than the full gateway retry budget — against two
otherwise identical three-domain federations:

* **retry_only** — ``resilience=False``: gateways retry blindly until the
  budget is exhausted, then park the payload in the dead-letter queue;
* **resilient** — circuit breakers on every gateway, health-check probes
  feeding them, and failover routing through the healthy third domain
  when the direct link's breaker is open.

Reported per variant: delivered / degraded (delivered via an extra relay
hop) / dead-lettered / expired ratios and the p50/p99 *simulated*
exchange latency.  Full mode asserts the acceptance criterion: the
resilient variant strictly improves both delivered ratio and p99 latency.
Results land in ``BENCH_resilience.json`` (in ``BENCH_METRICS_DIR`` when
set, else the current directory).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e9_resilience.py [--quick]

``--quick`` (used by ``scripts/check.sh``; ``--smoke`` is accepted as an
alias) runs a small workload and skips the strict-improvement assertions
that need real iteration counts.
"""

from __future__ import annotations

import json
import os
import sys

from bench_common import synthetic_converter
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.obs import MetricsRegistry
from repro.resilience import ChaosRunner
from repro.sim.world import World

#: shared sim seed: both variants see the identical chaos schedule
SEED = 11

DOCUMENT = {"fmt0-title": "minutes", "fmt0-body": "we met"}


def build_federation(resilient: bool) -> Federation:
    """Three domains (the third exists to host failover), apps everywhere."""
    world = World(seed=SEED)
    assignment = {f"d{index}": [f"d{index}-p0", f"d{index}-p1"] for index in range(3)}
    federation = Federation.partition(
        world, assignment, metrics=MetricsRegistry(), resilience=resilient
    )
    for app_index in (0, 1):
        federation.register_application(
            AppDescriptor(
                name=f"app{app_index}",
                quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                converter=synthetic_converter(app_index),
            ),
            lambda person, document, info: None,
        )
    if resilient:
        federation.start_health_checks(period_s=1.0, timeout_s=0.5)
    return federation


def schedule_chaos(federation: Federation, down_s: float) -> ChaosRunner:
    """The seeded schedule: one long d0-d1 outage, several retry budgets wide.

    Both variants lose the relay already in flight when the link goes
    dark — no breaker can un-launch it.  What differs is everything
    after: retry-only burns a full budget per exchange for the rest of
    the window, while the resilient variant's (now open) breaker routes
    around the outage via d2.
    """
    chaos = ChaosRunner(federation.world, name="bench-e13")
    chaos.flap_link(
        federation.domain("d0").node,
        federation.domain("d1").node,
        start=5.0,
        down_s=down_s,   # several times the 7.5s gateway retry budget
        up_s=5.0,
        flaps=1,
    )
    return chaos


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of *values* (q in [0, 1])."""
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def run_variant(resilient: bool, iterations: int, down_s: float) -> dict:
    """Push the d0->d1 stream through one variant under the chaos schedule."""
    federation = build_federation(resilient)
    schedule_chaos(federation, down_s=down_s)
    world = federation.world
    outcomes = []
    for index in range(iterations):
        outcomes.append(
            federation.federated_exchange(
                f"d0-p{index % 2}", f"d1-p{index % 2}", "app0", "app1", DOCUMENT
            )
        )
        world.run_for(0.8)
    delivered = [o for o in outcomes if o.delivered]
    degraded = [
        o for o in delivered if any(hop.role == "relay" for hop in o.hops)
    ]
    latencies = [o.latency_s for o in outcomes]
    counters = federation._metrics.snapshot()["counters"]
    return {
        "variant": "resilient" if resilient else "retry_only",
        "iterations": iterations,
        "delivered_ratio": round(len(delivered) / iterations, 4),
        "degraded_ratio": round(len(degraded) / iterations, 4),
        "dead_letter_ratio": round(
            sum(1 for o in outcomes if o.reason_code == "gateway-dead-letter")
            / iterations,
            4,
        ),
        "expired_ratio": round(
            sum(1 for o in outcomes if o.reason_code == "deadline-exceeded")
            / iterations,
            4,
        ),
        "p50_sim_latency_s": round(percentile(latencies, 0.50), 4),
        "p99_sim_latency_s": round(percentile(latencies, 0.99), 4),
        "failovers": counters.get("env.federation.failover", 0),
        "breaker_counters": {
            key: counters[key]
            for key in sorted(counters)
            if key.startswith("resilience.breaker.")
        },
    }


def run_bench(iterations: int, quick: bool, down_s: float = 32.0) -> dict:
    """Both variants against the same chaos; return the result blob."""
    retry_only = run_variant(resilient=False, iterations=iterations, down_s=down_s)
    resilient = run_variant(resilient=True, iterations=iterations, down_s=down_s)
    return {
        "bench": "resilience",
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "outage_s": down_s,
        "variants": [retry_only, resilient],
        "comparison": {
            "delivered_gain": round(
                resilient["delivered_ratio"] - retry_only["delivered_ratio"], 4
            ),
            "p99_speedup": round(
                retry_only["p99_sim_latency_s"]
                / max(resilient["p99_sim_latency_s"], 1e-9),
                2,
            ),
        },
    }


def emit(blob: dict) -> str:
    """Write ``BENCH_resilience.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_resilience.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print(f"\nE13: resilience under seeded chaos ({blob['mode']} mode, "
          f"seed {blob['seed']})")
    for variant in blob["variants"]:
        print(f"  {variant['variant']:>10}: "
              f"delivered {variant['delivered_ratio'] * 100:5.1f}% "
              f"(degraded {variant['degraded_ratio'] * 100:5.1f}%)  "
              f"dead-lettered {variant['dead_letter_ratio'] * 100:5.1f}%  "
              f"p50 {variant['p50_sim_latency_s'] * 1000:7.1f} ms  "
              f"p99 {variant['p99_sim_latency_s'] * 1000:7.1f} ms  "
              f"failovers {variant['failovers']}")
    comparison = blob["comparison"]
    print(f"  breakers+failover: +{comparison['delivered_gain'] * 100:.1f} "
          f"points delivered, p99 {comparison['p99_speedup']:.2f}x faster")


def main(argv: list[str]) -> int:
    quick = "--quick" in argv or "--smoke" in argv
    iterations = 16 if quick else 64
    blob = run_bench(iterations, quick, down_s=12.0 if quick else 32.0)
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    if not quick:
        retry_only, resilient = blob["variants"]
        # acceptance criterion: under the same seeded chaos, breakers +
        # failover strictly improve delivered ratio AND tail latency
        assert resilient["delivered_ratio"] > retry_only["delivered_ratio"], (
            f"resilient delivered {resilient['delivered_ratio']} is not "
            f"better than retry-only {retry_only['delivered_ratio']}"
        )
        assert resilient["p99_sim_latency_s"] < retry_only["p99_sim_latency_s"], (
            f"resilient p99 {resilient['p99_sim_latency_s']}s is not "
            f"better than retry-only {retry_only['p99_sim_latency_s']}s"
        )
        assert resilient["failovers"] > 0, "failover path never exercised"
        print("  PASS: breakers+failover strictly improve delivery and p99")
    return 0


def test_resilience_bench_smoke():
    """Pytest entry point: the variant machinery on a tiny workload."""
    blob = run_bench(12, quick=True, down_s=12.0)
    retry_only, resilient = blob["variants"]
    assert retry_only["variant"] == "retry_only"
    assert resilient["variant"] == "resilient"
    # both variants conserve outcomes: every exchange is accounted for
    for variant in blob["variants"]:
        assert variant["delivered_ratio"] + variant["dead_letter_ratio"] + \
            variant["expired_ratio"] >= 0.99
    assert resilient["delivered_ratio"] >= retry_only["delivered_ratio"]
    assert resilient["breaker_counters"], "breaker metrics missing"
    assert not retry_only["breaker_counters"]


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
