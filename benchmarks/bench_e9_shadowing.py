"""E9 (ablation) — directory shadowing: staleness vs pull period.

Paper claim (section 4): information sharing needs "support for the
distribution of information across a number of machines over different
sites" with "smooth integration" of the X.500 directory.  Shadowing is
the mechanism; its one tuning knob is the pull period, trading update
propagation delay (staleness) against replication traffic.

Regenerated curve: for pull periods of 5/20/80 s, measured mean
staleness of writes at the shadow and the number of pulls spent —
staleness grows with the period while traffic shrinks (the trade-off a
deployer must pick on).
"""

from __future__ import annotations

from repro.directory.dsa import DirectoryServiceAgent
from repro.directory.replication import ShadowingAgreement
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.sim.world import World


def _deploy(period_s: float):
    world = World(seed=21)
    world.add_site("hq", ["master-node"])
    world.add_site("branch", ["shadow-node"])
    factory = BindingFactory(world.network)
    master_capsule = Capsule(world.network, "master-node")
    shadow_capsule = Capsule(world.network, "shadow-node")
    factory.register_capsule(master_capsule)
    factory.register_capsule(shadow_capsule)
    master = DirectoryServiceAgent("master")
    shadow = DirectoryServiceAgent("shadow")
    master_ref = master.deploy(master_capsule)
    shadow.deploy(shadow_capsule)
    agreement = ShadowingAgreement(
        world, factory, shadow, "shadow-node", master_ref, period_s=period_s
    ).start()
    master.dit.add("o=Consortium", {"objectclass": ["organization"]})
    return world, master, shadow, agreement


def _staleness_run(period_s: float) -> tuple[float, int]:
    """Write at t=10,20,...,100; measure when each appears at the shadow."""
    world, master, shadow, agreement = _deploy(period_s)
    write_times: dict[str, float] = {}
    observed: dict[str, float] = {}

    def write(index: int) -> None:
        name = f"cn=entry{index},o=Consortium"
        master.dit.add(name, {"objectclass": ["device"]})
        write_times[name] = world.now

    for index in range(10):
        world.engine.schedule_at(10.0 * (index + 1), lambda i=index: write(i))

    def probe() -> None:
        for name, written in write_times.items():
            if name not in observed and shadow.dit.exists(name):
                observed[name] = world.now

    from repro.sim.engine import PeriodicTask

    PeriodicTask(world.engine, 0.5, probe).start()
    world.engine.run_until(200.0)
    agreement.stop()
    stale = [observed[n] - write_times[n] for n in observed]
    assert len(stale) == 10, "every write must eventually reach the shadow"
    return sum(stale) / len(stale), agreement.pulls


def test_e9_staleness_vs_period(benchmark):
    periods = [5.0, 20.0, 80.0]
    rows = [(p, *_staleness_run(p)) for p in periods]
    print("\nE9: shadowing pull period vs staleness vs traffic (200 s run)")
    print(f"{'period':>8} {'mean staleness':>15} {'pulls':>6}")
    for period, staleness, pulls in rows:
        print(f"{period:>7.0f}s {staleness:>13.1f}s {pulls:>6}")
    # Shape: staleness increases with the period; pull traffic decreases.
    stalenesses = [r[1] for r in rows]
    pulls = [r[2] for r in rows]
    assert stalenesses == sorted(stalenesses)
    assert pulls == sorted(pulls, reverse=True)
    # Staleness is bounded by roughly one period (plus transfer time).
    for period, staleness, _ in rows:
        assert staleness <= period + 1.0

    benchmark(lambda: _staleness_run(20.0))
