"""E14 — observability: connected traces under chaos, at bounded cost.

The management/monitoring concern behind ISSUE 5: distributed tracing is
only trustworthy if (a) a federated exchange yields **one** connected
trace even when breakers reroute it through an intermediate domain, and
(b) leaving the full observability stack on — tracer, event log, SLO
engine — does not distort the system it watches.

This bench replays the E13 chaos scenario (seed 11, three domains, a
flapping d0-d1 WAN link wider than the gateway retry budget, breakers +
health checks + failover) twice:

* **obs_off** — the null tracer/event log: the production default,
* **obs_on** — a real :class:`~repro.obs.tracing.Tracer`, a bounded
  :class:`~repro.obs.events.EventLog`, and an
  :class:`~repro.obs.slo.SLOEngine` sampling delivered-ratio and
  relay-latency objectives every simulated second.

Reported: per-variant wall time (simulated results are identical by
construction — same seed, and tracing never touches the sim clock),
trace connectivity from the :class:`~repro.obs.analyze.TraceAnalyzer`,
critical-path coverage for the failover traces, SLO verdicts, and event
counts.  Full mode asserts the acceptance criteria: every trace is
connected, failover critical paths cover >= 95% of the end-to-end
duration, the Chrome export parses back, and the obs-on wall overhead
stays under 15%.  Results land in ``BENCH_obs.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e10_observability.py [--quick]
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import sys
import time

from bench_common import synthetic_converter
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.obs import (
    EventLog,
    MetricsRegistry,
    SLOEngine,
    TraceAnalyzer,
    Tracer,
    chrome_trace_json,
)
from repro.resilience import ChaosRunner
from repro.sim.world import World

#: E13's seed: both variants replay the identical chaos schedule
SEED = 11

DOCUMENT = {"fmt0-title": "minutes", "fmt0-body": "we met"}

#: wall overhead budget for the full observability stack
OVERHEAD_BUDGET = 0.15


def build_federation(traced: bool) -> tuple[Federation, Tracer | None, EventLog | None]:
    """The E13 resilient federation, optionally with full observability."""
    world = World(seed=SEED)
    tracer = Tracer() if traced else None
    events = EventLog(capacity=4096) if traced else None
    assignment = {f"d{index}": [f"d{index}-p0", f"d{index}-p1"] for index in range(3)}
    federation = Federation.partition(
        world,
        assignment,
        metrics=MetricsRegistry(),
        resilience=True,
        tracer=tracer,
        events=events,
    )
    for app_index in (0, 1):
        federation.register_application(
            AppDescriptor(
                name=f"app{app_index}",
                quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                converter=synthetic_converter(app_index),
            ),
            lambda person, document, info: None,
        )
    federation.start_health_checks(period_s=1.0, timeout_s=0.5)
    return federation, tracer, events


def schedule_chaos(federation: Federation, down_s: float) -> ChaosRunner:
    """E13's schedule: one d0-d1 outage wider than the retry budget."""
    chaos = ChaosRunner(federation.world, name="bench-e14")
    chaos.flap_link(
        federation.domain("d0").node,
        federation.domain("d1").node,
        start=5.0,
        down_s=down_s,
        up_s=5.0,
        flaps=1,
    )
    return chaos


def attach_slo(federation: Federation, events: EventLog) -> SLOEngine:
    """Delivered-ratio and relay-latency objectives over 30 s windows.

    Sampling every 2.5 simulated seconds gives 12 samples per window —
    plenty of resolution, at a quarter of the per-second sampling cost.
    """
    slo = SLOEngine(
        federation.world.engine, federation._metrics, events=events,
        sample_period_s=2.5,
    )
    slo.add_ratio(
        "delivered",
        "env.federation.delivered",
        "env.federation.exchanges",
        target=0.95,
        window_s=30.0,
    )
    slo.add_latency(
        "relay-p99",
        "env.federation.relay_latency_s",
        threshold_s=5.0,
        quantile=0.99,
        window_s=30.0,
    )
    return slo.start()


def run_variant(traced: bool, iterations: int, down_s: float) -> dict:
    """One replay of the chaos scenario; returns results + raw handles."""
    federation, tracer, events = build_federation(traced)
    schedule_chaos(federation, down_s=down_s)
    slo = attach_slo(federation, events) if traced else None
    world = federation.world
    gc.collect()  # start both variants from the same collector state
    started = time.perf_counter()
    outcomes = []
    for index in range(iterations):
        outcomes.append(
            federation.federated_exchange(
                f"d0-p{index % 2}", f"d1-p{index % 2}", "app0", "app1", DOCUMENT
            )
        )
        world.run_for(0.8)
    wall_s = time.perf_counter() - started
    delivered = sum(1 for outcome in outcomes if outcome.delivered)
    failovers = sum(
        1
        for outcome in outcomes
        if any(hop.role == "relay" for hop in outcome.hops)
    )
    result = {
        "variant": "obs_on" if traced else "obs_off",
        "iterations": iterations,
        "wall_s": round(wall_s, 4),
        "delivered_ratio": round(delivered / iterations, 4),
        "failovers": failovers,
        "sim_end_s": round(world.now, 4),
    }
    return {
        "result": result,
        "outcomes": outcomes,
        "tracer": tracer,
        "events": events,
        "slo": slo,
    }


def analyse(run: dict) -> dict:
    """Trace connectivity, coverage, events, and SLO verdicts (obs_on)."""
    tracer: Tracer = run["tracer"]
    events: EventLog = run["events"]
    analyzer = TraceAnalyzer.from_tracers(tracer)
    summary = analyzer.summary()
    failover_traces = [
        trace_id
        for trace_id in analyzer.trace_ids()
        if any(
            record["name"] == "federation.forward"
            for record in analyzer.spans(trace_id)
        )
    ]
    coverages = [
        round(analyzer.critical_path_coverage(trace_id), 4)
        for trace_id in failover_traces
        if analyzer.is_connected(trace_id)
    ]
    # outcome trace ids must map 1:1 onto recorded root spans
    roots = {
        span.trace_id
        for span in tracer.finished()
        if span.name == "federation.exchange"
    }
    outcome_ids = {
        outcome.outcome.trace_id
        for outcome in run["outcomes"]
        if outcome.outcome is not None and outcome.outcome.trace_id
    }
    return {
        "traces": summary["traces"],
        "spans": summary["spans"],
        "connected": summary["connected"],
        "disconnected": summary["disconnected"],
        "failover_traces": len(failover_traces),
        "failover_coverage_min": min(coverages) if coverages else None,
        "outcome_ids_without_root": sorted(outcome_ids - roots),
        "top_slowest": analyzer.top_slowest(3),
        "event_kinds": events.kinds(),
        "events_dropped": events.dropped,
        "slo": run["slo"].evaluate(),
    }


def run_bench(iterations: int, quick: bool, down_s: float, repeats: int) -> dict:
    """Both variants; overhead is the median of per-pair comparisons.

    Wall noise on a shared machine has two shapes, and the measurement
    cancels both: *drift* (the box speeds up or slows down over the
    bench's lifetime) is cancelled by computing overhead within each
    back-to-back pair rather than between pooled medians, and *order
    bias* (whichever variant runs second inherits warmed caches) is
    cancelled by alternating which variant leads each pair.  A discarded
    warm-up pair keeps first-run import/allocator cost out of the
    statistics, and the median of the per-pair overheads shrugs off the
    occasional descheduled outlier.
    """
    baseline = traced = None
    off_walls, on_walls, overheads = [], [], []
    for repeat in range(-1, repeats):  # repeat -1 is the discarded warm-up
        pair = {}
        order = (False, True) if repeat % 2 == 0 else (True, False)
        for is_traced in order:
            pair[is_traced] = run_variant(
                traced=is_traced, iterations=iterations, down_s=down_s
            )
        if repeat < 0:
            continue
        baseline, traced = pair[False], pair[True]
        off = baseline["result"]["wall_s"]
        on = traced["result"]["wall_s"]
        off_walls.append(off)
        on_walls.append(on)
        overheads.append((on - off) / max(off, 1e-9))
    baseline["result"]["wall_s"] = round(statistics.median(off_walls), 4)
    traced["result"]["wall_s"] = round(statistics.median(on_walls), 4)
    overhead = statistics.median(overheads)
    # the Chrome export must parse back before anyone feeds it a viewer
    chrome = json.loads(chrome_trace_json(traced["tracer"].finished()))
    return {
        "bench": "observability",
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "outage_s": down_s,
        "variants": [baseline["result"], traced["result"]],
        "traces": analyse(traced),
        "chrome_events": len(chrome["traceEvents"]),
        "overhead": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
    }


def emit(blob: dict) -> str:
    """Write ``BENCH_obs.json``; return the path."""
    directory = os.environ.get("BENCH_METRICS_DIR") or "."
    path = os.path.join(directory, "BENCH_obs.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(blob, indent=2, sort_keys=True) + "\n")
    return path


def report(blob: dict) -> None:
    print(f"\nE14: observability under seeded chaos ({blob['mode']} mode, "
          f"seed {blob['seed']})")
    for variant in blob["variants"]:
        print(f"  {variant['variant']:>8}: wall {variant['wall_s'] * 1000:8.1f} ms  "
              f"delivered {variant['delivered_ratio'] * 100:5.1f}%  "
              f"failovers {variant['failovers']}")
    traces = blob["traces"]
    print(f"  traces: {traces['connected']}/{traces['traces']} connected, "
          f"{traces['spans']} spans, {traces['failover_traces']} failover "
          f"(min coverage {traces['failover_coverage_min']})")
    print(f"  events: {traces['event_kinds']}")
    slo_line = ", ".join(
        f"{name} {'met' if status['met'] else 'MISSED'} "
        f"({status['value']})"
        for name, status in traces["slo"].items()
    )
    print(f"  slo: {slo_line}")
    print(f"  obs-on wall overhead: {blob['overhead'] * 100:+.1f}% "
          f"(budget {blob['overhead_budget'] * 100:.0f}%)")


def check(blob: dict, strict: bool) -> None:
    """The acceptance criteria; overhead is only asserted in full mode."""
    traces = blob["traces"]
    assert traces["traces"] > 0, "no traces recorded"
    assert traces["disconnected"] == 0, (
        f"{traces['disconnected']} traces lost their root across a relay"
    )
    assert traces["failover_traces"] > 0, "failover path never exercised"
    assert traces["failover_coverage_min"] >= 0.95, (
        f"critical path explains only {traces['failover_coverage_min']} "
        "of the end-to-end duration"
    )
    assert traces["outcome_ids_without_root"] == [], (
        "outcomes returned trace ids with no recorded origin span: "
        f"{traces['outcome_ids_without_root']}"
    )
    assert blob["chrome_events"] > traces["spans"], (
        "chrome export must carry every span plus process metadata"
    )
    if strict:
        assert blob["overhead"] <= blob["overhead_budget"], (
            f"full observability costs {blob['overhead'] * 100:.1f}% wall, "
            f"over the {blob['overhead_budget'] * 100:.0f}% budget"
        )


def main(argv: list[str]) -> int:
    quick = "--quick" in argv or "--smoke" in argv
    # full mode favours many modest pairs over few long ones: scheduler
    # stalls hit whole pairs, so the median needs pair *count*, not pair
    # length, to shrug them off
    iterations = 16 if quick else 256
    blob = run_bench(
        iterations,
        quick,
        down_s=12.0 if quick else 32.0,
        repeats=1 if quick else 11,
    )
    report(blob)
    path = emit(blob)
    print(f"  wrote {path}")
    check(blob, strict=not quick)
    if not quick:
        print("  PASS: connected traces, >=95% coverage, overhead in budget")
    return 0


def test_observability_bench_smoke():
    """Pytest entry point: the variant machinery on a tiny workload."""
    blob = run_bench(10, quick=True, down_s=12.0, repeats=1)
    check(blob, strict=False)
    assert [variant["variant"] for variant in blob["variants"]] == [
        "obs_off", "obs_on",
    ]
    # same seed, same sim: observability must not change the outcome
    assert (
        blob["variants"][0]["delivered_ratio"]
        == blob["variants"][1]["delivered_ratio"]
    )
    assert blob["variants"][0]["sim_end_s"] == blob["variants"][1]["sim_end_s"]


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
