#!/usr/bin/env python3
"""Monitoring a cooperative programme: awareness + analysis services.

Runs a multi-activity project on the environment, then answers the
questions the paper's activity/communication models exist for: who is
working with whom, which activities are coupled and cannot be managed in
isolation, where the critical path runs, and how communication splits
across modes and organisations.

Run:  python examples/project_monitoring.py
"""

from repro.activity.dependencies import BEFORE, SHARES_INFORMATION, SHARES_RESOURCE
from repro.analysis.activity_network import (
    coupling_clusters,
    critical_path,
    key_collaborators,
)
from repro.analysis.communication import (
    cross_organisation_flows,
    reciprocity,
    summarize,
    top_talkers,
)
from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.awareness import AwarenessService
from repro.environment.environment import CSCWEnvironment
from repro.org.model import Organisation, Person
from repro.sim.world import World


def main() -> None:
    world = World(seed=17)
    world.add_site("bcn", ["w-ana", "w-joan"])
    world.add_site("bonn", ["w-wolf", "w-heinz"])
    env = CSCWEnvironment(world)

    # -- two organisations, open policies ------------------------------------
    upc = Organisation("upc", "UPC")
    gmd = Organisation("gmd", "GMD")
    for org, person_id, node in [
        (upc, "ana", "w-ana"), (upc, "joan", "w-joan"),
        (gmd, "wolf", "w-wolf"), (gmd, "heinz", "w-heinz"),
    ]:
        org.add_person(Person(person_id, person_id.title(), org.org_id))
        env.register_person(Communicator(person_id, node))
    env.knowledge_base.add_organisation(upc)
    env.knowledge_base.add_organisation(gmd)
    env.knowledge_base.policies.declare("upc", "gmd", {"*"}, symmetric=True)

    ConferencingSystem().attach(env, exporter_org="upc")
    MessageSystem().attach(env, exporter_org="gmd")

    # -- the activity programme ------------------------------------------------
    env.create_activity("survey", "requirements survey",
                        members={"ana": "lead", "wolf": "m"})
    env.create_activity("draft", "draft standard",
                        members={"ana": "editor", "joan": "m", "wolf": "m"})
    env.create_activity("review", "external review",
                        members={"heinz": "reviewer", "joan": "m"})
    env.create_activity("publish", "publish standard", members={"ana": "m"})
    env.dependencies.add(BEFORE, "survey", "draft")
    env.dependencies.add(BEFORE, "draft", "review")
    env.dependencies.add(BEFORE, "review", "publish")
    env.dependencies.add(SHARES_INFORMATION, "draft", "review", annotation="draft-doc")
    env.dependencies.add(SHARES_RESOURCE, "survey", "review", annotation="lab")

    # -- some cooperative traffic -------------------------------------------------
    document = {"topic": "draft", "entry": "please comment", "conference": "std",
                "author": "ana"}
    env.exchange("ana", "wolf", "conferencing", "message-system", document,
                 activity_id="draft")
    env.exchange("wolf", "ana", "message-system", "conferencing",
                 {"subject": "re: draft", "text": "comments attached",
                  "template": "plain", "fields": {}}, activity_id="draft")
    env.person_leaves("heinz")
    env.exchange("joan", "heinz", "conferencing", "message-system", document,
                 activity_id="review")

    # -- awareness queries ----------------------------------------------------------
    awareness = AwarenessService(env)
    print("awareness for ana:")
    print(f"  my activities:        {awareness.my_activities('ana')}")
    print(f"  related activities:   {awareness.related_activities('ana')}")
    print(f"  reachable colleagues: {awareness.reachable_now('ana')}")
    print(f"  around 'draft-doc':   {awareness.who_works_with('draft-doc')}")

    # -- analysis --------------------------------------------------------------------
    durations = {"survey": 5.0, "draft": 20.0, "review": 10.0, "publish": 2.0}
    path, total = critical_path(env.dependencies, durations)
    clusters = coupling_clusters(env.dependencies,
                                 [a.activity_id for a in env.activities.all()])
    summary = summarize(env.communication_log)
    print("\nanalysis:")
    print(f"  critical path:     {' -> '.join(path)}  ({total:.0f} days)")
    print(f"  coupling clusters: {sorted(sorted(c) for c in clusters)}")
    print(f"  key collaborators: {key_collaborators(env.activities, limit=2)}")
    print(f"  traffic:           {summary.exchanges} exchanges, "
          f"{summary.bytes_total} bytes, "
          f"{summary.synchronous_share:.0%} synchronous")
    print(f"  top talkers:       {top_talkers(env.communication_log, limit=2)}")
    print(f"  cross-org flows:   {cross_organisation_flows(env.communication_log)}")
    print(f"  reciprocity:       {reciprocity(env.communication_log):.2f}")
    print(f"  queued for heinz (absent): {env.pending_for('heinz')}")
    flushed = env.person_arrives("heinz")
    print(f"  flushed when heinz returned: {flushed}")

    # -- the administrator's one-page report ------------------------------------
    from repro.analysis.report import environment_report

    print()
    print(environment_report(env))


if __name__ == "__main__":
    main()
