#!/usr/bin/env python3
"""Two administrative domains cooperating through a federation.

The paper's progression argument: open CSCW requires cooperation
*across* organisations, which in ODP terms means crossing an
administrative domain boundary.  This demo runs two org units — UPC
(Barcelona) and GMD (Bonn) — as separate CSCW environments on one sim
engine, federated by `repro.federation`:

* each unit keeps its own naming domain, directory (DSA), MTA and
  trader; the federation wires naming federation, trader links and
  directory shadowing between them,
* one shared activity ("Joint report") spans both units,
* a document authored in UPC's editor is exchanged to GMD's reviewer
  tool: resolved via federated naming, relayed through the inter-domain
  gateway over a WAN link, translated at the target — the printed hop
  trace shows where every simulated millisecond went,
* severing the link shows the store-and-forward side: retries, a dead
  letter, and redelivery after the link heals.

Run:  PYTHONPATH=src python examples/federation_demo.py
"""

from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.environment.transparency import TransparencyProfile
from repro.federation import Federation
from repro.information.interchange import FormatConverter, make_common
from repro.obs.metrics import MetricsRegistry
from repro.sim.world import World

QUADRANT = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]


def editor_converter() -> FormatConverter:
    return FormatConverter(
        "editor-ml",
        lambda doc: make_common("report", doc["heading"], doc["text"]),
        lambda common: {"heading": common["title"], "text": common["body"]},
    )


def reviewer_converter() -> FormatConverter:
    return FormatConverter(
        "review-form",
        lambda doc: make_common("report", doc["subject"], doc["content"]),
        lambda common: {"subject": common["title"], "content": common["body"]},
    )


def print_hops(outcome) -> None:
    print(f"    outcome: delivered={outcome.delivered} "
          f"mode={outcome.mode} reason={outcome.outcome.reason!r}")
    print(f"    gateway attempts: {outcome.attempts}, "
          f"simulated round trip: {outcome.latency_s * 1000:.1f} ms")
    for hop in outcome.hops:
        print(f"      [{hop.time * 1000:8.1f} ms] {hop.role:<8} @ {hop.domain}")


def main() -> None:
    world = World(seed=42)
    metrics = MetricsRegistry()
    federation = Federation.partition(
        world,
        {"upc": ["ana", "joan"], "gmd": ["uta", "klaus"]},
        metrics=metrics,
    )

    print("== Federation: two org units on one engine ==")
    for domain in federation.domains():
        print(f"  domain {domain.name}: gateway node {domain.node}, "
              f"naming federated with {domain.naming.federated_domains()}")

    # One integration per application serves the whole federation.
    inbox = []
    federation.register_application(
        AppDescriptor(name="editor", quadrants=QUADRANT, converter=editor_converter()),
        lambda person, doc, info: None,
    )
    federation.register_application(
        AppDescriptor(name="reviewer", quadrants=QUADRANT, converter=reviewer_converter()),
        lambda person, doc, info: inbox.append((person, doc)),
    )

    # One shared activity spanning both units.
    federation.create_shared_activity(
        "joint-report", "Joint report",
        {"ana": "author", "uta": "reviewer"},
    )

    print("\n== Cross-domain exchange: ana@upc -> uta@gmd ==")
    draft = {"heading": "Joint report draft", "text": "Sections 1-3 attached."}
    outcome = federation.federated_exchange(
        "ana", "uta", "editor", "reviewer", draft, activity_id="joint-report"
    )
    print_hops(outcome)
    person, received = inbox[-1]
    print(f"    uta's reviewer tool received: {received}")

    print("\n== Transparency still enforced across the boundary ==")
    opaque = federation.federated_exchange(
        "ana", "uta", "editor", "reviewer", draft,
        activity_id="joint-report",
        profile=TransparencyProfile.all_on().without("organisation"),
    )
    print(f"    organisation transparency off -> "
          f"delivered={opaque.delivered}, reason_code={opaque.reason_code}")

    print("\n== Severed link: store-and-forward with a dead letter ==")
    world.network.node("gw-gmd").crash()
    parked = federation.federated_exchange(
        "ana", "uta", "editor", "reviewer",
        {"heading": "Section 4", "text": "Written during the outage."},
        activity_id="joint-report",
    )
    print(f"    link down -> delivered={parked.delivered}, "
          f"reason_code={parked.reason_code}, attempts={parked.attempts}")
    gateway = federation.domain("upc").gateway_to("gmd")
    print(f"    gateway stats: {gateway.stats()}")
    world.network.node("gw-gmd").recover()
    redriven = gateway.redrive()
    world.run_for(5.0)
    print(f"    link healed, {redriven} dead letter redriven -> "
          f"uta received {len(inbox)} documents in total")

    print("\n== Federation counters ==")
    counters = metrics.snapshot()["counters"]
    for key in sorted(counters):
        if key.startswith(("env.federation.", "gateway.")):
            print(f"    {key} = {counters[key]}")


if __name__ == "__main__":
    main()
