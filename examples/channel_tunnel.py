#!/usr/bin/env python3
"""The paper's running example: managing a large engineering project.

Section 3: "the management of a large scale engineering project
(e.g. building the Channel Tunnel) can be undertaken as a cooperative
activity.  The overall task may involve an on-going programme of
sub-activities such as team progress meetings, the joint production of
reports, monitoring and interviews as well as more ad-hoc, informal
communication between project members."

This example builds that programme on the environment's activity
services: interrelated activities with temporal dependencies and shared
resources, dependency-aware scheduling, responsibility negotiation,
progress monitoring with deadline alerts, and expertise-based staffing.

Run:  python examples/channel_tunnel.py
"""

from repro.activity.dependencies import BEFORE, SHARES_INFORMATION, SHARES_RESOURCE
from repro.activity.scheduler import ActivityMonitor
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.expertise.matching import SkillRequirement, staff_activity
from repro.org.model import Organisation, Person, Resource, ResourceKind
from repro.sim.world import World


def main() -> None:
    world = World(seed=42)
    world.add_site("site-uk", ["ws-tom", "ws-mary"])
    world.add_site("site-fr", ["ws-pierre", "ws-claire"])
    env = CSCWEnvironment(world)

    # -- organisations and people -----------------------------------------
    consortium = Organisation("tml", "TransManche Link")
    people = {
        "tom": "Tom Rodden", "mary": "Mary Shaw",
        "pierre": "Pierre Martin", "claire": "Claire Dubois",
    }
    for person_id, name in people.items():
        consortium.add_person(Person(person_id, name, "tml"))
    boring_machine = consortium.add_resource(
        Resource("tbm-1", "Tunnel Boring Machine 1", "tml",
                 ResourceKind.EQUIPMENT, capacity=1)
    )
    env.knowledge_base.add_organisation(consortium)
    for person_id, node in [("tom", "ws-tom"), ("mary", "ws-mary"),
                            ("pierre", "ws-pierre"), ("claire", "ws-claire")]:
        env.register_person(Communicator(person_id, node))

    # -- expertise-based staffing ------------------------------------------
    env.expertise.profile("tom").add_capability("geology", 4)
    env.expertise.profile("mary").add_capability("reporting", 5)
    env.expertise.profile("pierre").add_capability("boring", 5)
    env.expertise.profile("claire").add_capability("geology", 5)
    assignments = staff_activity(
        env.expertise,
        [SkillRequirement("geology", 4), SkillRequirement("boring", 4),
         SkillRequirement("reporting", 4)],
    )
    print(f"staffing: {assignments}")

    # -- the activity programme --------------------------------------------
    survey = env.create_activity("survey", "geological survey",
                                 members={assignments["geology"]: "lead"},
                                 deadline=500.0)
    boring = env.create_activity("boring", "tunnel boring",
                                 members={assignments["boring"]: "lead"})
    env.create_activity("progress-meetings", "team progress meetings",
                        members={"tom": "chair", "mary": "minutes"})
    report = env.create_activity("joint-report", "joint production of report",
                                 members={assignments["reporting"]: "editor"},
                                 deadline=900.0)
    env.dependencies.add(BEFORE, "survey", "boring")
    env.dependencies.add(BEFORE, "boring", "joint-report")
    env.dependencies.add(SHARES_RESOURCE, "survey", "boring", annotation="tbm-1")
    env.dependencies.add(SHARES_INFORMATION, "progress-meetings", "joint-report")

    print(f"planned order: {env.scheduler.plan(['survey', 'boring', 'joint-report'])}")

    # -- shared resource coordination ----------------------------------------
    env.resources.register(boring_machine)
    env.resources.claim("tbm-1", "survey")
    queued_immediately = env.resources.claim("tbm-1", "boring")
    print(f"boring got TBM immediately? {queued_immediately} (queued behind survey)")

    # -- negotiation of responsibility ------------------------------------------
    negotiation = env.negotiations.propose_responsibility(
        "joint-report", initiator="tom", responder="mary", responsible="mary"
    )
    negotiation.counter("mary", {"responsible": "tom"})
    negotiation.accept("tom")
    env.negotiations.settle(negotiation.negotiation_id)
    print(f"report responsibility: {env.negotiations.responsible_for('joint-report')}")

    # -- run the programme on simulated time --------------------------------------
    alerts = []
    env.bus.subscribe("activity", lambda e: alerts.append(e.payload)
                      if e.topic.endswith("/alert") else None)
    monitor = ActivityMonitor(world, env.activities, env.bus,
                              period_s=100.0, stall_after_s=10_000.0).start()

    # Starts every activity without pending predecessors: survey,
    # progress-meetings (and not boring / joint-report, which wait).
    env.scheduler.start_ready(world.now)
    world.run_for(300.0)
    env.activities.get("survey").report_progress(0.8, world.now)
    world.run_for(300.0)                           # survey misses its 500 deadline
    env.scheduler.complete("survey", world.now)    # unblocks boring
    env.resources.release("tbm-1", "survey")       # TBM passes to boring
    print(f"TBM now held by: {env.resources.holders_of('tbm-1')}")
    world.run_for(200.0)
    env.scheduler.complete("boring", world.now)    # unblocks joint-report
    env.activities.get("joint-report").report_progress(0.5, world.now)
    world.run_for(400.0)
    monitor.stop()

    overdue = {a["activity"] for a in alerts if a["reason"] == "overdue"}
    print(f"overdue alerts raised for: {sorted(overdue)}")
    print(f"activity states: "
          f"{[(a.activity_id, a.status.value) for a in env.activities.all()]}")


if __name__ == "__main__":
    main()
