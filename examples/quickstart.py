#!/usr/bin/env python3
"""Quickstart: an open CSCW environment in ~60 lines.

Two organisations (UPC in Barcelona, GMD in Bonn), two different
groupware applications (COM-style conferencing and an Object-Lens-style
message system), one shared CSCW environment.  Ana posts from her
conferencing tool; Wolf receives a typed memo in his message system —
across organisations, across formats, with no pairwise gateway.

Run:  python examples/quickstart.py
"""

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World


def main() -> None:
    # 1. A simulated deployment: two sites, one workstation each.
    world = World(seed=7)
    world.add_site("barcelona", ["ws-ana"])
    world.add_site("bonn", ["ws-wolf"])

    # 2. The CSCW environment with its organisational knowledge base.
    env = CSCWEnvironment(world)
    upc = Organisation("upc", "UPC")
    upc.add_person(Person("ana", "Ana Lopez", "upc"))
    gmd = Organisation("gmd", "GMD")
    gmd.add_person(Person("wolf", "Wolfgang Prinz", "gmd"))
    env.knowledge_base.add_organisation(upc)
    env.knowledge_base.add_organisation(gmd)
    env.knowledge_base.policies.declare(
        "upc", "gmd", {INTERACTION_MESSAGE}, symmetric=True
    )
    env.register_person(Communicator("ana", "ws-ana"))
    env.register_person(Communicator("wolf", "ws-wolf"))

    # 3. Two heterogeneous applications integrate with ONE step each.
    conferencing = ConferencingSystem()
    messages = MessageSystem()
    conferencing.attach(env, exporter_org="upc")
    messages.attach(env, exporter_org="gmd")

    # 4. Cross-application, cross-organisation exchange.
    outcome = env.exchange(
        sender="ana",
        receiver="wolf",
        sender_app="conferencing",
        receiver_app="message-system",
        document={
            "topic": "Open CSCW systems",
            "entry": "Will ODP help? We think: yes!",
            "conference": "mocca",
            "author": "ana",
        },
    )
    print(f"delivered={outcome.delivered} mode={outcome.mode} "
          f"translated={outcome.translated} handled={outcome.handled}")

    memo = messages.folder("wolf")[0]
    print(f"wolf's memo: subject={memo.subject!r} text={memo.text!r}")

    # 5. The openness numbers (Figure 2 vs Figure 3 in miniature).
    print(f"integration cost: {env.integration_cost()} converters "
          f"(closed world would need {2 * 1} gateways for 2 apps, "
          f"N*(N-1) in general)")
    print(f"interop coverage: {env.interop_coverage():.0%}")


if __name__ == "__main__":
    main()
