#!/usr/bin/env python3
"""Quickstart: an open CSCW environment in ~60 lines.

Two organisations (UPC in Barcelona, GMD in Bonn), two different
groupware applications (COM-style conferencing and an Object-Lens-style
message system), one shared CSCW environment.  Ana posts from her
conferencing tool; Wolf receives a typed memo in his message system —
across organisations, across formats, with no pairwise gateway.

Run:  python examples/quickstart.py
"""

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.obs import MetricsRegistry, Tracer
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World


def main() -> None:
    # 1. A simulated deployment: two sites, one workstation each.
    world = World(seed=7)
    world.add_site("barcelona", ["ws-ana"])
    world.add_site("bonn", ["ws-wolf"])

    # 2. The CSCW environment, built the recommended way: the fluent
    #    builder, with observability (metrics + sim-clock tracing)
    #    injected at construction.
    metrics = MetricsRegistry()
    tracer = Tracer()
    env = (CSCWEnvironment.builder()
           .with_world(world)
           .with_name("mocca")
           .with_metrics(metrics)
           .with_tracer(tracer)
           .build())
    upc = Organisation("upc", "UPC")
    upc.add_person(Person("ana", "Ana Lopez", "upc"))
    gmd = Organisation("gmd", "GMD")
    gmd.add_person(Person("wolf", "Wolfgang Prinz", "gmd"))
    env.knowledge_base.add_organisation(upc)
    env.knowledge_base.add_organisation(gmd)
    env.knowledge_base.policies.declare(
        "upc", "gmd", {INTERACTION_MESSAGE}, symmetric=True
    )
    env.register_person(Communicator("ana", "ws-ana"))
    env.register_person(Communicator("wolf", "ws-wolf"))

    # 3. Two heterogeneous applications integrate with ONE step each.
    conferencing = ConferencingSystem()
    messages = MessageSystem()
    conferencing.attach(env, exporter_org="upc")
    messages.attach(env, exporter_org="gmd")

    # 4. Cross-application, cross-organisation exchange.
    outcome = env.exchange(
        sender="ana",
        receiver="wolf",
        sender_app="conferencing",
        receiver_app="message-system",
        document={
            "topic": "Open CSCW systems",
            "entry": "Will ODP help? We think: yes!",
            "conference": "mocca",
            "author": "ana",
        },
    )
    print(f"delivered={outcome.delivered} mode={outcome.mode} "
          f"translated={outcome.translated} handled={outcome.handled}")

    memo = messages.folder("wolf")[0]
    print(f"wolf's memo: subject={memo.subject!r} text={memo.text!r}")

    # 5. The openness numbers (Figure 2 vs Figure 3 in miniature).
    print(f"integration cost: {env.integration_cost()} converters "
          f"(closed world would need {2 * 1} gateways for 2 apps, "
          f"N*(N-1) in general)")
    print(f"interop coverage: {env.interop_coverage():.0%}")

    # 6. The observability injected in step 2: the exchange was counted,
    #    classified and traced (in simulated time) as it ran.
    counters = metrics.snapshot()["counters"]
    print(f"metrics: outcome={outcome.reason_code!r} trace={outcome.trace_id} "
          f"delivered_count={counters['env.exchange.outcome.delivered']} "
          f"events_published={counters['events.published']}")
    for span in tracer.finished():
        print(f"trace span: {span.name} [{span.trace_id}] "
              f"delivered={span.tags['delivered']} mode={span.tags['mode']}")


if __name__ == "__main__":
    main()
