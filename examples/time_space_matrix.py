#!/usr/bin/env python3
"""The groupware time-space matrix (Figure 1), populated and exercised.

One application per quadrant runs a short scenario, then the environment
prints the populated matrix — and shows one activity spanning quadrants:
the meeting's board items flow into the conferencing system for the
absent colleague (the coexistence of synchronous/asynchronous and
remote/co-located working that open CSCW systems must allow, section 3).

Run:  python examples/time_space_matrix.py
"""

from repro.apps.conferencing import ConferencingSystem
from repro.apps.meeting_room import MeetingRoom
from repro.apps.shared_editor import SharedEditor
from repro.apps.workflow import Procedure, ProcedureStep, WorkflowSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.org.model import Organisation, Person
from repro.sim.world import World


def main() -> None:
    world = World(seed=11)
    world.colocated(3)                      # meeting room: ws1..ws3
    world.add_site("remote-a", ["ra1"])
    world.add_site("remote-b", ["rb1"])
    env = CSCWEnvironment(world)
    org = Organisation("upc", "UPC")
    for person_id in ("ana", "joan", "marta"):
        org.add_person(Person(person_id, person_id.title(), "upc"))
    env.knowledge_base.add_organisation(org)
    env.register_person(Communicator("ana", "ws1"))
    env.register_person(Communicator("joan", "ra1"))
    env.register_person(Communicator("marta", "ws2"))

    # same time / same place: COLAB-style meeting
    meeting = MeetingRoom(world)
    meeting.attach(env)
    meeting.enter_room("ana", "ws1")
    meeting.enter_room("marta", "ws2")
    meeting.add_agenda_point("requirements")
    meeting.begin_brainstorm("requirements")
    meeting.add_item("ana", "support information sharing")
    meeting.add_item("marta", "support tailorability")
    world.run()

    # same time / different place: WYSIWIS shared editor
    editor = SharedEditor(world)
    editor.attach(env)
    editor.open_document("ana", "ws3")
    editor.open_document("joan", "ra1")
    editor.insert("ana", 0, "Requirements draft")
    editor.insert("joan", 1, "- openness")
    world.run()
    assert editor.converged()

    # different time / different place: conferencing
    conferencing = ConferencingSystem()
    conferencing.attach(env)
    conferencing.create_conference("requirements", "ana")
    conferencing.join("requirements", "joan")

    # different time / same place: office workflow
    workflow = WorkflowSystem()
    workflow.attach(env)
    workflow.define_procedure(Procedure("circulate-minutes", [
        ProcedureStep("write", "author", fills=("minutes",)),
        ProcedureStep("file", "clerk"),
    ]))
    workflow.grant_role("marta", "author")
    workflow.grant_role("ana", "clerk")
    case = workflow.start_case("circulate-minutes", {})
    workflow.perform_step(case.case_id, "marta", {"minutes": "see board"})
    workflow.perform_step(case.case_id, "ana")

    # -- the populated matrix ------------------------------------------------
    print("Groupware time-space matrix (Figure 1):")
    for quadrant, apps in env.applications.coverage_matrix().items():
        print(f"  {quadrant:36s} -> {', '.join(apps) if apps else '-'}")

    # -- one activity spans quadrants -----------------------------------------
    env.create_activity("requirements-activity", "requirements capture",
                        members={"ana": "chair", "joan": "remote", "marta": "scribe"})
    for item in meeting.board():
        outcome = env.exchange(
            sender="ana", receiver="joan",
            sender_app=meeting.name, receiver_app=conferencing.name,
            document={"text": item.text, "category": "requirements",
                      "author": item.author},
            activity_id="requirements-activity",
        )
        assert outcome.delivered and outcome.translated
    entries = conferencing.news_for("imported", "joan")
    print("\njoan's conference news from the co-located meeting:")
    for entry in entries:
        print(f"  [{entry.conference}] {entry.author}: {entry.text}")
    print(f"\nmeeting board -> conference entries: {len(entries)} items crossed "
          f"from same-time/same-place to different-time/different-place")


if __name__ == "__main__":
    main()
