#!/usr/bin/env python3
"""Three organisations cooperate over the full substrate stack.

Demonstrates the layering of Figure 4: groupware on the CSCW environment
on the ODP/OSI substrates — an X.500-style directory published from the
organisational knowledge base, X.400-style messaging between three sites,
a trader import with organisational trading policy (section 6.1), and
time transparency (a present colleague is reached synchronously, an
absent one via store-and-forward).

Run:  python examples/distributed_conference.py
"""

from repro.communication.asynchronous import AsyncChannel
from repro.communication.bridge import TimeTransparencyBridge
from repro.communication.model import Communicator
from repro.communication.realtime import RealTimeSession
from repro.directory.dsa import DirectoryServiceAgent
from repro.directory.dua import DirectoryUserAgent
from repro.environment.environment import CSCWEnvironment
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import or_name
from repro.messaging.ua import UserAgent
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.odp.trader import ImportContext
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_SERVICE_IMPORT
from repro.sim.world import World

ANA = or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez")
WOLF = or_name("C=DE;A= ;P=GMD;G=Wolf;S=Prinz")
TOM = or_name("C=UK;A= ;P=Lancaster;G=Tom;S=Rodden")


def main() -> None:
    world = World(seed=3)
    world.add_site("bcn", ["mta-upc", "ws-ana", "dsa-node"])
    world.add_site("bonn", ["mta-gmd", "ws-wolf"])
    world.add_site("lancs", ["mta-lancs", "ws-tom"])

    # -- the message handling system (X.400 workalike) ----------------------
    upc = MessageTransferAgent(world, "mta-upc", "upc", [("es", "", "upc")])
    gmd = MessageTransferAgent(world, "mta-gmd", "gmd", [("de", "", "gmd")])
    lancs = MessageTransferAgent(world, "mta-lancs", "lancs", [("uk", "", "lancaster")])
    for mta in (upc, gmd, lancs):
        for other in (upc, gmd, lancs):
            if other is not mta:
                mta.add_peer(other.name, other.node)
    upc.routing.add_route("de", "*", "*", "gmd")
    upc.routing.add_route("uk", "*", "*", "lancs")
    gmd.routing.add_route("es", "*", "*", "upc")
    gmd.routing.add_route("uk", "*", "*", "lancs")
    lancs.routing.add_route("es", "*", "*", "upc")
    lancs.routing.add_route("de", "*", "*", "gmd")

    ua_ana = UserAgent(world, "ws-ana", ANA, "mta-upc")
    ua_wolf = UserAgent(world, "ws-wolf", WOLF, "mta-gmd")
    ua_tom = UserAgent(world, "ws-tom", TOM, "mta-lancs")
    for ua in (ua_ana, ua_wolf, ua_tom):
        ua.register()

    # -- organisational knowledge base -> X.500 directory ----------------------
    env = CSCWEnvironment(world)
    for org_id, org_name, person_id, person_name, oname in [
        ("upc", "UPC", "ana.lopez", "Ana Lopez", ANA),
        ("gmd", "GMD", "wolf.prinz", "Wolf Prinz", WOLF),
        ("lancaster", "Lancaster", "tom.rodden", "Tom Rodden", TOM),
    ]:
        organisation = Organisation(org_id, org_name)
        organisation.add_person(Person(person_id, person_name, org_id, or_name=oname))
        env.knowledge_base.add_organisation(organisation)
    env.knowledge_base.policies.declare(
        "upc", "gmd", {"*"}, symmetric=True
    )
    env.knowledge_base.policies.declare(
        "upc", "lancaster", {INTERACTION_SERVICE_IMPORT}, symmetric=True
    )

    capsule = Capsule(world.network, "dsa-node")
    factory = BindingFactory(world.network)
    factory.register_capsule(capsule)
    dsa = DirectoryServiceAgent("dsa-eu")
    dsa_ref = dsa.deploy(capsule)
    created = env.knowledge_base.publish_to_directory(dsa.dit, country="EU")
    print(f"directory: published {created} entries from the knowledge base")

    dua = DirectoryUserAgent(factory, "ws-ana", dsa_ref)
    hits = dua.search(world, where="(&(objectClass=person)(mail=*))")
    print(f"directory search for mailed persons: "
          f"{[hit.first('cn') for hit in hits]}")

    # -- trading with organisational policy (section 6.1) ------------------------
    env.trader.export("conferencing", dsa_ref, {"cost": 1}, exporter="gmd")
    env.trader.export("conferencing", dsa_ref, {"cost": 5}, exporter="lancaster")
    offer = env.trader.import_one(
        "conferencing",
        preference="min:cost",
        context=ImportContext(importer="ana.lopez", organisation="upc"),
    )
    print(f"trader chose the offer exported by {offer.exporter!r} "
          f"(policy-compatible, cheapest)")

    # -- time transparency across the three sites ----------------------------------
    env.register_person(Communicator("ana.lopez", "ws-ana", or_name=ANA))
    env.register_person(Communicator("wolf.prinz", "ws-wolf", or_name=WOLF))
    env.register_person(Communicator("tom.rodden", "ws-tom", or_name=TOM, present=False))

    session = RealTimeSession(world, "odp-panel")
    heard = []
    session.join("ana.lopez", "ws-ana", lambda s, b: None)
    session.join("wolf.prinz", "ws-wolf", lambda s, b: heard.append(b["text"]))
    bridge = TimeTransparencyBridge(env.communicators, session)
    bridge.attach_async_channel(
        "ana.lopez", AsyncChannel(ua_ana, env.communicators, env.communication_log)
    )

    sync_result = bridge.converse("ana.lopez", "wolf.prinz", "Shall we start?")
    async_result = bridge.converse("ana.lopez", "tom.rodden", "Minutes attached.",
                                   subject="panel minutes")
    world.run()
    print(f"to wolf (present):  {sync_result.mode} -> heard={heard}")
    print(f"to tom (absent):    {async_result.mode} -> "
          f"inbox={[m['subject'] for m in ua_tom.list_inbox()]}")


if __name__ == "__main__":
    main()
