"""Tests for repro.obs.profile: per-layer exclusive-time attribution."""

from __future__ import annotations

import pytest

from repro.obs.profile import Profile, layer_of, profile_spans
from repro.obs.tracing import Tracer


def make_tracer(ticks) -> Tracer:
    iterator = iter(ticks)
    return Tracer(clock=lambda: next(iterator))


class TestLayerAttribution:
    def test_exclusive_time_subtracts_children(self):
        tracer = make_tracer([0.0, 2.0, 5.0, 10.0])
        with tracer.span("env.exchange"):
            with tracer.span("mta.transfer"):
                pass
        profile = Profile.from_spans(tracer.finished())
        rows = {row["layer"]: row for row in profile.layers()}
        assert rows["env"]["total_s"] == 10.0
        assert rows["env"]["self_s"] == 7.0  # 10 minus the child's [2, 5]
        assert rows["mta"]["self_s"] == rows["mta"]["total_s"] == 3.0

    def test_overlapping_children_are_not_double_subtracted(self):
        # two detached children overlap on [1, 3] and [2, 4]: union is 3 s
        from repro.obs.context import TraceContext

        tracer = Tracer()
        clock = {"now": 0.0}
        tracer.bind_clock(lambda: clock["now"])
        root = tracer.start_span("env.batch")
        context = TraceContext(root.trace_id, root.span_id)
        first = tracer.start_span("gateway.relay", context=context)
        first.start = 1.0
        second = tracer.start_span("gateway.relay", context=context)
        second.start = 2.0
        clock["now"] = 3.0
        tracer.finish(first)
        clock["now"] = 4.0
        tracer.finish(second)
        clock["now"] = 5.0
        tracer.finish(root)
        profile = Profile.from_spans(tracer.finished())
        rows = {row["layer"]: row for row in profile.layers()}
        assert rows["env"]["total_s"] == 5.0
        assert rows["env"]["self_s"] == pytest.approx(2.0)  # 5 - union(1..4)

    def test_layers_sorted_by_self_time(self):
        tracer = make_tracer([0.0, 1.0, 9.0, 10.0])
        with tracer.span("env.exchange"):
            with tracer.span("gateway.relay"):
                pass
        profile = Profile.from_spans(tracer.finished())
        assert [row["layer"] for row in profile.layers()] == ["gateway", "env"]

    def test_layer_of(self):
        assert layer_of("env.exchange") == "env"
        assert layer_of("bare") == "bare"

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        dangling = tracer.start_span("env.exchange")
        profile = Profile.from_spans([dangling])
        assert profile.spans == 0
        assert profile.skipped_open == 1


class TestHotPaths:
    def test_paths_aggregate_by_name_chain(self):
        tracer = make_tracer(
            [0.0, 1.0, 2.0, 10.0, 10.0, 11.0, 12.0, 20.0]
        )
        for _ in range(2):
            with tracer.span("env.exchange_many"):
                with tracer.span("env.exchange"):
                    pass
        profile = profile_spans(tracer.finished())
        hot = profile.hot_paths(2)
        assert hot[0]["path"] == "env.exchange_many"
        assert hot[0]["count"] == 2
        assert hot[0]["self_s"] == pytest.approx(18.0)
        assert hot[1]["path"] == "env.exchange_many > env.exchange"
        assert hot[1]["self_s"] == pytest.approx(2.0)

    def test_wall_and_sim_ledgers_stay_separate(self):
        sim = make_tracer([0.0, 4.0])
        with sim.span("env.exchange"):
            pass
        wall = Tracer(wall=True)
        with wall.span("env.exchange"):
            pass
        profile = Profile.from_spans(list(sim.finished()) + list(wall.finished()))
        sim_rows = profile.layers(clock="sim")
        wall_rows = profile.layers(clock="wall")
        assert sim_rows[0]["total_s"] == 4.0
        assert len(wall_rows) == 1
        assert wall_rows[0]["count"] == 1


class TestRendering:
    def test_render_text_table(self):
        tracer = make_tracer([0.0, 1.0, 3.0, 8.0])
        with tracer.span("env.exchange"):
            with tracer.span("gateway.relay"):
                pass
        text = Profile.from_spans(tracer.finished()).render_text()
        assert "layer profile" in text
        assert "env" in text and "gateway" in text
        assert "hot paths" in text

    def test_chrome_trace_export_round_trip(self):
        tracer = make_tracer([0.0, 1.0, 3.0, 8.0])
        with tracer.span("env.exchange"):
            with tracer.span("gateway.relay"):
                pass
        document = Profile.from_spans(tracer.finished()).to_chrome_trace()
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert names == ["env.exchange", "gateway.relay"]

    def test_incremental_add_matches_batch(self):
        tracer = make_tracer([0.0, 1.0, 3.0, 8.0])
        with tracer.span("env.exchange"):
            with tracer.span("gateway.relay"):
                pass
        spans = tracer.finished()
        batch = Profile.from_spans(spans)
        incremental = Profile().add(spans[:1]).add(spans[1:])
        # same per-layer totals as long as parents arrive with children
        assert batch.layers() != [] and incremental.spans == batch.spans
