"""Multi-domain federation: gateways, federated exchange, invalidation.

The acceptance bar for the subsystem: a 2-domain federated exchange has
outcome field-parity with a single-domain exchange (same reason codes on
the same failure classes), a severed gateway link yields retries and
then a dead-letter outcome, and a moved person never gets a stale
resolution verdict served from their old domain's cache.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

from repro.communication.model import Communicator
from repro.environment.environment import (
    REASON_DELIVERED,
    REASON_MEMBERSHIP,
    REASON_ORGANISATION_OPAQUE,
    REASON_POLICY,
    REASON_UNKNOWN_RECEIVER,
    REASON_VIEW_OPAQUE,
    CSCWEnvironment,
    ExchangeOutcome,
)
from repro.environment.registry import (
    AppDescriptor,
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
)
from repro.environment.transparency import TransparencyProfile
from repro.federation import (
    REASON_GATEWAY_DEAD_LETTER,
    Federation,
    Gateway,
)
from repro.information.interchange import FormatConverter, make_common
from repro.obs.metrics import MetricsRegistry
from repro.odp.objects import InterfaceRef
from repro.org.model import Organisation, Person
from repro.sim.world import World
from repro.util.errors import ConfigurationError, UnknownObjectError

QUAD = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]

DOC = {"fmt0-title": "minutes", "fmt0-body": "agenda"}


def converter(index: int) -> FormatConverter:
    key = f"fmt{index}"

    def to_common(document):
        return make_common(
            "note", document.get(f"{key}-title", ""), document.get(f"{key}-body", "")
        )

    def from_common(common):
        return {f"{key}-title": common["title"], f"{key}-body": common["body"]}

    return FormatConverter(key, to_common, from_common)


def outcome_fields(outcome: ExchangeOutcome) -> dict:
    """All outcome fields except the (per-span) trace id."""
    return {
        f.name: getattr(outcome, f.name)
        for f in fields(outcome)
        if f.name != "trace_id"
    }


def make_federation(world, open_policies=True, metrics=None, **options):
    """Two domains, ana@upc and bob@gmd, two apps with distinct formats."""
    federation = Federation(world, metrics=metrics, **options)
    federation.add_domain("upc")
    federation.add_domain("gmd")
    if open_policies:
        federation.open_policies()
    federation.add_person("ana", "upc", name="Ana Lopez")
    federation.add_person("bob", "gmd", name="Bob Meier")
    inboxes: dict[str, list] = {"app0": [], "app1": []}
    for index in (0, 1):
        name = f"app{index}"
        federation.register_application(
            AppDescriptor(name=name, quadrants=QUAD, converter=converter(index)),
            lambda person, doc, info, name=name: inboxes[name].append((person, doc)),
        )
    return federation, inboxes


def make_single_env(world, open_policies=True):
    """The single-domain twin of make_federation, for parity checks."""
    env = CSCWEnvironment.builder().with_world(world).build()
    for org_id, person in (("upc", ("ana", "Ana Lopez")), ("gmd", ("bob", "Bob Meier"))):
        organisation = Organisation(org_id, org_id.upper())
        organisation.add_person(Person(person[0], person[1], org_id))
        env.knowledge_base.add_organisation(organisation)
        node = f"ws-{person[0]}"
        world.network.add_node(node, site=org_id)
        env.register_person(Communicator(person[0], node))
    if open_policies:
        env.knowledge_base.policies.declare("upc", "gmd", {"*"}, symmetric=True)
    inbox: list = []
    for index in (0, 1):
        env.register_application(
            AppDescriptor(name=f"app{index}", quadrants=QUAD, converter=converter(index)),
            lambda person, doc, info: inbox.append((person, doc)),
        )
    return env, inbox


class TestTopology:
    def test_pairwise_wiring(self, world):
        federation, _ = make_federation(world)
        upc, gmd = federation.domain("upc"), federation.domain("gmd")
        assert upc.naming.federated_domains() == ["gmd"]
        assert gmd.naming.federated_domains() == ["upc"]
        assert upc.trader.links() == ["gmd"]
        assert gmd.trader.links() == ["upc"]
        assert isinstance(upc.gateway_to("gmd"), Gateway)
        assert isinstance(gmd.gateway_to("upc"), Gateway)
        assert set(federation.shadowing) == {("upc", "gmd"), ("gmd", "upc")}

    def test_duplicate_domain_rejected(self, world):
        federation, _ = make_federation(world)
        with pytest.raises(ConfigurationError):
            federation.add_domain("upc")

    def test_unknown_domain_rejected(self, world):
        federation, _ = make_federation(world)
        with pytest.raises(UnknownObjectError):
            federation.domain("ghost")

    def test_home_resolution_via_federated_naming(self, world):
        federation, _ = make_federation(world)
        assert federation.home_of("ana") == "upc"
        assert federation.home_of("bob") == "gmd"
        # cold lookup (memo cleared) still resolves over the federation
        federation._home_cache.clear()
        assert federation.home_of("bob") == "gmd"
        with pytest.raises(UnknownObjectError):
            federation.home_of("ghost")

    def test_every_kb_knows_every_person(self, world):
        federation, _ = make_federation(world)
        for domain in federation.domains():
            assert domain.env.knowledge_base.organisation_of("ana") == "upc"
            assert domain.env.knowledge_base.organisation_of("bob") == "gmd"

    def test_describe_covers_domains_people_gateways(self, world):
        federation, _ = make_federation(world)
        snapshot = federation.describe()
        assert set(snapshot["domains"]) == {"upc", "gmd"}
        assert snapshot["people"] == {"ana": "upc", "bob": "gmd"}
        assert "gmd" in snapshot["domains"]["upc"]["gateways"]


class TestCrossDomainExchange:
    def test_cross_domain_delivery_with_translation(self, world):
        federation, inboxes = make_federation(world)
        outcome = federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        assert outcome.delivered
        assert outcome.cross_domain
        assert outcome.mode == "synchronous"
        assert outcome.outcome.translated
        assert outcome.outcome.handled == ("organisation", "view")
        assert inboxes["app1"] == [("bob", {"fmt1-title": "minutes", "fmt1-body": "agenda"})]

    def test_delivered_outcome_parity_with_single_domain(self, world):
        federation, _ = make_federation(world)
        federated = federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        env, _ = make_single_env(World(seed=42))
        local = env.exchange("ana", "bob", "app0", "app1", DOC)
        assert outcome_fields(federated.outcome) == outcome_fields(local)

    def test_intra_domain_exchange_stays_local(self, world):
        federation, inboxes = make_federation(world)
        federation.add_person("carla", "upc")
        outcome = federation.federated_exchange("ana", "carla", "app0", "app1", DOC)
        assert outcome.delivered
        assert not outcome.cross_domain
        assert [hop.role for hop in outcome.hops] == ["local"]
        assert federation.domain("upc").gateway_to("gmd").stats()["relays"] == 0

    def test_hop_metadata_and_latency(self, world):
        federation, _ = make_federation(world)
        outcome = federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        assert [hop.role for hop in outcome.hops] == ["origin", "deliver", "reply"]
        assert [hop.domain for hop in outcome.hops] == ["upc", "gmd", "upc"]
        origin, deliver, reply = outcome.hops
        assert origin.time <= deliver.time <= reply.time
        assert outcome.latency_s == reply.time - origin.time
        assert outcome.latency_s > 0  # the WAN link charges real latency
        assert outcome.attempts == 1

    def test_unknown_receiver_reason_code_parity(self, world):
        federation, _ = make_federation(world)
        outcome = federation.federated_exchange("ana", "ghost", "app0", "app1", DOC)
        assert not outcome.delivered
        assert outcome.reason_code == REASON_UNKNOWN_RECEIVER


class TestFailureParity:
    """Federated failure paths carry the single-domain reason codes."""

    def _parity(self, federated_outcome, single_outcome, code):
        assert not federated_outcome.delivered
        assert federated_outcome.reason_code == code
        assert outcome_fields(federated_outcome.outcome) == outcome_fields(single_outcome)

    def test_membership_failure(self, world):
        federation, _ = make_federation(world)
        federation.create_shared_activity("a1", "Review", {"ana": "chair"})
        federated = federation.federated_exchange(
            "ana", "bob", "app0", "app1", DOC, activity_id="a1"
        )
        env, _ = make_single_env(World(seed=42))
        env.create_activity("a1", "Review", {"ana": "chair"})
        local = env.exchange("ana", "bob", "app0", "app1", DOC, activity_id="a1")
        self._parity(federated, local, REASON_MEMBERSHIP)

    def test_organisation_opaque_failure(self, world):
        profile = TransparencyProfile.all_on().without("organisation")
        federation, _ = make_federation(world)
        federated = federation.federated_exchange(
            "ana", "bob", "app0", "app1", DOC, profile=profile
        )
        env, _ = make_single_env(World(seed=42))
        local = env.exchange("ana", "bob", "app0", "app1", DOC, profile=profile)
        self._parity(federated, local, REASON_ORGANISATION_OPAQUE)

    def test_policy_failure(self, world):
        federation, _ = make_federation(world, open_policies=False)
        federated = federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        env, _ = make_single_env(World(seed=42), open_policies=False)
        local = env.exchange("ana", "bob", "app0", "app1", DOC)
        self._parity(federated, local, REASON_POLICY)

    def test_view_opaque_failure_decided_at_target(self, world):
        """The view check runs in the target environment, over the relay."""
        profile = TransparencyProfile.all_on().without("view")
        federation, _ = make_federation(world)
        federated = federation.federated_exchange(
            "ana", "bob", "app0", "app1", DOC, profile=profile
        )
        env, _ = make_single_env(World(seed=42))
        local = env.exchange("ana", "bob", "app0", "app1", DOC, profile=profile)
        self._parity(federated, local, REASON_VIEW_OPAQUE)
        # the payload did cross the gateway before failing at the target
        assert federation.domain("upc").gateway_to("gmd").stats()["delivered"] == 1


class TestGatewayFailure:
    def test_severed_link_retries_then_dead_letters(self, world):
        federation, inboxes = make_federation(world)
        world.network.node("gw-gmd").crash()
        outcome = federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        assert not outcome.delivered
        assert outcome.reason_code == REASON_GATEWAY_DEAD_LETTER
        assert outcome.attempts == 4  # the configured attempt budget
        gateway = federation.domain("upc").gateway_to("gmd")
        assert gateway.stats() == {
            "relays": 1, "delivered": 0, "retries": 3, "dead_letters": 1,
        }
        letter = gateway.dead_letters[0]
        assert letter.target == "gmd"
        assert letter.payload["receiver"] == "bob"
        assert inboxes["app1"] == []

    def test_redrive_after_heal_delivers_parked_payload(self, world):
        federation, inboxes = make_federation(world)
        world.network.node("gw-gmd").crash()
        federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        world.network.node("gw-gmd").recover()
        gateway = federation.domain("upc").gateway_to("gmd")
        assert gateway.redrive() == 1
        world.run_for(5.0)
        assert inboxes["app1"] == [
            ("bob", {"fmt1-title": "minutes", "fmt1-body": "agenda"})
        ]
        # a second redrive has nothing left to push
        assert gateway.redrive() == 0

    def test_retry_masks_transient_outage(self, world):
        """A target that comes back mid-retry still gets the payload."""
        federation, inboxes = make_federation(
            world, gateway_retry_s=0.5, gateway_attempts=5
        )
        world.network.node("gw-gmd").crash()
        world.engine.schedule(1.2, world.network.node("gw-gmd").recover)
        outcome = federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        assert outcome.delivered
        assert outcome.attempts > 1
        assert federation.domain("upc").gateway_to("gmd").stats()["retries"] >= 1


class TestMovePerson:
    def test_no_stale_verdict_after_move(self, world):
        """Domain A's resolution cache must drop verdicts when a person
        moves to domain B — the cross-domain invalidation contract."""
        federation, _ = make_federation(world)
        upc_env = federation.domain("upc").env
        before = upc_env.resolution.route("ana", "bob", "message")
        assert before.cross_org and before.receiver_org == "gmd"
        federation.move_person("bob", "upc")
        after = upc_env.resolution.route("ana", "bob", "message")
        assert after.receiver_org == "upc"
        assert not after.cross_org

    def test_exchange_routes_to_new_home(self, world):
        federation, inboxes = make_federation(world)
        assert federation.federated_exchange(
            "ana", "bob", "app0", "app1", DOC
        ).cross_domain
        federation.move_person("bob", "upc")
        outcome = federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        assert outcome.delivered
        assert not outcome.cross_domain
        assert federation.home_of("bob") == "upc"
        assert len(inboxes["app1"]) == 2

    def test_move_updates_naming_and_kbs_everywhere(self, world):
        federation, _ = make_federation(world)
        federation.move_person("bob", "upc")
        upc, gmd = federation.domain("upc"), federation.domain("gmd")
        assert "bob" in upc.people and "bob" not in gmd.people
        # the binding migrated: resolvable locally at upc, gone from gmd
        assert upc.naming.resolve("people/bob").interface == "communicator"
        for domain in federation.domains():
            assert domain.env.knowledge_base.organisation_of("bob") == "upc"

    def test_move_to_same_domain_is_noop(self, world):
        federation, _ = make_federation(world)
        person = federation.move_person("bob", "gmd")
        assert person.organisation == "gmd"
        assert federation.home_of("bob") == "gmd"


class TestDirectoryShadowing:
    def test_peer_directories_converge(self, world):
        federation, _ = make_federation(world)
        federation.publish_directories()
        federation.start_shadowing()
        world.run_for(federation._shadow_period_s * 2 + 5.0)
        federation.stop_shadowing()
        upc, gmd = federation.domain("upc"), federation.domain("gmd")
        # each DSA has shadowed the peer's published entries
        assert upc.dsa.dit.exists("cn=Bob Meier,o=GMD,c=ES")
        assert gmd.dsa.dit.exists("cn=Ana Lopez,o=UPC,c=ES")
        agreement = federation.shadowing[("upc", "gmd")]
        assert agreement.syncs >= 1 and agreement.failed_pulls == 0


class TestCrossDomainTrading:
    def test_import_falls_back_over_domain_link(self, world):
        federation, _ = make_federation(world)
        ref = InterfaceRef("gw-gmd", "print-svc", "printing")
        federation.domain("gmd").trader.export("printing", ref, exporter="gmd")
        offer = federation.import_service("upc", "printing")
        assert offer.ref.node == "gw-gmd"

    def test_revoked_domain_link_hides_offers(self, world):
        from repro.util.errors import NoOfferError

        federation, _ = make_federation(world)
        ref = InterfaceRef("gw-gmd", "print-svc", "printing")
        federation.domain("gmd").trader.export("printing", ref, exporter="gmd")
        federation.domain("upc").trader.unlink("gmd")
        with pytest.raises(NoOfferError):
            federation.import_service("upc", "printing")


class TestFederationMetrics:
    def test_exchange_and_gateway_counters(self, world):
        registry = MetricsRegistry()
        federation, _ = make_federation(world, metrics=registry)
        federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        federation.add_person("carla", "upc")
        federation.federated_exchange("ana", "carla", "app0", "app1", DOC)
        counters = registry.snapshot()["counters"]
        assert counters["env.federation.exchanges"] == 2
        assert counters["env.federation.remote"] == 1
        assert counters["env.federation.local"] == 1
        assert counters["env.federation.delivered"] == 1
        assert counters["gateway.relays"] == 1
        assert counters["gateway.delivered"] == 1
        assert counters["gateway.inbound"] == 1
        assert registry.snapshot()["histograms"]["env.federation.relay_latency_s"]["count"] == 1

    def test_dead_letter_counters(self, world):
        registry = MetricsRegistry()
        federation, _ = make_federation(world, metrics=registry)
        world.network.node("gw-gmd").crash()
        federation.federated_exchange("ana", "bob", "app0", "app1", DOC)
        counters = registry.snapshot()["counters"]
        assert counters["env.federation.dead_letters"] == 1
        assert counters["gateway.dead_letters"] == 1
        assert counters["gateway.retries"] == 3


class TestUnifiedCallSurface:
    """ExchangeRequest is the single exchange currency, shims included."""

    def test_keyword_shim_matches_request_form(self):
        from repro.environment.environment import ExchangeRequest

        results = []
        for style in ("kwargs", "request"):
            world = World(seed=77)
            federation, _ = make_federation(world)
            if style == "kwargs":
                outcome = federation.federated_exchange(
                    "ana", "bob", "app0", "app1", DOC
                )
            else:
                outcome = federation.federated_exchange(
                    ExchangeRequest(
                        sender="ana",
                        receiver="bob",
                        sender_app="app0",
                        receiver_app="app1",
                        document=DOC,
                    )
                )
            results.append(
                (
                    outcome_fields(outcome.outcome),
                    outcome.origin,
                    outcome.target,
                    outcome.attempts,
                    outcome.latency_s,
                )
            )
        assert results[0] == results[1], (
            "keyword shim and request form must produce identical outcomes"
        )

    def test_exchange_many_preserves_order_and_batches_runs(self, world):
        from repro.environment.environment import ExchangeRequest

        registry = MetricsRegistry()
        federation, inboxes = make_federation(world, metrics=registry)
        federation.add_person("carol", "upc", name="Carol Diaz")

        def request(sender, receiver, n):
            return ExchangeRequest(
                sender=sender,
                receiver=receiver,
                sender_app="app0",
                receiver_app="app1",
                document={"fmt0-title": f"m{n}", "fmt0-body": "b"},
            )

        assert federation.federated_exchange_many([]) == []
        outcomes = federation.federated_exchange_many(
            [
                request("ana", "bob", 0),   # upc->gmd ┐ one consecutive run,
                request("ana", "bob", 1),   # upc->gmd ┘ shipped as ONE relay
                request("ana", "carol", 2), # intra-domain fast path
                request("bob", "ana", 3),   # gmd->upc, its own relay
            ]
        )
        assert [o.delivered for o in outcomes] == [True] * 4
        # Outcomes come back in request order with correct routing.
        assert [(o.origin, o.target) for o in outcomes] == [
            ("upc", "gmd"), ("upc", "gmd"), ("upc", "upc"), ("gmd", "upc"),
        ]
        # The consecutive same-route pair crossed the wire as one relay.
        assert federation.domain("upc").gateway_to("gmd").relays == 1
        assert federation.domain("gmd").gateway_to("upc").relays == 1
        # Every document arrived, translated, exactly once.
        titles = sorted(doc["fmt1-title"] for _, doc in inboxes["app1"])
        assert titles == ["m0", "m1", "m2", "m3"]
        counters = registry.snapshot()["counters"]
        assert counters["env.federation.exchanges"] == 4
        assert counters["env.federation.remote"] == 3
        assert counters["env.federation.local"] == 1


class TestBatchedFastPath:
    """Regressions for the federated batch fast path (intra-run batching
    and mid-batch re-homing)."""

    def test_intra_run_is_one_batched_pipeline_call(self, world):
        """An intra-domain run rides the home env's batched exchange_many
        — one pipeline entry per run — with per-request field parity."""
        from repro.environment.environment import ExchangeRequest

        registry = MetricsRegistry()
        federation, inboxes = make_federation(world, metrics=registry)
        federation.add_person("carol", "upc", name="Carol Diaz")
        env = federation.domain("upc").env

        def request(n):
            return ExchangeRequest(
                sender="ana",
                receiver="carol",
                sender_app="app0",
                receiver_app="app1",
                document={"fmt0-title": f"m{n}", "fmt0-body": "b"},
            )

        # per-request baseline first (intra exchanges don't advance sim
        # time, so outcomes are directly comparable)
        baseline = [federation.federated_exchange(request(n)) for n in range(3)]

        batched_calls = []
        original = env.exchange_many

        def counting_exchange_many(requests):
            batched_calls.append(len(requests))
            return original(requests)

        env.exchange_many = counting_exchange_many
        try:
            outcomes = federation.federated_exchange_many(
                [request(n) for n in range(3)]
            )
        finally:
            env.exchange_many = original

        # the whole run entered the pipeline as ONE batched call
        assert batched_calls == [3]
        assert [outcome_fields(o.outcome) for o in outcomes] == [
            outcome_fields(o.outcome) for o in baseline
        ]
        assert [
            (o.origin, o.target, o.latency_s, o.attempts) for o in outcomes
        ] == [(o.origin, o.target, o.latency_s, o.attempts) for o in baseline]
        assert [len(o.hops) for o in outcomes] == [1, 1, 1]
        # six deliveries total (baseline + batch), all translated
        assert len(inboxes["app1"]) == 6
        counters = registry.snapshot()["counters"]
        assert counters["env.federation.local"] == 6

    def test_move_person_mid_batch_reroutes_remainder(self, world):
        """A delivery callback that re-homes the receiver mid-run: the
        hoisted routes are not served stale — the rest of the run
        re-dispatches to the new home domain."""
        from repro.environment.environment import ExchangeRequest

        federation, _ = make_federation(world)
        federation.add_person("dave", "upc", name="Dave Kim")
        received: list[str] = []

        def deliver(person, doc, info):
            received.append(doc["fmt2-title"])
            if len(received) == 1:
                # first delivery re-homes dave: the batch dispatched the
                # whole run to upc under the old route
                federation.move_person("dave", "gmd")

        federation.register_application(
            AppDescriptor(name="app2", quadrants=QUAD, converter=converter(2)),
            deliver,
        )

        outcomes = federation.federated_exchange_many(
            [
                ExchangeRequest(
                    sender="ana",
                    receiver="dave",
                    sender_app="app0",
                    receiver_app="app2",
                    document={"fmt0-title": f"m{n}", "fmt0-body": "b"},
                )
                for n in range(3)
            ]
        )
        assert [o.delivered for o in outcomes] == [True] * 3
        # first delivery happened at the old home; the rest re-routed
        assert (outcomes[0].origin, outcomes[0].target) == ("upc", "upc")
        assert [(o.origin, o.target) for o in outcomes[1:]] == [
            ("upc", "gmd"), ("upc", "gmd"),
        ]
        assert all(o.cross_domain for o in outcomes[1:])
        # the re-dispatched remainder crossed the wire as one relay
        assert federation.domain("upc").gateway_to("gmd").relays == 1
        assert received == ["m0", "m1", "m2"]
        assert federation.home_of("dave") == "gmd"
