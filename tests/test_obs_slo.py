"""Tests for repro.obs.slo: sliding-window objectives and burn alerts."""

from __future__ import annotations

import pytest

from repro.obs.events import KIND_SLO_BURN, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOEngine
from repro.sim.world import World
from repro.util.errors import ConfigurationError

LATENCY_BUCKETS = (0.1, 0.5, 1.0, 2.0, 5.0)


@pytest.fixture
def metrics() -> MetricsRegistry:
    return MetricsRegistry()


def make_engine(world, metrics, events=None, period_s=1.0) -> SLOEngine:
    return SLOEngine(
        world.engine, metrics, events=events, sample_period_s=period_s
    )


class TestValidation:
    def test_rejects_bad_parameters(self, world, metrics):
        with pytest.raises(ConfigurationError):
            SLOEngine(world.engine, metrics, sample_period_s=0.0)
        slo = make_engine(world, metrics)
        with pytest.raises(ConfigurationError):
            slo.add_ratio("r", "good", "total", target=1.5)
        with pytest.raises(ConfigurationError):
            slo.add_ratio("r", "good", "total", window_s=0.0)
        with pytest.raises(ConfigurationError):
            slo.add_latency("l", "h", threshold_s=0.0)
        with pytest.raises(ConfigurationError):
            slo.add_latency("l", "h", threshold_s=1.0, quantile=1.0)
        slo.add_ratio("r", "good", "total")
        with pytest.raises(ConfigurationError):
            slo.add_ratio("r", "good", "total")


class TestRatioObjective:
    def test_healthy_while_ratio_meets_target(self, world, metrics):
        slo = make_engine(world, metrics).add_ratio(
            "delivered", "env.delivered", "env.total", target=0.9, window_s=10.0
        )
        slo.start()
        for _ in range(20):
            metrics.inc("env.delivered")
            metrics.inc("env.total")
            world.run_for(0.5)
        status = slo.evaluate()["delivered"]
        assert status["met"] and status["value"] == 1.0
        assert slo.healthy()

    def test_window_forgets_an_old_bad_patch(self, world, metrics):
        slo = make_engine(world, metrics).add_ratio(
            "delivered", "env.delivered", "env.total", target=0.9, window_s=5.0
        )
        slo.start()
        # a bad patch: everything fails for 5 simulated seconds
        for _ in range(5):
            metrics.inc("env.total")
            world.run_for(1.0)
        assert not slo.evaluate()["delivered"]["met"]
        # then a clean stretch longer than the window
        for _ in range(10):
            metrics.inc("env.delivered")
            metrics.inc("env.total")
            world.run_for(1.0)
        status = slo.evaluate()["delivered"]
        assert status["met"], f"old failures leaked into the window: {status}"

    def test_burn_alert_is_edge_triggered(self, world, metrics):
        events = EventLog()
        slo = make_engine(world, metrics, events=events).add_ratio(
            "delivered",
            "env.delivered",
            "env.total",
            target=0.9,
            window_s=10.0,
            burn_threshold=2.0,
        )
        slo.start()
        for _ in range(6):
            metrics.inc("env.total")  # 100% errors: burn rate 10x budget
            world.run_for(1.0)
        burns = events.events(kind=KIND_SLO_BURN)
        assert len(burns) == 1, "burn alert must fire once per episode"
        assert burns[0].attrs["objective"] == "delivered"
        assert slo.evaluate()["delivered"]["alerts"] == 1

    def test_empty_window_is_vacuously_met(self, world, metrics):
        slo = make_engine(world, metrics).add_ratio(
            "delivered", "env.delivered", "env.total"
        )
        slo.start()
        world.run_for(3.0)
        status = slo.evaluate()["delivered"]
        assert status["met"] and status["observations"] == 0


class TestLatencyObjective:
    def test_quantile_under_threshold_is_met(self, world, metrics):
        metrics.histogram("env.latency", LATENCY_BUCKETS)
        slo = make_engine(world, metrics).add_latency(
            "p99", "env.latency", threshold_s=2.0, quantile=0.99, window_s=10.0
        )
        slo.start()
        for _ in range(10):
            metrics.observe("env.latency", 0.3)
            world.run_for(0.5)
        status = slo.evaluate()["p99"]
        assert status["met"]
        assert status["value"] == pytest.approx(0.5)  # bucket upper bound

    def test_slow_tail_breaches_and_burns(self, world, metrics):
        events = EventLog()
        metrics.histogram("env.latency", LATENCY_BUCKETS)
        slo = make_engine(world, metrics, events=events).add_latency(
            "p99",
            "env.latency",
            threshold_s=1.0,
            quantile=0.9,
            window_s=20.0,
            burn_threshold=2.0,
        )
        slo.start()
        for index in range(10):
            # every other observation blows the threshold: 50% > budget 10%
            metrics.observe("env.latency", 4.0 if index % 2 else 0.2)
            world.run_for(1.0)
        status = slo.evaluate()["p99"]
        assert not status["met"]
        assert status["value"] > 1.0
        assert len(events.events(kind=KIND_SLO_BURN)) == 1
        assert not slo.healthy()


class TestLifecycle:
    def test_stop_freezes_sampling(self, world, metrics):
        slo = make_engine(world, metrics).add_ratio(
            "delivered", "env.delivered", "env.total", window_s=5.0
        )
        slo.start()
        slo.start()  # idempotent
        metrics.inc("env.delivered")
        metrics.inc("env.total")
        world.run_for(2.0)
        slo.stop()
        before = slo.evaluate()["delivered"]
        world.run_for(10.0)  # no task: nothing else sampled
        assert slo.evaluate()["delivered"]["observations"] == before["observations"]
