"""Tests for the codec registry and document helpers."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.util.errors import ConfigurationError
from repro.util.serialization import (
    TYPE_KEY,
    CodecRegistry,
    canonical_json,
    deep_merge,
    document_size,
)


@dataclass
class Point:
    x: int
    y: int


def _make_registry() -> CodecRegistry:
    registry = CodecRegistry()
    registry.register(
        "point",
        Point,
        lambda p: {"x": p.x, "y": p.y},
        lambda d: Point(d["x"], d["y"]),
    )
    return registry


class TestCodecRegistry:
    def test_round_trip(self):
        registry = _make_registry()
        document = registry.encode(Point(1, 2))
        assert document[TYPE_KEY] == "point"
        assert registry.decode(document) == Point(1, 2)

    def test_duplicate_registration_rejected(self):
        registry = _make_registry()
        with pytest.raises(ConfigurationError):
            registry.register("point", Point, lambda p: {}, lambda d: None)

    def test_encode_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            _make_registry().encode(object())

    def test_decode_untagged_document_rejected(self):
        with pytest.raises(ConfigurationError):
            _make_registry().decode({"x": 1})

    def test_decode_unknown_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            _make_registry().decode({TYPE_KEY: "mystery"})

    def test_registered_names_sorted(self):
        registry = _make_registry()
        assert registry.registered_names() == ["point"]


class TestDocumentHelpers:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_canonical_json_equality_is_structural(self):
        assert canonical_json({"a": [1, 2]}) == canonical_json({"a": [1, 2]})

    def test_document_size_is_bytes(self):
        assert document_size({}) == 2

    def test_deep_merge_overrides_scalars(self):
        assert deep_merge({"a": 1}, {"a": 2}) == {"a": 2}

    def test_deep_merge_recurses_into_dicts(self):
        base = {"ui": {"color": "red", "font": "mono"}}
        overlay = {"ui": {"color": "blue"}}
        assert deep_merge(base, overlay) == {"ui": {"color": "blue", "font": "mono"}}

    def test_deep_merge_does_not_mutate_inputs(self):
        base = {"a": {"b": 1}}
        deep_merge(base, {"a": {"b": 2}})
        assert base == {"a": {"b": 1}}
