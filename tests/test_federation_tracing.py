"""Cross-domain trace propagation and trace-correlated events.

Acceptance bar (ISSUE 5): a federated exchange yields **one** connected
trace — every span in every domain it touched shares the origin's
trace id with correct parent links — even when a tripped breaker
reroutes the relay through an intermediate domain; the returned
``ExchangeOutcome.trace_id`` equals the origin span's trace id
(regression for the relay path that used to drop it); and the critical
path explains >= 95% of the end-to-end simulated duration.
"""

from __future__ import annotations

import pytest

from repro.environment.registry import (
    AppDescriptor,
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
)
from repro.federation.federation import Federation
from repro.information.interchange import FormatConverter, make_common
from repro.obs.analyze import TraceAnalyzer
from repro.obs.events import (
    KIND_BREAKER_OPEN,
    KIND_DEAD_LETTER,
    KIND_DEADLINE,
    KIND_HEALTH_TRANSITION,
    KIND_REDRIVE,
    EventLog,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sim.network import LinkSpec

QUAD = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]
DOC = {"title": "minutes", "body": "agenda"}


def converter() -> FormatConverter:
    def to_common(document):
        return make_common("note", document.get("title", ""), document.get("body", ""))

    def from_common(common):
        return {"title": common["title"], "body": common["body"]}

    return FormatConverter("fmt", to_common, from_common)


def make_federation(world, names=("upc", "gmd"), **options):
    """Traced federation: one person per domain (p-<name>), one app."""
    tracer = options.setdefault("tracer", Tracer())
    events = options.setdefault("events", EventLog())
    assignment = {name: [f"p-{name}"] for name in names}
    federation = Federation.partition(
        world, assignment, metrics=MetricsRegistry(), **options
    )
    federation.register_application(
        AppDescriptor(name="app0", quadrants=QUAD, converter=converter()),
        lambda person, document, info: None,
    )
    return federation, tracer, events


def origin_root(tracer):
    """The origin-side root span of the (single) federated exchange."""
    [root] = [s for s in tracer.finished() if s.name == "federation.exchange"]
    return root


class TestDirectExchangeTrace:
    def test_outcome_trace_id_is_the_origin_trace(self, world):
        """Regression: the relay reply used to rebuild the outcome with
        ``trace_id=""`` — the cross-domain outcome must carry the origin
        trace id, same as a local exchange."""
        federation, tracer, _ = make_federation(world)
        result = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert result.delivered
        root = origin_root(tracer)
        assert result.outcome.trace_id == root.trace_id
        assert root.trace_id  # non-empty: a real trace was recorded

    def test_one_connected_trace_with_correct_parent_links(self, world):
        federation, tracer, _ = make_federation(world)
        federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        root = origin_root(tracer)
        spans = [s for s in tracer.finished() if s.trace_id == root.trace_id]
        by_name = {s.name: s for s in spans}
        # origin root -> gateway hop -> target-side relay handler -> exchange
        assert by_name["gateway.relay"].parent_id == root.span_id
        assert by_name["federation.relay"].parent_id == by_name["gateway.relay"].span_id
        assert by_name["env.exchange"].parent_id == by_name["federation.relay"].span_id
        analyzer = TraceAnalyzer(spans)
        assert analyzer.is_connected(root.trace_id)

    def test_untraced_federation_still_exchanges(self, world):
        federation, _, _ = make_federation(world, tracer=None, events=None)
        result = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert result.delivered
        assert result.outcome.trace_id == ""

    def test_distinct_exchanges_get_distinct_traces(self, world):
        federation, tracer, _ = make_federation(world)
        first = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        second = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert first.outcome.trace_id != second.outcome.trace_id
        analyzer = TraceAnalyzer(tracer.finished())
        assert len(analyzer.trace_ids()) == 2
        assert all(analyzer.is_connected(t) for t in analyzer.trace_ids())


class TestFailoverTrace:
    def failover(self, world):
        federation, tracer, events = make_federation(
            world, names=("d0", "d1", "d2")
        )
        federation.domain("d0").gateway_to("d1").breaker.force_open()
        result = federation.federated_exchange("p-d0", "p-d1", "app0", "app0", DOC)
        return federation, tracer, events, result

    def test_breaker_relay_path_stays_one_trace(self, world):
        federation, tracer, events, result = self.failover(world)
        assert result.delivered
        assert any(hop.role == "relay" for hop in result.hops)
        root = origin_root(tracer)
        assert result.outcome.trace_id == root.trace_id
        spans = tracer.finished()
        # every span the failover touched is in the origin's trace
        assert {s.trace_id for s in spans} == {root.trace_id}
        names = [s.name for s in spans]
        assert names.count("gateway.relay") == 2  # d0->d2 and d2->d1 hops
        assert "federation.forward" in names
        analyzer = TraceAnalyzer(spans)
        assert analyzer.is_connected(root.trace_id)

    def test_critical_path_covers_the_end_to_end_duration(self, world):
        _, tracer, _, result = self.failover(world)
        assert result.delivered
        root = origin_root(tracer)
        analyzer = TraceAnalyzer(tracer.finished())
        path = [span["name"] for span in analyzer.critical_path(root.trace_id)]
        assert path[0] == "federation.exchange"
        assert "federation.forward" in path
        assert analyzer.critical_path_coverage(root.trace_id) >= 0.95

    def test_forward_span_records_the_via_domain(self, world):
        _, tracer, _, _ = self.failover(world)
        [forward] = [s for s in tracer.finished() if s.name == "federation.forward"]
        assert forward.tags["via"] == "d2"
        assert forward.tags["outcome"] == "delivered"


class TestTraceCorrelatedEvents:
    def test_breaker_trip_emits_open_event(self, world):
        federation, _, events = make_federation(world)
        breaker = federation.domain("upc").gateway_to("gmd").breaker
        threshold = breaker._threshold
        for _ in range(threshold):
            breaker.record_failure()
        [opened] = events.events(kind=KIND_BREAKER_OPEN)
        assert opened.attrs["streak"] == threshold

    def test_dead_letter_event_carries_the_origin_trace(self, world):
        federation, tracer, events = make_federation(world)  # no intermediate
        federation.domain("upc").gateway_to("gmd").breaker.force_open()
        result = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert result.reason_code == "gateway-dead-letter"
        root = origin_root(tracer)
        [letter] = events.events(kind=KIND_DEAD_LETTER)
        assert letter.trace_id == root.trace_id
        assert letter.attrs["gateway"] == "upc->gmd"

    def test_redrive_emits_one_event(self, world):
        federation, _, events = make_federation(world)
        gateway = federation.domain("upc").gateway_to("gmd")
        gateway.breaker.force_open()
        federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        gateway.breaker.reset()
        assert gateway.redrive() == 1
        [redrive] = events.events(kind=KIND_REDRIVE)
        assert redrive.attrs == {"gateway": "upc->gmd", "letters": 1}

    def test_relay_deadline_expiry_emits_deadline_event(self, world):
        federation, tracer, events = make_federation(world)
        upc = federation.domain("upc")
        world.network.set_link(
            upc.node, federation.domain("gmd").node,
            LinkSpec(latency_s=0.02, bandwidth_bps=1_000_000.0, loss=1.0),
        )
        result = federation.federated_exchange(
            "p-upc", "p-gmd", "app0", "app0", DOC, deadline=world.now + 2.0
        )
        assert not result.delivered
        deadline_events = events.events(kind=KIND_DEADLINE)
        assert deadline_events, "gateway deadline expiry must be logged"
        assert deadline_events[0].trace_id == origin_root(tracer).trace_id

    def test_health_flip_emits_transition_event(self, world):
        federation, _, events = make_federation(world, names=("d0", "d1", "d2"))
        federation.start_health_checks(period_s=1.0, timeout_s=0.5)
        d0, d1 = federation.domain("d0"), federation.domain("d1")
        world.network.set_link(
            d0.node, d1.node,
            LinkSpec(latency_s=0.02, bandwidth_bps=1_000_000.0, loss=1.0),
        )
        world.run_for(5.0)
        flips = events.events(kind=KIND_HEALTH_TRANSITION)
        assert any(
            not flip.attrs["healthy"] and "d1" in flip.attrs["key"]
            for flip in flips
        )
