"""Tests for reliable channels and request/reply."""

from __future__ import annotations

import pytest

from repro.sim.network import LinkSpec
from repro.sim.transport import ReliableChannel, RequestReply, connect_pair


class TestReliableChannel:
    def test_in_order_delivery_on_clean_link(self, world):
        world.add_site("hq", ["a", "b"])
        received = []
        channel = ReliableChannel(world.network, "a", "b", "ch", received.append)
        for i in range(5):
            channel.send(i)
        world.run()
        assert received == [0, 1, 2, 3, 4]
        assert channel.retransmissions == 0

    def test_recovers_from_loss(self, world):
        world.add_site("hq", ["a", "b"])
        world.network.set_link("a", "b", LinkSpec(loss=0.4))
        received = []
        channel = ReliableChannel(world.network, "a", "b", "ch", received.append)
        for i in range(20):
            channel.send(i)
        world.run()
        assert received == list(range(20))
        assert channel.retransmissions > 0

    def test_duplicates_suppressed(self, world):
        """Lost acks cause retransmits; receiver must not deliver twice."""
        world.add_site("hq", ["a", "b"])
        world.network.set_link("a", "b", LinkSpec(loss=0.3))
        received = []
        channel = ReliableChannel(world.network, "a", "b", "ch", received.append)
        for i in range(30):
            channel.send(i)
        world.run()
        assert received == list(range(30))
        assert channel.delivered == 30

    def test_gives_up_after_max_attempts(self, world):
        world.add_site("hq", ["a", "b"])
        failed = []
        channel = ReliableChannel(
            world.network, "a", "b", "ch", lambda p: None,
            max_attempts=3, on_failure=failed.append,
        )
        world.network.node("b").crash()
        channel.send("doomed")
        world.run()
        assert failed == ["doomed"]
        assert channel.failures == 1

    def test_bidirectional_pair(self, world):
        world.add_site("hq", ["a", "b"])
        at_b = []
        at_a = []
        fwd, bwd = connect_pair(world.network, "a", "b", "duo", at_b.append, at_a.append)
        fwd.send("to-b")
        bwd.send("to-a")
        world.run()
        assert at_b == ["to-b"]
        assert at_a == ["to-a"]


class TestRequestReply:
    def test_round_trip(self, world):
        world.add_site("hq", ["client", "server"])
        server = RequestReply(world.network, "server")
        server.serve("echo", lambda body: {"echoed": body})
        client = RequestReply(world.network, "client")
        replies = []
        client.request("server", "echo", "ping", replies.append)
        world.run()
        assert replies == [{"echoed": "ping"}]
        assert client.replies_received == 1

    def test_unknown_operation_returns_error(self, world):
        world.add_site("hq", ["client", "server"])
        RequestReply(world.network, "server")
        client = RequestReply(world.network, "client")
        replies = []
        client.request("server", "nope", {}, replies.append)
        world.run()
        assert "error" in replies[0]

    def test_handler_exception_travels_back(self, world):
        world.add_site("hq", ["client", "server"])
        server = RequestReply(world.network, "server")

        def boom(body):
            raise ValueError("bad input")

        server.serve("boom", boom)
        client = RequestReply(world.network, "client")
        replies = []
        client.request("server", "boom", {}, replies.append)
        world.run()
        assert "ValueError" in replies[0]["error"]

    def test_timeout_on_crashed_server(self, world):
        world.add_site("hq", ["client", "server"])
        RequestReply(world.network, "server")
        world.network.node("server").crash()
        client = RequestReply(world.network, "client")
        timeouts = []
        client.request("server", "echo", {}, lambda r: None, timeout_s=1.0, on_timeout=lambda: timeouts.append(1))
        world.run()
        assert timeouts == [1]
        assert client.timeouts == 1

    def test_duplicate_serve_rejected(self, world):
        from repro.util.errors import ConfigurationError

        world.add_site("hq", ["s"])
        server = RequestReply(world.network, "s")
        server.serve("op", lambda b: b)
        with pytest.raises(ConfigurationError):
            server.serve("op", lambda b: b)

    def test_concurrent_requests_correlated(self, world):
        world.add_site("hq", ["client", "server"])
        server = RequestReply(world.network, "server")
        server.serve("double", lambda body: body * 2)
        client = RequestReply(world.network, "client")
        replies = {}
        for i in range(10):
            client.request("server", "double", i, lambda r, i=i: replies.__setitem__(i, r))
        world.run()
        assert replies == {i: i * 2 for i in range(10)}


class TestFailureInjector:
    def test_crash_window(self, world):
        world.add_site("hq", ["a", "b"])
        received = []
        world.network.node("b").bind("p", lambda pkt: received.append(world.now))
        world.failures.crash_at("b", at=1.0, duration=2.0)
        # Before, during and after the outage.
        world.engine.schedule(0.5, lambda: world.network.send("a", "b", "p", "x"))
        world.engine.schedule(2.0, lambda: world.network.send("a", "b", "p", "x"))
        world.engine.schedule(4.0, lambda: world.network.send("a", "b", "p", "x"))
        world.run()
        assert len(received) == 2

    def test_partition_window(self, world):
        world.add_site("hq", ["a", "b"])
        received = []
        world.network.node("b").bind("p", lambda pkt: received.append(world.now))
        world.failures.partition_at([["a"], ["b"]], at=1.0, duration=2.0)
        world.engine.schedule(1.5, lambda: world.network.send("a", "b", "p", "x"))
        world.engine.schedule(4.0, lambda: world.network.send("a", "b", "p", "x"))
        world.run()
        assert len(received) == 1

    def test_random_crashes_reproducible(self):
        from repro.sim.world import World

        def outage_signature(seed):
            world = World(seed=seed)
            world.add_site("hq", ["a", "b", "c"])
            planned = world.failures.random_crashes(horizon=100.0, rate_per_node=0.05, mean_downtime=5.0)
            return [(o.node, round(o.start, 6)) for o in planned]

        assert outage_signature(3) == outage_signature(3)
