"""Tests for the ODP trader."""

from __future__ import annotations

import pytest

from repro.odp.objects import InterfaceRef
from repro.odp.trader import Constraint, ImportContext, Trader, constraints_from
from repro.util.errors import ConfigurationError, NoOfferError, TradingError


def _ref(node: str) -> InterfaceRef:
    return InterfaceRef(node, "svc", "main")


@pytest.fixture
def trader() -> Trader:
    t = Trader("hq")
    t.export("printing", _ref("n1"), {"cost": 5, "color": False}, exporter="ops")
    t.export("printing", _ref("n2"), {"cost": 2, "color": True}, exporter="ops")
    t.export("scanning", _ref("n3"), {"cost": 1}, exporter="lab")
    return t


class TestConstraints:
    def test_equality(self):
        assert Constraint("a", "==", 1).satisfied_by({"a": 1})
        assert not Constraint("a", "==", 1).satisfied_by({"a": 2})

    def test_comparisons(self):
        assert Constraint("a", "<=", 5).satisfied_by({"a": 5})
        assert Constraint("a", ">", 1).satisfied_by({"a": 2})
        assert not Constraint("a", "<", 1).satisfied_by({"a": 1})

    def test_in_and_contains(self):
        assert Constraint("lang", "in", ["en", "de"]).satisfied_by({"lang": "de"})
        assert Constraint("media", "contains", "text").satisfied_by({"media": ["text", "fax"]})

    def test_missing_property_fails(self):
        assert not Constraint("ghost", "==", 1).satisfied_by({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConfigurationError):
            Constraint("a", "~=", 1)

    def test_constraints_from_dict(self):
        built = constraints_from({"cost": 2})
        assert built[0].satisfied_by({"cost": 2})


class TestExportImport:
    def test_import_first_match(self, trader):
        offer = trader.import_one("printing")
        assert offer.service_type == "printing"

    def test_import_with_constraints(self, trader):
        offer = trader.import_one("printing", [Constraint("color", "==", True)])
        assert offer.ref.node == "n2"

    def test_preference_min(self, trader):
        offer = trader.import_one("printing", preference="min:cost")
        assert offer.properties["cost"] == 2

    def test_preference_max(self, trader):
        offer = trader.import_one("printing", preference="max:cost")
        assert offer.properties["cost"] == 5

    def test_bad_preference_rejected(self, trader):
        with pytest.raises(TradingError):
            trader.import_one("printing", preference="best")

    def test_no_match_raises(self, trader):
        with pytest.raises(NoOfferError):
            trader.import_one("printing", [Constraint("cost", "<", 0)])

    def test_unknown_type_raises(self, trader):
        with pytest.raises(NoOfferError):
            trader.import_one("teleportation")

    def test_withdraw_removes(self, trader):
        offers = trader.import_("scanning", max_offers=10)
        trader.withdraw(offers[0].offer_id)
        with pytest.raises(NoOfferError):
            trader.import_one("scanning")

    def test_withdraw_unknown_rejected(self, trader):
        with pytest.raises(TradingError):
            trader.withdraw("offer-9999")

    def test_max_offers_limits(self, trader):
        assert len(trader.import_("printing", max_offers=1)) == 1
        assert len(trader.import_("printing", max_offers=5)) == 2

    def test_counters(self, trader):
        trader.import_one("printing")
        assert trader.exports == 3
        assert trader.imports == 1


class TestServiceTypeHierarchy:
    def test_subtype_conforms(self):
        trader = Trader("t")
        trader.register_service_type("communication")
        trader.register_service_type("mail", parent="communication")
        trader.export("mail", _ref("n1"))
        offer = trader.import_one("communication")
        assert offer.service_type == "mail"

    def test_supertype_does_not_conform_down(self):
        trader = Trader("t")
        trader.register_service_type("communication")
        trader.register_service_type("mail", parent="communication")
        trader.export("communication", _ref("n1"))
        with pytest.raises(NoOfferError):
            trader.import_one("mail")

    def test_unknown_parent_rejected(self):
        trader = Trader("t")
        with pytest.raises(ConfigurationError):
            trader.register_service_type("mail", parent="ghost")

    def test_duplicate_type_rejected(self):
        trader = Trader("t")
        trader.register_service_type("x")
        with pytest.raises(ConfigurationError):
            trader.register_service_type("x")


class TestFederation:
    def test_linked_trader_searched_on_miss(self):
        local = Trader("upc")
        remote = Trader("gmd")
        remote.export("conferencing", _ref("bonn1"))
        local.link(remote)
        offer = local.import_one("conferencing")
        assert offer.ref.node == "bonn1"

    def test_local_offer_preferred(self):
        local = Trader("upc")
        remote = Trader("gmd")
        local.export("conferencing", _ref("bcn1"))
        remote.export("conferencing", _ref("bonn1"))
        local.link(remote)
        assert local.import_one("conferencing").ref.node == "bcn1"

    def test_search_links_false_stays_local(self):
        local = Trader("upc")
        remote = Trader("gmd")
        remote.export("conferencing", _ref("bonn1"))
        local.link(remote)
        with pytest.raises(NoOfferError):
            local.import_("conferencing", search_links=False)

    def test_self_link_rejected(self):
        trader = Trader("t")
        with pytest.raises(ConfigurationError):
            trader.link(trader)

    def test_duplicate_link_rejected(self):
        a, b = Trader("a"), Trader("b")
        a.link(b)
        with pytest.raises(ConfigurationError):
            a.link(b)

    def test_revoked_link_stops_resolving_offers(self):
        local = Trader("upc")
        remote = Trader("gmd")
        remote.export("conferencing", _ref("bonn1"))
        local.link(remote)
        assert local.import_one("conferencing").ref.node == "bonn1"
        local.unlink("gmd")
        assert local.links() == []
        with pytest.raises(NoOfferError):
            local.import_one("conferencing")

    def test_unlink_unknown_link_rejected(self):
        with pytest.raises(ConfigurationError):
            Trader("t").unlink("ghost")

    def test_unlink_is_directional(self):
        a, b = Trader("a"), Trader("b")
        a.export("printing", _ref("node-a"))
        b.export("conferencing", _ref("node-b"))
        a.link(b)
        b.link(a)
        a.unlink("b")
        # the reverse link survives the revocation
        assert b.import_one("printing").ref.node == "node-a"
        with pytest.raises(NoOfferError):
            a.import_one("conferencing")


class TestTradingPolicy:
    def test_policy_hook_hides_offers(self, trader):
        trader.add_policy_hook(lambda offer, ctx: offer.properties.get("cost", 0) <= 2)
        offers = trader.import_("printing", max_offers=10)
        assert all(o.properties["cost"] <= 2 for o in offers)
        assert trader.policy_rejections == 1

    def test_policy_uses_import_context(self, trader):
        trader.add_policy_hook(lambda offer, ctx: ctx.organisation == offer.exporter)
        offer = trader.import_one("scanning", context=ImportContext(organisation="lab"))
        assert offer.exporter == "lab"
        with pytest.raises(NoOfferError):
            trader.import_one("scanning", context=ImportContext(organisation="rivals"))

    def test_all_hooks_must_pass(self, trader):
        trader.add_policy_hook(lambda offer, ctx: True)
        trader.add_policy_hook(lambda offer, ctx: False)
        with pytest.raises(NoOfferError):
            trader.import_one("printing")


class TestLinkedImportDeterminism:
    """``import_`` must behave as a pure function of (seed, offer set,
    call sequence): identically-built trader federations return
    identical orderings, link search order is name-sorted rather than
    insertion-ordered, and unlink/re-link churn restores the exact
    pre-churn results."""

    def _federation(self):
        from repro.sim.rng import SeededRng

        local = Trader("upc", rng=SeededRng(42))
        remote = Trader("gmd", rng=SeededRng(42))
        for i in range(6):
            remote.export("printing", _ref(f"r{i}"), {"cost": i}, exporter="ops")
        local.link(remote)
        return local, remote

    def test_random_preference_identical_across_builds(self):
        def run():
            local, _ = self._federation()
            return [
                [o.ref.node for o in local.import_("printing", preference="random", max_offers=6)]
                for _ in range(3)
            ]

        assert run() == run()

    def test_link_search_order_is_name_sorted(self):
        hub = Trader("hub")
        alpha, beta = Trader("alpha"), Trader("beta")
        alpha.export("printing", _ref("node-alpha"))
        beta.export("printing", _ref("node-beta"))
        # link in reverse name order: resolution must still prefer the
        # lexicographically-first link, not the insertion-first one
        hub.link(beta)
        hub.link(alpha)
        assert hub.import_one("printing").ref.node == "node-alpha"

    def test_unlink_relink_restores_identical_results(self):
        local, remote = self._federation()
        before = [
            o.ref.node
            for o in local.import_("printing", preference="min:cost", max_offers=6)
        ]
        local.unlink("gmd")
        with pytest.raises(NoOfferError):
            local.import_("printing")
        local.link(remote)
        after = [
            o.ref.node
            for o in local.import_("printing", preference="min:cost", max_offers=6)
        ]
        assert after == before == [f"r{i}" for i in range(6)]

    def test_churn_sequence_deterministic_across_builds(self):
        # the full call sequence — import, unlink, re-link, import with
        # a random preference — replays identically in a second
        # identically-seeded universe
        def run():
            local, remote = self._federation()
            trace = [[o.ref.node for o in local.import_("printing", preference="random", max_offers=6)]]
            local.unlink("gmd")
            local.link(remote)
            trace.append([o.ref.node for o in local.import_("printing", preference="random", max_offers=6)])
            return trace

        assert run() == run()
