"""Tests for the exchange fast path: resolution caches, ``exchange_many``
and the unknown-receiver fail path.

Covers the cache-correctness risk directly: a revoked policy, a person
moving organisation or a new application registering mid-run must all be
visible to the very next exchange (no stale-cache deliveries), and the
cached path must produce field-identical outcomes to the uncached one.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import (
    REASON_DELIVERED,
    REASON_POLICY,
    REASON_UNKNOWN_RECEIVER,
    CSCWEnvironment,
    ExchangeOutcome,
    ExchangeRequest,
)
from repro.obs import MetricsRegistry, Tracer
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World

DOC = {"topic": "ODP", "entry": "will it help?", "author": "ana"}


def make_env(world, *, metrics=None, tracer=None, cache=True):
    builder = CSCWEnvironment.builder().with_world(world).with_resolution_cache(cache)
    if metrics is not None:
        builder = builder.with_metrics(metrics)
    if tracer is not None:
        builder = builder.with_tracer(tracer)
    env = builder.build()
    upc = Organisation("upc", "UPC")
    upc.add_person(Person("ana", "Ana Lopez", "upc"))
    gmd = Organisation("gmd", "GMD")
    gmd.add_person(Person("wolf", "Wolf Prinz", "gmd"))
    env.knowledge_base.add_organisation(upc)
    env.knowledge_base.add_organisation(gmd)
    env.knowledge_base.policies.declare(
        "upc", "gmd", {INTERACTION_MESSAGE, "service-import"}, symmetric=True
    )
    world.add_site("bcn", ["ws-ana"])
    world.add_site("bonn", ["ws-wolf"])
    env.register_person(Communicator("ana", "ws-ana"))
    env.register_person(Communicator("wolf", "ws-wolf"))
    ConferencingSystem().attach(env, exporter_org="upc")
    MessageSystem().attach(env, exporter_org="gmd")
    return env


@pytest.fixture
def env(world):
    return make_env(world)


def outcome_fields(outcome: ExchangeOutcome) -> dict:
    """All outcome fields except the (per-span) trace id."""
    return {
        f.name: getattr(outcome, f.name)
        for f in fields(outcome)
        if f.name != "trace_id"
    }


class TestUnknownReceiver:
    def test_exchange_fails_instead_of_blackholing(self, env):
        outcome = env.exchange("ana", "nobody", "conferencing", "message-system", DOC)
        assert not outcome.delivered
        assert outcome.reason_code == REASON_UNKNOWN_RECEIVER
        assert "no registered communicator" in outcome.reason
        # the silent-blackhole regression: nothing may be queued forever
        assert env.pending_for("nobody") == 0
        assert env.exchanges_failed == 1

    def test_exchange_many_uses_the_same_fail_path(self, env):
        outcomes = env.exchange_many(
            [
                ExchangeRequest("ana", "wolf", "conferencing", "message-system", DOC),
                ExchangeRequest("ana", "nobody", "conferencing", "message-system", DOC),
            ]
        )
        assert outcomes[0].delivered
        assert outcomes[1].reason_code == REASON_UNKNOWN_RECEIVER
        assert env.pending_for("nobody") == 0

    def test_absent_but_registered_receiver_still_queues(self, env):
        env.person_leaves("wolf")
        outcome = env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        assert outcome.delivered
        assert outcome.mode == "asynchronous"
        assert env.pending_for("wolf") == 1


class TestExchangeMany:
    def test_batch_matches_per_call_loop_field_for_field(self, world):
        loop_env = make_env(world)
        batch_env = make_env(World(seed=0))
        requests = [
            ExchangeRequest("ana", "wolf", "conferencing", "message-system", DOC),
            ExchangeRequest("wolf", "ana", "message-system", "conferencing",
                            {"to": "ana", "subject": "re", "text": "yes"}),
            ExchangeRequest("ana", "ghost", "conferencing", "message-system", DOC),
        ]
        loop_outcomes = [
            loop_env.exchange(r.sender, r.receiver, r.sender_app, r.receiver_app,
                              r.document, r.activity_id, r.profile, r.interaction)
            for r in requests
        ]
        batch_outcomes = batch_env.exchange_many(requests)
        assert [outcome_fields(o) for o in batch_outcomes] == [
            outcome_fields(o) for o in loop_outcomes
        ]

    def test_batch_shares_one_trace_span(self, world):
        tracer = Tracer()
        env = make_env(world, tracer=tracer)
        requests = [
            ExchangeRequest("ana", "wolf", "conferencing", "message-system", DOC)
            for _ in range(4)
        ]
        outcomes = env.exchange_many(requests)
        spans = tracer.finished()
        assert len(spans) == 1
        assert spans[0].name == "env.exchange_many"
        assert spans[0].tags["batch"] == 4
        assert spans[0].tags["delivered"] == 4
        assert {o.trace_id for o in outcomes} == {spans[0].trace_id}

    def test_batch_metrics_equal_per_call_metrics(self, world):
        loop_metrics = MetricsRegistry()
        batch_metrics = MetricsRegistry()
        loop_env = make_env(world, metrics=loop_metrics)
        batch_env = make_env(World(seed=0), metrics=batch_metrics)
        requests = [
            ExchangeRequest("ana", "wolf", "conferencing", "message-system", DOC),
            ExchangeRequest("ana", "nobody", "conferencing", "message-system", DOC),
            ExchangeRequest("wolf", "ana", "message-system", "conferencing",
                            {"to": "ana", "subject": "s", "text": "t"}),
        ]
        for r in requests:
            loop_env.exchange(r.sender, r.receiver, r.sender_app, r.receiver_app,
                              r.document, r.activity_id, r.profile, r.interaction)
        batch_env.exchange_many(requests)
        loop_snapshot = loop_metrics.snapshot()
        batch_snapshot = batch_metrics.snapshot()
        exchange_counters = {
            name: value
            for name, value in loop_snapshot["counters"].items()
            if name.startswith("env.exchange.")
        }
        assert exchange_counters == {
            name: value
            for name, value in batch_snapshot["counters"].items()
            if name.startswith("env.exchange.")
        }
        assert (
            loop_snapshot["histograms"]["env.exchange.document_bytes"]
            == batch_snapshot["histograms"]["env.exchange.document_bytes"]
        )

    def test_empty_batch(self, env):
        assert env.exchange_many([]) == []


class TestResolutionCache:
    def test_repeat_exchanges_hit_the_cache(self, env):
        for _ in range(3):
            env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        stats = env.resolution.stats()
        assert stats["route_misses"] == 1
        assert stats["route_hits"] == 2
        assert stats["format_misses"] == 1
        assert stats["format_hits"] == 2
        # the underlying policy registry was only consulted once
        assert env.knowledge_base.policies.checks == 1

    def test_cache_counters_exported_when_instrumented(self, world):
        metrics = MetricsRegistry()
        env = make_env(world, metrics=metrics)
        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        counters = metrics.snapshot()["counters"]
        assert counters["env.cache.route.miss"] == 1
        assert counters["env.cache.route.hit"] == 1
        assert counters["env.cache.formats.hit"] == 1
        assert counters["interchange.plan.hit"] == 1

    def test_cached_and_uncached_outcomes_identical(self, world):
        warm = make_env(world)
        cold = make_env(World(seed=0), cache=False)
        for _ in range(2):
            warm_outcome = warm.exchange("ana", "wolf", "conferencing",
                                         "message-system", DOC)
            cold_outcome = cold.exchange("ana", "wolf", "conferencing",
                                         "message-system", DOC)
            assert outcome_fields(warm_outcome) == outcome_fields(cold_outcome)
        assert cold.resolution.stats()["routes_cached"] == 0

    def test_describe_reports_cache_stats(self, env):
        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        stats = env.describe()["resolution_cache"]
        assert stats["route_misses"] == 1


class TestCacheInvalidation:
    def test_policy_revoked_mid_run_blocks_next_exchange(self, env):
        assert env.exchange("ana", "wolf", "conferencing", "message-system",
                            DOC).delivered
        env.knowledge_base.policies.revoke("upc", "gmd", symmetric=True)
        outcome = env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        assert not outcome.delivered
        assert outcome.reason_code == REASON_POLICY
        # exchange_many sees the revocation too
        [batched] = env.exchange_many(
            [ExchangeRequest("ana", "wolf", "conferencing", "message-system", DOC)]
        )
        assert batched.reason_code == REASON_POLICY

    def test_policy_redeclared_mid_run_unblocks(self, env):
        env.knowledge_base.policies.revoke("upc", "gmd", symmetric=True)
        assert not env.exchange("ana", "wolf", "conferencing", "message-system",
                                DOC).delivered
        env.knowledge_base.policies.declare("upc", "gmd", {"*"}, symmetric=True)
        assert env.exchange("ana", "wolf", "conferencing", "message-system",
                            DOC).delivered

    def test_person_moving_organisation_reresolves(self, env):
        # ana and wolf are cross-org: the warm route crosses upc -> gmd.
        assert env.exchange("ana", "wolf", "conferencing", "message-system",
                            DOC).delivered
        assert env.resolution.stats()["routes_cached"] == 1
        # wolf joins upc: the same route is now intra-organisational, so
        # it must keep working even after the upc<->gmd policy vanishes.
        env.knowledge_base.move_person("wolf", "upc")
        env.knowledge_base.policies.revoke("upc", "gmd", symmetric=True)
        outcome = env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        assert outcome.delivered
        assert "organisation" not in outcome.handled
        assert env.knowledge_base.organisation_of("wolf") == "upc"

    def test_mid_run_person_join_is_visible(self, env):
        outcome = env.exchange("heinz", "wolf", "conferencing", "message-system", DOC)
        # heinz unknown: both orgs resolve to "" (legacy same-org route)
        assert outcome.delivered
        env.knowledge_base.add_person(Person("heinz", "Heinz Berg", "gmd"))
        env.register_person(Communicator("heinz", "ws-wolf"))
        outcome = env.exchange("heinz", "ana", "conferencing", "message-system", DOC)
        assert outcome.delivered
        assert "organisation" in outcome.handled

    def test_app_registration_invalidates_format_pairs(self, env):
        from repro.environment.registry import (
            AppDescriptor,
            Q_DIFFERENT_TIME_DIFFERENT_PLACE,
        )

        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        before = env.resolution.stats()["formats_cached"]
        assert before == 1
        env.applications.register(
            AppDescriptor(name="late-app",
                          quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE]),
            lambda person, document, info: None,
        )
        stats = env.resolution.stats()
        assert stats["formats_cached"] == 0
        assert stats["invalidations"] >= 1
        # and the pair re-resolves correctly afterwards
        assert env.exchange("ana", "wolf", "conferencing", "message-system",
                            DOC).delivered


class TestInterchangePlanCache:
    def test_repeated_pair_uses_plan(self, env):
        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        assert env.interchange.plan_misses == 1
        assert env.interchange.plan_hits == 1

    def test_register_unrelated_preserves_plans(self, env):
        # Keyed invalidation: a registration that no cached plan uses
        # must not evict anything (PR 7's tag-eviction discipline).
        from repro.information.interchange import FormatConverter, make_common

        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        env.interchange.register(
            FormatConverter(
                "fresh",
                lambda d: make_common("note", d.get("t", ""), d.get("b", "")),
                lambda c: {"t": c["title"], "b": c["body"]},
            )
        )
        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        assert env.interchange.plan_misses == 1
        assert env.interchange.plan_hits == 1
        assert env.interchange.plan_evictions == 0

    def test_replace_invalidates_affected_plans(self, env):
        from repro.information.interchange import FormatConverter, make_common

        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        env.interchange.register(
            FormatConverter(
                "conference",
                lambda d: make_common(
                    "conference", d.get("topic", ""), d.get("entry", "")
                ),
                lambda c: {"topic": c["title"], "entry": c["body"]},
            ),
            replace=True,
        )
        env.exchange("ana", "wolf", "conferencing", "message-system", DOC)
        assert env.interchange.plan_misses == 2
        assert env.interchange.plan_evictions >= 1

    def test_translation_results_unchanged_by_plan_cache(self, env):
        first = env.interchange.translate("conference", "memo",
                                          {"topic": "t", "entry": "e", "author": "a"})
        second = env.interchange.translate("conference", "memo",
                                           {"topic": "t", "entry": "e", "author": "a"})
        assert first == second
