"""Tests for envelopes, routing tables and the message store."""

from __future__ import annotations

import pytest

from repro.messaging.envelope import Envelope, InterpersonalMessage
from repro.messaging.message_store import MessageStore
from repro.messaging.names import or_name
from repro.messaging.routing import RoutingTable
from repro.util.errors import MessagingError, NoRouteError

ANA = or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez")
WOLF = or_name("C=DE;A= ;P=GMD;G=Wolf;S=Prinz")
TOM = or_name("C=UK;A= ;P=Lancaster;G=Tom;S=Rodden")


def _envelope(recipients=None, **kwargs) -> Envelope:
    content = InterpersonalMessage(ipm_id="ipm-1", subject="hello")
    return Envelope(
        message_id="msg-1",
        originator=ANA,
        recipients=[WOLF] if recipients is None else recipients,
        content=content,
        **kwargs,
    )


class TestEnvelope:
    def test_requires_recipients(self):
        with pytest.raises(MessagingError):
            _envelope(recipients=[])

    def test_unknown_priority_rejected(self):
        with pytest.raises(MessagingError):
            _envelope(priority="whenever")

    def test_trace_and_loop_detection(self):
        envelope = _envelope()
        envelope.stamp("mta-a", 1.0)
        envelope.stamp("mta-b", 2.0)
        assert envelope.hop_count() == 2
        assert envelope.visited("mta-a")
        assert not envelope.visited("mta-c")

    def test_split_for_single_recipient(self):
        envelope = _envelope(recipients=[WOLF, TOM])
        envelope.stamp("mta-a", 1.0)
        single = envelope.for_single_recipient(TOM)
        assert single.recipients == [TOM]
        assert single.visited("mta-a")
        assert single.message_id == envelope.message_id

    def test_document_round_trip(self):
        envelope = _envelope(recipients=[WOLF, TOM], delivery_report_requested=True)
        envelope.stamp("mta-a", 1.0)
        restored = Envelope.from_document(envelope.to_document())
        assert restored.message_id == envelope.message_id
        assert restored.recipients == envelope.recipients
        assert restored.trace[0].mta == "mta-a"
        assert restored.delivery_report_requested

    def test_size_includes_body(self):
        small = _envelope().size_bytes()
        content = InterpersonalMessage(ipm_id="i", subject="s")
        from repro.messaging.body_parts import fax_body

        content.body_parts.append(fax_body(2))
        big = Envelope(message_id="m", originator=ANA, recipients=[WOLF], content=content)
        assert big.size_bytes() > small + 50_000


class TestRoutingTable:
    def test_most_specific_wins(self):
        table = RoutingTable()
        table.add_default("mta-hub")
        table.add_route("de", "*", "*", "mta-de")
        table.add_route("de", "*", "gmd", "mta-gmd")
        assert table.next_hop(("de", "", "gmd")) == "mta-gmd"
        assert table.next_hop(("de", "", "other")) == "mta-de"
        assert table.next_hop(("es", "", "upc")) == "mta-hub"

    def test_no_route_raises(self):
        with pytest.raises(NoRouteError):
            RoutingTable().next_hop(("es", "", "upc"))

    def test_wildcard_matching_is_case_insensitive(self):
        table = RoutingTable()
        table.add_route("DE", "*", "GMD", "mta-gmd")
        assert table.next_hop(("de", "anything", "gmd")) == "mta-gmd"


class TestMessageStore:
    def test_deliver_list_fetch(self):
        store = MessageStore()
        store.deliver("ana.lopez", _envelope(), time=1.0)
        listed = store.list_messages("ana.lopez")
        assert len(listed) == 1
        fetched = store.fetch("ana.lopez", listed[0].sequence)
        assert fetched.read

    def test_unread_filter(self):
        store = MessageStore()
        store.deliver("m", _envelope(), 1.0)
        store.deliver("m", _envelope(), 2.0)
        store.fetch("m", 1)
        assert store.unread_count("m") == 1
        assert len(store.list_messages("m", unread_only=True)) == 1

    def test_fetch_unknown_rejected(self):
        with pytest.raises(MessagingError):
            MessageStore().fetch("nobody", 1)

    def test_delete(self):
        store = MessageStore()
        store.deliver("m", _envelope(), 1.0)
        store.delete("m", 1)
        assert store.list_messages("m") == []
        with pytest.raises(MessagingError):
            store.delete("m", 1)

    def test_summaries(self):
        store = MessageStore()
        store.deliver("m", _envelope(), 1.5)
        summary = store.summary_documents("m")[0]
        assert summary["subject"] == "hello"
        assert summary["delivered_at"] == 1.5
        assert not summary["read"]
