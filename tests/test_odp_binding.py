"""Tests for capsules, channels and the binding factory."""

from __future__ import annotations

import pytest

from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import ComputationalObject, signature
from repro.util.errors import BindingError, ConfigurationError


def _echo_object(object_id="echo-1") -> ComputationalObject:
    obj = ComputationalObject(object_id)
    obj.offer(
        signature("echo", "say", "fail"),
        {
            "say": lambda args: {"heard": args.get("text", "")},
            "fail": lambda args: (_ for _ in ()).throw(ValueError("kaboom")),
        },
    )
    return obj


@pytest.fixture
def deployment(world):
    world.add_site("hq", ["server", "client"])
    capsule = Capsule(world.network, "server")
    refs = capsule.deploy(_echo_object())
    factory = BindingFactory(world.network)
    factory.register_capsule(capsule)
    return world, capsule, refs, factory


class TestCapsule:
    def test_deploy_returns_refs(self, deployment):
        world, capsule, refs, factory = deployment
        assert refs["echo"].node == "server"
        assert refs["echo"].object_id == "echo-1"

    def test_duplicate_deploy_rejected(self, deployment):
        world, capsule, refs, factory = deployment
        with pytest.raises(ConfigurationError):
            capsule.deploy(_echo_object())

    def test_withdraw_unknown_rejected(self, deployment):
        world, capsule, refs, factory = deployment
        with pytest.raises(BindingError):
            capsule.withdraw("ghost")

    def test_hosts_and_object_ids(self, deployment):
        world, capsule, refs, factory = deployment
        assert capsule.hosts("echo-1")
        assert capsule.object_ids() == ["echo-1"]

    def test_migration_moves_object(self, world):
        world.add_site("hq", ["n1", "n2"])
        source = Capsule(world.network, "n1")
        target = Capsule(world.network, "n2")
        source.deploy(_echo_object())
        new_refs = source.migrate_to("echo-1", target)
        assert not source.hosts("echo-1")
        assert target.hosts("echo-1")
        assert new_refs["echo"].node == "n2"


class TestChannel:
    def test_remote_invocation_round_trip(self, deployment):
        world, capsule, refs, factory = deployment
        channel = factory.bind("client", refs["echo"])
        result = channel.call(world, "say", {"text": "hello"})
        assert result == {"heard": "hello"}
        assert channel.completed == 1

    def test_handler_exception_becomes_binding_error(self, deployment):
        world, capsule, refs, factory = deployment
        channel = factory.bind("client", refs["echo"])
        with pytest.raises(BindingError, match="kaboom"):
            channel.call(world, "fail")

    def test_unknown_object_reported(self, deployment):
        world, capsule, refs, factory = deployment
        from repro.odp.objects import InterfaceRef

        channel = factory.bind("client", InterfaceRef("server", "ghost", "echo"))
        with pytest.raises(BindingError, match="not found"):
            channel.call(world, "say")

    def test_timeout_on_crashed_server(self, deployment):
        world, capsule, refs, factory = deployment
        channel = factory.bind("client", refs["echo"], timeout_s=1.0)
        world.network.node("server").crash()
        with pytest.raises(BindingError, match="timeout"):
            channel.call(world, "say")
        assert channel.failed == 1

    def test_client_colocated_with_capsule_reuses_endpoint(self, deployment):
        """A client on the capsule's own node must share the RPC endpoint."""
        world, capsule, refs, factory = deployment
        channel = factory.bind("server", refs["echo"])
        assert channel.call(world, "say", {"text": "local"}) == {"heard": "local"}

    def test_many_channels_one_client_node(self, deployment):
        world, capsule, refs, factory = deployment
        first = factory.bind("client", refs["echo"])
        second = factory.bind("client", refs["echo"])
        assert first.call(world, "say", {"text": "a"}) == {"heard": "a"}
        assert second.call(world, "say", {"text": "b"}) == {"heard": "b"}

    def test_capsule_lookup_via_factory(self, deployment):
        world, capsule, refs, factory = deployment
        assert factory.capsule("server") is capsule
        with pytest.raises(BindingError):
            factory.capsule("elsewhere")

    def test_dispatch_counter_increments(self, deployment):
        world, capsule, refs, factory = deployment
        channel = factory.bind("client", refs["echo"])
        channel.call(world, "say", {"text": "x"})
        assert capsule.dispatched == 1
