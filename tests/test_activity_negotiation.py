"""Tests for responsibility/competence negotiation."""

from __future__ import annotations

import pytest

from repro.activity.model import Activity, ActivityRegistry
from repro.activity.negotiation import NegotiationService, NegotiationState
from repro.util.errors import NegotiationError


@pytest.fixture
def service() -> NegotiationService:
    registry = ActivityRegistry()
    registry.create(Activity("report", "write report"))
    return NegotiationService(registry)


class TestResponsibilityNegotiation:
    def test_propose_accept_settle(self, service):
        negotiation = service.propose_responsibility("report", "ana", "joan", "joan")
        negotiation.accept("joan")
        service.settle(negotiation.negotiation_id)
        assert service.responsible_for("report") == "joan"

    def test_counter_swaps_turn(self, service):
        negotiation = service.propose_responsibility("report", "ana", "joan", "joan")
        negotiation.counter("joan", {"responsible": "ana"})
        # Now it is ana's turn; joan may not respond again.
        with pytest.raises(NegotiationError):
            negotiation.accept("joan")
        negotiation.accept("ana")
        service.settle(negotiation.negotiation_id)
        assert service.responsible_for("report") == "ana"

    def test_reject_closes(self, service):
        negotiation = service.propose_responsibility("report", "ana", "joan", "joan")
        negotiation.reject("joan")
        assert negotiation.state is NegotiationState.REJECTED
        with pytest.raises(NegotiationError):
            negotiation.accept("joan")
        with pytest.raises(NegotiationError):
            service.settle(negotiation.negotiation_id)

    def test_withdraw_only_by_initiator(self, service):
        negotiation = service.propose_responsibility("report", "ana", "joan", "joan")
        with pytest.raises(NegotiationError):
            negotiation.withdraw("joan")
        negotiation.withdraw("ana")
        assert negotiation.state is NegotiationState.WITHDRAWN

    def test_unknown_activity_rejected(self, service):
        with pytest.raises(Exception):
            service.propose_responsibility("ghost", "ana", "joan", "joan")

    def test_open_negotiations_listing(self, service):
        first = service.propose_responsibility("report", "ana", "joan", "joan")
        second = service.propose_responsibility("report", "joan", "ana", "ana")
        first.accept("joan")
        assert [n.negotiation_id for n in service.open_negotiations()] == [
            second.negotiation_id
        ]

    def test_multi_round_transcript(self, service):
        negotiation = service.propose_responsibility("report", "ana", "joan", "joan")
        negotiation.counter("joan", {"responsible": "ana"})
        negotiation.counter("ana", {"responsible": "marta"})
        negotiation.accept("joan")
        actions = [step[1] for step in negotiation.transcript]
        assert actions == ["propose", "counter", "counter", "accept"]
        assert negotiation.rounds == 2


class TestCompetenceNegotiation:
    def test_division_settles(self, service):
        division = {"ana": ["sections 1-3"], "joan": ["sections 4-6"]}
        negotiation = service.propose_competence("report", "ana", "joan", division)
        negotiation.accept("joan")
        service.settle(negotiation.negotiation_id)
        assert service.competence["report"]["joan"] == ["sections 4-6"]

    def test_countered_division_wins(self, service):
        negotiation = service.propose_competence(
            "report", "ana", "joan", {"ana": ["all"]}
        )
        negotiation.counter("joan", {"division": {"ana": ["half"], "joan": ["half"]}})
        negotiation.accept("ana")
        service.settle(negotiation.negotiation_id)
        assert set(service.competence["report"]) == {"ana", "joan"}

    def test_unknown_negotiation_rejected(self, service):
        with pytest.raises(NegotiationError):
            service.get("neg-9999")
