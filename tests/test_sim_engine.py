"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, PeriodicTask
from repro.util.errors import SchedulingError


class TestEngine:
    def test_time_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(2.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]

    def test_ties_run_in_schedule_order(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append("first"))
        engine.schedule(1.0, lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(3.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]
        assert engine.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().schedule(-0.1, lambda: None)

    def test_cancel_prevents_execution(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_leaves_future_events(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(5.0, lambda: fired.append("b"))
        engine.run_until(2.0)
        assert fired == ["a"]
        assert engine.now == 2.0
        assert engine.pending_count == 1

    def test_run_for_advances_relative(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run_for(1.0)
        engine.schedule(1.0, lambda: None)
        engine.run_for(1.0)
        assert engine.now == 2.0

    def test_events_scheduled_during_run_execute(self):
        engine = Engine()
        order = []

        def outer():
            order.append("outer")
            engine.schedule(1.0, lambda: order.append("inner"))

        engine.schedule(1.0, outer)
        engine.run()
        assert order == ["outer", "inner"]

    def test_runaway_loop_guard(self):
        engine = Engine()

        def forever():
            engine.schedule(0.1, forever)

        engine.schedule(0.1, forever)
        with pytest.raises(SchedulingError):
            engine.run(max_events=100)

    def test_max_events_executes_at_most_the_limit(self):
        # regression: run(max_events=N) used to execute N+1 events
        engine = Engine()

        def forever():
            engine.schedule(0.1, forever)

        engine.schedule(0.1, forever)
        with pytest.raises(SchedulingError):
            engine.run(max_events=100)
        assert engine.processed_count == 100

    def test_max_events_equal_to_queue_size_is_fine(self):
        engine = Engine()
        for index in range(5):
            engine.schedule(float(index), lambda: None)
        assert engine.run(max_events=5) == 5

    def test_run_until_respects_max_events(self):
        engine = Engine()
        for index in range(6):
            engine.schedule(0.1 * index, lambda: None)
        with pytest.raises(SchedulingError):
            engine.run_until(10.0, max_events=3)
        assert engine.processed_count == 3
        engine2 = Engine()
        for index in range(3):
            engine2.schedule(0.1 * index, lambda: None)
        assert engine2.run_until(10.0, max_events=3) == 3

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: engine.schedule_at(5.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_processed_count(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.processed_count == 2


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now)).start()
        engine.run_until(3.5)
        task.stop()
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_halts_firings(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(1)).start()
        engine.run_until(2.0)
        task.stop()
        engine.run_until(10.0)
        assert task.fired_count == 2

    def test_zero_period_rejected(self):
        with pytest.raises(SchedulingError):
            PeriodicTask(Engine(), 0.0, lambda: None)

    def test_raising_callback_does_not_stop_future_firings(self):
        # regression: one exception used to silently kill the task
        engine = Engine()
        ticks = []

        def flaky():
            ticks.append(engine.now)
            if len(ticks) == 2:
                raise RuntimeError("one bad poll")

        task = PeriodicTask(engine, 1.0, flaky).start()
        engine.run_until(4.5)
        task.stop()
        assert ticks == [1.0, 2.0, 3.0, 4.0]
        assert task.fired_count == 4
        assert task.error_count == 1

    def test_raising_callback_counted_in_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        engine = Engine()
        metrics = MetricsRegistry()
        engine.attach_metrics(metrics)

        def always_raises():
            raise RuntimeError("boom")

        task = PeriodicTask(engine, 1.0, always_raises).start()
        engine.run_until(3.0)
        task.stop()
        assert task.error_count == 3
        assert metrics.snapshot()["counters"]["sim.periodic.errors"] == 3
