"""Tests for naming contexts and federated domains."""

from __future__ import annotations

import pytest

from repro.odp.naming import NamingContext, NamingDomain
from repro.odp.objects import InterfaceRef
from repro.util.errors import ConfigurationError, NameError_


def _ref(node: str) -> InterfaceRef:
    return InterfaceRef(node, "obj", "iface")


class TestNamingContext:
    def test_bind_and_resolve(self):
        ctx = NamingContext()
        ctx.bind("services/mail", _ref("n1"))
        assert ctx.resolve("services/mail").node == "n1"

    def test_duplicate_bind_rejected(self):
        ctx = NamingContext()
        ctx.bind("a", _ref("n1"))
        with pytest.raises(ConfigurationError):
            ctx.bind("a", _ref("n2"))

    def test_rebind_replaces(self):
        ctx = NamingContext()
        ctx.bind("a", _ref("n1"))
        ctx.rebind("a", _ref("n2"))
        assert ctx.resolve("a").node == "n2"

    def test_unbind(self):
        ctx = NamingContext()
        ctx.bind("a", _ref("n1"))
        ctx.unbind("a")
        with pytest.raises(NameError_):
            ctx.resolve("a")

    def test_unbind_missing_rejected(self):
        with pytest.raises(NameError_):
            NamingContext().unbind("ghost")

    def test_resolve_through_missing_context_rejected(self):
        with pytest.raises(NameError_):
            NamingContext().resolve("no/such/path")

    def test_empty_path_rejected(self):
        with pytest.raises(NameError_):
            NamingContext().bind("", _ref("n"))

    def test_list_names(self):
        ctx = NamingContext()
        ctx.bind("services/mail", _ref("n1"))
        ctx.bind("services/news", _ref("n2"))
        ctx.bind("admin", _ref("n3"))
        assert ctx.list_names() == ["admin", "services/mail", "services/news"]
        assert ctx.list_names("services") == ["services/mail", "services/news"]

    def test_list_names_unknown_prefix_empty(self):
        assert NamingContext().list_names("nothing") == []


class TestNamingDomain:
    def test_local_resolution(self):
        domain = NamingDomain("upc")
        domain.bind("services/mail", _ref("bcn1"))
        assert domain.resolve("services/mail").node == "bcn1"

    def test_federated_resolution(self):
        upc = NamingDomain("upc")
        gmd = NamingDomain("gmd")
        gmd.bind("services/conf", _ref("bonn1"))
        upc.federate(gmd)
        assert upc.resolve("gmd:/services/conf").node == "bonn1"

    def test_unknown_federated_domain_rejected(self):
        with pytest.raises(NameError_):
            NamingDomain("upc").resolve("ghost:/x")

    def test_bind_into_federated_rejected(self):
        upc = NamingDomain("upc")
        with pytest.raises(NameError_):
            upc.bind("gmd:/x", _ref("n"))

    def test_self_federation_rejected(self):
        upc = NamingDomain("upc")
        with pytest.raises(ConfigurationError):
            upc.federate(NamingDomain("upc"))

    def test_duplicate_federation_rejected(self):
        upc, gmd = NamingDomain("upc"), NamingDomain("gmd")
        upc.federate(gmd)
        with pytest.raises(ConfigurationError):
            upc.federate(gmd)

    def test_bad_domain_name_rejected(self):
        with pytest.raises(ConfigurationError):
            NamingDomain("with:colon")

    def test_federated_domains_listed(self):
        upc, gmd = NamingDomain("upc"), NamingDomain("gmd")
        upc.federate(gmd)
        assert upc.federated_domains() == ["gmd"]
