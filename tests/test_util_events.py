"""Tests for the hierarchical-topic event bus."""

from __future__ import annotations

import pytest

from repro.util.events import EventBus, EventRecorder, topic_matches


class TestTopicMatching:
    def test_exact_match(self):
        assert topic_matches("a/b", "a/b")

    def test_descendant_matches(self):
        assert topic_matches("a", "a/b/c")

    def test_sibling_does_not_match(self):
        assert not topic_matches("a/b", "a/c")

    def test_prefix_string_without_separator_does_not_match(self):
        assert not topic_matches("act/a1", "act/a10")

    def test_star_matches_everything(self):
        assert topic_matches("*", "anything/at/all")


class TestEventBus:
    def test_publish_reaches_matching_subscriber(self):
        bus = EventBus()
        rec = EventRecorder()
        bus.subscribe("chat", rec)
        assert bus.publish("chat/room1", "hello") == 1
        assert rec.payloads() == ["hello"]

    def test_publish_skips_non_matching(self):
        bus = EventBus()
        rec = EventRecorder()
        bus.subscribe("chat", rec)
        assert bus.publish("mail/inbox", "x") == 0
        assert rec.events == []

    def test_multiple_subscribers_all_notified(self):
        bus = EventBus()
        recs = [EventRecorder() for _ in range(3)]
        for rec in recs:
            bus.subscribe("t", rec)
        assert bus.publish("t", 1) == 3

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        rec = EventRecorder()
        token = bus.subscribe("t", rec)
        assert bus.unsubscribe(token)
        bus.publish("t", 1)
        assert rec.events == []

    def test_unsubscribe_unknown_token_returns_false(self):
        assert not EventBus().unsubscribe(99)

    def test_empty_topic_rejected(self):
        with pytest.raises(ValueError):
            EventBus().publish("", 1)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe("", lambda e: None)

    def test_event_carries_source_and_time(self):
        bus = EventBus()
        rec = EventRecorder()
        bus.subscribe("t", rec)
        bus.publish("t", None, source="app1", time=3.5)
        event = rec.events[0]
        assert event.source == "app1"
        assert event.time == 3.5

    def test_counts(self):
        bus = EventBus()
        bus.subscribe("t", EventRecorder())
        bus.publish("t", 1)
        bus.publish("other", 1)
        assert bus.published_count == 2
        assert bus.delivered_count == 1

    def test_subscriptions_for(self):
        bus = EventBus()
        bus.subscribe("a", EventRecorder(), subscriber="app")
        bus.subscribe("b", EventRecorder(), subscriber="app")
        assert bus.subscriptions_for("app") == ["a", "b"]

    def test_isolation_between_activity_topics(self):
        """Activity transparency: unrelated activities do not disturb each other."""
        bus = EventBus()
        act1 = EventRecorder()
        act2 = EventRecorder()
        bus.subscribe("activity/a1", act1)
        bus.subscribe("activity/a2", act2)
        bus.publish("activity/a1/edit", "doc change")
        assert act1.topics() == ["activity/a1/edit"]
        assert act2.events == []
