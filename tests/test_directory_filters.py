"""Tests for directory search filters and the filter parser."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.directory.filters import (
    And,
    Eq,
    Filter,
    Ge,
    Le,
    Not,
    Or,
    Present,
    Substr,
    parse_filter,
)
from repro.util.errors import DirectoryError

PERSON = {"cn": ["Ana Lopez"], "mail": ["ana@upc.es"], "age": [34], "objectclass": ["person"]}


class TestLeafFilters:
    def test_eq_case_insensitive(self):
        assert Eq("cn", "ana lopez").matches(PERSON)

    def test_eq_numeric(self):
        assert Eq("age", 34).matches(PERSON)
        assert not Eq("age", 35).matches(PERSON)

    def test_present(self):
        assert Present("mail").matches(PERSON)
        assert not Present("fax").matches(PERSON)

    def test_ge_le(self):
        assert Ge("age", 34).matches(PERSON)
        assert Le("age", 34).matches(PERSON)
        assert not Ge("age", 35).matches(PERSON)

    def test_substr_prefix(self):
        assert Substr("cn", ["ana", ""]).matches(PERSON)
        assert not Substr("cn", ["lopez", ""]).matches(PERSON)

    def test_substr_suffix(self):
        assert Substr("cn", ["", "lopez"]).matches(PERSON)

    def test_substr_middle(self):
        assert Substr("cn", ["", "a l", ""]).matches(PERSON)

    def test_substr_multi_part_in_order(self):
        assert Substr("cn", ["a", "l", "z"]).matches(PERSON)
        # "l*a" does match "la" (zero chars between parts is allowed)...
        assert Substr("cn", ["l", "a"]).matches({"cn": ["la"]})
        # ...but middles must appear in order after the initial segment.
        assert not Substr("cn", ["", "b", "a", ""]).matches({"cn": ["ab"]})


class TestCompositeFilters:
    def test_and(self):
        assert And([Present("cn"), Eq("age", 34)]).matches(PERSON)
        assert not And([Present("cn"), Eq("age", 1)]).matches(PERSON)

    def test_or(self):
        assert Or([Eq("age", 1), Present("mail")]).matches(PERSON)

    def test_not(self):
        assert Not(Eq("age", 1)).matches(PERSON)


class TestParser:
    def test_parse_eq(self):
        assert parse_filter("(cn=Ana Lopez)").matches(PERSON)

    def test_parse_present(self):
        assert parse_filter("(mail=*)").matches(PERSON)

    def test_parse_substring(self):
        assert parse_filter("(cn=Ana*)").matches(PERSON)
        assert parse_filter("(cn=*Lopez)").matches(PERSON)
        assert parse_filter("(cn=*na*)").matches(PERSON)

    def test_parse_numeric_comparison(self):
        assert parse_filter("(age>=30)").matches(PERSON)
        assert not parse_filter("(age<=30)").matches(PERSON)

    def test_parse_and_or_not(self):
        text = "(&(objectClass=person)(|(age>=30)(mail=*))(!(cn=Bob)))"
        assert parse_filter(text).matches(PERSON)

    def test_parse_nested(self):
        text = "(&(|(cn=Ana*)(cn=Bob*))(age>=30))"
        assert parse_filter(text).matches(PERSON)

    def test_parse_errors(self):
        for bad in ["cn=x", "(cn=x", "(&)", "(noop)", "(cn=x))"]:
            with pytest.raises(DirectoryError):
                parse_filter(bad)


class TestSerialization:
    def test_round_trip_complex(self):
        original = And([Eq("a", 1), Or([Present("b"), Not(Substr("c", ["x", ""]))]), Ge("d", 2)])
        document = original.to_document()
        restored = Filter.from_document(document)
        assert restored.to_document() == document

    def test_unknown_kind_rejected(self):
        with pytest.raises(DirectoryError):
            Filter.from_document({"kind": "mystery"})


@given(st.text(alphabet="abc", min_size=0, max_size=8))
def test_property_substring_star_always_matches_nonempty_attribute(value):
    entry = {"cn": [value]}
    assert Present("cn").matches(entry)
    # "cn=*x*" style: a single star part list ["",""] means "anything"
    assert Substr("cn", ["", ""]).matches(entry)


@given(st.text(alphabet="ab", min_size=1, max_size=6))
def test_property_eq_matches_itself(value):
    assert Eq("cn", value).matches({"cn": [value]})
