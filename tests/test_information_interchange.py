"""Tests for the common-form interchange service."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.information.interchange import (
    FormatConverter,
    InterchangeService,
    is_common,
    make_common,
)
from repro.util.errors import ConfigurationError, InteropError


def _conference_converter() -> FormatConverter:
    """COM-style conference entries: {'topic', 'entry'}."""
    return FormatConverter(
        "conference",
        to_common=lambda d: make_common("note", d["topic"], d["entry"]),
        from_common=lambda c: {"topic": c["title"], "entry": c["body"]},
    )


def _memo_converter() -> FormatConverter:
    """Object-Lens-style memos: {'subject', 'text', 'fields'}."""
    return FormatConverter(
        "memo",
        to_common=lambda d: make_common("note", d["subject"], d["text"], **d.get("fields", {})),
        from_common=lambda c: {"subject": c["title"], "text": c["body"], "fields": dict(c["attributes"])},
    )


def _form_converter() -> FormatConverter:
    """DOMINO-style structured forms (slightly lossy: drops free text)."""
    return FormatConverter(
        "form",
        to_common=lambda d: make_common("form", d["form_name"], "", **d["slots"]),
        from_common=lambda c: {"form_name": c["title"], "slots": dict(c["attributes"])},
        fidelity=0.9,
    )


@pytest.fixture
def service() -> InterchangeService:
    service = InterchangeService()
    service.register(_conference_converter())
    service.register(_memo_converter())
    service.register(_form_converter())
    return service


class TestCommonForm:
    def test_make_and_check(self):
        document = make_common("note", "t", "b", author="ana")
        assert is_common(document)
        assert not is_common({"title": "t"})


class TestInterchange:
    def test_same_format_is_identity(self, service):
        result = service.translate("memo", "memo", {"subject": "s", "text": "t"})
        assert result.hops == 0
        assert result.fidelity == 1.0
        assert result.document == {"subject": "s", "text": "t"}

    def test_cross_format_translation(self, service):
        result = service.translate(
            "conference", "memo", {"topic": "ODP", "entry": "will it help?"}
        )
        assert result.document["subject"] == "ODP"
        assert result.document["text"] == "will it help?"
        assert result.hops == 2

    def test_attributes_survive_via_common(self, service):
        result = service.translate(
            "memo", "form", {"subject": "req", "text": "", "fields": {"budget": 5}}
        )
        assert result.document["slots"] == {"budget": 5}

    def test_fidelity_multiplies(self, service):
        result = service.translate(
            "memo", "form", {"subject": "s", "text": "t", "fields": {}}
        )
        assert result.fidelity == pytest.approx(0.9)
        reverse = service.translate("form", "memo", {"form_name": "f", "slots": {}})
        assert reverse.fidelity == pytest.approx(0.9)

    def test_unregistered_format_rejected(self, service):
        with pytest.raises(InteropError):
            service.translate("conference", "spreadsheet", {"topic": "t", "entry": "e"})
        assert service.failures == 1

    def test_duplicate_registration_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.register(_memo_converter())

    def test_malformed_converter_output_rejected(self):
        service = InterchangeService()
        service.register(
            FormatConverter("bad", to_common=lambda d: {"oops": 1}, from_common=lambda c: {})
        )
        service.register(_memo_converter())
        with pytest.raises(InteropError, match="malformed"):
            service.translate("bad", "memo", {})

    def test_linear_converters_quadratic_pairs(self, service):
        assert service.converter_count() == 3
        assert service.reachable_pairs() == 6

    def test_translation_counter(self, service):
        service.translate("conference", "memo", {"topic": "t", "entry": "e"})
        assert service.translations == 1

    def test_identity_counts_and_does_not_alias(self, service):
        # Same-format translations must hand back an independent copy:
        # a receiver mutating its delivery must never corrupt the
        # sender's document (or a cached plan's input).
        original = {"subject": "s", "text": "t", "fields": {"budget": 5}}
        result = service.translate("memo", "memo", original)
        assert service.identities == 1
        assert result.document == original
        assert result.document is not original
        result.document["fields"]["budget"] = 99
        assert original["fields"]["budget"] == 5

    def test_replace_revalidates_converter(self, service):
        # One-shot plan validation must not survive replacement: a
        # malformed replacement converter has to be caught on the next
        # translate, not masked by a plan validated against the old one.
        service.translate("conference", "memo", {"topic": "t", "entry": "e"})
        service.register(
            FormatConverter(
                "conference", to_common=lambda d: {"oops": 1}, from_common=lambda c: {}
            ),
            replace=True,
        )
        with pytest.raises(InteropError, match="malformed"):
            service.translate("conference", "memo", {"topic": "t", "entry": "e"})

    def test_replace_evicts_only_affected_plans(self, service):
        service.translate("conference", "memo", {"topic": "t", "entry": "e"})
        service.translate("memo", "form", {"subject": "s", "text": "t", "fields": {}})
        service.register(_conference_converter(), replace=True)
        # only the plan touching 'conference' went; the memo->form plan
        # survives and still hits
        assert service.plan_evictions == 1
        before = service.plan_hits
        service.translate("memo", "form", {"subject": "s", "text": "t", "fields": {}})
        assert service.plan_hits == before + 1


@given(st.text(max_size=30), st.text(max_size=100))
def test_property_conference_memo_round_trip(topic, entry):
    """conference -> memo -> conference preserves content exactly."""
    service = InterchangeService()
    service.register(_conference_converter())
    service.register(_memo_converter())
    to_memo = service.translate("conference", "memo", {"topic": topic, "entry": entry})
    back = service.translate("memo", "conference", to_memo.document)
    assert back.document == {"topic": topic, "entry": entry}
