"""Tests for the third feature pack: directory access control, expertise
publication, and meeting-minutes export."""

from __future__ import annotations

import pytest

from repro.apps.document import DocumentProcessor
from repro.apps.meeting_room import MeetingRoom
from repro.communication.model import Communicator
from repro.directory.dit import DirectoryInformationTree
from repro.directory.dsa import DirectoryServiceAgent
from repro.directory.dua import DirectoryUserAgent
from repro.environment.environment import CSCWEnvironment
from repro.expertise.model import ExpertiseRegistry
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.org.knowledge_base import OrganisationalKnowledgeBase
from repro.org.model import Organisation, Person
from repro.util.errors import AccessDeniedError, BindingError, NoSuchEntryError


@pytest.fixture
def dit() -> DirectoryInformationTree:
    tree = DirectoryInformationTree()
    tree.add("o=UPC", {"objectclass": ["organization"]})
    tree.add("ou=Public,o=UPC", {"objectclass": ["organizationalunit"]})
    tree.add("ou=Payroll,o=UPC", {"objectclass": ["organizationalunit"]})
    tree.add("cn=Salaries,ou=Payroll,o=UPC", {"objectclass": ["device"]})
    tree.protect("ou=Payroll,o=UPC", readers={"hr", "boss"}, writers={"hr"})
    return tree


class TestDirectoryAccessControl:
    def test_unprotected_open_to_all(self, dit):
        assert dit.read("ou=Public,o=UPC").first("ou") == "Public"

    def test_protected_read_requires_listed_requestor(self, dit):
        with pytest.raises(AccessDeniedError):
            dit.read("cn=Salaries,ou=Payroll,o=UPC")
        entry = dit.read("cn=Salaries,ou=Payroll,o=UPC", requestor="hr")
        assert entry.first("cn") == "Salaries"

    def test_protection_covers_subtree(self, dit):
        assert not dit.can_read("cn=Salaries,ou=Payroll,o=UPC", "stranger")
        assert dit.can_read("cn=Salaries,ou=Payroll,o=UPC", "boss")

    def test_write_needs_writer(self, dit):
        with pytest.raises(AccessDeniedError):
            dit.modify("cn=Salaries,ou=Payroll,o=UPC", add={"description": ["x"]},
                       requestor="boss")  # boss reads but does not write
        dit.modify("cn=Salaries,ou=Payroll,o=UPC", add={"description": ["x"]},
                   requestor="hr")

    def test_add_and_delete_protected(self, dit):
        with pytest.raises(AccessDeniedError):
            dit.add("cn=Bonus,ou=Payroll,o=UPC", {"objectclass": ["device"]})
        dit.add("cn=Bonus,ou=Payroll,o=UPC", {"objectclass": ["device"]}, requestor="hr")
        with pytest.raises(AccessDeniedError):
            dit.delete("cn=Bonus,ou=Payroll,o=UPC", requestor="boss")
        dit.delete("cn=Bonus,ou=Payroll,o=UPC", requestor="hr")

    def test_search_hides_protected_entries(self, dit):
        seen = {str(e.name) for e in dit.search("")}
        assert "cn=Salaries,ou=Payroll,o=UPC" not in seen
        assert "ou=Public,o=UPC" in seen
        seen_hr = {str(e.name) for e in dit.search("", requestor="hr")}
        assert "cn=Salaries,ou=Payroll,o=UPC" in seen_hr

    def test_wildcard_reader(self, dit):
        dit.protect("ou=Public,o=UPC", readers={"*"}, writers={"admin"})
        assert dit.can_read("ou=Public,o=UPC", "anyone")
        assert not dit.can_write("ou=Public,o=UPC", "anyone")

    def test_most_specific_protection_governs(self, dit):
        dit.add("cn=Open,ou=Payroll,o=UPC", {"objectclass": ["device"]}, requestor="hr")
        dit.protect("cn=Open,ou=Payroll,o=UPC", readers={"*"}, writers={"hr"})
        assert dit.can_read("cn=Open,ou=Payroll,o=UPC", "stranger")
        assert not dit.can_read("cn=Salaries,ou=Payroll,o=UPC", "stranger")

    def test_protect_missing_entry_rejected(self, dit):
        with pytest.raises(NoSuchEntryError):
            dit.protect("o=Ghost", readers={"*"}, writers={"*"})

    def test_dua_identity_travels_over_network(self, world, dit):
        world.add_site("hq", ["dsa-node", "client"])
        capsule = Capsule(world.network, "dsa-node")
        factory = BindingFactory(world.network)
        factory.register_capsule(capsule)
        dsa = DirectoryServiceAgent("acl-dsa")
        dsa.dit.add("o=UPC", {"objectclass": ["organization"]})
        dsa.dit.add("ou=Payroll,o=UPC", {"objectclass": ["organizationalunit"]})
        dsa.dit.protect("ou=Payroll,o=UPC", readers={"hr"}, writers={"hr"})
        ref = dsa.deploy(capsule)
        anonymous = DirectoryUserAgent(factory, "client", ref)
        with pytest.raises(BindingError, match="may not read"):
            anonymous.read(world, "ou=Payroll,o=UPC")
        hr_agent = DirectoryUserAgent(factory, "client", ref, identity="hr")
        assert hr_agent.read(world, "ou=Payroll,o=UPC").first("ou") == "Payroll"


class TestExpertisePublication:
    def test_capabilities_published_as_attributes(self):
        kb = OrganisationalKnowledgeBase()
        upc = Organisation("upc", "UPC")
        upc.add_person(Person("ana", "Ana Lopez", "upc"))
        upc.add_person(Person("joan", "Joan Puig", "upc"))
        kb.add_organisation(upc)
        expertise = ExpertiseRegistry()
        expertise.profile("ana").add_capability("x500", 5)
        expertise.profile("ana").add_capability("odp", 3)
        dit = DirectoryInformationTree()
        kb.publish_to_directory(dit, country="EU")
        annotated = kb.publish_expertise(dit, expertise, country="EU")
        assert annotated == 1  # joan has no capabilities
        entry = dit.read("cn=Ana Lopez,o=UPC,c=EU")
        assert sorted(entry.get("capability")) == ["odp:3", "x500:5"]

    def test_yellow_pages_query(self):
        """Find an expert through the directory, not the registry."""
        from repro.directory.filters import parse_filter

        kb = OrganisationalKnowledgeBase()
        upc = Organisation("upc", "UPC")
        upc.add_person(Person("ana", "Ana Lopez", "upc"))
        kb.add_organisation(upc)
        expertise = ExpertiseRegistry()
        expertise.profile("ana").add_capability("x500", 5)
        dit = DirectoryInformationTree()
        kb.publish_to_directory(dit, country="EU")
        kb.publish_expertise(dit, expertise, country="EU")
        hits = dit.search("", where=parse_filter("(capability=x500*)"))
        assert [h.first("cn") for h in hits] == ["Ana Lopez"]


class TestMinutesExport:
    def test_minutes_flow_to_document_processor(self, world):
        world.colocated(2)
        env = CSCWEnvironment(world)
        org = Organisation("upc", "UPC")
        org.add_person(Person("ana", "Ana", "upc"))
        org.add_person(Person("joan", "Joan", "upc"))
        env.knowledge_base.add_organisation(org)
        env.register_person(Communicator("ana", "ws1"))
        env.register_person(Communicator("joan", "ws2"))
        meeting = MeetingRoom(world)
        docs = DocumentProcessor()
        meeting.attach(env)
        docs.attach(env)
        meeting.enter_room("ana", "ws1")
        meeting.enter_room("joan", "ws2")
        meeting.add_agenda_point("requirements")
        meeting.begin_brainstorm("requirements")
        first = meeting.add_item("ana", "openness")
        meeting.add_item("joan", "tailorability")
        meeting.vote("ana", first.item_id)
        meeting.vote("joan", first.item_id)
        world.run()

        minutes = meeting.export_minutes("kickoff minutes")
        outcome = env.exchange(
            "ana", "joan", meeting.name, docs.name, minutes
        )
        assert outcome.delivered and outcome.translated
        saved = docs.titles("joan")
        assert saved == ["kickoff minutes"]
        text = "\n".join(docs.paragraphs("joan", "kickoff minutes"))
        assert "openness (ana)" in text
        assert "Decisions by vote: openness [2]" in text
        assert "Attendees: ana, joan" in text
