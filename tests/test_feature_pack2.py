"""Tests for the second feature pack: message priorities, read receipts,
role delegation with expiry, and workflow parallel branches."""

from __future__ import annotations

import pytest

from repro.apps.workflow import ParallelSteps, Procedure, ProcedureStep, WorkflowSystem
from repro.messaging.envelope import PRIORITY_LOW, PRIORITY_URGENT
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import or_name
from repro.messaging.ua import UserAgent
from repro.org.relations import RelationKind, RelationStore
from repro.org.rules import RuleEngine
from repro.util.errors import AccessDeniedError, ConfigurationError, ModelError

ANA = or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez")
JOAN = or_name("C=ES;A= ;P=UPC;G=Joan;S=Puig")


@pytest.fixture
def mhs(world):
    world.add_site("bcn", ["mta", "ws-ana", "ws-joan"])
    mta = MessageTransferAgent(world, "mta", "upc", [("es", "", "upc")])
    ana = UserAgent(world, "ws-ana", ANA, "mta")
    joan = UserAgent(world, "ws-joan", JOAN, "mta")
    ana.register()
    joan.register()
    return world, mta, ana, joan


class TestPriorities:
    def test_urgent_arrives_before_low(self, mhs):
        world, mta, ana, joan = mhs
        arrivals = []
        mta.add_delivery_hook(
            lambda mailbox, stored: arrivals.append(stored.envelope.priority)
        )
        # Low is submitted first; urgent overtakes it in MTA processing.
        ana.send([JOAN], "slow", "bulk", priority=PRIORITY_LOW)
        ana.send([JOAN], "fast", "now!", priority=PRIORITY_URGENT)
        world.run()
        assert arrivals == [PRIORITY_URGENT, PRIORITY_LOW]

    def test_all_priorities_eventually_delivered(self, mhs):
        world, mta, ana, joan = mhs
        for priority in (PRIORITY_LOW, "normal", PRIORITY_URGENT):
            ana.send([JOAN], priority, "x", priority=priority)
        world.run()
        assert len(joan.list_inbox()) == 3


class TestReadReceipts:
    def test_receipt_sent_on_fetch(self, mhs):
        world, mta, ana, joan = mhs
        ana.send([JOAN], "please confirm", "body", receipt_requested=True)
        world.run()
        sequence = joan.list_inbox()[0]["sequence"]
        joan.fetch(sequence)
        world.run()
        receipts = ana.read_receipts()
        assert len(receipts) == 1
        assert receipts[0]["reader"] == str(JOAN)

    def test_no_receipt_without_request(self, mhs):
        world, mta, ana, joan = mhs
        ana.send([JOAN], "no receipt", "body")
        world.run()
        joan.fetch(joan.list_inbox()[0]["sequence"])
        world.run()
        assert ana.read_receipts() == []

    def test_receipts_do_not_cascade(self, mhs):
        """Fetching a receipt must not generate a receipt for the receipt."""
        world, mta, ana, joan = mhs
        ana.send([JOAN], "confirm", "x", receipt_requested=True)
        world.run()
        joan.fetch(joan.list_inbox()[0]["sequence"])
        world.run()
        ana.read_receipts()
        world.run()
        # Joan's inbox holds no new receipt-of-receipt.
        assert joan.list_inbox(unread_only=True) == []


class TestRoleDelegation:
    @pytest.fixture
    def engine(self) -> RuleEngine:
        relations = RelationStore()
        relations.relate(RelationKind.PLAYS_ROLE, "joan", "approver")
        engine = RuleEngine(relations)
        engine.permit("approver", "approve", "expense")
        return engine

    def test_delegation_grants_until_expiry(self, engine):
        assert not engine.allowed("ana", "approve", "expense", now=5.0)
        engine.delegate_role("approver", "joan", "ana", until=10.0, justification="holiday")
        assert engine.allowed("ana", "approve", "expense", now=5.0)
        assert not engine.allowed("ana", "approve", "expense", now=10.0)

    def test_cannot_delegate_unheld_role(self, engine):
        with pytest.raises(AccessDeniedError):
            engine.delegate_role("approver", "ana", "marta", until=10.0)

    def test_revoke_delegation(self, engine):
        engine.delegate_role("approver", "joan", "ana", until=100.0)
        assert engine.revoke_delegation("approver", "ana")
        assert not engine.allowed("ana", "approve", "expense", now=5.0)
        assert not engine.revoke_delegation("approver", "ana")

    def test_effective_roles_lists_delegations(self, engine):
        engine.delegate_role("approver", "joan", "ana", until=10.0)
        assert engine.effective_roles("ana", now=5.0) == ["approver"]
        assert engine.effective_roles("ana", now=15.0) == []

    def test_delegate_keeps_own_rights(self, engine):
        engine.delegate_role("approver", "joan", "ana", until=10.0)
        assert engine.allowed("joan", "approve", "expense", now=5.0)


class TestParallelWorkflow:
    @pytest.fixture
    def flow(self) -> WorkflowSystem:
        system = WorkflowSystem()
        system.define_procedure(Procedure("proposal", [
            ProcedureStep("draft", "author", fills=("text",)),
            ParallelSteps((
                ProcedureStep("legal-review", "lawyer", fills=("legal_ok",)),
                ProcedureStep("tech-review", "engineer", fills=("tech_ok",)),
            )),
            ProcedureStep("publish", "editor"),
        ]))
        system.grant_role("ana", "author")
        system.grant_role("joan", "lawyer")
        system.grant_role("marta", "engineer")
        system.grant_role("pere", "editor")
        return system

    def test_and_split_and_join(self, flow):
        case = flow.start_case("proposal", {})
        flow.perform_step(case.case_id, "ana", {"text": "v1"})
        pending = flow.pending_steps(case.case_id)
        assert {s.name for s in pending} == {"legal-review", "tech-review"}
        # Both reviewers appear on work lists simultaneously.
        assert flow.work_list("joan") and flow.work_list("marta")
        flow.perform_step(case.case_id, "joan", {"legal_ok": True})
        # Join not reached yet: publish is not pending.
        assert {s.name for s in flow.pending_steps(case.case_id)} == {"tech-review"}
        flow.perform_step(case.case_id, "marta", {"tech_ok": True})
        assert flow.current_step(case.case_id).name == "publish"
        flow.perform_step(case.case_id, "pere")
        assert flow.case(case.case_id).completed

    def test_branch_order_is_free(self, flow):
        case = flow.start_case("proposal", {})
        flow.perform_step(case.case_id, "ana", {"text": "v1"})
        flow.perform_step(case.case_id, "marta", {"tech_ok": True})
        flow.perform_step(case.case_id, "joan", {"legal_ok": False})
        assert flow.current_step(case.case_id).name == "publish"

    def test_ambiguous_step_needs_name(self, flow):
        flow.grant_role("superwoman", "lawyer")
        flow.grant_role("superwoman", "engineer")
        case = flow.start_case("proposal", {})
        flow.perform_step(case.case_id, "ana", {"text": "v1"})
        with pytest.raises(ModelError, match="pass step_name"):
            flow.perform_step(case.case_id, "superwoman", {"legal_ok": True})
        flow.perform_step(case.case_id, "superwoman", {"legal_ok": True},
                          step_name="legal-review")
        flow.perform_step(case.case_id, "superwoman", {"tech_ok": True},
                          step_name="tech-review")
        assert flow.current_step(case.case_id).name == "publish"

    def test_current_step_ambiguous_in_block(self, flow):
        case = flow.start_case("proposal", {})
        flow.perform_step(case.case_id, "ana", {"text": "v1"})
        with pytest.raises(ModelError, match="parallel"):
            flow.current_step(case.case_id)

    def test_skip_one_branch(self, flow):
        case = flow.start_case("proposal", {})
        flow.perform_step(case.case_id, "ana", {"text": "v1"})
        flow.skip_step(case.case_id, "joan", "no legal exposure", step_name="legal-review")
        flow.perform_step(case.case_id, "marta", {"tech_ok": True})
        assert flow.current_step(case.case_id).name == "publish"
        assert flow.deviations == 1

    def test_same_branch_cannot_complete_twice(self, flow):
        case = flow.start_case("proposal", {})
        flow.perform_step(case.case_id, "ana", {"text": "v1"})
        flow.perform_step(case.case_id, "joan", {"legal_ok": True})
        with pytest.raises(ModelError):
            flow.perform_step(case.case_id, "joan", {"legal_ok": True},
                              step_name="legal-review")

    def test_parallel_block_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelSteps((ProcedureStep("only-one", "r"),))
        with pytest.raises(ConfigurationError):
            ParallelSteps((ProcedureStep("dup", "r"), ProcedureStep("dup", "r2")))
