"""Tests for information objects, access control and sharing."""

from __future__ import annotations

import pytest

from repro.information.access import (
    EVERYONE,
    OP_READ,
    OP_WRITE,
    AccessControlList,
    AccessController,
    owner_acl,
    private_acl,
)
from repro.information.objects import InformationBase
from repro.information.sharing import ConflictError, SharedWorkspace, SharingPattern
from repro.org.relations import RelationKind, RelationStore
from repro.util.errors import (
    AccessDeniedError,
    ConfigurationError,
    DependencyCycleError,
    ModelError,
    UnknownObjectError,
)


@pytest.fixture
def base() -> InformationBase:
    base = InformationBase()
    base.create("report", "document", {"text": "draft"}, owner="ana")
    base.create("figure", "image", {"pixels": 42}, owner="joan")
    base.create("summary", "document", {"text": "tbd"}, owner="ana")
    return base


class TestVersioning:
    def test_update_appends_version(self, base):
        report = base.get("report")
        report.update({"text": "v2"}, "joan", time=1.0, comment="edits")
        assert report.version == 2
        assert report.content == {"text": "v2"}
        assert report.at_version(1).content == {"text": "draft"}

    def test_revert_creates_new_version(self, base):
        report = base.get("report")
        report.update({"text": "v2"}, "joan")
        report.revert(1, "ana")
        assert report.version == 3
        assert report.content == {"text": "draft"}

    def test_unknown_version_rejected(self, base):
        with pytest.raises(UnknownObjectError):
            base.get("report").at_version(9)

    def test_duplicate_creation_rejected(self, base):
        with pytest.raises(ConfigurationError):
            base.create("report", "document", {}, "ana")

    def test_by_type(self, base):
        assert len(base.by_type("document")) == 2


class TestCompositionAndDerivation:
    def test_compose_and_assembly(self, base):
        base.compose("figure", "report")
        base.create("table", "table", {}, "ana")
        base.compose("table", "figure")
        assert base.parts_of("report") == ["figure"]
        assert base.assembly("report") == ["figure", "table"]
        assert base.whole_of("figure") == "report"

    def test_composition_cycle_rejected(self, base):
        base.compose("figure", "report")
        with pytest.raises(DependencyCycleError):
            base.compose("report", "figure")

    def test_self_composition_rejected(self, base):
        with pytest.raises(DependencyCycleError):
            base.compose("report", "report")

    def test_derivation_and_impact(self, base):
        base.derive("summary", "report")
        base.create("slides", "document", {}, "ana")
        base.derive("slides", "summary")
        assert base.sources_of("summary") == ["report"]
        assert base.impact_of("report") == ["slides", "summary"]

    def test_derivation_cycle_rejected(self, base):
        base.derive("summary", "report")
        with pytest.raises(DependencyCycleError):
            base.derive("report", "summary")


class TestAccessControl:
    @pytest.fixture
    def controller(self) -> AccessController:
        relations = RelationStore()
        relations.relate(RelationKind.PLAYS_ROLE, "ana", "editor")
        relations.relate(RelationKind.PLAYS_ROLE, "joan", "reader")
        controller = AccessController(relations)
        acl = AccessControlList().grant(OP_READ, "reader").grant(OP_READ, "editor").grant(OP_WRITE, "editor")
        controller.protect("report", acl)
        return controller

    def test_role_based_decision(self, controller):
        assert controller.allowed("ana", OP_WRITE, "report")
        assert controller.allowed("joan", OP_READ, "report")
        assert not controller.allowed("joan", OP_WRITE, "report")

    def test_unprotected_object_open(self, controller):
        assert controller.allowed("anyone", OP_WRITE, "unprotected")

    def test_require_raises(self, controller):
        with pytest.raises(AccessDeniedError):
            controller.require("joan", OP_WRITE, "report")

    def test_everyone_grant(self, controller):
        acl = AccessControlList().grant(OP_READ, EVERYONE)
        controller.protect("notice", acl)
        assert controller.allowed("stranger", OP_READ, "notice")
        assert not controller.allowed("stranger", OP_WRITE, "notice")

    def test_helper_acls(self):
        assert owner_acl("boss").permits(OP_READ, ["nobody"])
        assert not private_acl("boss").permits(OP_READ, ["nobody"])
        assert private_acl("boss").permits(OP_WRITE, ["boss"])

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessControlList().grant("fly", "role")

    def test_denial_counter(self, controller):
        controller.allowed("joan", OP_WRITE, "report")
        assert controller.denials == 1


class TestSharedWorkspace:
    @pytest.fixture
    def workspace(self, base) -> SharedWorkspace:
        ws = SharedWorkspace("ws1", base, pattern=SharingPattern.GROUP)
        ws.add_member("ana")
        ws.add_member("joan")
        ws.invite_reader("guest")
        ws.share("report")
        return ws

    def test_visibility_by_pattern(self, workspace):
        assert workspace.can_read("ana")
        assert workspace.can_read("guest")
        assert not workspace.can_read("stranger")
        assert not workspace.can_write("guest")

    def test_public_pattern(self, base):
        ws = SharedWorkspace("open", base, pattern=SharingPattern.PUBLIC)
        ws.share("report")
        assert ws.can_read("anyone")

    def test_read_unshared_rejected(self, workspace):
        with pytest.raises(UnknownObjectError):
            workspace.read("figure", "ana")

    def test_checkout_checkin(self, workspace, base):
        checkout = workspace.checkout("report", "ana")
        new_version = workspace.checkin(checkout, {"text": "improved"}, time=1.0)
        assert new_version == 2
        assert base.get("report").content == {"text": "improved"}

    def test_conflict_detected(self, workspace):
        ana_co = workspace.checkout("report", "ana")
        joan_co = workspace.checkout("report", "joan")
        workspace.checkin(ana_co, {"text": "ana wins"})
        with pytest.raises(ConflictError) as excinfo:
            workspace.checkin(joan_co, {"text": "joan loses"})
        assert excinfo.value.current_version == 2
        assert workspace.conflicts == 1

    def test_merge_checkin_after_conflict(self, workspace, base):
        base.get("report").update({"text": "draft", "title": "old"}, "ana")
        ana_co = workspace.checkout("report", "ana")
        joan_co = workspace.checkout("report", "joan")
        workspace.checkin(ana_co, {"text": "ana edit", "title": "old"})
        with pytest.raises(ConflictError):
            workspace.checkin(joan_co, {"text": "draft", "title": "joan title"})
        version = workspace.merge_checkin(joan_co, {"text": "draft", "title": "joan title"})
        merged = base.get("report").content
        assert merged == {"text": "ana edit", "title": "joan title"}
        assert version == 4

    def test_stale_checkout_rejected(self, workspace):
        checkout = workspace.checkout("report", "ana")
        workspace.checkin(checkout, {"text": "x"})
        with pytest.raises(ModelError):
            workspace.checkin(checkout, {"text": "again"})

    def test_nonmember_cannot_checkout(self, workspace):
        with pytest.raises(ModelError):
            workspace.checkout("report", "stranger")
