"""Tests for metrics collection, seeded RNG streams and world helpers."""

from __future__ import annotations

import pytest

from repro.sim.rng import SeededRng
from repro.sim.trace import MetricsRegistry, SeriesStats
from repro.sim.world import World


class TestSeriesStats:
    def test_basic_stats(self):
        stats = SeriesStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_percentiles_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        stats = SeriesStats.of(values)
        assert stats.p50 == 50.0
        assert stats.p95 == 95.0

    def test_single_value(self):
        stats = SeriesStats.of([7.0])
        assert stats.p50 == 7.0
        assert stats.stddev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesStats.of([])


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        assert metrics.increment("hits") == 1
        assert metrics.increment("hits", 4) == 5
        assert metrics.counter("hits") == 5
        assert metrics.counter("misses") == 0
        assert metrics.counters() == {"hits": 5}

    def test_series_and_stats(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0):
            metrics.record("latency", value)
        assert metrics.series("latency") == [1.0, 3.0]
        assert metrics.stats("latency").mean == 2.0
        assert metrics.has_series("latency")
        assert not metrics.has_series("ghost")

    def test_timeline(self):
        metrics = MetricsRegistry()
        metrics.mark(1.0, "crash", node="n1")
        metrics.mark(2.0, "recover", node="n1")
        metrics.mark(3.0, "crash", node="n2")
        assert len(metrics.timeline()) == 3
        crashes = metrics.timeline("crash")
        assert [e.detail["node"] for e in crashes] == ["n1", "n2"]

    def test_summary_shape(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        metrics.record("s", 1.0)
        summary = metrics.summary()
        assert summary["counters"] == {"a": 1}
        assert summary["series"]["s"]["count"] == 1
        assert summary["timeline_entries"] == 0


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(5)
        b = SeededRng(5)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_forks_are_independent(self):
        parent = SeededRng(5)
        child1 = parent.fork("one")
        child2 = parent.fork("two")
        seq1 = [child1.random() for _ in range(5)]
        seq2 = [child2.random() for _ in range(5)]
        assert seq1 != seq2

    def test_fork_determinism(self):
        def forked_values(label):
            return [SeededRng(9).fork(label).random() for _ in range(3)]

        assert forked_values("x") == forked_values("x")

    def test_chance_extremes(self):
        rng = SeededRng(1)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    def test_exponential_positive_and_mean_validated(self):
        rng = SeededRng(2)
        assert rng.exponential(10.0) > 0
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_choice_and_sample(self):
        rng = SeededRng(3)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items
        assert sorted(rng.sample(items, 2))[0] in items
        with pytest.raises(ValueError):
            rng.choice([])

    def test_shuffle_returns_new_list(self):
        rng = SeededRng(4)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffle(original)
        assert sorted(shuffled) == original
        assert original == [1, 2, 3, 4, 5]

    def test_uniform_bounds(self):
        rng = SeededRng(6)
        for _ in range(50):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0


class TestWorldHelpers:
    def test_colocated_builds_one_site(self):
        world = World(seed=0)
        nodes = world.colocated(3)
        assert [n.name for n in nodes] == ["ws1", "ws2", "ws3"]
        assert all(n.site == "meeting-room" for n in nodes)

    def test_distributed_builds_sites(self):
        world = World(seed=0)
        sites = world.distributed({"bcn": 2, "bonn": 1})
        assert [n.name for n in sites["bcn"]] == ["bcn-ws1", "bcn-ws2"]
        assert sites["bonn"][0].site == "bonn"

    def test_world_run_and_now(self):
        world = World(seed=0)
        world.engine.schedule(5.0, lambda: None)
        world.run()
        assert world.now == 5.0

    def test_identical_seeds_identical_network_behaviour(self):
        def run_once():
            world = World(seed=99)
            world.add_site("a", ["n1"])
            world.add_site("b", ["n2"])
            received = []
            world.network.node("n2").bind("p", lambda pkt: received.append(pkt.delivered_at))
            for _ in range(5):
                world.network.send("n1", "n2", "p", "x")
            world.run()
            return received

        assert run_once() == run_once()
