"""Tests for app-level extensions: editor undo, conference moderation."""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.shared_editor import SharedEditor
from repro.util.errors import ConfigurationError, ModelError, UnknownObjectError


@pytest.fixture
def editing(world):
    world.add_site("net", ["ws1", "ws2"])
    editor = SharedEditor(world)
    editor.open_document("ana", "ws1")
    editor.open_document("wolf", "ws2")
    return world, editor


class TestEditorUndo:
    def test_undo_insert_removes_line(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "keep")
        editor.insert("ana", 1, "oops")
        world.run()
        editor.undo("ana")
        world.run()
        assert editor.view("ana") == ["keep"]
        assert editor.view("wolf") == ["keep"]
        assert editor.converged()

    def test_undo_insert_tracks_moved_line(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "target")
        world.run()
        # Wolf inserts above, shifting ana's line down.
        editor.insert("wolf", 0, "above")
        world.run()
        editor.undo("ana")
        world.run()
        assert editor.view("ana") == ["above"]
        assert editor.converged()

    def test_undo_delete_restores_text(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "precious")
        world.run()
        editor.delete("wolf", 0)
        world.run()
        editor.undo("wolf")
        world.run()
        assert editor.view("ana") == ["precious"]
        assert editor.converged()

    def test_undo_nothing_rejected(self, editing):
        world, editor = editing
        with pytest.raises(ModelError, match="nothing to undo"):
            editor.undo("ana")

    def test_undo_insert_already_deleted_rejected(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "short-lived")
        world.run()
        editor.delete("wolf", 0)
        world.run()
        with pytest.raises(ModelError, match="already deleted"):
            editor.undo("ana")

    def test_undo_by_stranger_rejected(self, editing):
        world, editor = editing
        with pytest.raises(ModelError):
            editor.undo("stranger")


class TestConferenceModeration:
    @pytest.fixture
    def moderated(self) -> ConferencingSystem:
        system = ConferencingSystem()
        system.create_conference("announce", "ana", moderated=True)
        system.join("announce", "wolf")
        system.join("announce", "tom")
        return system

    def test_member_post_goes_to_pending(self, moderated):
        moderated.post("announce", "wolf", "idea", "what about X?")
        assert moderated.news_for("announce", "tom") == []
        assert len(moderated.pending_entries("announce", "ana")) == 1

    def test_organizer_post_publishes_directly(self, moderated):
        moderated.post("announce", "ana", "news", "release out")
        assert len(moderated.news_for("announce", "tom")) == 1
        assert moderated.pending_entries("announce", "ana") == []

    def test_approve_publishes(self, moderated):
        entry = moderated.post("announce", "wolf", "idea", "X")
        moderated.approve("announce", entry.entry_id, "ana")
        assert [e.entry_id for e in moderated.news_for("announce", "tom")] == [entry.entry_id]
        assert moderated.pending_entries("announce", "ana") == []

    def test_reject_discards(self, moderated):
        entry = moderated.post("announce", "wolf", "spam", "buy now")
        moderated.reject("announce", entry.entry_id, "ana")
        assert moderated.pending_entries("announce", "ana") == []
        assert moderated.news_for("announce", "tom") == []

    def test_only_organizer_moderates(self, moderated):
        entry = moderated.post("announce", "wolf", "idea", "X")
        with pytest.raises(ConfigurationError):
            moderated.pending_entries("announce", "wolf")
        with pytest.raises(ConfigurationError):
            moderated.approve("announce", entry.entry_id, "wolf")
        with pytest.raises(ConfigurationError):
            moderated.reject("announce", entry.entry_id, "tom")

    def test_moderating_unknown_entry_rejected(self, moderated):
        with pytest.raises(UnknownObjectError):
            moderated.approve("announce", "entry-ghost", "ana")
        with pytest.raises(UnknownObjectError):
            moderated.reject("announce", "entry-ghost", "ana")

    def test_unmoderated_conference_unchanged(self):
        system = ConferencingSystem()
        system.create_conference("open", "ana")
        system.join("open", "wolf")
        system.post("open", "wolf", "t", "x")
        assert len(system.news_for("open", "ana")) == 1
