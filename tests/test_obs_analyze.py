"""Tests for repro.obs.analyze: span-tree reassembly and critical paths."""

from __future__ import annotations

import pytest

from repro.obs.analyze import TraceAnalyzer
from repro.obs.tracing import Tracer
from repro.util.errors import ConfigurationError


def span_dict(name, trace_id, span_id, parent_id, start, end, **tags):
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "tags": tags,
        "start": start,
        "end": end,
        "duration": end - start,
        "clock": "sim",
    }


def relay_trace():
    """One trace shaped like a federated exchange with a forward hop."""
    return [
        span_dict("exchange", "t1", "s1", "", 0.0, 10.0),
        span_dict("gateway.relay", "t1", "s2", "s1", 0.5, 4.0),
        span_dict("forward", "t1", "s3", "s2", 4.0, 9.5),
        span_dict("deliver", "t1", "s4", "s3", 5.0, 9.0),
    ]


class TestAssembly:
    def test_groups_spans_by_trace_across_tracers(self):
        home, away = Tracer(), Tracer()
        with home.span("local"):
            pass
        with away.span("remote"):
            pass
        analyzer = TraceAnalyzer.from_tracers(home, away)
        # both tracers allocate trace-0001 independently; the ids
        # collide by construction, so the analyzer sees one trace id
        assert analyzer.trace_ids() == ["trace-0001"]
        assert len(analyzer.spans("trace-0001")) == 2

    def test_skips_open_spans(self):
        tracer = Tracer()
        open_span = tracer.start_span("pending")
        analyzer = TraceAnalyzer([open_span])
        assert analyzer.trace_ids() == []

    def test_unknown_trace_raises(self):
        with pytest.raises(ConfigurationError):
            TraceAnalyzer().spans("missing")

    def test_connected_single_root(self):
        analyzer = TraceAnalyzer(relay_trace())
        assert analyzer.is_connected("t1")
        assert analyzer.roots("t1")[0]["name"] == "exchange"

    def test_orphan_parent_makes_extra_root(self):
        spans = relay_trace() + [
            span_dict("stray", "t1", "s9", "missing-parent", 0.0, 1.0)
        ]
        analyzer = TraceAnalyzer(spans)
        assert not analyzer.is_connected("t1")
        assert len(analyzer.roots("t1")) == 2


class TestCriticalPath:
    def test_follows_latest_finishing_children(self):
        analyzer = TraceAnalyzer(relay_trace())
        assert [span["name"] for span in analyzer.critical_path("t1")] == [
            "exchange", "gateway.relay", "forward", "deliver",
        ]

    def test_coverage_is_path_share_of_root_duration(self):
        analyzer = TraceAnalyzer(relay_trace())
        # children cover [0.5, 9.5] of the root's [0, 10]: 90%
        assert analyzer.critical_path_coverage("t1") == pytest.approx(0.9)

    def test_leaf_only_trace_covers_fully(self):
        analyzer = TraceAnalyzer([span_dict("solo", "t1", "s1", "", 0.0, 2.0)])
        assert analyzer.critical_path_coverage("t1") == 1.0

    def test_hop_latency_reports_exclusive_time(self):
        analyzer = TraceAnalyzer(relay_trace())
        hops = {hop["name"]: hop for hop in analyzer.hop_latency("t1")}
        assert hops["gateway.relay"]["duration"] == pytest.approx(3.5)
        # forward spends 5.5s total but 4.0s is the nested deliver
        assert hops["forward"]["exclusive"] == pytest.approx(1.5)

    def test_duration_and_top_slowest(self):
        spans = relay_trace() + [
            span_dict("quick", "t2", "s1", "", 0.0, 1.0),
            span_dict("slow", "t3", "s1", "", 0.0, 20.0),
        ]
        analyzer = TraceAnalyzer(spans)
        assert analyzer.duration("t2") == pytest.approx(1.0)
        top = analyzer.top_slowest(2)
        assert [entry["trace_id"] for entry in top] == ["t3", "t1"]

    def test_summary_shape(self):
        summary = TraceAnalyzer(relay_trace()).summary()
        assert summary["traces"] == 1
        assert summary["spans"] == 1 * 4
        assert summary["connected"] == 1
