"""Tests for distinguished names."""

from __future__ import annotations

import pytest

from repro.directory.names import DistinguishedName, Rdn, dn
from repro.util.errors import NameError_


class TestRdn:
    def test_parse(self):
        rdn = Rdn.parse("cn=Ana Lopez")
        assert rdn.attribute == "cn"
        assert rdn.value == "Ana Lopez"

    def test_parse_missing_equals_rejected(self):
        with pytest.raises(NameError_):
            Rdn.parse("just-text")

    def test_case_insensitive_equality(self):
        assert Rdn.parse("CN=Ana") == Rdn.parse("cn=ana")

    def test_reserved_characters_rejected(self):
        with pytest.raises(NameError_):
            Rdn("cn", "a,b")

    def test_empty_parts_rejected(self):
        with pytest.raises(NameError_):
            Rdn("", "x")


class TestDistinguishedName:
    def test_parse_and_str_round_trip(self):
        name = dn("cn=Ana,ou=AC,o=UPC,c=ES")
        assert str(name) == "cn=Ana,ou=AC,o=UPC,c=ES"
        assert name.depth() == 4

    def test_empty_is_root(self):
        assert dn("").is_root
        assert dn("  ").is_root

    def test_rdn_is_leaf(self):
        assert dn("cn=Ana,o=UPC").rdn.value == "Ana"

    def test_root_has_no_rdn(self):
        with pytest.raises(NameError_):
            dn("").rdn

    def test_parent(self):
        assert str(dn("cn=Ana,o=UPC").parent()) == "o=UPC"

    def test_root_parent_rejected(self):
        with pytest.raises(NameError_):
            dn("").parent()

    def test_child(self):
        assert str(dn("o=UPC").child("cn=Ana")) == "cn=Ana,o=UPC"

    def test_descendant(self):
        assert dn("cn=Ana,ou=AC,o=UPC").is_descendant_of(dn("o=UPC"))
        assert not dn("o=UPC").is_descendant_of(dn("o=UPC"))
        assert not dn("cn=Ana,o=GMD").is_descendant_of(dn("o=UPC"))

    def test_everything_descends_from_root(self):
        assert dn("c=ES").is_descendant_of(dn(""))

    def test_case_insensitive_equality(self):
        assert dn("CN=Ana,O=UPC") == dn("cn=ana,o=upc")

    def test_ordering_is_hierarchical(self):
        names = [dn("cn=B,o=UPC"), dn("o=UPC"), dn("cn=A,o=UPC")]
        ordered = sorted(names)
        assert ordered[0] == dn("o=UPC")
        assert ordered[1] == dn("cn=A,o=UPC")
