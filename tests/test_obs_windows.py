"""Tests for repro.obs.windows: ring-of-buckets windowed aggregation."""

from __future__ import annotations

import pytest

from repro.obs.windows import WindowedCounter, WindowedHistogram, WindowedTrend


class TestWindowedCounter:
    def test_push_feed_keeps_last_n_slots(self):
        ring = WindowedCounter(window_s=3.0, slots=3)
        for delta in (1, 2, 3):
            ring.push(delta)
        assert ring.delta() == 6
        ring.push(10)  # the 1 ages out
        assert ring.delta() == 15
        assert ring.cells == 3

    def test_timed_feed_buckets_and_evicts(self):
        ring = WindowedCounter(window_s=2.0, slots=2)
        ring.add(0.1, 4)
        ring.add(0.9, 1)  # same slot
        ring.add(1.5, 6)
        assert ring.delta() == 11
        ring.add(2.5, 2)  # slot [0,1) is now stale
        assert ring.delta() == 8

    def test_late_timestamp_folds_into_newest_cell(self):
        ring = WindowedCounter(window_s=4.0, slots=4)
        ring.add(3.0, 1)
        ring.add(1.0, 1)  # arrives late: folds forward, never resurrects
        assert ring.delta() == 2
        assert ring.cells == 1

    def test_rate_over_covered_span(self):
        ring = WindowedCounter(window_s=10.0, slots=5)
        ring.push(6)
        assert ring.rate() == pytest.approx(3.0)  # one 2 s slot covered
        for _ in range(4):
            ring.push(1)
        assert ring.rate() == pytest.approx(1.0)  # 10 over the full 10 s

    def test_memory_is_bounded_by_slots(self):
        ring = WindowedCounter(window_s=8.0, slots=8)
        for tick in range(10_000):
            ring.add(float(tick), 1)
        assert ring.cells <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter(window_s=0.0, slots=4)
        with pytest.raises(ValueError):
            WindowedCounter(window_s=1.0, slots=0)


class TestWindowedHistogram:
    def test_observe_and_merged_moments(self):
        ring = WindowedHistogram(window_s=4.0, slots=4, buckets=(1.0, 2.0))
        for now, value in ((0.5, 0.5), (1.5, 1.5), (2.5, 5.0)):
            ring.observe(now, value)
        assert ring.count() == 3
        assert ring.total() == pytest.approx(7.0)
        assert ring.mean() == pytest.approx(7.0 / 3)
        assert ring.maximum() == 5.0
        assert ring.counts() == [1, 1, 1]

    def test_quantile_is_conservative_bucket_bound(self):
        ring = WindowedHistogram(window_s=4.0, slots=4, buckets=(1.0, 2.0))
        for value in (0.5, 0.6, 1.5, 1.6):
            ring.observe(0.0, value)
        assert ring.quantile(0.5) == 1.0
        assert ring.quantile(1.0) == 2.0
        ring.observe(0.0, 99.0)
        assert ring.quantile(1.0) == float("inf")

    def test_quantile_empty_and_validation(self):
        ring = WindowedHistogram(window_s=1.0, slots=1)
        assert ring.quantile(0.5) == 0.0
        assert ring.maximum() == 0.0
        with pytest.raises(ValueError):
            ring.quantile(0.0)

    def test_aging_out_drops_old_observations(self):
        ring = WindowedHistogram(window_s=2.0, slots=2, buckets=(1.0,))
        ring.observe(0.0, 10.0)
        ring.observe(2.5, 0.5)  # slot [0,1) ages out
        assert ring.count() == 1
        assert ring.maximum() == 0.5

    def test_push_counts_pads_short_vectors(self):
        ring = WindowedHistogram(window_s=2.0, slots=2, buckets=(1.0, 2.0))
        ring.push_counts([3], total=1.5, maximum=0.9)
        assert ring.counts() == [3, 0, 0]
        assert ring.count() == 3
        assert ring.total() == pytest.approx(1.5)
        assert ring.maximum() == pytest.approx(0.9)


class TestWindowedTrend:
    def test_reads_ratio_and_slope(self):
        ring = WindowedTrend(window_s=8.0, slots=8)
        for t in range(4):
            ring.add(float(t), ok=(t != 3), latency=0.2 * t)
        ratio, slope, samples = ring.read(now=3.0)
        assert ratio == pytest.approx(0.75)
        assert slope == pytest.approx(0.2)
        assert samples == 4

    def test_empty_window_reads_healthy(self):
        ring = WindowedTrend(window_s=4.0, slots=4)
        assert ring.read(now=100.0) == (1.0, 0.0, 0)

    def test_read_evicts_stale_cells(self):
        ring = WindowedTrend(window_s=2.0, slots=2)
        ring.add(0.0, ok=False, latency=9.0)
        ring.add(2.5, ok=True, latency=0.1)
        ratio, _, samples = ring.read(now=2.5)
        assert ratio == 1.0  # the failure aged out
        assert samples == 1
