"""Tests for the groupware applications (each quadrant of Figure 1)."""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.document import DocumentProcessor
from repro.apps.meeting_room import MeetingRoom
from repro.apps.message_system import MessageSystem, Memo, Rule
from repro.apps.shared_editor import SharedEditor
from repro.apps.workflow import Procedure, ProcedureStep, WorkflowSystem
from repro.util.errors import ConfigurationError, ModelError, UnknownObjectError


class TestConferencing:
    @pytest.fixture
    def conf(self) -> ConferencingSystem:
        system = ConferencingSystem()
        system.create_conference("odp-debate", "ana")
        system.join("odp-debate", "wolf")
        system.join("odp-debate", "tom")
        return system

    def test_post_and_news(self, conf):
        conf.post("odp-debate", "ana", "intro", "welcome", time=1.0)
        conf.post("odp-debate", "wolf", "position", "ODP will help", time=2.0)
        news = conf.news_for("odp-debate", "tom")
        assert [e.topic for e in news] == ["intro", "position"]
        assert conf.news_for("odp-debate", "tom") == []

    def test_read_marks_per_member(self, conf):
        conf.post("odp-debate", "ana", "a", "1")
        conf.news_for("odp-debate", "wolf")
        conf.post("odp-debate", "ana", "b", "2")
        assert len(conf.news_for("odp-debate", "wolf")) == 1
        assert len(conf.news_for("odp-debate", "tom")) == 2

    def test_nonmember_cannot_post_or_read(self, conf):
        with pytest.raises(ConfigurationError):
            conf.post("odp-debate", "stranger", "t", "x")
        with pytest.raises(ConfigurationError):
            conf.news_for("odp-debate", "stranger")

    def test_threads(self, conf):
        root = conf.post("odp-debate", "ana", "q", "question")
        conf.post("odp-debate", "wolf", "re: q", "answer", in_reply_to=root.entry_id)
        conf.post("odp-debate", "tom", "other", "unrelated")
        thread = conf.thread("odp-debate", root.entry_id)
        assert [e.author for e in thread] == ["ana", "wolf"]

    def test_reply_to_unknown_entry_rejected(self, conf):
        with pytest.raises(UnknownObjectError):
            conf.post("odp-debate", "ana", "t", "x", in_reply_to="entry-ghost")

    def test_organizer_cannot_leave(self, conf):
        with pytest.raises(ConfigurationError):
            conf.leave("odp-debate", "ana")
        conf.leave("odp-debate", "wolf")
        assert "wolf" not in conf.conference("odp-debate").members

    def test_duplicate_conference_rejected(self, conf):
        with pytest.raises(ConfigurationError):
            conf.create_conference("odp-debate", "x")

    def test_converter_round_trip(self):
        system = ConferencingSystem()
        converter = system.converter()
        native = {"topic": "t", "entry": "e", "conference": "c", "author": "ana"}
        assert converter.from_common(converter.to_common(native)) == native


class TestMessageSystem:
    @pytest.fixture
    def messages(self) -> MessageSystem:
        return MessageSystem()

    def test_template_validation(self, messages):
        with pytest.raises(ConfigurationError):
            messages.write_memo("ana", "action-request", "do it", "", fields={})
        memo_doc = messages.write_memo(
            "ana", "action-request", "do it", "please",
            fields={"action": "review", "deadline": "friday"},
        )
        assert memo_doc["template"] == "action-request"

    def test_unknown_template_rejected(self, messages):
        with pytest.raises(UnknownObjectError):
            messages.write_memo("ana", "telepathy", "s", "t")

    def test_define_template(self, messages):
        messages.define_template("bug-report", ["severity"])
        assert "bug-report" in messages.templates()
        with pytest.raises(ConfigurationError):
            messages.define_template("bug-report", [])

    def test_rules_file_and_flag(self, messages):
        messages.add_rule("wolf", Rule("urgent", {"template": "action-request"}, ("flag", "urgent")))
        messages.add_rule("wolf", Rule("filing", {"template": "action-request"}, ("file", "todo")))
        memo = Memo("m1", "action-request", "s", "t", {"action": "x", "deadline": "d"})
        messages.place("wolf", memo)
        assert messages.folder("wolf", "todo")[0].flags == {"urgent"}
        assert messages.folder("wolf", "inbox") == []
        assert messages.auto_processed == 2

    def test_rule_on_field_value(self, messages):
        messages.add_rule("wolf", Rule("from-boss", {"sender": "boss"}, ("file", "priority")))
        messages.place("wolf", Memo("m1", "plain", "s", "t", {}, sender="boss"))
        messages.place("wolf", Memo("m2", "plain", "s", "t", {}, sender="peer"))
        assert len(messages.folder("wolf", "priority")) == 1
        assert len(messages.folder("wolf", "inbox")) == 1

    def test_forward_rule(self, messages):
        forwarded = []
        messages.set_forward_hook(lambda frm, to, memo: forwarded.append((frm, to, memo.memo_id)))
        messages.add_rule("wolf", Rule("delegate", {"template": "plain"}, ("forward", "assistant")))
        messages.place("wolf", Memo("m1", "plain", "s", "t", {}))
        assert forwarded == [("wolf", "assistant", "m1")]

    def test_converter_preserves_fields(self, messages):
        converter = messages.converter()
        native = {"subject": "s", "text": "t", "template": "action-request",
                  "fields": {"action": "go", "deadline": "now"}}
        round_tripped = converter.from_common(converter.to_common(native))
        assert round_tripped["fields"] == native["fields"]
        assert round_tripped["template"] == "action-request"


class TestSharedEditor:
    @pytest.fixture
    def editing(self, world):
        world.add_site("net", ["ws1", "ws2", "ws3"])
        editor = SharedEditor(world)
        editor.open_document("ana", "ws1")
        editor.open_document("wolf", "ws2")
        return world, editor

    def test_edits_propagate_wysiwis(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "line one")
        editor.insert("ana", 1, "line two")
        world.run()
        assert editor.view("wolf") == ["line one", "line two"]
        assert editor.converged()

    def test_concurrent_edits_converge(self, editing):
        world, editor = editing
        # Both insert at position 0 before seeing each other's edit.
        editor.insert("ana", 0, "from ana")
        editor.insert("wolf", 0, "from wolf")
        world.run()
        assert editor.converged()
        assert sorted(editor.view("ana")) == ["from ana", "from wolf"]

    def test_delete_propagates(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "will vanish")
        world.run()
        editor.delete("wolf", 0)
        world.run()
        assert editor.view("ana") == []
        assert editor.converged()

    def test_late_joiner_with_state_transfer_sees_history(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "early")
        world.run()
        editor.open_document("tom", "ws3")
        editor.insert("ana", 1, "late")
        world.run()
        assert editor.view("tom") == ["early", "late"]
        assert editor.converged()

    def test_late_joiner_without_state_transfer_misses_history(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "early")
        world.run()
        editor.open_document("tom", "ws3", state_transfer=False)
        editor.insert("ana", 1, "late")
        world.run()
        assert editor.view("tom") == ["late"]

    def test_unopened_person_cannot_edit(self, editing):
        world, editor = editing
        with pytest.raises(ModelError):
            editor.insert("stranger", 0, "x")

    def test_snapshot_native_format(self, editing):
        world, editor = editing
        editor.insert("ana", 0, "title line")
        world.run()
        snapshot = editor.snapshot("ana", "minutes")
        converter = editor.converter()
        common = converter.to_common(snapshot)
        assert common["body"] == "title line"


class TestMeetingRoom:
    @pytest.fixture
    def meeting(self, world):
        world.add_site("room", ["seat1", "seat2", "seat3"])
        room = MeetingRoom(world)
        room.enter_room("ana", "seat1")
        room.enter_room("wolf", "seat2")
        room.add_agenda_point("requirements")
        return world, room

    def test_brainstorm_free_for_all(self, meeting):
        world, room = meeting
        room.begin_brainstorm("requirements")
        room.add_item("ana", "openness")
        room.add_item("wolf", "transparency")
        assert len(room.board()) == 2

    def test_organise_requires_floor(self, meeting):
        world, room = meeting
        room.begin_brainstorm("requirements")
        room.add_item("ana", "openness")
        room.end_brainstorm("requirements")
        with pytest.raises(ModelError):
            room.add_item("wolf", "sneaky item")
        room.take_floor("wolf")
        item = room.add_item("wolf", "with the chalk")
        room.categorise(item.item_id, "infrastructure")
        assert room.board("infrastructure")[0].text == "with the chalk"

    def test_voting_and_ranking(self, meeting):
        world, room = meeting
        room.begin_brainstorm("requirements")
        first = room.add_item("ana", "openness")
        second = room.add_item("wolf", "speed")
        room.vote("ana", first.item_id)
        room.vote("wolf", first.item_id)
        room.vote("wolf", second.item_id)
        room.vote("wolf", second.item_id)  # idempotent per person
        assert room.ranking() == [("openness", 2), ("speed", 1)]

    def test_outsider_cannot_write_or_vote(self, meeting):
        world, room = meeting
        room.begin_brainstorm("requirements")
        with pytest.raises(ModelError):
            room.add_item("stranger", "x")
        item = room.add_item("ana", "y")
        with pytest.raises(ModelError):
            room.vote("stranger", item.item_id)

    def test_unknown_agenda_point_rejected(self, meeting):
        world, room = meeting
        with pytest.raises(ModelError):
            room.begin_brainstorm("nonexistent")


class TestWorkflow:
    @pytest.fixture
    def flow(self) -> WorkflowSystem:
        system = WorkflowSystem()
        system.define_procedure(
            Procedure(
                "purchase",
                [
                    ProcedureStep("request", "requester", fills=("item", "amount")),
                    ProcedureStep("approve", "manager", fills=("approved",)),
                    ProcedureStep("order", "purchasing"),
                ],
            )
        )
        system.grant_role("ana", "requester")
        system.grant_role("joan", "manager")
        system.grant_role("marta", "purchasing")
        return system

    def test_case_routes_through_roles(self, flow):
        case = flow.start_case("purchase", {})
        assert flow.current_step(case.case_id).name == "request"
        flow.perform_step(case.case_id, "ana", {"item": "workstation", "amount": 3000})
        assert flow.work_list("joan")[0].case_id == case.case_id
        flow.perform_step(case.case_id, "joan", {"approved": True})
        flow.perform_step(case.case_id, "marta")
        assert flow.case(case.case_id).completed
        assert flow.case(case.case_id).form["approved"] is True

    def test_wrong_role_rejected(self, flow):
        case = flow.start_case("purchase", {})
        with pytest.raises(ModelError):
            flow.perform_step(case.case_id, "joan")

    def test_missing_slots_rejected(self, flow):
        case = flow.start_case("purchase", {})
        with pytest.raises(ModelError):
            flow.perform_step(case.case_id, "ana", {"item": "pc"})

    def test_skip_deviation_recorded(self, flow):
        case = flow.start_case("purchase", {"item": "pencil", "amount": 1})
        flow.perform_step(case.case_id, "ana", {"item": "pencil", "amount": 1})
        flow.skip_step(case.case_id, "joan", "trivial amount")
        assert flow.deviations == 1
        assert "skipped" in flow.case(case.case_id).records[-1].deviation

    def test_skip_requires_justification(self, flow):
        case = flow.start_case("purchase", {})
        with pytest.raises(ModelError):
            flow.skip_step(case.case_id, "ana", "")

    def test_delegation_deviation(self, flow):
        case = flow.start_case("purchase", {})
        flow.perform_step(case.case_id, "ana", {"item": "x", "amount": 1})
        flow.delegate_step(case.case_id, "joan", "ana")
        flow.perform_step(case.case_id, "ana", {"approved": True})
        assert flow.deviations == 1

    def test_completed_case_has_no_current_step(self, flow):
        case = flow.start_case("purchase", {})
        flow.perform_step(case.case_id, "ana", {"item": "x", "amount": 1})
        flow.perform_step(case.case_id, "joan", {"approved": False})
        flow.perform_step(case.case_id, "marta")
        with pytest.raises(ModelError):
            flow.current_step(case.case_id)

    def test_unknown_procedure_rejected(self, flow):
        with pytest.raises(UnknownObjectError):
            flow.start_case("teleport", {})


class TestDocumentProcessor:
    def test_single_user_editing(self):
        docs = DocumentProcessor()
        docs.create("ana", "minutes")
        docs.append_paragraph("ana", "minutes", "We met.")
        docs.append_paragraph("ana", "minutes", "We decided.")
        assert docs.paragraphs("ana", "minutes") == ["We met.", "We decided."]
        assert docs.titles("ana") == ["minutes"]

    def test_unknown_document_rejected(self):
        with pytest.raises(UnknownObjectError):
            DocumentProcessor().append_paragraph("ana", "ghost", "x")

    def test_is_not_cscw(self):
        assert DocumentProcessor.is_cscw is False

    def test_receive_saves_file(self):
        docs = DocumentProcessor()
        docs.deliver("ana", {"title": "report", "paragraphs": ["a", "b"]}, {})
        assert docs.paragraphs("ana", "report") == ["a", "b"]

    def test_receive_does_not_overwrite(self):
        docs = DocumentProcessor()
        docs.create("ana", "report")
        docs.append_paragraph("ana", "report", "mine")
        docs.deliver("ana", {"title": "report", "paragraphs": ["theirs"]}, {})
        assert docs.paragraphs("ana", "report") == ["mine"]
        assert docs.paragraphs("ana", "report (received)") == ["theirs"]
