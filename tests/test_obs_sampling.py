"""Tests for deterministic trace sampling and tail-biased retention."""

from __future__ import annotations

import pytest

from repro.obs.analyze import TraceAnalyzer
from repro.obs.context import TraceContext
from repro.obs.export import chrome_trace_json, to_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.environment.environment import CSCWEnvironment
from repro.org.model import Organisation, Person
from repro.sim.world import World
from repro.util.errors import ConfigurationError


def make_sampler(p=0.5, seed=7) -> Tracer:
    return Tracer().configure_sampling(p, seed=seed)


class TestHeadSampling:
    def test_same_seed_same_decisions(self):
        first, second = make_sampler(), make_sampler()
        decisions = []
        for tracer in (first, second):
            run = []
            for _ in range(32):
                with tracer.span("op") as span:
                    run.append(span.sampled)
            decisions.append(run)
        assert decisions[0] == decisions[1]
        assert 0 < sum(decisions[0]) < 32

    def test_different_seed_different_decisions(self):
        # decision hash differs by seed for at least one of 64 trace indices
        first = [make_sampler(seed=1)._decide(i) for i in range(64)]
        second = [make_sampler(seed=2)._decide(i) for i in range(64)]
        assert first != second

    def test_p_bounds(self):
        with pytest.raises(ValueError):
            Tracer().configure_sampling(1.5)
        everything = Tracer().configure_sampling(1.0)
        assert everything.sampling is None  # p=1.0 is the unsampled fast path
        nothing = Tracer().configure_sampling(0.0)
        with nothing.span("op") as span:
            assert span.sampled is False
        assert nothing.finished() == []

    def test_children_inherit_the_root_verdict(self):
        tracer = make_sampler(p=0.0)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.sampled is root.sampled is False
        assert tracer.finished() == []
        assert tracer.sampled_out == 1  # one decision, made at the root

    def test_stats_count_decisions(self):
        tracer = make_sampler(p=0.5, seed=7)
        for _ in range(16):
            with tracer.span("op"):
                pass
        assert tracer.sampled_in + tracer.sampled_out == 16
        assert tracer.sampled_in == len(tracer.finished())

    def test_reset_clears_sampling_state(self):
        tracer = make_sampler(p=0.0)
        with tracer.span("op", reason_code="timeout"):
            pass
        assert len(tracer.finished()) == 1
        tracer.reset()
        assert tracer.finished() == []
        assert tracer.sampled_out == 0
        assert tracer.tail_retained == 0


class TestContextPropagation:
    def test_context_carries_the_verdict(self):
        tracer = make_sampler(p=0.0)
        with tracer.span("root"):
            context = tracer.current_context()
        assert context.sampled is False
        document = context.to_document()
        assert document["sampled"] is False
        assert TraceContext.from_document(document).sampled is False

    def test_sampled_wire_format_is_unchanged(self):
        tracer = Tracer()
        with tracer.span("root"):
            document = tracer.current_context().to_document()
        assert set(document) == {"trace_id", "span_id"}

    def test_remote_hop_inherits_drop(self):
        origin = make_sampler(p=0.0)
        with origin.span("root"):
            context = origin.current_context()
        remote = Tracer()  # receiving side samples nothing itself
        with remote.span_from_context("hop", context) as span:
            assert span.sampled is False
        assert remote.finished() == []

    def test_detached_span_inherits_from_context(self):
        tracer = make_sampler(p=0.0)
        with tracer.span("root"):
            context = tracer.current_context()
        span = tracer.start_span("async", context=context)
        assert span.sampled is False
        tracer.finish(span)
        assert tracer.finished() == []


class TestTailRetention:
    def test_error_spans_promote_their_whole_trace(self):
        tracer = make_sampler(p=0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("step"):
                    pass
                with tracer.span("boom"):
                    raise RuntimeError("kaput")
        finished = tracer.finished()
        assert [span.name for span in finished] == ["step", "boom", "root"]
        assert tracer.tail_retained == 1

    @pytest.mark.parametrize(
        "tags",
        [
            {"reason_code": "deadline-exceeded"},
            {"outcome": "expired"},
            {"reason": "parked"},
            {"delivered": False},
        ],
    )
    def test_failure_tags_promote(self, tags):
        tracer = make_sampler(p=0.0)
        with tracer.span("root", **tags):
            pass
        assert len(tracer.finished()) == 1

    def test_forward_span_name_promotes(self):
        tracer = make_sampler(p=0.0)
        with tracer.span("root"):
            with tracer.span("federation.forward"):
                pass
        assert {span.name for span in tracer.finished()} == {
            "root", "federation.forward"
        }

    def test_healthy_traces_are_dropped(self):
        tracer = make_sampler(p=0.0)
        for _ in range(4):
            with tracer.span("root", reason_code="delivered"):
                with tracer.span("step"):
                    pass
        assert tracer.finished() == []
        assert tracer.tail_retained == 0

    def test_late_span_of_promoted_trace_is_kept(self):
        tracer = make_sampler(p=0.0)
        with tracer.span("root", delivered=False):
            context = tracer.current_context()
        tracer.finished()  # drains: trace promoted into the retained set
        late = tracer.start_span("redrive", context=context)
        tracer.finish(late)
        assert [span.name for span in tracer.finished()] == ["root", "redrive"]


class TestBuilderKnob:
    def test_requires_tracer(self, world):
        builder = (
            CSCWEnvironment.builder().with_world(world).with_trace_sampling(0.5)
        )
        with pytest.raises(ConfigurationError):
            builder.build()
        with pytest.raises(ConfigurationError):
            CSCWEnvironment.builder().with_trace_sampling(1.5)

    def test_configures_the_tracer(self, world):
        tracer = Tracer()
        (
            CSCWEnvironment.builder()
            .with_world(world)
            .with_tracer(tracer)
            .with_trace_sampling(0.25, seed=3)
            .build()
        )
        assert tracer.sampling == (0.25, 3)


def run_sampled_population(seed: int = 9, p: float = 0.5):
    """A small exchanging population under a sampling tracer."""
    from repro.communication.model import Communicator
    from repro.environment.registry import (
        AppDescriptor,
        Q_DIFFERENT_TIME_DIFFERENT_PLACE,
    )
    from repro.information.interchange import FormatConverter, make_common

    world = World(seed=seed)
    tracer = Tracer()
    env = (
        CSCWEnvironment.builder()
        .with_world(world)
        .with_metrics(MetricsRegistry())
        .with_tracer(tracer)
        .with_trace_sampling(p, seed=seed)
        .build()
    )
    org = Organisation("upc", "UPC")
    for index in range(4):
        org.add_person(Person(f"p{index}", f"P{index}", "upc"))
    env.knowledge_base.add_organisation(org)
    world.add_site("bcn", [f"w{index}" for index in range(4)])
    for index in range(4):
        env.register_person(Communicator(f"p{index}", f"w{index}"))
    converter = FormatConverter(
        "fmt",
        lambda document: make_common("note", str(document.get("seq", "")), ""),
        lambda common: {"seq": common["title"]},
    )
    env.register_application(
        AppDescriptor(
            name="app0",
            quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
            converter=converter,
        ),
        lambda person, document, info: None,
    )
    for index in range(24):
        env.exchange(
            f"p{index % 4}", f"p{(index + 1) % 4}", "app0", "app0", {"seq": index}
        )
    return tracer


class TestEndToEndDeterminism:
    def test_same_seed_reruns_keep_identical_spans(self):
        first = run_sampled_population()
        second = run_sampled_population()
        assert to_jsonl(first.finished()) == to_jsonl(second.finished())
        assert first.sampled_in == second.sampled_in > 0
        assert first.sampled_out == second.sampled_out > 0

    def test_exporters_are_deterministic_under_sampling(self):
        first = run_sampled_population()
        second = run_sampled_population()
        assert chrome_trace_json(first.finished()) == chrome_trace_json(
            second.finished()
        )

    def test_every_retained_trace_is_one_connected_tree(self):
        tracer = run_sampled_population()
        analyzer = TraceAnalyzer(tracer.finished())
        assert analyzer.trace_ids()
        for trace_id in analyzer.trace_ids():
            assert analyzer.is_connected(trace_id)
            assert len(analyzer.roots(trace_id)) == 1
