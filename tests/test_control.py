"""Tests for repro.control: actions, hysteresis, end-to-end stability.

The control loop is only useful if it is *stable*: actions must be
idempotent and exactly reversible, hysteresis must stop a flapping
signal from ping-ponging the configuration, and a federation with the
loop enabled must still satisfy every conservation invariant the chaos
soak checks without it.
"""

from __future__ import annotations

import pytest

from repro.control import (
    BoostRelayBudget,
    ControlPlane,
    ControlPolicy,
    DrainGateway,
    RebalanceShadowing,
    TightenShed,
)
from repro.obs import MetricsRegistry, RatioSLO, SLOEngine
from repro.obs.events import KIND_CONTROL_ACTION, KIND_CONTROL_REVERT, EventLog
from repro.sim.rng import SeededRng
from repro.sim.world import World
from repro.util.errors import ConfigurationError


class FakeGateway:
    """Duck-typed gateway exposing exactly the control-plane surface."""

    def __init__(self) -> None:
        self.retries = 0
        self.in_flight = 0
        self.drained = False
        self.max_attempts = 4

    def drain(self) -> None:
        self.drained = True

    def undrain(self) -> None:
        self.drained = False

    def set_attempt_budget(self, max_attempts: int) -> None:
        self.max_attempts = max_attempts


class FakeEnvironment:
    def __init__(self, shed_limit) -> None:
        self.shed_limit = shed_limit

    def set_shed_limit(self, limit) -> None:
        self.shed_limit = limit


class FakeAgreement:
    def __init__(self, period_s: float = 2.0) -> None:
        self.period_s = period_s

    def set_period(self, period_s: float) -> None:
        self.period_s = period_s


class TestControlActions:
    def test_apply_and_revert_are_idempotent_edges(self):
        gateway = FakeGateway()
        action = DrainGateway("gw", gateway)
        assert not action.applied and action.last_transition == float("-inf")
        assert action.apply(1.0) is True
        assert gateway.drained and action.applied
        assert action.apply(2.0) is False, "second apply must be a no-op"
        assert action.last_transition == 1.0
        assert action.revert(3.0) is True
        assert not gateway.drained and not action.applied
        assert action.revert(4.0) is False, "revert of idle action is a no-op"
        assert (action.applies, action.reverts) == (1, 1)

    def test_boost_restores_saved_budget(self):
        gateway = FakeGateway()
        action = BoostRelayBudget("gw", gateway, extra_attempts=3)
        action.apply(0.0)
        assert gateway.max_attempts == 7
        action.revert(1.0)
        assert gateway.max_attempts == 4
        with pytest.raises(ConfigurationError):
            BoostRelayBudget("gw", gateway, extra_attempts=0)

    def test_tighten_shed_declines_without_a_limit(self):
        action = TightenShed("env", FakeEnvironment(shed_limit=None))
        assert action.apply(0.0) is False, "no shed policy: action declines"
        assert not action.applied
        env = FakeEnvironment(shed_limit=10)
        action = TightenShed("env", env, factor=0.5)
        action.apply(0.0)
        assert env.shed_limit == 5
        action.revert(1.0)
        assert env.shed_limit == 10
        with pytest.raises(ConfigurationError):
            TightenShed("env", env, factor=1.0)

    def test_rebalance_shadowing_restores_period(self):
        agreement = FakeAgreement(period_s=2.0)
        action = RebalanceShadowing("sh", agreement, slowdown=4.0)
        action.apply(0.0)
        assert agreement.period_s == 8.0
        action.revert(1.0)
        assert agreement.period_s == 2.0
        with pytest.raises(ConfigurationError):
            RebalanceShadowing("sh", agreement, slowdown=1.0)


class TestControlPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ControlPolicy(tick_s=0.0)
        with pytest.raises(ConfigurationError):
            ControlPolicy(cooldown_s=-1.0)
        with pytest.raises(ConfigurationError):
            ControlPolicy(trend_window_s=0.0)

    def test_duplicate_gateway_rejected(self, world):
        plane = ControlPlane(world.engine)
        plane.manage_gateway("gw", FakeGateway())
        with pytest.raises(ConfigurationError):
            plane.manage_gateway("gw", FakeGateway())


class TestHysteresis:
    """A signal flapping faster than the cool-down must not ping-pong."""

    def test_flapping_signal_is_suppressed_within_cooldown(self):
        world = World(seed=3)
        policy = ControlPolicy(tick_s=0.25, cooldown_s=5.0)
        metrics = MetricsRegistry()
        plane = ControlPlane(world.engine, policy=policy, metrics=metrics)
        gateway = FakeGateway()
        plane.manage_gateway("gw", gateway)
        plane.start()
        drain = plane._gateways["gw"].drain
        # Flap the degradation signal every tick for 4 simulated seconds:
        # retry surge on even ticks, clean-and-idle on odd ticks.
        flip = {"on": True}

        def flap() -> None:
            if flip["on"]:
                gateway.retries += 1
                gateway.in_flight = 1
            else:
                gateway.in_flight = 0
            flip["on"] = not flip["on"]

        from repro.sim.engine import PeriodicTask

        PeriodicTask(world.engine, 0.25, flap, label="signal-flap").start()
        world.run_for(4.0)
        # One real transition (the initial drain); every later flip inside
        # the cool-down was suppressed, not executed.
        assert gateway.drained
        assert (drain.applies, drain.reverts) == (1, 0)
        assert plane.suppressed > 0
        assert metrics.snapshot()["counters"]["control.suppressed"] > 0
        # After the cool-down expires with a calm signal, exactly one
        # revert happens — no burst of queued transitions.
        gateway.in_flight = 0
        world.run_for(3.0)
        assert not gateway.drained
        assert (drain.applies, drain.reverts) == (1, 1)

    def test_transitions_respect_cooldown_spacing(self):
        world = World(seed=4)
        policy = ControlPolicy(tick_s=0.25, cooldown_s=2.0)
        plane = ControlPlane(world.engine, policy=policy)
        gateway = FakeGateway()
        plane.manage_gateway("gw", gateway)
        plane.start()
        drain = plane._gateways["gw"].drain
        transitions = []
        original = plane._transition

        def spy(action, want_applied, reason, now):
            before = (action.applies, action.reverts)
            original(action, want_applied, reason, now)
            if (action.applies, action.reverts) != before:
                transitions.append(now)

        plane._transition = spy
        # Permanent flap: surge every tick, recovery claim every other.
        def churn() -> None:
            gateway.retries += 1
            gateway.in_flight = 1 - gateway.in_flight

        from repro.sim.engine import PeriodicTask

        PeriodicTask(world.engine, 0.25, churn, label="churn").start()
        world.run_for(10.0)
        assert transitions, "the signal must have driven transitions"
        gaps = [b - a for a, b in zip(transitions, transitions[1:])]
        assert all(gap >= policy.cooldown_s for gap in gaps), (
            f"transitions of {drain.target} violated the cool-down: {gaps}"
        )


class TestBurnDrivenActions:
    def test_one_burn_one_action_one_reversal(self):
        """The check.sh smoke invariant, asserted at unit level."""
        world = World(seed=5)
        metrics = MetricsRegistry()
        events = EventLog()
        slo = SLOEngine(world.engine, metrics, sample_period_s=0.5).declare(
            RatioSLO("delivery", "good", "total", target=0.9, window_s=4.0)
        )
        slo.start()
        env = FakeEnvironment(shed_limit=10)
        from repro.obs.tracing import Tracer

        plane = ControlPlane(
            world.engine,
            policy=ControlPolicy(tick_s=0.25, cooldown_s=1.0),
            metrics=metrics,
            events=events,
            tracer=Tracer(),
        )
        plane.watch_slo(slo)
        plane.manage_environment("env", env)
        plane.start()
        # Burn: nothing but errors for a window's worth of samples.
        for _ in range(4):
            metrics.inc("total")
            world.run_for(0.5)
        assert plane.burning == {"delivery"}
        assert env.shed_limit == 5, "burn must tighten the shed limit"
        # Recovery: a clean stretch longer than the window clears the
        # alert, and the action reverts exactly once.
        for _ in range(12):
            metrics.inc("good")
            metrics.inc("total")
            world.run_for(0.5)
        assert plane.burning == set()
        assert env.shed_limit == 10, "recovery must restore the shed limit"
        assert plane.actions_applied == 1 and plane.actions_reverted == 1
        assert plane.fully_reverted()
        applies = events.events(kind=KIND_CONTROL_ACTION)
        reverts = events.events(kind=KIND_CONTROL_REVERT)
        assert len(applies) == 1 and len(reverts) == 1
        assert applies[0].attrs["action"] == "tighten-shed"
        assert applies[0].attrs["reason"] == "slo-burn:delivery"
        assert reverts[0].attrs["reason"] == "burn-cleared"
        assert applies[0].trace_id and reverts[0].trace_id


class TestFederationControl:
    """End-to-end: attach_control on a live federation under chaos."""

    def _federation(self, seed: int = 11):
        from repro.environment.registry import (
            AppDescriptor,
            Q_DIFFERENT_TIME_DIFFERENT_PLACE,
        )
        from repro.federation.federation import Federation

        world = World(seed=seed)
        federation = Federation.partition(
            world,
            {name: [f"p-{name}"] for name in ("d0", "d1", "d2")},
            metrics=MetricsRegistry(),
        )
        federation.register_application(
            AppDescriptor(name="app", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE]),
            lambda person, doc, info: None,
        )
        federation.start_health_checks(period_s=1.0, timeout_s=0.5)
        return world, federation

    def test_actions_fully_reverse_after_recovery(self):
        from repro.resilience import ChaosRunner

        world, federation = self._federation()
        plane = federation.attach_control()
        plane.start()
        assert federation.control is plane
        gateway = federation.domain("d0").gateway_to("d1")
        budgets = {
            f"{d.name}->{peer}": d.gateway_to(peer).max_attempts
            for d in federation.domains()
            for peer in ("d0", "d1", "d2")
            if peer != d.name
        }
        chaos = ChaosRunner(world, name="recovery")
        chaos.flap_link(
            federation.domain("d0").node,
            federation.domain("d1").node,
            start=2.0, down_s=6.0, up_s=5.0, flaps=1,
        )
        for index in range(10):
            federation.federated_exchange("p-d0", "p-d1", "app", "app", {"n": index})
            world.run_for(1.0)
        assert plane.actions_applied > 0, "the outage must have driven actions"
        drain = plane._gateways["d0->d1"].drain
        assert drain.applies >= 1, "the degrading gateway must have been drained"
        # Let the link heal, trends go clean, and cool-downs expire.
        world.run_for(30.0)
        assert plane.fully_reverted(), plane.describe()
        assert not gateway.drained
        assert drain.applies == drain.reverts, "every drain must be undone"
        for domain in federation.domains():
            for peer in ("d0", "d1", "d2"):
                if peer != domain.name:
                    key = f"{domain.name}->{peer}"
                    assert domain.gateway_to(peer).max_attempts == budgets[key], (
                        f"attempt budget of {key} not restored"
                    )

    def test_attach_control_manages_every_gateway(self):
        _, federation = self._federation()
        plane = federation.attach_control()
        managed = {action["target"] for action in plane.describe()["actions"]}
        for domain in federation.domains():
            for peer in ("d0", "d1", "d2"):
                if peer != domain.name:
                    assert f"{domain.name}->{peer}" in managed


class TestFederatedChaosSoakWithControl:
    """The tests/test_soak_chaos.py conservation soak, control enabled.

    Same 4 domains, same flapping links and crash storm, same seeds —
    the adaptive loop must not break a single conservation invariant:
    every exchange gets exactly one outcome, delivered exchanges land in
    exactly one inbox, failures are reason-coded, nothing raises.
    """

    @pytest.mark.parametrize("seed", [21, 22])
    def test_conservation_holds_with_control_enabled(self, seed):
        from repro.environment.environment import REASON_DEADLINE_EXCEEDED
        from repro.environment.registry import (
            AppDescriptor,
            Q_DIFFERENT_TIME_DIFFERENT_PLACE,
        )
        from repro.federation.federation import (
            REASON_GATEWAY_DEAD_LETTER,
            Federation,
        )
        from repro.resilience import ChaosRunner

        world = World(seed=seed)
        names = ["upc", "gmd", "inria", "mcc"]
        metrics = MetricsRegistry()
        federation = Federation.partition(
            world, {name: [f"p-{name}"] for name in names}, metrics=metrics
        )
        inbox: list = []
        federation.register_application(
            AppDescriptor(name="soak", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE]),
            lambda person, doc, info: inbox.append((person, doc["n"])),
        )
        federation.start_health_checks(period_s=1.0, timeout_s=0.5)
        slo = SLOEngine(world.engine, metrics, sample_period_s=1.0).declare(
            RatioSLO(
                "federated-delivery",
                good="env.federation.delivered",
                total="env.federation.exchanges",
                target=0.99,
                window_s=10.0,
            )
        )
        slo.start()
        federation.attach_control(slo=slo).start()
        gateway_nodes = {name: federation.domain(name).node for name in names}
        chaos = ChaosRunner(world, name=f"soak-{seed}")
        chaos.flap_link(
            gateway_nodes["upc"], gateway_nodes["gmd"],
            start=2.0, down_s=9.0, up_s=2.0, flaps=4,
        )
        chaos.flap_link(
            gateway_nodes["inria"], gateway_nodes["mcc"],
            start=3.0, down_s=9.0, up_s=2.0, flaps=4,
        )
        chaos.crash_storm(
            [gateway_nodes["gmd"], gateway_nodes["inria"]],
            start=12.0, downtime_s=9.0, stagger_s=12.0, jitter_s=1.0,
        )
        rng = SeededRng(seed + 7)
        outcomes = []
        for index in range(30):
            sender = names[index % 4]
            receiver = names[(index + 1 + index % 3) % 4]
            deadline = world.now + 2.0 if index % 4 == 0 else None
            outcomes.append(
                federation.federated_exchange(
                    f"p-{sender}", f"p-{receiver}", "soak", "soak",
                    {"n": index}, deadline=deadline,
                )
            )
            world.run_for(rng.uniform(0.1, 1.5))
        world.run_for(30.0)  # drain: every in-flight relay settles
        assert len(outcomes) == 30
        delivered = [o for o in outcomes if o.delivered]
        failed = [o for o in outcomes if not o.delivered]
        assert {o.reason_code for o in failed} <= {
            REASON_GATEWAY_DEAD_LETTER,
            REASON_DEADLINE_EXCEEDED,
        }
        assert sorted(n for _, n in inbox) == [
            index for index, o in enumerate(outcomes) if o.delivered
        ]
        assert delivered and failed
        plane = federation.control
        assert plane is not None and plane.actions_applied > 0, (
            "the chaos must have driven at least one control action"
        )
