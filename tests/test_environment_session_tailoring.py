"""Tests for cooperation sessions, tailoring and the view registry."""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.environment.session import CooperationSession
from repro.environment.tailoring import TailorableParameter, TailoringService
from repro.environment.transparency import TransparencyProfile, ViewRegistry
from repro.org.model import Organisation, Person
from repro.util.errors import ConfigurationError, ModelError, TailoringError
from repro.util.events import EventRecorder


@pytest.fixture
def env(world) -> CSCWEnvironment:
    env = CSCWEnvironment(world)
    upc = Organisation("upc", "UPC")
    for pid, name in [("ana", "Ana Lopez"), ("joan", "Joan Puig"), ("marta", "Marta Vila")]:
        upc.add_person(Person(pid, name, "upc"))
    env.knowledge_base.add_organisation(upc)
    world.add_site("bcn", ["ws1", "ws2", "ws3"])
    for pid, node in [("ana", "ws1"), ("joan", "ws2"), ("marta", "ws3")]:
        env.register_person(Communicator(pid, node))
    ConferencingSystem().attach(env, exporter_org="upc")
    MessageSystem().attach(env, exporter_org="upc")
    env.create_activity("review", "review meeting")
    return env


class TestCooperationSession:
    def test_join_send_receive(self, env):
        session = CooperationSession(env, "review")
        session.join("ana", "conferencing")
        session.join("joan", "message-system")
        outcome = session.send("ana", "joan", {"topic": "agenda", "entry": "item 1"})
        assert outcome.delivered
        assert session.members() == ["ana", "joan"]
        assert session.app_of("joan") == "message-system"

    def test_broadcast(self, env):
        session = CooperationSession(env, "review")
        for person, app in [("ana", "conferencing"), ("joan", "message-system"),
                            ("marta", "conferencing")]:
            session.join(person, app)
        outcomes = session.broadcast("ana", {"topic": "t", "entry": "e"})
        assert len(outcomes) == 2
        assert all(o.delivered for o in outcomes)

    def test_double_join_rejected(self, env):
        session = CooperationSession(env, "review")
        session.join("ana", "conferencing")
        with pytest.raises(ModelError):
            session.join("ana", "conferencing")

    def test_unregistered_app_rejected(self, env):
        session = CooperationSession(env, "review")
        with pytest.raises(ModelError):
            session.join("ana", "spreadsheet-3000")

    def test_leave_unsubscribes_and_removes(self, env):
        session = CooperationSession(env, "review")
        events = EventRecorder()
        session.join("ana", "conferencing", on_event=events)
        session.join("joan", "message-system")
        session.leave("ana")
        session.announce({"note": "after ana left"})
        assert events.events == []
        assert not env.activities.get("review").is_member("ana")

    def test_member_events_scoped_to_activity(self, env):
        env.create_activity("other", "other activity")
        session = CooperationSession(env, "review")
        other = CooperationSession(env, "other")
        review_events = EventRecorder()
        session.join("ana", "conferencing", on_event=review_events)
        other.join("joan", "message-system")
        other.announce({"secret": "other business"})
        session.announce({"public": "review business"})
        assert [e.payload for e in review_events.events] == [{"public": "review business"}]


class TestTailoring:
    @pytest.fixture
    def service(self) -> TailoringService:
        service = TailoringService()
        service.declare(
            "editor", TailorableParameter("ui.font_size", numeric_range=(8, 32))
        )
        service.declare(
            "editor", TailorableParameter("ui.theme", choices=("light", "dark"))
        )
        service.set_default("editor", {"ui": {"font_size": 12, "theme": "light"}})
        return service

    def test_layering_user_overrides_developer(self, service):
        service.tailor("editor", "ui.font_size", 18, layer="user", subject="ana")
        assert service.effective_value("editor", "ui.font_size", user="ana") == 18
        assert service.effective_value("editor", "ui.font_size", user="joan") == 12

    def test_org_layer_between_system_and_user(self, service):
        service.tailor("editor", "ui.theme", "dark", layer="organisation", subject="upc")
        assert (
            service.effective_value("editor", "ui.theme", user="ana", organisation="upc")
            == "dark"
        )
        service.tailor("editor", "ui.theme", "light", layer="user", subject="ana")
        assert (
            service.effective_value("editor", "ui.theme", user="ana", organisation="upc")
            == "light"
        )

    def test_undeclared_parameter_rejected(self, service):
        with pytest.raises(TailoringError):
            service.tailor("editor", "ui.secret", 1, subject="ana")
        assert service.rejected == 1

    def test_out_of_bounds_rejected(self, service):
        with pytest.raises(TailoringError):
            service.tailor("editor", "ui.font_size", 99, subject="ana")
        with pytest.raises(TailoringError):
            service.tailor("editor", "ui.theme", "psychedelic", subject="ana")

    def test_user_layer_requires_subject(self, service):
        with pytest.raises(TailoringError):
            service.tailor("editor", "ui.font_size", 14)

    def test_live_listeners_notified(self, service):
        seen = []
        service.on_change("editor", lambda app, config: seen.append(config))
        service.tailor("editor", "ui.font_size", 20, subject="ana")
        assert seen
        assert seen[-1]["ui"]["font_size"] == 20

    def test_parameters_of_lists_toolkit(self, service):
        paths = [p.path for p in service.parameters_of("editor")]
        assert paths == ["ui.font_size", "ui.theme"]

    def test_duplicate_declaration_rejected(self, service):
        with pytest.raises(TailoringError):
            service.declare("editor", TailorableParameter("ui.theme"))

    def test_unknown_layer_rejected(self, service):
        with pytest.raises(TailoringError):
            service.tailor("editor", "ui.theme", "dark", layer="cosmic")


class TestTransparencyProfile:
    def test_all_on_off(self):
        assert TransparencyProfile.all_on().hidden_count() == 4
        assert TransparencyProfile.all_off().hidden_count() == 0

    def test_without_and_with(self):
        profile = TransparencyProfile.all_on().without("time")
        assert profile.enabled_dimensions() == ["organisation", "view", "activity"]
        assert profile.with_("time").hidden_count() == 4

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            TransparencyProfile.all_on().without("gravity")


class TestViewRegistry:
    def test_render_annotates(self):
        views = ViewRegistry()
        views.set_view("ana", language="ca")
        rendered = views.render("ana", {"body": "hello"})
        assert rendered["_view"] == {"language": "ca"}
        assert rendered["body"] == "hello"

    def test_default_view_untouched(self):
        views = ViewRegistry()
        document = {"body": "hello"}
        assert views.render("joan", document) == document

    def test_views_merge(self):
        views = ViewRegistry()
        views.set_view("ana", language="ca")
        views.set_view("ana", font="large")
        assert views.view_of("ana") == {"language": "ca", "font": "large"}
