"""Tests for the extension features built beyond the first-pass system:

* environment store-and-forward delivery queues (time transparency's
  "different time" half done honestly),
* trader dynamic properties (ODP dynamic trading),
* directory alias entries with dereferencing,
* QoS-monitored channels.
"""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.directory.dit import DirectoryInformationTree
from repro.environment.environment import CSCWEnvironment
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import ComputationalObject, InterfaceRef, signature
from repro.odp.qos import QoSMonitor, QoSSpec
from repro.odp.trader import Constraint, Trader
from repro.org.model import Organisation, Person
from repro.util.errors import DirectoryError


@pytest.fixture
def env_and_apps(world):
    env = CSCWEnvironment(world)
    org = Organisation("upc", "UPC")
    org.add_person(Person("ana", "Ana", "upc"))
    org.add_person(Person("joan", "Joan", "upc"))
    env.knowledge_base.add_organisation(org)
    world.add_site("bcn", ["ws1", "ws2"])
    env.register_person(Communicator("ana", "ws1"))
    env.register_person(Communicator("joan", "ws2"))
    conferencing = ConferencingSystem()
    messages = MessageSystem()
    conferencing.attach(env)
    messages.attach(env)
    return env, conferencing, messages


@pytest.fixture
def env(env_and_apps) -> CSCWEnvironment:
    return env_and_apps[0]


class TestStoreAndForwardDelivery:
    DOC = {"topic": "t", "entry": "e", "conference": "c", "author": "ana"}

    def test_absent_receiver_queues(self, env):
        env.person_leaves("joan")
        outcome = env.exchange("ana", "joan", "conferencing", "message-system", self.DOC)
        assert outcome.delivered and outcome.mode == "asynchronous"
        assert env.pending_for("joan") == 1

    def test_arrival_flushes_queue(self, env):
        env.person_leaves("joan")
        env.exchange("ana", "joan", "conferencing", "message-system", self.DOC)
        env.exchange("ana", "joan", "conferencing", "message-system", self.DOC)
        flushed = env.person_arrives("joan")
        assert flushed == 2
        assert env.pending_for("joan") == 0

    def test_flushed_documents_reach_the_app(self, env_and_apps):
        env, conferencing, messages = env_and_apps
        env.person_leaves("joan")
        env.exchange("ana", "joan", "conferencing", "message-system", self.DOC)
        assert messages.folder("joan") == []  # nothing until joan returns
        env.person_arrives("joan")
        memos = messages.folder("joan")
        assert len(memos) == 1
        assert memos[0].subject == "t"

    def test_present_receiver_delivers_immediately(self, env):
        outcome = env.exchange("ana", "joan", "conferencing", "message-system", self.DOC)
        assert outcome.mode == "synchronous"
        assert env.pending_for("joan") == 0

    def test_arrival_with_empty_queue(self, env):
        assert env.person_arrives("joan") == 0


class TestDynamicTradingProperties:
    def test_dynamic_property_evaluated_per_import(self):
        trader = Trader("t")
        load = {"value": 0}
        trader.export(
            "compute", InterfaceRef("n1", "o", "i"),
            {"load": lambda: load["value"]},
        )
        trader.export("compute", InterfaceRef("n2", "o", "i"), {"load": 5})
        first = trader.import_one("compute", preference="min:load")
        assert first.ref.node == "n1"
        load["value"] = 10
        second = trader.import_one("compute", preference="min:load")
        assert second.ref.node == "n2"

    def test_dynamic_property_in_constraints(self):
        trader = Trader("t")
        queue = {"depth": 3}
        trader.export(
            "printing", InterfaceRef("n1", "o", "i"),
            {"queue": lambda: queue["depth"]},
        )
        matched = trader.import_("printing", [Constraint("queue", "<=", 5)], max_offers=5)
        assert len(matched) == 1
        queue["depth"] = 9
        from repro.util.errors import NoOfferError

        with pytest.raises(NoOfferError):
            trader.import_("printing", [Constraint("queue", "<=", 5)])

    def test_evaluated_properties_helper(self):
        offer = Trader("t").export(
            "svc", InterfaceRef("n", "o", "i"), {"static": 1, "dynamic": lambda: 2}
        )
        assert offer.evaluated_properties() == {"static": 1, "dynamic": 2}


class TestDirectoryAliases:
    @pytest.fixture
    def dit(self) -> DirectoryInformationTree:
        dit = DirectoryInformationTree()
        dit.add("o=UPC", {"objectclass": ["organization"]})
        dit.add("cn=Ana,o=UPC", {"objectclass": ["person"], "sn": ["Lopez"]})
        dit.add(
            "cn=Secretary,o=UPC",
            {"objectclass": ["alias"], "aliasedobjectname": ["cn=Ana,o=UPC"]},
        )
        return dit

    def test_read_dereferences(self, dit):
        entry = dit.read("cn=Secretary,o=UPC")
        assert entry.first("sn") == "Lopez"

    def test_read_raw_alias(self, dit):
        entry = dit.read("cn=Secretary,o=UPC", dereference=False)
        assert entry.first("aliasedobjectname") == "cn=Ana,o=UPC"

    def test_alias_chain(self, dit):
        dit.add(
            "cn=Deputy,o=UPC",
            {"objectclass": ["alias"], "aliasedobjectname": ["cn=Secretary,o=UPC"]},
        )
        assert dit.read("cn=Deputy,o=UPC").first("sn") == "Lopez"

    def test_alias_loop_detected(self, dit):
        dit.add(
            "cn=LoopA,o=UPC",
            {"objectclass": ["alias"], "aliasedobjectname": ["cn=LoopB,o=UPC"]},
        )
        dit.add(
            "cn=LoopB,o=UPC",
            {"objectclass": ["alias"], "aliasedobjectname": ["cn=LoopA,o=UPC"]},
        )
        with pytest.raises(DirectoryError, match="alias chain"):
            dit.read("cn=LoopA,o=UPC")

    def test_modify_touches_the_alias_not_the_target(self, dit):
        dit.modify("cn=Secretary,o=UPC", add={"description": ["front desk"]})
        assert dit.read("cn=Secretary,o=UPC", dereference=False).get("description") == [
            "front desk"
        ]
        assert dit.read("cn=Ana,o=UPC").get("description") == []

    def test_search_does_not_dereference(self, dit):
        hits = dit.search("", where=None)
        names = {str(e.name) for e in hits}
        assert "cn=Secretary,o=UPC" in names


class TestQoSChannels:
    def test_monitor_observes_latency(self, world):
        world.add_site("hq", ["server", "client"])
        capsule = Capsule(world.network, "server")
        factory = BindingFactory(world.network)
        factory.register_capsule(capsule)
        obj = ComputationalObject("svc")
        obj.offer(signature("svc", "ping"), {"ping": lambda args: "pong"})
        refs = capsule.deploy(obj)
        monitor = QoSMonitor(QoSSpec(max_latency_s=1.0), name="svc")
        channel = factory.bind("client", refs["svc"], qos_monitor=monitor)
        for _ in range(3):
            channel.call(world, "ping")
        assert monitor.attempts == 3
        assert monitor.in_conformance()

    def test_monitor_detects_latency_violation(self, world):
        from repro.sim.network import LinkSpec

        world.add_site("hq", ["server", "client"])
        world.network.set_link("client", "server", LinkSpec(latency_s=2.0))
        capsule = Capsule(world.network, "server")
        factory = BindingFactory(world.network)
        factory.register_capsule(capsule)
        obj = ComputationalObject("svc")
        obj.offer(signature("svc", "ping"), {"ping": lambda args: "pong"})
        refs = capsule.deploy(obj)
        monitor = QoSMonitor(QoSSpec(max_latency_s=0.5), name="svc")
        channel = factory.bind("client", refs["svc"], timeout_s=10.0, qos_monitor=monitor)
        channel.call(world, "ping")
        assert monitor.latency_violations == 1
        assert not monitor.in_conformance()

    def test_monitor_counts_failures(self, world):
        from repro.util.errors import BindingError

        world.add_site("hq", ["server", "client"])
        capsule = Capsule(world.network, "server")
        factory = BindingFactory(world.network)
        factory.register_capsule(capsule)
        obj = ComputationalObject("svc")
        obj.offer(signature("svc", "ping"), {"ping": lambda args: "pong"})
        refs = capsule.deploy(obj)
        world.network.node("server").crash()
        monitor = QoSMonitor(QoSSpec(min_reliability=0.99), name="svc")
        channel = factory.bind("client", refs["svc"], timeout_s=0.5, qos_monitor=monitor)
        with pytest.raises(BindingError):
            channel.call(world, "ping")
        assert monitor.reliability() == 0.0
