"""Tests for the Directory Information Tree."""

from __future__ import annotations

import pytest

from repro.directory.dit import SCOPE_BASE, SCOPE_ONE, SCOPE_SUBTREE, DirectoryInformationTree
from repro.directory.filters import Eq, parse_filter
from repro.util.errors import (
    DirectoryError,
    EntryExistsError,
    NoSuchEntryError,
    SchemaViolationError,
)


@pytest.fixture
def dit() -> DirectoryInformationTree:
    tree = DirectoryInformationTree()
    tree.add("c=ES", {"objectclass": ["country"]})
    tree.add("o=UPC,c=ES", {"objectclass": ["organization"]})
    tree.add("ou=AC,o=UPC,c=ES", {"objectclass": ["organizationalunit"]})
    tree.add(
        "cn=Ana,ou=AC,o=UPC,c=ES",
        {"objectclass": ["person"], "sn": ["Lopez"], "mail": ["ana@upc.es"]},
    )
    tree.add(
        "cn=Joan,ou=AC,o=UPC,c=ES",
        {"objectclass": ["person"], "sn": ["Puig"]},
    )
    return tree


class TestAdd:
    def test_add_and_read(self, dit):
        entry = dit.read("cn=Ana,ou=AC,o=UPC,c=ES")
        assert entry.first("sn") == "Lopez"

    def test_naming_attribute_auto_added(self, dit):
        entry = dit.read("cn=Ana,ou=AC,o=UPC,c=ES")
        assert "Ana" in entry.get("cn")

    def test_duplicate_rejected(self, dit):
        with pytest.raises(EntryExistsError):
            dit.add("c=ES", {"objectclass": ["country"]})

    def test_orphan_rejected(self, dit):
        with pytest.raises(NoSuchEntryError):
            dit.add("cn=X,o=Nowhere,c=ES", {"objectclass": ["person"], "sn": ["X"]})

    def test_schema_violation_rejected(self, dit):
        with pytest.raises(SchemaViolationError):
            dit.add("cn=Bad,ou=AC,o=UPC,c=ES", {"objectclass": ["person"]})  # missing sn

    def test_root_add_rejected(self, dit):
        with pytest.raises(DirectoryError):
            dit.add("", {"objectclass": ["top"]})

    def test_len_counts_entries(self, dit):
        assert len(dit) == 5


class TestModify:
    def test_replace(self, dit):
        dit.modify("cn=Ana,ou=AC,o=UPC,c=ES", replace={"mail": ["ana@gmd.de"]})
        assert dit.read("cn=Ana,ou=AC,o=UPC,c=ES").get("mail") == ["ana@gmd.de"]

    def test_add_value_deduplicates(self, dit):
        dit.modify("cn=Ana,ou=AC,o=UPC,c=ES", add={"mail": ["ana@upc.es", "a2@upc.es"]})
        assert sorted(dit.read("cn=Ana,ou=AC,o=UPC,c=ES").get("mail")) == [
            "a2@upc.es",
            "ana@upc.es",
        ]

    def test_delete_attribute(self, dit):
        dit.modify("cn=Ana,ou=AC,o=UPC,c=ES", delete=["mail"])
        assert dit.read("cn=Ana,ou=AC,o=UPC,c=ES").get("mail") == []

    def test_modify_unknown_rejected(self, dit):
        with pytest.raises(NoSuchEntryError):
            dit.modify("cn=Ghost,c=ES", replace={})

    def test_modify_validates_schema(self, dit):
        with pytest.raises(SchemaViolationError):
            dit.modify("cn=Ana,ou=AC,o=UPC,c=ES", delete=["sn"])


class TestDelete:
    def test_delete_leaf(self, dit):
        dit.delete("cn=Joan,ou=AC,o=UPC,c=ES")
        assert not dit.exists("cn=Joan,ou=AC,o=UPC,c=ES")

    def test_delete_interior_rejected(self, dit):
        with pytest.raises(DirectoryError, match="children"):
            dit.delete("ou=AC,o=UPC,c=ES")

    def test_delete_unknown_rejected(self, dit):
        with pytest.raises(NoSuchEntryError):
            dit.delete("cn=Ghost,c=ES")


class TestSearch:
    def test_base_scope(self, dit):
        found = dit.search("cn=Ana,ou=AC,o=UPC,c=ES", scope=SCOPE_BASE)
        assert len(found) == 1

    def test_one_scope(self, dit):
        found = dit.search("ou=AC,o=UPC,c=ES", scope=SCOPE_ONE)
        assert {e.first("cn") for e in found} == {"Ana", "Joan"}

    def test_subtree_scope_includes_base(self, dit):
        found = dit.search("o=UPC,c=ES", scope=SCOPE_SUBTREE)
        assert len(found) == 4  # org, ou, two persons

    def test_subtree_from_root(self, dit):
        assert len(dit.search("", scope=SCOPE_SUBTREE)) == 5

    def test_filtered_search(self, dit):
        found = dit.search("", where=parse_filter("(&(objectClass=person)(mail=*))"))
        assert [e.first("cn") for e in found] == ["Ana"]

    def test_filter_object(self, dit):
        found = dit.search("", where=Eq("sn", "puig"))
        assert [e.first("cn") for e in found] == ["Joan"]

    def test_limit(self, dit):
        found = dit.search("", where=Eq("objectclass", "person"), limit=1)
        assert len(found) == 1

    def test_unknown_base_rejected(self, dit):
        with pytest.raises(NoSuchEntryError):
            dit.search("o=Ghost", scope=SCOPE_SUBTREE)

    def test_unknown_scope_rejected(self, dit):
        with pytest.raises(DirectoryError):
            dit.search("", scope="galaxy")

    def test_children_of(self, dit):
        children = dit.children_of("o=UPC,c=ES")
        assert [str(c.name) for c in children] == ["ou=AC,o=UPC,c=ES"]


class TestChangelog:
    def test_csn_increments(self, dit):
        before = dit.csn
        dit.modify("cn=Ana,ou=AC,o=UPC,c=ES", add={"title": ["prof"]})
        assert dit.csn == before + 1

    def test_changes_since(self, dit):
        mark = dit.csn
        dit.delete("cn=Joan,ou=AC,o=UPC,c=ES")
        changes = dit.changes_since(mark)
        assert len(changes) == 1
        assert changes[0].operation == "delete"

    def test_apply_change_replicates(self, dit):
        replica = DirectoryInformationTree()
        for change in dit.changes_since(0):
            replica.apply_change(change)
        assert len(replica) == len(dit)
        assert replica.read("cn=Ana,ou=AC,o=UPC,c=ES").first("sn") == "Lopez"
        assert replica.csn == dit.csn

    def test_apply_change_idempotent(self, dit):
        replica = DirectoryInformationTree()
        changes = dit.changes_since(0)
        for change in changes:
            replica.apply_change(change)
        for change in changes:
            replica.apply_change(change)
        assert len(replica) == len(dit)
