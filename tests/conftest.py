"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.sim.world import World
from repro.util.ids import reset_ids


@pytest.fixture(autouse=True)
def _fresh_ids():
    """Reset the global id factory so ids are stable within each test."""
    reset_ids()
    yield
    reset_ids()


@pytest.fixture
def world() -> World:
    """A fresh simulated world with a fixed seed."""
    return World(seed=42)
