"""Soak/chaos tests: long runs, random failures, global invariants.

These tests run the full stack over longer simulated horizons with
randomized crash/recovery cycles and check conservation invariants:
messages are either delivered or reported, replicas converge, the
environment's queues drain, and nothing raises unexpectedly.
"""

from __future__ import annotations

import pytest

from repro.apps.shared_editor import SharedEditor
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import OrName
from repro.messaging.ua import UserAgent
from repro.sim.rng import SeededRng
from repro.sim.world import World


def _two_site_mhs(world: World, users_per_site: int = 3):
    world.add_site("a", ["mta-a"] + [f"a{i}" for i in range(users_per_site)])
    world.add_site("b", ["mta-b"] + [f"b{i}" for i in range(users_per_site)])
    mta_a = MessageTransferAgent(world, "mta-a", "a", [("xx", "", "a")])
    mta_b = MessageTransferAgent(world, "mta-b", "b", [("xx", "", "b")])
    mta_a.add_peer("b", "mta-b")
    mta_b.add_peer("a", "mta-a")
    mta_a.routing.add_default("b")
    mta_b.routing.add_default("a")
    uas = []
    for side, mta_node in (("a", "mta-a"), ("b", "mta-b")):
        for index in range(users_per_site):
            user = OrName(country="xx", admd="", prmd=side, surname=f"u{side}{index}")
            ua = UserAgent(world, f"{side}{index}", user, mta_node)
            ua.register()
            uas.append(ua)
    return mta_a, mta_b, uas


class TestMessagingChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mail_conserved_under_random_mta_crashes(self, seed):
        """Every accepted message is delivered or NDR'd — never lost.

        MTA crash windows are kept shorter than the retry budget
        (4 attempts x 2 s), so store-and-forward masks every outage and
        nothing is silently dropped.
        """
        world = World(seed=seed)
        mta_a, mta_b, uas = _two_site_mhs(world)
        rng = SeededRng(seed + 100)
        # Random short crash windows on both MTAs across the horizon.
        for mta_node in ("mta-a", "mta-b"):
            t = 1.0
            while t < 50.0:
                t += rng.exponential(15.0)
                if t >= 50.0:
                    break
                world.failures.crash_at(mta_node, at=t, duration=rng.uniform(0.5, 4.0))
                t += 5.0
        # Senders on both sides, receivers across the cut, spread in time.
        from repro.util.errors import MessagingError

        accepted = []
        refused = []

        def try_submit(sender: UserAgent, receiver: UserAgent, index: int) -> None:
            envelope = sender.compose([receiver.user], f"chaos {index}", "body")
            try:
                sender.submit(envelope)
                accepted.append(envelope.message_id)
            except MessagingError:
                refused.append(envelope.message_id)  # home MTA down: visible failure

        for index in range(30):
            sender = uas[index % len(uas)]
            receiver = uas[(index + 3) % len(uas)]
            when = world.now + 0.1 + index * 2.0
            world.engine.schedule_at(
                when, lambda s=sender, r=receiver, i=index: try_submit(s, r, i)
            )
        world.run(max_events=5_000_000)
        # Conservation: every *accepted* message reached a mailbox (the
        # crash windows are shorter than the MTA retry budget, so no
        # NDRs are expected); refusals were surfaced to the sender.
        delivered_ids = set()
        for ua in uas:
            for summary in ua.list_inbox():
                delivered_ids.add(summary["message_id"])
        ndrs = sum(m.reports_issued for m in (mta_a, mta_b))
        assert len(accepted) + len(refused) == 30
        for message_id in accepted:
            assert message_id in delivered_ids or ndrs > 0, (
                f"accepted message {message_id} neither delivered nor reported"
            )
        assert set(accepted) <= delivered_ids or ndrs > 0

    def test_submission_during_home_mta_outage_times_out_visibly(self):
        """A UA whose own MTA is down gets an explicit error, not silence."""
        from repro.util.errors import MessagingError

        world = World(seed=9)
        mta_a, mta_b, uas = _two_site_mhs(world)
        world.network.node("mta-a").crash()
        with pytest.raises(MessagingError, match="timeout"):
            uas[0].send([uas[1].user], "s", "b")


class TestEditorChaosConvergence:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_random_edit_storm_converges(self, seed):
        world = World(seed=seed)
        world.add_site("net", [f"e{i}" for i in range(4)])
        editor = SharedEditor(world)
        people = [f"user{i}" for i in range(4)]
        for index, person in enumerate(people):
            editor.open_document(person, f"e{index}")
        rng = SeededRng(seed)
        for _ in range(60):
            person = rng.choice(people)
            if rng.chance(0.7):
                editor.insert(person, rng.randint(0, 10), f"line-{rng.randint(0, 99)}")
            else:
                editor.delete(person, rng.randint(0, 10))
            if rng.chance(0.3):
                world.run_for(0.001)  # interleave partial propagation
        world.run()
        assert editor.converged()
        views = {person: editor.view(person) for person in people}
        first = views[people[0]]
        assert all(view == first for view in views.values())


class TestEnvironmentQueueDrain:
    def test_pending_queues_always_drain_on_arrival(self, world):
        from repro.apps.conferencing import ConferencingSystem
        from repro.apps.message_system import MessageSystem
        from repro.communication.model import Communicator
        from repro.environment.environment import CSCWEnvironment
        from repro.org.model import Organisation, Person

        env = CSCWEnvironment(world)
        org = Organisation("upc", "UPC")
        org.add_person(Person("ana", "Ana", "upc"))
        org.add_person(Person("joan", "Joan", "upc"))
        env.knowledge_base.add_organisation(org)
        world.add_site("bcn", ["w1", "w2"])
        env.register_person(Communicator("ana", "w1"))
        env.register_person(Communicator("joan", "w2"))
        ConferencingSystem().attach(env)
        messages = MessageSystem()
        messages.attach(env)
        rng = SeededRng(5)
        expected_inbox = 0
        document = {"topic": "t", "entry": "e", "conference": "c", "author": "ana"}
        for round_number in range(20):
            if rng.chance(0.5):
                env.person_leaves("joan")
            else:
                env.person_arrives("joan")
            outcome = env.exchange(
                "ana", "joan", "conferencing", "message-system", document
            )
            assert outcome.delivered
            expected_inbox += 1
        env.person_arrives("joan")
        assert env.pending_for("joan") == 0
        assert len(messages.folder("joan")) == expected_inbox


class TestFederatedChaosSoak:
    """4-domain federation under flapping links and rolling gateway crashes.

    Conservation invariant: every federated_exchange returns exactly one
    outcome — delivered (and then present in exactly one inbox: the
    relay dedup keeps at-least-once wire semantics at-most-once
    downstream) or reason-coded.  Nothing is silently lost and nothing
    raises.
    """

    @pytest.mark.parametrize("seed", [21, 22])
    def test_federated_exchanges_conserved_under_chaos(self, seed):
        from repro.environment.environment import REASON_DEADLINE_EXCEEDED
        from repro.environment.registry import (
            AppDescriptor,
            Q_DIFFERENT_TIME_DIFFERENT_PLACE,
        )
        from repro.federation.federation import (
            REASON_GATEWAY_DEAD_LETTER,
            Federation,
        )
        from repro.resilience import ChaosRunner

        world = World(seed=seed)
        names = ["upc", "gmd", "inria", "mcc"]
        federation = Federation.partition(
            world, {name: [f"p-{name}"] for name in names}
        )
        inbox: list = []
        federation.register_application(
            AppDescriptor(name="soak", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE]),
            lambda person, doc, info: inbox.append((person, doc["n"])),
        )
        gateway_nodes = {name: federation.domain(name).node for name in names}
        chaos = ChaosRunner(world, name=f"soak-{seed}")
        # Flapping inter-domain links on two pairs...
        chaos.flap_link(
            gateway_nodes["upc"], gateway_nodes["gmd"],
            start=2.0, down_s=9.0, up_s=2.0, flaps=4,
        )
        chaos.flap_link(
            gateway_nodes["inria"], gateway_nodes["mcc"],
            start=3.0, down_s=9.0, up_s=2.0, flaps=4,
        )
        # ...plus rolling gateway-node crashes sweeping the federation:
        # downtime exceeds the full relay retry budget, so exchanges
        # originating at a crashed gateway must end as dead letters.
        chaos.crash_storm(
            [gateway_nodes["gmd"], gateway_nodes["inria"]],
            start=12.0, downtime_s=9.0, stagger_s=12.0, jitter_s=1.0,
        )
        rng = SeededRng(seed + 7)
        outcomes = []
        for index in range(30):
            sender = names[index % 4]
            receiver = names[(index + 1 + index % 3) % 4]
            deadline = world.now + 2.0 if index % 4 == 0 else None
            outcomes.append(
                federation.federated_exchange(
                    f"p-{sender}", f"p-{receiver}", "soak", "soak",
                    {"n": index}, deadline=deadline,
                )
            )
            world.run_for(rng.uniform(0.1, 1.5))
        world.run_for(30.0)  # drain: every in-flight relay settles
        # Conservation: one outcome per exchange, each delivered or
        # reason-coded with a failure the caller can act on.
        assert len(outcomes) == 30
        delivered = [o for o in outcomes if o.delivered]
        failed = [o for o in outcomes if not o.delivered]
        assert {o.reason_code for o in failed} <= {
            REASON_GATEWAY_DEAD_LETTER,
            REASON_DEADLINE_EXCEEDED,
        }
        # At-most-once AND at-least-once downstream: every delivered
        # exchange appears in exactly one inbox, nothing else does.
        assert sorted(n for _, n in inbox) == [
            index for index, o in enumerate(outcomes) if o.delivered
        ]
        # The chaos actually bit and the federation actually survived.
        assert delivered and failed
        # Parked dead letters stay accounted for in gateway stats.
        parked = sum(
            domain.gateway_to(peer).stats()["dead_letters"]
            for domain in federation.domains()
            for peer in gateway_nodes if peer != domain.name
        )
        dead_lettered = sum(
            1 for o in failed if o.reason_code == REASON_GATEWAY_DEAD_LETTER
        )
        assert dead_lettered <= parked + sum(
            domain.gateway_to(peer).expired + domain.gateway_to(peer).fast_failed
            for domain in federation.domains()
            for peer in gateway_nodes if peer != domain.name
        )
