"""Soak/chaos tests: long runs, random failures, global invariants.

These tests run the full stack over longer simulated horizons with
randomized crash/recovery cycles and check conservation invariants:
messages are either delivered or reported, replicas converge, the
environment's queues drain, and nothing raises unexpectedly.
"""

from __future__ import annotations

import pytest

from repro.apps.shared_editor import SharedEditor
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import OrName
from repro.messaging.ua import UserAgent
from repro.sim.rng import SeededRng
from repro.sim.world import World


def _two_site_mhs(world: World, users_per_site: int = 3):
    world.add_site("a", ["mta-a"] + [f"a{i}" for i in range(users_per_site)])
    world.add_site("b", ["mta-b"] + [f"b{i}" for i in range(users_per_site)])
    mta_a = MessageTransferAgent(world, "mta-a", "a", [("xx", "", "a")])
    mta_b = MessageTransferAgent(world, "mta-b", "b", [("xx", "", "b")])
    mta_a.add_peer("b", "mta-b")
    mta_b.add_peer("a", "mta-a")
    mta_a.routing.add_default("b")
    mta_b.routing.add_default("a")
    uas = []
    for side, mta_node in (("a", "mta-a"), ("b", "mta-b")):
        for index in range(users_per_site):
            user = OrName(country="xx", admd="", prmd=side, surname=f"u{side}{index}")
            ua = UserAgent(world, f"{side}{index}", user, mta_node)
            ua.register()
            uas.append(ua)
    return mta_a, mta_b, uas


class TestMessagingChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mail_conserved_under_random_mta_crashes(self, seed):
        """Every accepted message is delivered or NDR'd — never lost.

        MTA crash windows are kept shorter than the retry budget
        (4 attempts x 2 s), so store-and-forward masks every outage and
        nothing is silently dropped.
        """
        world = World(seed=seed)
        mta_a, mta_b, uas = _two_site_mhs(world)
        rng = SeededRng(seed + 100)
        # Random short crash windows on both MTAs across the horizon.
        for mta_node in ("mta-a", "mta-b"):
            t = 1.0
            while t < 50.0:
                t += rng.exponential(15.0)
                if t >= 50.0:
                    break
                world.failures.crash_at(mta_node, at=t, duration=rng.uniform(0.5, 4.0))
                t += 5.0
        # Senders on both sides, receivers across the cut, spread in time.
        from repro.util.errors import MessagingError

        accepted = []
        refused = []

        def try_submit(sender: UserAgent, receiver: UserAgent, index: int) -> None:
            envelope = sender.compose([receiver.user], f"chaos {index}", "body")
            try:
                sender.submit(envelope)
                accepted.append(envelope.message_id)
            except MessagingError:
                refused.append(envelope.message_id)  # home MTA down: visible failure

        for index in range(30):
            sender = uas[index % len(uas)]
            receiver = uas[(index + 3) % len(uas)]
            when = world.now + 0.1 + index * 2.0
            world.engine.schedule_at(
                when, lambda s=sender, r=receiver, i=index: try_submit(s, r, i)
            )
        world.run(max_events=5_000_000)
        # Conservation: every *accepted* message reached a mailbox (the
        # crash windows are shorter than the MTA retry budget, so no
        # NDRs are expected); refusals were surfaced to the sender.
        delivered_ids = set()
        for ua in uas:
            for summary in ua.list_inbox():
                delivered_ids.add(summary["message_id"])
        ndrs = sum(m.reports_issued for m in (mta_a, mta_b))
        assert len(accepted) + len(refused) == 30
        for message_id in accepted:
            assert message_id in delivered_ids or ndrs > 0, (
                f"accepted message {message_id} neither delivered nor reported"
            )
        assert set(accepted) <= delivered_ids or ndrs > 0

    def test_submission_during_home_mta_outage_times_out_visibly(self):
        """A UA whose own MTA is down gets an explicit error, not silence."""
        from repro.util.errors import MessagingError

        world = World(seed=9)
        mta_a, mta_b, uas = _two_site_mhs(world)
        world.network.node("mta-a").crash()
        with pytest.raises(MessagingError, match="timeout"):
            uas[0].send([uas[1].user], "s", "b")


class TestEditorChaosConvergence:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_random_edit_storm_converges(self, seed):
        world = World(seed=seed)
        world.add_site("net", [f"e{i}" for i in range(4)])
        editor = SharedEditor(world)
        people = [f"user{i}" for i in range(4)]
        for index, person in enumerate(people):
            editor.open_document(person, f"e{index}")
        rng = SeededRng(seed)
        for _ in range(60):
            person = rng.choice(people)
            if rng.chance(0.7):
                editor.insert(person, rng.randint(0, 10), f"line-{rng.randint(0, 99)}")
            else:
                editor.delete(person, rng.randint(0, 10))
            if rng.chance(0.3):
                world.run_for(0.001)  # interleave partial propagation
        world.run()
        assert editor.converged()
        views = {person: editor.view(person) for person in people}
        first = views[people[0]]
        assert all(view == first for view in views.values())


class TestEnvironmentQueueDrain:
    def test_pending_queues_always_drain_on_arrival(self, world):
        from repro.apps.conferencing import ConferencingSystem
        from repro.apps.message_system import MessageSystem
        from repro.communication.model import Communicator
        from repro.environment.environment import CSCWEnvironment
        from repro.org.model import Organisation, Person

        env = CSCWEnvironment(world)
        org = Organisation("upc", "UPC")
        org.add_person(Person("ana", "Ana", "upc"))
        org.add_person(Person("joan", "Joan", "upc"))
        env.knowledge_base.add_organisation(org)
        world.add_site("bcn", ["w1", "w2"])
        env.register_person(Communicator("ana", "w1"))
        env.register_person(Communicator("joan", "w2"))
        ConferencingSystem().attach(env)
        messages = MessageSystem()
        messages.attach(env)
        rng = SeededRng(5)
        expected_inbox = 0
        document = {"topic": "t", "entry": "e", "conference": "c", "author": "ana"}
        for round_number in range(20):
            if rng.chance(0.5):
                env.person_leaves("joan")
            else:
                env.person_arrives("joan")
            outcome = env.exchange(
                "ana", "joan", "conferencing", "message-system", document
            )
            assert outcome.delivered
            expected_inbox += 1
        env.person_arrives("joan")
        assert env.pending_for("joan") == 0
        assert len(messages.folder("joan")) == expected_inbox
