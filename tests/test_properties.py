"""Property-based tests over core data structures and invariants.

Hypothesis drives the structures the whole stack leans on: the DIT's
tree invariants, topological execution orders, replica convergence in
the WYSIWIS editor, envelope serialization, routing specificity, trader
constraint satisfaction and layered tailoring.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity.dependencies import BEFORE, DependencyGraph
from repro.directory.dit import DirectoryInformationTree
from repro.messaging.envelope import Envelope, InterpersonalMessage
from repro.messaging.names import OrName
from repro.messaging.routing import RoutingTable
from repro.odp.objects import InterfaceRef
from repro.odp.trader import Constraint, Trader
from repro.util.errors import DependencyCycleError, NoOfferError
from repro.util.serialization import deep_merge


# -- directory tree invariants -------------------------------------------------

_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4), min_size=1, max_size=12
)


@given(_names)
@settings(max_examples=50)
def test_dit_add_then_delete_leaves_empty(names):
    """Adding a flat set of unique entries then deleting them empties the DIT."""
    dit = DirectoryInformationTree()
    dit.add("o=root", {"objectclass": ["organization"]})
    unique = sorted(set(names))
    for name in unique:
        dit.add(f"cn={name},o=root", {"objectclass": ["device"]})
    assert len(dit) == len(unique) + 1
    for name in unique:
        dit.delete(f"cn={name},o=root")
    assert len(dit) == 1
    assert dit.children_of("o=root") == []


@given(_names)
@settings(max_examples=50)
def test_dit_changelog_replay_reproduces_state(names):
    """Replaying the changelog into a fresh DIT reproduces the entries."""
    dit = DirectoryInformationTree()
    dit.add("o=root", {"objectclass": ["organization"]})
    for index, name in enumerate(sorted(set(names))):
        dit.add(f"cn={name},o=root", {"objectclass": ["device"]})
        if index % 2 == 0:
            dit.modify(f"cn={name},o=root", add={"localityname": ["lab"]})
    replica = DirectoryInformationTree()
    for change in dit.changes_since(0):
        replica.apply_change(change)
    assert len(replica) == len(dit)
    for entry in dit.search(""):
        assert replica.read(str(entry.name)).attributes == entry.attributes


# -- dependency graphs ----------------------------------------------------------

_edges = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
    max_size=25,
)


@given(_edges)
@settings(max_examples=80)
def test_execution_order_is_always_topological(edges):
    """Whatever edges are accepted, the plan respects all of them."""
    graph = DependencyGraph()
    accepted = []
    for source, target in edges:
        try:
            graph.add(BEFORE, f"a{source}", f"a{target}")
            accepted.append((f"a{source}", f"a{target}"))
        except DependencyCycleError:
            pass  # cycle-closing edges are correctly refused
    activities = [f"a{i}" for i in range(10)]
    order = graph.execution_order(activities)
    assert sorted(order) == sorted(activities)
    position = {name: index for index, name in enumerate(order)}
    for source, target in accepted:
        assert position[source] < position[target]


# -- WYSIWIS editor convergence ---------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.integers(0, 1),            # author index
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 5),            # position
        st.text(alphabet="xyz", max_size=3),
    ),
    max_size=12,
)


@given(_ops)
@settings(max_examples=40, deadline=None)
def test_shared_editor_replicas_always_converge(ops):
    """Any interleaving of concurrent edits converges at both replicas."""
    from repro.apps.shared_editor import SharedEditor
    from repro.sim.world import World

    world = World(seed=1)
    world.add_site("net", ["n0", "n1"])
    editor = SharedEditor(world)
    editor.open_document("u0", "n0")
    editor.open_document("u1", "n1")
    authors = ["u0", "u1"]
    for author_index, op, position, text in ops:
        author = authors[author_index]
        if op == "insert":
            editor.insert(author, position, text)
        else:
            editor.delete(author, position)
    world.run()
    assert editor.converged()


# -- envelope serialization ----------------------------------------------------------

_or_names = st.builds(
    OrName,
    country=st.sampled_from(["es", "de", "uk"]),
    admd=st.just(""),
    prmd=st.sampled_from(["upc", "gmd", "lancaster"]),
    surname=st.text(alphabet="abcdef", min_size=1, max_size=6),
    given_name=st.text(alphabet="ghij", max_size=4),
)


@given(
    originator=_or_names,
    recipients=st.lists(_or_names, min_size=1, max_size=4),
    subject=st.text(max_size=20),
    hops=st.lists(st.text(alphabet="mta-", min_size=1, max_size=6), max_size=4),
)
@settings(max_examples=60)
def test_envelope_document_round_trip(originator, recipients, subject, hops):
    envelope = Envelope(
        message_id="m1",
        originator=originator,
        recipients=recipients,
        content=InterpersonalMessage(ipm_id="i1", subject=subject),
    )
    for index, hop in enumerate(hops):
        envelope.stamp(hop, float(index))
    restored = Envelope.from_document(envelope.to_document())
    assert restored.originator == envelope.originator
    assert restored.recipients == envelope.recipients
    assert restored.content.subject == subject
    assert [t.mta for t in restored.trace] == [t.mta for t in envelope.trace]


# -- routing specificity ---------------------------------------------------------------

@given(
    st.sampled_from(["es", "de", "uk"]),
    st.sampled_from(["upc", "gmd", "lancaster"]),
)
@settings(max_examples=30)
def test_routing_most_specific_always_wins(country, prmd):
    table = RoutingTable()
    table.add_default("hub")
    table.add_route(country, "*", "*", "country-hop")
    table.add_route(country, "*", prmd, "exact-hop")
    assert table.next_hop((country, "x", prmd)) == "exact-hop"
    assert table.next_hop((country, "x", "other")) == "country-hop"
    assert table.next_hop(("fr", "x", "inria")) == "hub"


# -- trader constraint satisfaction -------------------------------------------------------

@given(
    offers=st.lists(st.integers(0, 100), min_size=1, max_size=15),
    bound=st.integers(0, 100),
)
@settings(max_examples=60)
def test_trader_imports_always_satisfy_constraints(offers, bound):
    trader = Trader("t")
    for index, cost in enumerate(offers):
        trader.export("svc", InterfaceRef(f"n{index}", "o", "i"), {"cost": cost})
    try:
        matched = trader.import_(
            "svc", [Constraint("cost", "<=", bound)],
            preference="min:cost", max_offers=100,
        )
    except NoOfferError:
        assert all(cost > bound for cost in offers)
        return
    assert all(offer.properties["cost"] <= bound for offer in matched)
    # min preference: first result is the global minimum of the matches.
    best = min(cost for cost in offers if cost <= bound)
    assert matched[0].properties["cost"] == best


# -- layered configuration ----------------------------------------------------------------

_configs = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.one_of(st.integers(), st.dictionaries(st.sampled_from(["x", "y"]), st.integers(), max_size=2)),
    max_size=3,
)


@given(_configs, _configs)
@settings(max_examples=60)
def test_deep_merge_overlay_keys_always_win(base, overlay):
    merged = deep_merge(base, overlay)
    for key, value in overlay.items():
        if isinstance(value, dict) and isinstance(base.get(key), dict):
            for inner_key, inner_value in value.items():
                assert merged[key][inner_key] == inner_value
        else:
            assert merged[key] == value
    for key, value in base.items():
        if key not in overlay:
            assert merged[key] == value


# -- media conversion matrix ------------------------------------------------------

from repro.messaging.body_parts import CONVERSION_FIDELITY


@given(st.sampled_from(sorted(CONVERSION_FIDELITY)))
@settings(max_examples=20)
def test_property_every_declared_conversion_works(pair):
    """Every (source, target) in the conversion matrix actually converts."""
    from repro.messaging.body_parts import (
        MEDIA_BINARY,
        MEDIA_FAX,
        MEDIA_TEXT,
        MEDIA_VOICE,
        binary_body,
        convert,
        fax_body,
        text_body,
        voice_body,
    )

    source, target = pair
    samples = {
        MEDIA_TEXT: text_body("hello world"),
        MEDIA_FAX: fax_body(2, summary="memo"),
        MEDIA_VOICE: voice_body(12.0, transcript="minutes"),
        MEDIA_BINARY: binary_body(64, description="blob"),
    }
    part = samples[source]
    converted = convert(part, target)
    assert converted.media == target
    assert 0.0 < converted.content["fidelity"] <= 1.0
    assert converted.size_bytes() >= 0
