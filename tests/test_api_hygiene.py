"""Meta-tests enforcing API hygiene across the whole library.

Deliverable (e) requires doc comments on every public item; these tests
make that a checked property rather than a hope, and verify that every
package's ``__all__`` names resolve.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro.util",
    "repro.obs",
    "repro.sim",
    "repro.odp",
    "repro.directory",
    "repro.messaging",
    "repro.org",
    "repro.activity",
    "repro.information",
    "repro.communication",
    "repro.expertise",
    "repro.environment",
    "repro.apps",
    "repro.baselines",
    "repro.analysis",
    "repro.resilience",
    "repro.federation",
    "repro.control",
]


def _all_modules() -> list[str]:
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package_name}.{info.name}")
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", _all_modules())
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exports are documented at their home
        if inspect.isclass(member):
            if not (member.__doc__ or "").strip():
                undocumented.append(f"class {name}")
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method) or (method.__doc__ or "").strip():
                    continue
                # An override inherits its contract's documentation (e.g.
                # Filter.matches, the Interceptor protocol methods).
                inherited = any(
                    (getattr(base, method_name, None) is not None)
                    and (getattr(getattr(base, method_name), "__doc__", "") or "").strip()
                    for base in member.__mro__[1:]
                )
                protocol_documented = method_name in (
                    "before_invoke",
                    "on_failure",
                ) or inherited
                if not protocol_documented:
                    undocumented.append(f"{name}.{method_name}")
        elif inspect.isfunction(member):
            if not (member.__doc__ or "").strip():
                undocumented.append(f"def {name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_all_resolves(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ names missing {name!r}"


def test_top_level_version():
    assert repro.__version__


class TestExchangeCallSurface:
    """The unified ExchangeRequest currency must not drift.

    Every exchange entry point — in-process, client stub, federation —
    takes a positional-only request plus the keyword shim, so the three
    surfaces stay interchangeable and a positional-argument caller can
    never silently bind to the wrong parameter.
    """

    SHIM_SHAPE = ("self", "request", "args", "kwargs")

    def _assert_shim(self, func, owner: str) -> None:
        parameters = list(inspect.signature(func).parameters.values())
        names = tuple(p.name for p in parameters)
        assert names == self.SHIM_SHAPE, (
            f"{owner} drifted from the unified surface: {names}"
        )
        request, var_args, var_kwargs = parameters[1:]
        assert request.kind is inspect.Parameter.POSITIONAL_ONLY, (
            f"{owner}: request must stay positional-only"
        )
        assert request.default is None
        assert var_args.kind is inspect.Parameter.VAR_POSITIONAL
        assert var_kwargs.kind is inspect.Parameter.VAR_KEYWORD

    def test_all_exchange_surfaces_share_one_shape(self):
        from repro.environment.environment import CSCWEnvironment
        from repro.environment.server import EnvironmentClient
        from repro.federation.federation import Federation

        self._assert_shim(CSCWEnvironment.exchange, "CSCWEnvironment.exchange")
        self._assert_shim(EnvironmentClient.exchange, "EnvironmentClient.exchange")
        self._assert_shim(
            Federation.federated_exchange, "Federation.federated_exchange"
        )

    def test_request_wire_form_round_trips(self):
        from repro.environment.environment import ExchangeRequest

        request = ExchangeRequest.from_kwargs(
            "ana", "joan", "app0", "app1", {"k": "v"},
            deadline=4.5, priority=2, shed_class="bulk",
        )
        assert ExchangeRequest.from_document(request.to_document()) == request
