"""Tests for O/R names and body parts."""

from __future__ import annotations

import pytest

from repro.messaging.body_parts import (
    MEDIA_FAX,
    MEDIA_PAPER,
    MEDIA_TEXT,
    MEDIA_VOICE,
    BodyPart,
    can_convert,
    conversion_fidelity,
    convert,
    fax_body,
    text_body,
    voice_body,
)
from repro.messaging.names import OrName, or_name
from repro.util.errors import MessagingError


class TestOrName:
    def test_parse_full(self):
        name = or_name("C=ES;A=mensatex;P=UPC;OU=AC;G=Ana;S=Lopez")
        assert name.country == "ES"
        assert name.prmd == "UPC"
        assert name.organizational_units == ("AC",)
        assert name.mailbox == "ana.lopez"

    def test_routing_domain_lowercased(self):
        name = or_name("C=ES;A=MensaTex;P=UPC;S=Lopez")
        assert name.routing_domain == ("es", "mensatex", "upc")

    def test_round_trip_str(self):
        name = or_name("C=DE;A= ;P=GMD;G=Wolf;S=Prinz")
        assert OrName.parse(str(name)) == name

    def test_document_round_trip(self):
        name = or_name("C=UK;A= ;P=Lancaster;OU=Computing;S=Rodden")
        assert OrName.from_document(name.to_document()) == name

    def test_missing_mandatory_rejected(self):
        with pytest.raises(MessagingError):
            or_name("C=ES;A=x")

    def test_invalid_component_rejected(self):
        with pytest.raises(MessagingError):
            or_name("nonsense")

    def test_mailbox_without_given_name(self):
        assert or_name("C=ES;P=UPC;S=Lopez").mailbox == "lopez"


class TestBodyParts:
    def test_text_size(self):
        assert text_body("abcd").size_bytes() == 4

    def test_fax_size_scales_with_pages(self):
        assert fax_body(3).size_bytes() == 3 * 30_000

    def test_voice_size_scales_with_duration(self):
        assert voice_body(10).size_bytes() == 80_000

    def test_invalid_fax_rejected(self):
        with pytest.raises(MessagingError):
            fax_body(0)

    def test_invalid_voice_rejected(self):
        with pytest.raises(MessagingError):
            voice_body(0)

    def test_document_round_trip(self):
        part = fax_body(2, summary="minutes")
        assert BodyPart.from_document(part.to_document()) == part


class TestConversion:
    def test_identity_always_possible(self):
        assert can_convert(MEDIA_VOICE, MEDIA_VOICE)
        assert conversion_fidelity(MEDIA_TEXT, MEDIA_TEXT) == 1.0

    def test_text_to_fax_lossless(self):
        assert conversion_fidelity(MEDIA_TEXT, MEDIA_FAX) == 1.0

    def test_fax_to_text_lossy(self):
        assert conversion_fidelity(MEDIA_FAX, MEDIA_TEXT) < 1.0

    def test_impossible_conversion(self):
        assert not can_convert(MEDIA_PAPER, MEDIA_VOICE)
        with pytest.raises(MessagingError):
            conversion_fidelity(MEDIA_PAPER, MEDIA_VOICE)

    def test_convert_text_to_fax_pages(self):
        fax = convert(text_body("x" * 5000), MEDIA_FAX)
        assert fax.media == MEDIA_FAX
        assert fax.content["pages"] == 3
        assert fax.content["converted_from"] == MEDIA_TEXT

    def test_convert_voice_to_text_keeps_transcript(self):
        text = convert(voice_body(30, transcript="hello"), MEDIA_TEXT)
        assert text.content["text"] == "hello"
        assert text.content["fidelity"] == 0.6

    def test_paper_exit(self):
        printed = convert(fax_body(1), MEDIA_PAPER)
        assert printed.media == MEDIA_PAPER
        assert printed.size_bytes() == 0
