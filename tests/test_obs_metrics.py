"""Tests for repro.obs.metrics: registry semantics, histogram bucketing,
and the no-op (disabled) overhead path."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounterGauge:
    def test_counter_increments_and_returns_value(self):
        counter = Counter("c")
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.value == 5

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_bucketing_is_le_semantics_with_overflow(self):
        histogram = Histogram("h", buckets=(1.0, 4.0, 16.0))
        for value in (0.0, 1.0, 2.0, 4.0, 5.0, 100.0):
            histogram.observe(value)
        # <=1: {0,1}, <=4: {2,4}, <=16: {5}, +inf: {100}
        assert histogram.bucket_counts == [2, 2, 1, 1]
        assert histogram.count == 6
        assert histogram.minimum == 0.0
        assert histogram.maximum == 100.0

    def test_mean_and_snapshot_shape(self):
        histogram = Histogram("h", buckets=(10.0,))
        histogram.observe(4.0)
        histogram.observe(8.0)
        snap = histogram.snapshot()
        assert snap["count"] == 2
        assert snap["mean"] == 6.0
        assert snap["buckets"] == {"le_10": 2, "le_inf": 0}

    def test_empty_snapshot_is_json_safe(self):
        snap = Histogram("h").snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        json.dumps(snap)  # no inf/nan leaks

    def test_bounds_are_sorted_and_unique(self):
        histogram = Histogram("h", buckets=(8.0, 2.0, 4.0))
        assert histogram.bounds == (2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_reset_keeps_bounds(self):
        histogram = Histogram("h", buckets=(2.0,))
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.bounds == (2.0,)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_buckets_fixed_at_creation(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(5.0,))
        # later callers cannot change the bounds
        assert registry.histogram("h", buckets=(99.0,)).bounds == (5.0,)
        assert registry.histogram("default").bounds == tuple(DEFAULT_BUCKETS)

    def test_shorthands_record(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.set_gauge("g", 7.0)
        registry.observe("h", 2.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_dumpable_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)

    def test_reset_zeroes_but_keeps_names(self):
        registry = MetricsRegistry()
        registry.inc("c", 9)
        registry.set_gauge("g", 1.0)
        registry.observe("h", 1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 0}
        assert snap["gauges"] == {"g": 0.0}
        assert snap["histograms"]["h"]["count"] == 0

    def test_render_text_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.inc("requests", 2)
        registry.set_gauge("depth", 3.0)
        registry.observe("sizes", 10.0)
        text = registry.render_text()
        assert "counter requests 2" in text
        assert "gauge depth 3" in text
        assert "histogram sizes count=1" in text


class TestNullRegistry:
    def test_disabled_flag_and_noop_operations(self):
        assert NULL_METRICS.enabled is False
        assert NULL_METRICS.inc("anything", 100) == 0
        NULL_METRICS.set_gauge("g", 5.0)
        NULL_METRICS.observe("h", 5.0)
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_null_instruments_are_shared_and_inert(self):
        registry = NullMetricsRegistry()
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.inc(50)
        assert counter.value == 0
        histogram = registry.histogram("h")
        histogram.observe(3.0)
        assert histogram.count == 0
        gauge = registry.gauge("g")
        gauge.set(9.0)
        gauge.inc()
        gauge.dec()
        assert gauge.value == 0.0

    def test_components_default_to_noop_registry(self):
        """The opt-in contract: a fresh engine/bus/trader records nothing."""
        from repro.odp.trader import Trader
        from repro.sim.engine import Engine
        from repro.util.events import EventBus

        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        engine.run()
        bus = EventBus()
        bus.publish("t", 1)
        trader = Trader("t")
        assert engine._obs is NULL_METRICS
        assert bus._obs is NULL_METRICS
        assert trader._obs is NULL_METRICS
        assert NULL_METRICS.snapshot()["counters"] == {}
