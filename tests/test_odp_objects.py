"""Tests for computational objects and interfaces."""

from __future__ import annotations

import pytest

from repro.odp.objects import (
    ComputationalObject,
    InterfaceRef,
    InterfaceSignature,
    OperationSpec,
    signature,
)
from repro.util.errors import BindingError, ConfigurationError


def _counter_object() -> ComputationalObject:
    obj = ComputationalObject("counter-1")
    state = {"value": 0}

    def increment(args):
        state["value"] += args.get("by", 1)
        return state["value"]

    def read(args):
        return state["value"]

    obj.offer(signature("counter", "increment", "read"), {"increment": increment, "read": read})
    return obj


class TestSignature:
    def test_shorthand_builds_operations(self):
        sig = signature("s", "a", "b")
        assert sig.operation_names() == ["a", "b"]

    def test_operation_lookup(self):
        sig = signature("s", "a")
        assert sig.operation("a").name == "a"

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            signature("s", "a").operation("z")

    def test_subsumes_superset(self):
        wide = signature("wide", "a", "b", "c")
        narrow = signature("narrow", "a", "b")
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_one_way_flag(self):
        sig = InterfaceSignature("s", (OperationSpec("notify", one_way=True),))
        assert sig.operation("notify").one_way


class TestInterfaceRef:
    def test_address_format(self):
        ref = InterfaceRef("node1", "obj1", "iface")
        assert ref.address == "node1/obj1.iface"

    def test_refs_are_values(self):
        assert InterfaceRef("n", "o", "i") == InterfaceRef("n", "o", "i")


class TestComputationalObject:
    def test_invoke_dispatches(self):
        obj = _counter_object()
        assert obj.invoke("counter", "increment", {"by": 5}) == 5
        assert obj.invoke("counter", "read", {}) == 5

    def test_invocation_count(self):
        obj = _counter_object()
        obj.invoke("counter", "read", {})
        obj.invoke("counter", "read", {})
        assert obj.invocations == 2

    def test_unknown_interface_rejected(self):
        with pytest.raises(BindingError):
            _counter_object().invoke("nope", "read", {})

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            _counter_object().invoke("counter", "nope", {})

    def test_missing_handler_rejected(self):
        obj = ComputationalObject("x")
        with pytest.raises(ConfigurationError):
            obj.offer(signature("s", "a", "b"), {"a": lambda args: None})

    def test_extra_handler_rejected(self):
        obj = ComputationalObject("x")
        with pytest.raises(ConfigurationError):
            obj.offer(signature("s", "a"), {"a": lambda args: None, "b": lambda args: None})

    def test_duplicate_interface_rejected(self):
        obj = _counter_object()
        with pytest.raises(ConfigurationError):
            obj.offer(signature("counter", "read"), {"read": lambda args: 0})

    def test_multiple_interfaces(self):
        obj = _counter_object()
        obj.offer(signature("admin", "reset"), {"reset": lambda args: 0})
        assert obj.has_interface("counter")
        assert obj.has_interface("admin")
        assert len(obj.interfaces()) == 2

    def test_empty_object_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputationalObject("")
