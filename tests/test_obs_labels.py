"""Tests for dimensional metric families and the cardinality cap."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    CARDINALITY_DROPPED,
    CARDINALITY_LIMIT,
    NULL_METRICS,
    OVERFLOW_LABEL,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    render_labelled_name,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestFamilies:
    def test_same_label_set_returns_same_child(self, registry):
        family = registry.counter("relays", labels=("source", "target"))
        a = family.labels(source="d0", target="d1")
        b = family.labels("d0", "d1")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_children_render_into_flat_snapshot(self, registry):
        family = registry.counter("delivered", labels=("domain",))
        family.labels(domain="d1").inc(3)
        family.labels(domain="d0").inc(2)
        counters = registry.snapshot()["counters"]
        assert counters["delivered{domain=d0}"] == 2
        assert counters["delivered{domain=d1}"] == 3
        # deterministic: labelled names sort with everything else
        assert list(counters) == sorted(counters)

    def test_kinds_and_shorthands(self, registry):
        counters = registry.counter("c", labels=("k",))
        gauges = registry.gauge("g", labels=("k",))
        histograms = registry.histogram("h", buckets=(1.0, 2.0), labels=("k",))
        assert isinstance(counters, CounterFamily)
        assert isinstance(gauges, GaugeFamily)
        assert isinstance(histograms, HistogramFamily)
        counters.inc(k="x")
        gauges.set(4.5, k="x")
        histograms.observe(1.5, k="x")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c{k=x}"] == 1
        assert snapshot["gauges"]["g{k=x}"] == 4.5
        assert snapshot["histograms"]["h{k=x}"]["count"] == 1

    def test_histogram_children_share_family_buckets(self, registry):
        family = registry.histogram("lat", buckets=(0.5, 1.0), labels=("k",))
        child = family.labels(k="a")
        assert child.bounds == (0.5, 1.0)

    def test_family_reuse_is_validated(self, registry):
        registry.counter("f", labels=("a", "b"))
        with pytest.raises(ValueError):
            registry.counter("f", labels=("a",))
        with pytest.raises(ValueError):
            registry.gauge("f", labels=("a", "b"))
        # same declaration: fine
        assert registry.counter("f", labels=("a", "b")) is registry.family("f")

    def test_label_arity_and_mixing_rejected(self, registry):
        family = registry.counter("f", labels=("a", "b"))
        with pytest.raises(ValueError):
            family.labels("x")
        with pytest.raises(ValueError):
            family.labels(a="x")
        with pytest.raises(ValueError):
            family.labels("x", b="y")

    def test_values_are_coerced_to_strings(self, registry):
        family = registry.counter("f", labels=("shard",))
        family.labels(shard=3).inc()
        assert registry.snapshot()["counters"]["f{shard=3}"] == 1

    def test_reset_zeroes_children_keeping_families(self, registry):
        family = registry.counter("f", labels=("k",))
        family.labels(k="a").inc(5)
        registry.reset()
        assert registry.snapshot()["counters"]["f{k=a}"] == 0
        assert registry.family("f").cardinality == 1


class TestCardinalityCap:
    def test_overflow_collapses_and_counts_drops(self, registry):
        family = registry.counter("f", labels=("k",), limit=2)
        family.labels(k="a").inc()
        family.labels(k="b").inc()
        overflow_1 = family.labels(k="c")
        overflow_2 = family.labels(k="d")
        assert overflow_1 is overflow_2  # both collapse into __other__
        overflow_1.inc(2)
        counters = registry.snapshot()["counters"]
        rendered = render_labelled_name("f", ("k",), (OVERFLOW_LABEL,))
        assert counters[rendered] == 2
        # one drop per distinct collapsed label set
        assert counters[CARDINALITY_DROPPED] == 2
        family.labels(k="c").inc()
        assert registry.snapshot()["counters"][CARDINALITY_DROPPED] == 2

    def test_existing_children_survive_the_cap(self, registry):
        family = registry.counter("f", labels=("k",), limit=1)
        child = family.labels(k="keep")
        family.labels(k="dropped").inc()
        assert family.labels(k="keep") is child
        assert family.cardinality == 1

    def test_default_limit_is_global_constant(self, registry):
        family = registry.counter("f", labels=("k",))
        assert family.limit == CARDINALITY_LIMIT

    def test_cardinality_report_is_sorted(self, registry):
        registry.counter("z", labels=("k",)).labels(k="a")
        registry.counter("a", labels=("k",)).labels(k="a")
        report = registry.cardinality()
        assert list(report) == ["a", "z"]
        assert report["a"] == 1


class TestNullFamilies:
    def test_null_registry_hands_out_noop_families(self):
        family = NULL_METRICS.counter("f", labels=("k",))
        child = family.labels(k="a")
        assert child.inc() == 0
        assert family.children() == {}
        NULL_METRICS.gauge("g", labels=("k",)).set(1.0, k="a")
        NULL_METRICS.histogram("h", labels=("k",)).observe(1.0, k="a")
        assert NULL_METRICS.snapshot()["counters"] == {}
