"""Tests for the closed-world baseline (Figure 2) vs the environment."""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.document import DocumentProcessor
from repro.apps.message_system import MessageSystem
from repro.apps.workflow import WorkflowSystem
from repro.baselines.closed import ClosedWorld
from repro.util.errors import ConfigurationError


@pytest.fixture
def closed() -> ClosedWorld:
    world = ClosedWorld()
    world.add_app(ConferencingSystem())
    world.add_app(MessageSystem())
    world.add_app(WorkflowSystem())
    return world


class TestClosedWorld:
    def test_no_gateway_no_delivery(self, closed):
        delivered = closed.send(
            "conferencing", "message-system", "wolf", {"topic": "t", "entry": "e"}
        )
        assert not delivered
        assert closed.exchanges_failed == 1

    def test_gateway_enables_one_direction(self, closed):
        closed.build_gateway("conferencing", "message-system")
        assert closed.send(
            "conferencing", "message-system", "wolf",
            {"topic": "t", "entry": "e", "conference": "c", "author": "ana"},
        )
        memos = closed.app("message-system").folder("wolf")
        assert memos[0].subject == "t"
        # The reverse direction still fails.
        assert not closed.send("message-system", "conferencing", "ana",
                               {"subject": "s", "text": "x", "fields": {}})

    def test_same_format_needs_no_gateway(self, closed):
        other = ConferencingSystem(instance_name="conferencing-2")
        closed.add_app(other)
        assert closed.send(
            "conferencing", "conferencing-2", "ana",
            {"topic": "t", "entry": "e", "conference": "c", "author": "a"},
        )

    def test_full_integration_is_quadratic(self, closed):
        built = closed.build_all_gateways()
        assert built == 3 * 2
        assert closed.gateway_count() == 6
        assert closed.interop_coverage() == 1.0

    def test_coverage_grows_with_gateways(self, closed):
        assert closed.interop_coverage() == 0.0
        closed.build_gateway("conferencing", "message-system")
        assert closed.interop_coverage() == pytest.approx(1 / 6)

    def test_duplicate_gateway_rejected(self, closed):
        closed.build_gateway("conferencing", "message-system")
        with pytest.raises(ConfigurationError):
            closed.build_gateway("conferencing", "message-system")

    def test_open_app_rejected(self, world):
        from repro.communication.model import Communicator
        from repro.environment.environment import CSCWEnvironment

        env = CSCWEnvironment(world)
        app = DocumentProcessor()
        app.attach(env)
        closed = ClosedWorld()
        with pytest.raises(ConfigurationError):
            closed.add_app(app)

    def test_duplicate_app_rejected(self, closed):
        with pytest.raises(ConfigurationError):
            closed.add_app(ConferencingSystem())


class TestClosedVsOpenShape:
    """The headline E2 shape at small N, verified as a unit test."""

    def test_integration_cost_shapes(self, world):
        from repro.communication.model import Communicator
        from repro.environment.environment import CSCWEnvironment

        apps = [ConferencingSystem(), MessageSystem(), WorkflowSystem(), DocumentProcessor()]
        closed = ClosedWorld()
        for app in apps:
            closed.add_app(app)
        closed_cost = closed.build_all_gateways()

        env = CSCWEnvironment(world)
        open_apps = [ConferencingSystem(), MessageSystem(), WorkflowSystem(), DocumentProcessor()]
        for app in open_apps:
            app.attach(env)
        open_cost = env.integration_cost()

        n = len(apps)
        assert closed_cost == n * (n - 1)
        assert open_cost == n
        assert env.interop_coverage() == 1.0
