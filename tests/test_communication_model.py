"""Tests for the communication model: sessions, async channels, bridge."""

from __future__ import annotations

import pytest

from repro.communication.asynchronous import AsyncChannel
from repro.communication.bridge import TimeTransparencyBridge
from repro.communication.model import (
    CommunicationContext,
    CommunicationLog,
    Communicator,
    CommunicatorRegistry,
)
from repro.communication.realtime import RealTimeSession
from repro.messaging.body_parts import MEDIA_FAX, MEDIA_TEXT, text_body
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import or_name
from repro.messaging.ua import UserAgent
from repro.util.errors import ConfigurationError, ModelError

ANA = or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez")
JOAN = or_name("C=ES;A= ;P=UPC;G=Joan;S=Puig")


class TestCommunicatorRegistry:
    def test_register_and_presence(self):
        registry = CommunicatorRegistry()
        registry.register(Communicator("ana", "ws1"))
        registry.register(Communicator("joan", "ws2", present=False))
        assert registry.present_ids() == ["ana"]
        registry.set_presence("joan", True)
        assert registry.present_ids() == ["ana", "joan"]

    def test_duplicate_rejected(self):
        registry = CommunicatorRegistry()
        registry.register(Communicator("ana", "ws1"))
        with pytest.raises(ConfigurationError):
            registry.register(Communicator("ana", "ws9"))

    def test_must_accept_a_medium(self):
        with pytest.raises(ConfigurationError):
            Communicator("ana", "ws1", accepts_media=set())


class TestCommunicationLog:
    def test_queries(self):
        from repro.communication.model import Exchange

        log = CommunicationLog()
        log.record(Exchange("a", "b", "synchronous", "text", 10, 1.0))
        log.record(Exchange("b", "a", "asynchronous", "text", 20, 2.0,
                            CommunicationContext(activity="act1")))
        assert len(log.between("a", "b")) == 2
        assert len(log.by_mode("synchronous")) == 1
        assert len(log.in_activity("act1")) == 1
        assert log.traffic_matrix()[("a", "b")] == 1
        assert log.volume_bytes() == 30


class TestRealTimeSession:
    def test_fan_out(self, world):
        world.add_site("room", ["ws1", "ws2", "ws3"])
        session = RealTimeSession(world, "meet")
        received = {"joan": [], "marta": []}
        session.join("ana", "ws1", lambda s, b: None)
        session.join("joan", "ws2", lambda s, b: received["joan"].append((s, b)))
        session.join("marta", "ws3", lambda s, b: received["marta"].append((s, b)))
        count = session.say("ana", {"text": "hello all"})
        world.run()
        assert count == 2
        assert received["joan"] == [("ana", {"text": "hello all"})]
        assert received["marta"][0][1]["text"] == "hello all"

    def test_leave_stops_delivery(self, world):
        world.add_site("room", ["ws1", "ws2"])
        session = RealTimeSession(world, "meet")
        received = []
        session.join("ana", "ws1", lambda s, b: None)
        session.join("joan", "ws2", lambda s, b: received.append(b))
        session.leave("joan")
        session.say("ana", {"text": "anyone?"})
        world.run()
        assert received == []
        assert session.participants() == ["ana"]

    def test_double_join_rejected(self, world):
        world.add_site("room", ["ws1"])
        session = RealTimeSession(world, "meet")
        session.join("ana", "ws1", lambda s, b: None)
        with pytest.raises(ModelError):
            session.join("ana", "ws1", lambda s, b: None)

    def test_nonparticipant_cannot_speak(self, world):
        world.add_site("room", ["ws1"])
        session = RealTimeSession(world, "meet")
        with pytest.raises(ModelError):
            session.say("ghost", {})

    def test_floor_control(self, world):
        world.add_site("room", ["ws1", "ws2"])
        session = RealTimeSession(world, "meet", floor_controlled=True)
        session.join("ana", "ws1", lambda s, b: None)
        session.join("joan", "ws2", lambda s, b: None)
        assert session.request_floor("ana")
        assert not session.request_floor("joan")
        with pytest.raises(ModelError):
            session.say("joan", {"text": "interrupting"})
        session.say("ana", {"text": "chair speaks"})
        session.release_floor("ana")
        assert session.floor_holder == "joan"

    def test_leaving_holder_passes_floor(self, world):
        world.add_site("room", ["ws1", "ws2"])
        session = RealTimeSession(world, "meet", floor_controlled=True)
        session.join("ana", "ws1", lambda s, b: None)
        session.join("joan", "ws2", lambda s, b: None)
        session.request_floor("ana")
        session.request_floor("joan")
        session.leave("ana")
        assert session.floor_holder == "joan"

    def test_exchanges_logged(self, world):
        world.add_site("room", ["ws1", "ws2"])
        log = CommunicationLog()
        session = RealTimeSession(world, "meet", log=log,
                                  context=CommunicationContext(activity="act1"))
        session.join("ana", "ws1", lambda s, b: None)
        session.join("joan", "ws2", lambda s, b: None)
        session.say("ana", {"text": "hi"})
        assert len(log.in_activity("act1")) == 1


@pytest.fixture
def mhs_pair(world):
    """One MTA, two registered users with UAs and communicators."""
    world.add_site("bcn", ["mta", "ws-ana", "ws-joan"])
    mta = MessageTransferAgent(world, "mta", "upc", [("es", "", "upc")])
    ua_ana = UserAgent(world, "ws-ana", ANA, "mta")
    ua_joan = UserAgent(world, "ws-joan", JOAN, "mta")
    ua_ana.register()
    ua_joan.register()
    registry = CommunicatorRegistry()
    registry.register(Communicator("ana.lopez", "ws-ana", or_name=ANA))
    registry.register(Communicator("joan.puig", "ws-joan", or_name=JOAN))
    return world, mta, registry, ua_ana, ua_joan


class TestAsyncChannel:
    def test_person_addressed_send(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        log = CommunicationLog()
        channel = AsyncChannel(ua_ana, registry, log)
        channel.send_to_person("ana.lopez", "joan.puig", "hi", "body text")
        world.run()
        inbox = ua_joan.list_inbox()
        assert len(inbox) == 1
        assert log.by_mode("asynchronous")[0].receiver == "joan.puig"

    def test_media_adaptation_to_fax_recipient(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        registry.get("joan.puig").accepts_media = {MEDIA_FAX}
        channel = AsyncChannel(ua_ana, registry)
        channel.send_to_person("ana.lopez", "joan.puig", "fax this", [text_body("hello")])
        world.run()
        bodies = channel_bodies = AsyncChannel(ua_joan, registry).fetch_bodies(
            ua_joan.list_inbox()[0]["sequence"]
        )
        assert bodies[0].media == MEDIA_FAX

    def test_unadaptable_media_rejected(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        from repro.messaging.body_parts import MEDIA_VOICE, binary_body

        registry.get("joan.puig").accepts_media = {MEDIA_VOICE}
        channel = AsyncChannel(ua_ana, registry)
        with pytest.raises(ModelError):
            channel.send_to_person("ana.lopez", "joan.puig", "s", [binary_body(10)])


class TestTimeTransparencyBridge:
    def test_prefers_synchronous_when_present(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        session = RealTimeSession(world, "live")
        heard = []
        session.join("ana.lopez", "ws-ana", lambda s, b: None)
        session.join("joan.puig", "ws-joan", lambda s, b: heard.append(b))
        bridge = TimeTransparencyBridge(registry, session)
        bridge.attach_async_channel("ana.lopez", AsyncChannel(ua_ana, registry))
        result = bridge.converse("ana.lopez", "joan.puig", "quick question")
        world.run()
        assert result.mode == "synchronous"
        assert heard[0]["text"] == "quick question"
        assert ua_joan.list_inbox() == []

    def test_falls_back_to_async_when_absent(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        session = RealTimeSession(world, "live")
        session.join("ana.lopez", "ws-ana", lambda s, b: None)
        bridge = TimeTransparencyBridge(registry, session)
        bridge.attach_async_channel("ana.lopez", AsyncChannel(ua_ana, registry))
        result = bridge.converse("ana.lopez", "joan.puig", "see you later")
        world.run()
        assert result.mode == "asynchronous"
        assert len(ua_joan.list_inbox()) == 1

    def test_falls_back_when_present_but_not_in_session(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        bridge = TimeTransparencyBridge(registry, RealTimeSession(world, "live"))
        bridge.attach_async_channel("ana.lopez", AsyncChannel(ua_ana, registry))
        result = bridge.converse("ana.lopez", "joan.puig", "hello")
        world.run()
        assert result.mode == "asynchronous"

    def test_no_path_raises(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        bridge = TimeTransparencyBridge(registry)
        with pytest.raises(ModelError):
            bridge.converse("ana.lopez", "joan.puig", "lost")

    def test_counters(self, mhs_pair):
        world, mta, registry, ua_ana, ua_joan = mhs_pair
        session = RealTimeSession(world, "live")
        session.join("ana.lopez", "ws-ana", lambda s, b: None)
        session.join("joan.puig", "ws-joan", lambda s, b: None)
        bridge = TimeTransparencyBridge(registry, session)
        bridge.attach_async_channel("ana.lopez", AsyncChannel(ua_ana, registry))
        bridge.converse("ana.lopez", "joan.puig", "sync")
        registry.set_presence("joan.puig", False)
        bridge.converse("ana.lopez", "joan.puig", "async")
        world.run()
        assert bridge.synchronous_sends == 1
        assert bridge.asynchronous_sends == 1
