"""Tests for ``repro.sharding`` and the keyed resolution-cache eviction.

ISSUE 7's bug class: ``ResolutionCache.on_kb_change`` dropped every
memoised route on *any* KB mutation, so one hire evicted 2,306 cache
entries in the E11 bench.  These tests pin the fix from both ends — the
sharded KB/directory (org subtrees atomic on one DSA, structural names
replicated, person moves migrating between shards) and the keyed
invalidation contract (mutations to org A must not evict routes wholly
inside org B; ``invalidate_all`` is ONE logical invalidation; a mid-batch
mutation makes ``exchange_many`` re-resolve, never serve stale).
"""

from __future__ import annotations

import zlib

import pytest

from repro.communication.model import Communicator
from repro.environment.environment import (
    REASON_DELIVERED,
    REASON_POLICY,
    CSCWEnvironment,
    ExchangeRequest,
)
from repro.environment.registry import (
    AppDescriptor,
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
)
from repro.federation.federation import Federation
from repro.information.interchange import FormatConverter, make_common
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.sharding import ConsistentHashRing, ShardedDirectory, ShardedKnowledgeBase
from repro.sharding.directory import partition_key
from repro.sharding.ring import stable_hash
from repro.sim.world import World
from repro.util.errors import ConfigurationError, UnknownObjectError

DOC = {"fmt0-title": "minutes", "fmt0-body": "we met"}


def converter(index: int) -> FormatConverter:
    key = f"fmt{index}"
    return FormatConverter(
        key,
        lambda document: make_common(
            "note", document.get(f"{key}-title", ""), document.get(f"{key}-body", "")
        ),
        lambda common: {f"{key}-title": common["title"], f"{key}-body": common["body"]},
    )


def make_env(world, *, shards=None, orgs=("upc", "gmd", "acme", "zeta"),
             on_deliver=None):
    """An environment with one person per org and producer/consumer apps."""
    builder = CSCWEnvironment.builder().with_world(world).with_name("shardtest")
    if shards is not None:
        builder = builder.with_sharding(shards)
    env = builder.build()
    for org_id in orgs:
        org = Organisation(org_id, org_id.upper())
        org.add_person(Person(f"p-{org_id}", f"Person {org_id}", org_id))
        env.knowledge_base.add_organisation(org)
        node = f"ws-{org_id}"
        world.network.add_node(node, site=org_id)
        env.register_person(Communicator(f"p-{org_id}", node))
    for position, org_a in enumerate(orgs):
        for org_b in orgs[position + 1:]:
            env.knowledge_base.policies.declare(
                org_a, org_b, {INTERACTION_MESSAGE, "*"}, symmetric=True
            )
    env.applications.register(
        AppDescriptor(name="producer", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                      converter=converter(0)),
        lambda person, document, info: None,
    )
    env.applications.register(
        AppDescriptor(name="consumer", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE],
                      converter=converter(1)),
        on_deliver or (lambda person, document, info: None),
    )
    return env


def exchange(env, sender, receiver):
    return env.exchange(sender, receiver, "producer", "consumer", DOC)


class TestConsistentHashRing:
    def test_hash_is_crc32_not_builtin_hash(self):
        # builtin hash() is salted per-process (PYTHONHASHSEED); placement
        # must be identical across processes and runs
        assert stable_hash("o=upc,c=es") == zlib.crc32(b"o=upc,c=es") & 0xFFFFFFFF

    def test_deterministic_across_instances(self):
        ring_a = ConsistentHashRing(["s0", "s1", "s2"])
        ring_b = ConsistentHashRing(["s0", "s1", "s2"])
        keys = [f"o=org{i},c=es" for i in range(200)]
        assert [ring_a.shard_for(k) for k in keys] == [ring_b.shard_for(k) for k in keys]

    def test_every_shard_gets_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        keys = [f"o=org{i},c=es" for i in range(400)]
        spread = ring.distribution(keys)
        assert set(spread) == {"s0", "s1", "s2", "s3"}
        assert min(spread.values()) > 0

    def test_remove_shard_only_remaps_its_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        keys = [f"o=org{i},c=es" for i in range(300)]
        before = {key: ring.shard_for(key) for key in keys}
        ring.remove_shard("s2")
        for key in keys:
            after = ring.shard_for(key)
            if before[key] != "s2":
                assert after == before[key], key
            else:
                assert after != "s2"


class TestPartitionKey:
    def test_outermost_org_subtree(self):
        assert partition_key("cn=Ana,ou=AC,o=UPC,c=ES") == "o=upc,c=es"

    def test_normalized_case_and_spacing(self):
        assert partition_key("CN=U1, O=UPC, C=ES") == partition_key("cn=u1,o=upc,c=es")

    def test_structural_names_have_no_key(self):
        assert partition_key("c=ES") == ""


class TestShardedDirectory:
    def test_org_subtree_lives_on_one_shard(self):
        directory = ShardedDirectory(n_shards=4)
        directory.add("o=upc,c=es", {"objectclass": ["organization"]})
        directory.add("cn=ana,o=upc,c=es", {"objectclass": ["person"], "sn": ["Lopez"]})
        owner = directory.agent_for("o=upc,c=es")
        assert owner is directory.agent_for("cn=ana,o=upc,c=es")
        holders = [s for s in directory.shards if s.dit.exists("o=upc,c=es")]
        assert holders == [owner]

    def test_structural_entries_replicated_everywhere(self):
        directory = ShardedDirectory(n_shards=4)
        directory.add("o=upc,c=es", {"objectclass": ["organization"]})
        directory.add("c=de", {"objectclass": ["country"]})
        assert all(shard.dit.exists("c=de") for shard in directory.shards)

    def test_fanout_search_merges_and_dedups(self):
        directory = ShardedDirectory(n_shards=4)
        org_dns = [f"o=org{i},c=es" for i in range(12)]
        for name in org_dns:
            directory.add(name, {"objectclass": ["organization"]})
        assert len({directory.shard_id_for(name) for name in org_dns}) > 1
        results = directory.search("c=es", scope="one")
        assert sorted(str(e.name) for e in results) == sorted(org_dns)
        assert directory.fanouts == 1

    def test_org_base_search_touches_one_shard(self):
        directory = ShardedDirectory(n_shards=4)
        directory.add("o=upc,c=es", {"objectclass": ["organization"]})
        directory.add("cn=ana,o=upc,c=es", {"objectclass": ["person"], "sn": ["Lopez"]})
        fanouts = directory.fanouts
        results = directory.search("o=upc,c=es", scope="one")
        assert [str(e.name) for e in results] == ["cn=ana,o=upc,c=es"]
        assert directory.fanouts == fanouts


class TestShardedKnowledgeBase:
    def make_kb(self, orgs=8, shards=4):
        kb = ShardedKnowledgeBase(n_shards=shards)
        for index in range(orgs):
            kb.add_organisation(Organisation(f"org{index}", f"ORG {index}"))
            kb.add_person(Person(f"u{index}", f"User {index}", f"org{index}"))
        return kb

    def cross_shard_orgs(self, kb):
        """Two org ids whose subtrees live on different shards."""
        by_shard = {}
        for org in kb.organisations():
            by_shard.setdefault(kb.shard_of_org(org.org_id), org.org_id)
        shards = list(by_shard.values())
        assert len(shards) >= 2, "test population must span shards"
        return shards[0], shards[1]

    def test_person_entry_on_owning_shard(self):
        kb = self.make_kb()
        entry = kb.resolve_person_entry("u3")
        assert entry.first("cn") == "u3"
        owner = kb.shard_of_person("u3")
        holders = [
            s.dsa_id for s in kb.directory.shards
            if s.dit.exists(kb.person_dn("u3", "org3"))
        ]
        assert holders == [owner]

    def test_move_person_across_shards_migrates_entry(self):
        kb = self.make_kb()
        from_org, to_org = self.cross_shard_orgs(kb)
        mover = f"p-{from_org}"
        kb.add_person(Person(mover, "Mover", from_org))
        old_dn = kb.person_dn(mover, from_org)
        old_shard = kb.directory.agent(kb.shard_of_org(from_org))
        assert old_shard.dit.exists(old_dn)

        kb.move_person(mover, to_org)
        # the old shard's DSA entry is gone...
        assert not old_shard.dit.exists(old_dn)
        # ...and the new owning shard resolves the person
        assert kb.shard_of_person(mover) == kb.shard_of_org(to_org)
        assert kb.resolve_person_entry(mover).first("cn") == mover
        assert kb.organisation_of(mover) == to_org

    def test_remove_person_deletes_entry_and_index(self):
        kb = self.make_kb()
        entry_dn = kb.person_dn("u5", "org5")
        shard = kb.directory.agent(kb.shard_of_org("org5"))
        assert shard.dit.exists(entry_dn)
        removed = kb.remove_person("u5")
        assert removed.person_id == "u5"
        assert not shard.dit.exists(entry_dn)
        with pytest.raises(UnknownObjectError):
            kb.find_person("u5")

    def test_index_survives_direct_org_registration(self):
        kb = self.make_kb(orgs=2)
        # bypass the KB mutator: register straight on the Organisation
        kb.organisation("org0").add_person(Person("direct", "Direct", "org0"))
        assert kb.find_person("direct").person_id == "direct"
        # second lookup is served by the index (same answer)
        assert kb.organisation_of("direct") == "org0"


class TestKeyedInvalidation:
    def test_unrelated_add_person_keeps_cached_route(self, world):
        # satellite 2: a hire must not evict a route between two other
        # parties (this is exactly what caused the 2,306-invalidation storm)
        env = make_env(world)
        assert exchange(env, "p-upc", "p-gmd").delivered
        before = env.resolution.stats()
        env.knowledge_base.add_person(Person("newbie", "New Person", "acme"))
        after = env.resolution.stats()
        assert after["evictions"] == before["evictions"]
        assert after["routes_cached"] == before["routes_cached"]
        assert after["invalidations"] == before["invalidations"]
        outcome = exchange(env, "p-upc", "p-gmd")
        assert outcome.delivered
        assert env.resolution.stats()["route_hits"] == before["route_hits"] + 1

    def test_person_event_evicts_only_their_routes(self, world):
        env = make_env(world)
        assert exchange(env, "p-upc", "p-gmd").delivered
        assert exchange(env, "p-acme", "p-zeta").delivered
        before = env.resolution.stats()
        env.knowledge_base.move_person("p-upc", "acme")
        after = env.resolution.stats()
        assert after["evictions"] == before["evictions"] + 1
        assert after["routes_cached"] == before["routes_cached"] - 1
        # the untouched route still serves from cache
        assert exchange(env, "p-acme", "p-zeta").delivered
        assert env.resolution.stats()["route_hits"] == before["route_hits"] + 1

    def test_policy_event_scoped_to_the_org_pair(self, world):
        env = make_env(world)
        assert exchange(env, "p-upc", "p-gmd").delivered
        assert exchange(env, "p-acme", "p-zeta").delivered
        before = env.resolution.stats()
        env.knowledge_base.policies.revoke("upc", "gmd", symmetric=True)
        after = env.resolution.stats()
        assert after["routes_cached"] == before["routes_cached"] - 1
        # revocation is visible immediately on the affected pair...
        refused = exchange(env, "p-upc", "p-gmd")
        assert not refused.delivered
        assert refused.reason_code == REASON_POLICY
        # ...while the unrelated pair still hits its cached route
        assert exchange(env, "p-acme", "p-zeta").delivered
        assert env.resolution.stats()["route_hits"] == before["route_hits"] + 1

    def test_invalidate_all_counts_one_logical_invalidation(self, world):
        # satellite 1: the whole-cache flush used to count once per layer
        env = make_env(world)
        assert exchange(env, "p-upc", "p-gmd").delivered
        before = env.resolution.stats()
        assert before["routes_cached"] == 1
        assert before["formats_cached"] == 1
        env.resolution.invalidate_all()
        after = env.resolution.stats()
        assert after["invalidations"] == before["invalidations"] + 1
        assert after["evictions"] == before["evictions"] + 2
        assert after["routes_cached"] == 0
        assert after["formats_cached"] == 0

    def test_empty_flush_bumps_generation_not_invalidations(self, world):
        env = make_env(world)
        before = env.resolution.stats()
        env.knowledge_base.add_person(Person("ghost", "Ghost", "upc"))
        after = env.resolution.stats()
        assert after["invalidations"] == before["invalidations"]
        assert after["generation"] == before["generation"] + 1


class TestExchangeManyMidBatchMutation:
    def test_mid_batch_revocation_is_not_served_stale(self, world):
        # satellite 3: the hoisted route must be re-resolved after a
        # delivery callback mutates the KB, not replayed from the batch
        state = {"env": None, "fired": False}

        def revoke_on_first_delivery(person, document, info):
            if not state["fired"]:
                state["fired"] = True
                state["env"].knowledge_base.policies.revoke(
                    "upc", "gmd", symmetric=True
                )

        env = make_env(world, on_deliver=revoke_on_first_delivery)
        state["env"] = env
        requests = [
            ExchangeRequest("p-upc", "p-gmd", "producer", "consumer", DOC)
            for _ in range(3)
        ]
        outcomes = env.exchange_many(requests)
        assert [o.delivered for o in outcomes] == [True, False, False]
        assert outcomes[0].reason_code == REASON_DELIVERED
        for stale in outcomes[1:]:
            assert stale.reason_code == REASON_POLICY

    def test_unrelated_mid_batch_mutation_keeps_delivering(self, world):
        state = {"env": None, "fired": False}

        def hire_on_first_delivery(person, document, info):
            if not state["fired"]:
                state["fired"] = True
                state["env"].knowledge_base.add_person(
                    Person("midbatch", "Mid Batch", "acme")
                )

        env = make_env(world, on_deliver=hire_on_first_delivery)
        state["env"] = env
        before = env.resolution.stats()
        requests = [
            ExchangeRequest("p-upc", "p-gmd", "producer", "consumer", DOC)
            for _ in range(4)
        ]
        outcomes = env.exchange_many(requests)
        assert all(o.delivered for o in outcomes)
        assert env.resolution.stats()["evictions"] == before["evictions"]


class TestShardedEnvironment:
    def test_with_sharding_validates(self, world):
        with pytest.raises(ConfigurationError):
            CSCWEnvironment.builder().with_world(world).with_sharding(0)

    def test_builder_wires_a_sharded_kb(self, world):
        env = make_env(world, shards=4)
        assert isinstance(env.knowledge_base, ShardedKnowledgeBase)
        assert env.knowledge_base.stats()["directory"]["shards"] == 4

    def test_cross_shard_exchange_delivers(self, world):
        env = make_env(world, shards=4)
        kb = env.knowledge_base
        by_shard = {}
        for org in kb.organisations():
            by_shard.setdefault(kb.shard_of_org(org.org_id), org.org_id)
        orgs = list(by_shard.values())
        assert len(orgs) >= 2, "test orgs must span shards"
        outcome = exchange(env, f"p-{orgs[0]}", f"p-{orgs[1]}")
        assert outcome.delivered
        assert outcome.reason_code == REASON_DELIVERED

    def test_move_across_shards_evicts_only_affected_keys(self, world):
        # satellite 4: the cross-shard move evicts the mover's routes and
        # nothing else (pinned through ResolutionCache.stats())
        env = make_env(world, shards=4)
        kb = env.knowledge_base
        assert exchange(env, "p-upc", "p-gmd").delivered
        assert exchange(env, "p-acme", "p-zeta").delivered
        before = env.resolution.stats()
        assert before["routes_cached"] == 2

        old_shard_id = kb.shard_of_person("p-upc")
        old_dn = kb.person_dn("p-upc", "upc")
        target = next(
            org.org_id for org in kb.organisations()
            if org.org_id != "upc" and kb.shard_of_org(org.org_id) != old_shard_id
        )
        kb.move_person("p-upc", target)

        assert not kb.directory.agent(old_shard_id).dit.exists(old_dn)
        assert kb.resolve_person_entry("p-upc").first("cn") == "p-upc"
        after = env.resolution.stats()
        assert after["evictions"] == before["evictions"] + 1
        assert after["routes_cached"] == 1
        assert exchange(env, "p-acme", "p-zeta").delivered
        assert env.resolution.stats()["route_hits"] == before["route_hits"] + 1

    def test_federation_passes_shards_to_domains(self, world):
        federation = Federation(world, shards=2)
        domain = federation.add_domain("upc")
        assert isinstance(domain.env.knowledge_base, ShardedKnowledgeBase)
        assert domain.env.knowledge_base.stats()["directory"]["shards"] == 2
