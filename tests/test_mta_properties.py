"""Property-based tests over the message transfer network.

Random multi-MTA topologies with (possibly misconfigured) routes: the
invariant is *conservation* — every submitted message is either delivered
to the recipient's mailbox or an NDR is issued somewhere in the MHS
(auditable via report hooks even when the NDR itself cannot be routed
home) — and delivered messages arrive exactly once.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.environment.environment import CSCWEnvironment
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import OrName
from repro.messaging.ua import UserAgent
from repro.sim.world import World

N_DOMAINS = 3


def _build(route_plan: list[int]):
    """A 3-MTA world; ``route_plan[i*N+j]`` picks MTA i's route for domain j:
    0 = no route, 1 = correct peer, 2 = the wrong peer (misrouted)."""
    world = World(seed=7)
    domains = [f"d{i}" for i in range(N_DOMAINS)]
    for index in range(N_DOMAINS):
        world.add_site(f"site{index}", [f"mta{index}", f"ws{index}"])
    mtas = [
        MessageTransferAgent(world, f"mta{i}", f"m{i}", [("xx", "", domains[i])])
        for i in range(N_DOMAINS)
    ]
    for mta in mtas:
        for other_index, other in enumerate(mtas):
            if other is not mta:
                mta.add_peer(other.name, other.node)
    for i in range(N_DOMAINS):
        for j in range(N_DOMAINS):
            if i == j:
                continue
            choice = route_plan[i * N_DOMAINS + j]
            if choice == 0:
                continue  # no route: expect NDR
            if choice == 1:
                mtas[i].routing.add_route("xx", "*", domains[j], f"m{j}")
            else:
                wrong = (j + 1) % N_DOMAINS
                if wrong == i:
                    wrong = (wrong + 1) % N_DOMAINS
                mtas[i].routing.add_route("xx", "*", domains[j], f"m{wrong}")
    uas = []
    for index in range(N_DOMAINS):
        user = OrName(country="xx", admd="", prmd=domains[index], surname=f"user{index}")
        ua = UserAgent(world, f"ws{index}", user, f"mta{index}")
        ua.register()
        uas.append(ua)
    return world, mtas, uas


@given(st.lists(st.integers(0, 2), min_size=9, max_size=9))
@settings(max_examples=25, deadline=None)
def test_property_mail_is_never_silently_lost(route_plan):
    world, mtas, uas = _build(route_plan)
    audited_reports: list[dict] = []
    for mta in mtas:
        mta.add_report_hook(audited_reports.append)
    message_ids = []
    for sender_index in range(N_DOMAINS):
        for receiver_index in range(N_DOMAINS):
            if sender_index == receiver_index:
                continue
            message_ids.append(
                uas[sender_index].send(
                    [uas[receiver_index].user],
                    f"{sender_index}->{receiver_index}",
                    "x",
                )
            )
    world.run(max_events=2_000_000)
    delivered: dict[str, int] = {}
    for ua in uas:
        for summary in ua.list_inbox():
            mid = summary["message_id"]
            delivered[mid] = delivered.get(mid, 0) + 1
    reported = {
        report.subject_message_id
        for ua in uas
        for report in ua.unread_reports()
    }
    audited = {doc["subject_message_id"] for doc in audited_reports}
    for message_id in message_ids:
        assert (
            message_id in delivered or message_id in reported or message_id in audited
        ), f"message {message_id} vanished silently"
        # At-most-once delivery of the payload.
        assert delivered.get(message_id, 0) <= 1
    # Reports returned to originators are a subset of the audit stream.
    assert reported <= audited | set(message_ids)


def test_environment_describe_snapshot(world):
    """The admin inventory view reflects the live environment."""
    from repro.apps.conferencing import ConferencingSystem
    from repro.communication.model import Communicator
    from repro.org.model import Organisation, Person

    env = CSCWEnvironment(world)
    org = Organisation("upc", "UPC")
    org.add_person(Person("ana", "Ana", "upc"))
    env.knowledge_base.add_organisation(org)
    world.add_site("bcn", ["w1"])
    env.register_person(Communicator("ana", "w1"))
    ConferencingSystem().attach(env)
    env.create_activity("a1", "one", members={"ana": "chair"})
    snapshot = env.describe()
    assert snapshot["organisations"] == ["upc"]
    assert snapshot["people"]["ana"]["present"]
    assert snapshot["activities"] == {"a1": "pending"}
    assert "conferencing" in str(snapshot["applications"])
    assert snapshot["integration_cost"] == 1
    assert snapshot["interop_coverage"] == 1.0
