"""Tests for the five-viewpoint specification machinery."""

from __future__ import annotations

import pytest

from repro.odp.viewpoints import (
    DeonticModality,
    EnterpriseSpec,
    InformationSpec,
    OdpSystemSpec,
)
from repro.util.errors import ConfigurationError


class TestEnterpriseSpec:
    def _spec(self) -> EnterpriseSpec:
        spec = EnterpriseSpec("project-x")
        spec.add_role("editor")
        spec.add_role("reviewer")
        return spec

    def test_permission_allows(self):
        spec = self._spec()
        spec.permit("editor", "modify", "document")
        assert spec.allows("editor", "modify", "document")

    def test_no_policy_denies(self):
        assert not self._spec().allows("editor", "modify", "document")

    def test_prohibition_dominates_permission(self):
        spec = self._spec()
        spec.permit("editor", "modify", "document")
        spec.prohibit("editor", "modify", "document")
        assert not spec.allows("editor", "modify", "document")

    def test_wildcard_target(self):
        spec = self._spec()
        spec.permit("reviewer", "read")
        assert spec.allows("reviewer", "read", "anything")

    def test_obligation_also_permits(self):
        spec = self._spec()
        spec.oblige("reviewer", "report", "progress")
        assert spec.allows("reviewer", "report", "progress")

    def test_obligations_of(self):
        spec = self._spec()
        spec.oblige("reviewer", "report")
        spec.permit("reviewer", "read")
        obligations = spec.obligations_of("reviewer")
        assert len(obligations) == 1
        assert obligations[0].modality is DeonticModality.OBLIGATION

    def test_policy_for_unknown_role_rejected(self):
        with pytest.raises(ConfigurationError):
            self._spec().permit("ghost", "read")

    def test_duplicate_role_rejected(self):
        spec = self._spec()
        with pytest.raises(ConfigurationError):
            spec.add_role("editor")


class TestInformationSpec:
    def test_conforming_instance(self):
        spec = InformationSpec()
        spec.define_schema("person", ["name", "site"])
        assert spec.conforms("person", {"name": "ana", "site": "upc"})

    def test_missing_attribute_fails(self):
        spec = InformationSpec()
        spec.define_schema("person", ["name", "site"])
        assert not spec.conforms("person", {"name": "ana"})

    def test_unknown_entity_fails(self):
        assert not InformationSpec().conforms("ghost", {})

    def test_duplicate_schema_rejected(self):
        spec = InformationSpec()
        spec.define_schema("a", [])
        with pytest.raises(ConfigurationError):
            spec.define_schema("a", [])


class TestSystemConsistency:
    def test_consistent_spec(self):
        system = OdpSystemSpec("demo")
        system.computation.declare_object("obj1", ["iface"])
        system.engineering.place("node1", "obj1")
        assert system.is_consistent()

    def test_unplaced_object_flagged(self):
        system = OdpSystemSpec("demo")
        system.computation.declare_object("obj1", ["iface"])
        errors = system.consistency_errors()
        assert any("no engineering placement" in e for e in errors)

    def test_undeclared_placement_flagged(self):
        system = OdpSystemSpec("demo")
        system.engineering.place("node1", "ghost")
        errors = system.consistency_errors()
        assert any("not declared computationally" in e for e in errors)

    def test_policies_without_roles_flagged(self):
        system = OdpSystemSpec("demo")
        system.enterprise.roles.append("r")
        system.enterprise.permit("r", "act")
        system.enterprise.roles.clear()
        errors = system.consistency_errors()
        assert any("no roles" in e for e in errors)

    def test_node_of(self):
        system = OdpSystemSpec("demo")
        system.engineering.place("node1", "obj1")
        assert system.engineering.node_of("obj1") == "node1"
        assert system.engineering.node_of("ghost") is None

    def test_technology_choices(self):
        system = OdpSystemSpec("demo")
        system.technology.choose("directory", "X.500")
        assert system.technology.choices["directory"] == "X.500"
