"""Tests for repro.obs.context: the wire form of trace propagation."""

from __future__ import annotations

from repro.obs.context import TRACE_KEY, TraceContext
from repro.obs.tracing import Tracer


class TestTraceContext:
    def test_round_trips_through_documents(self):
        context = TraceContext("trace-0007", "span-0042")
        document = context.to_document()
        assert document == {"trace_id": "trace-0007", "span_id": "span-0042"}
        assert TraceContext.from_document(document) == context

    def test_from_document_rejects_missing_or_empty(self):
        assert TraceContext.from_document(None) is None
        assert TraceContext.from_document({}) is None
        assert TraceContext.from_document({"trace_id": "", "span_id": "x"}) is None

    def test_is_frozen_and_hashable(self):
        context = TraceContext("t", "s")
        assert context == TraceContext("t", "s")
        assert len({context, TraceContext("t", "s")}) == 1

    def test_trace_key_is_the_payload_slot(self):
        # The constant is the contract between relay producers and
        # consumers; a payload stamped under it parses back.
        payload = {"doc": {"title": "minutes"}}
        payload[TRACE_KEY] = TraceContext("t1", "s1").to_document()
        assert TraceContext.from_document(payload.get(TRACE_KEY)) == (
            TraceContext("t1", "s1")
        )


class TestTracerContextBridge:
    def test_current_context_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("outer") as outer:
            context = tracer.current_context()
            assert context == TraceContext(outer.trace_id, outer.span_id)
            with tracer.span("inner") as inner:
                assert tracer.current_context().span_id == inner.span_id
            assert tracer.current_context().span_id == outer.span_id
        assert tracer.current_context() is None

    def test_span_from_context_continues_a_remote_trace(self):
        origin = Tracer()
        with origin.span("origin") as root:
            wire = TraceContext(root.trace_id, root.span_id).to_document()
        remote = Tracer()
        with remote.span_from_context(
            "remote", TraceContext.from_document(wire)
        ) as span:
            assert span.trace_id == root.trace_id
            assert span.parent_id == root.span_id

    def test_span_from_context_none_falls_back_to_local_root(self):
        tracer = Tracer()
        with tracer.span_from_context("solo", None) as span:
            assert span.parent_id == ""
        assert span.trace_id  # a fresh local trace was allocated

    def test_start_span_detached_respects_context_and_stays_off_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            detached = tracer.start_span("relay", attempt=1)
            # detached spans must not change what current_context() reports
            assert tracer.current_context().span_id == root.span_id
            assert detached.trace_id == root.trace_id
            assert detached.parent_id == root.span_id
        tracer.finish(detached)
        tracer.finish(detached)  # idempotent
        names = [span.name for span in tracer.finished()]
        assert names.count("relay") == 1
