"""Tests for distribution lists (AMIGO-style group communication).

The paper's reference [8] (Pankoke-Babatz, *Computer Based Group
Communication, the AMIGO Activity Model*) underlies the group side of
asynchronous CSCW; X.400 realises it with distribution lists expanded at
the serving MTA.
"""

from __future__ import annotations

import pytest

from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import or_name
from repro.messaging.ua import UserAgent
from repro.util.errors import MessagingError

ANA = or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez")
JOAN = or_name("C=ES;A= ;P=UPC;G=Joan;S=Puig")
WOLF = or_name("C=DE;A= ;P=GMD;G=Wolf;S=Prinz")
TEAM = or_name("C=ES;A= ;P=UPC;S=mocca-team")
EVERYONE = or_name("C=ES;A= ;P=UPC;S=everyone")


@pytest.fixture
def mhs(world):
    world.add_site("bcn", ["mta-upc", "ws-ana", "ws-joan"])
    world.add_site("bonn", ["mta-gmd", "ws-wolf"])
    upc = MessageTransferAgent(world, "mta-upc", "upc", [("es", "", "upc")])
    gmd = MessageTransferAgent(world, "mta-gmd", "gmd", [("de", "", "gmd")])
    upc.add_peer("gmd", "mta-gmd")
    gmd.add_peer("upc", "mta-upc")
    upc.routing.add_route("de", "*", "*", "gmd")
    gmd.routing.add_route("es", "*", "*", "upc")
    ana = UserAgent(world, "ws-ana", ANA, "mta-upc")
    joan = UserAgent(world, "ws-joan", JOAN, "mta-upc")
    wolf = UserAgent(world, "ws-wolf", WOLF, "mta-gmd")
    for ua in (ana, joan, wolf):
        ua.register()
    return world, upc, gmd, ana, joan, wolf


class TestDistributionLists:
    def test_expansion_reaches_all_members(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        upc.create_distribution_list(TEAM, [JOAN, WOLF])
        ana.send([TEAM], "meeting", "tomorrow 10:00")
        world.run()
        assert len(joan.list_inbox()) == 1
        assert len(wolf.list_inbox()) == 1
        # The sender is not a member and receives nothing.
        assert ana.list_inbox() == []

    def test_remote_sender_to_list(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        upc.create_distribution_list(TEAM, [ANA, JOAN])
        wolf.send([TEAM], "hello from bonn", "greetings")
        world.run()
        assert len(ana.list_inbox()) == 1
        assert len(joan.list_inbox()) == 1

    def test_nested_lists_expand(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        upc.create_distribution_list(TEAM, [JOAN])
        upc.create_distribution_list(EVERYONE, [ANA, TEAM])
        wolf.send([EVERYONE], "to all", "body")
        world.run()
        assert len(ana.list_inbox()) == 1
        assert len(joan.list_inbox()) == 1

    def test_mutually_recursive_lists_terminate(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        upc.create_distribution_list(TEAM, [EVERYONE, JOAN])
        upc.create_distribution_list(EVERYONE, [TEAM, ANA])
        ana.send([TEAM], "loop?", "body")
        world.run()
        # Each real member receives exactly once; expansion history stops
        # the list-to-list recursion.
        assert len(ana.list_inbox()) == 1
        assert len(joan.list_inbox()) == 1

    def test_list_with_unknown_member_ndrs_that_member_only(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        ghost = or_name("C=ES;A= ;P=UPC;S=ghost")
        upc.create_distribution_list(TEAM, [JOAN, ghost])
        ana.send([TEAM], "s", "b")
        world.run()
        assert len(joan.list_inbox()) == 1
        reports = ana.unread_reports()
        assert len(reports) == 1
        assert "ghost" in reports[0].recipient

    def test_list_name_collision_with_mailbox_rejected(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        with pytest.raises(MessagingError):
            upc.create_distribution_list(JOAN, [ANA])
        upc.create_distribution_list(TEAM, [ANA])
        with pytest.raises(MessagingError):
            upc.register_mailbox(TEAM)

    def test_empty_list_rejected(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        with pytest.raises(MessagingError):
            upc.create_distribution_list(TEAM, [])

    def test_foreign_domain_list_rejected(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        foreign = or_name("C=DE;A= ;P=GMD;S=team")
        with pytest.raises(MessagingError):
            upc.create_distribution_list(foreign, [ANA])

    def test_list_members_query(self, mhs):
        world, upc, gmd, ana, joan, wolf = mhs
        upc.create_distribution_list(TEAM, [JOAN, WOLF])
        assert upc.list_members(TEAM) == [JOAN, WOLF]
        with pytest.raises(MessagingError):
            upc.list_members(EVERYONE)
