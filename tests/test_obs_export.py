"""Tests for repro.obs.export: Chrome trace, JSONL, and metrics dumps.

Acceptance bar (ISSUE 5): the Chrome trace export round-trips through
``json.loads`` with monotonic, non-negative timestamps, and exports are
deterministic for seeded runs.
"""

from __future__ import annotations

import json

from repro.obs.export import (
    chrome_trace_json,
    export_chrome_trace,
    export_jsonl,
    export_metrics,
    to_chrome_trace,
    to_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sim.engine import Engine


def traced_run() -> Tracer:
    """A deterministic two-trace workload on the simulated clock."""
    engine = Engine()
    tracer = Tracer()
    tracer.bind_engine(engine)
    with tracer.span("exchange", who="ana"):
        engine.schedule(1.5, lambda: None)
        with tracer.span("relay"):
            engine.run()
    with tracer.span("probe"):
        pass
    return tracer


class TestChromeTrace:
    def test_round_trips_through_json_loads(self):
        blob = json.loads(chrome_trace_json(traced_run().finished()))
        assert blob["displayTimeUnit"] == "ms"
        names = [e["name"] for e in blob["traceEvents"] if e["ph"] == "X"]
        assert names == ["exchange", "relay", "probe"]

    def test_timestamps_monotonic_and_non_negative(self):
        blob = to_chrome_trace(traced_run().finished())
        complete = [e for e in blob["traceEvents"] if e["ph"] == "X"]
        stamps = [e["ts"] for e in complete]
        assert stamps == sorted(stamps)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)

    def test_negative_starts_are_clamped(self):
        span = {
            "name": "odd", "trace_id": "t", "span_id": "s", "parent_id": "",
            "start": -1.0, "end": 0.5, "duration": 1.5, "clock": "sim",
            "tags": {},
        }
        [event] = [
            e for e in to_chrome_trace([span])["traceEvents"] if e["ph"] == "X"
        ]
        assert event["ts"] == 0.0

    def test_one_pid_per_trace_with_process_names(self):
        blob = to_chrome_trace(traced_run().finished())
        meta = [e for e in blob["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["trace-0001", "trace-0002"]
        assert [m["pid"] for m in meta] == [1, 2]
        complete = [e for e in blob["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in complete} == {1, 2}

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        open_span = tracer.start_span("pending")
        with tracer.span("done"):
            pass
        blob = to_chrome_trace(list(tracer.finished()) + [open_span])
        names = [e["name"] for e in blob["traceEvents"] if e["ph"] == "X"]
        assert names == ["done"]

    def test_span_identity_travels_in_args(self):
        blob = to_chrome_trace(traced_run().finished())
        by_name = {
            e["name"]: e for e in blob["traceEvents"] if e["ph"] == "X"
        }
        relay = by_name["relay"]
        assert relay["args"]["parent_id"] == by_name["exchange"]["args"]["span_id"]
        assert by_name["exchange"]["args"]["who"] == "ana"

    def test_deterministic_across_identical_runs(self):
        assert chrome_trace_json(traced_run().finished()) == chrome_trace_json(
            traced_run().finished()
        )

    def test_export_writes_parseable_file(self, tmp_path):
        path = export_chrome_trace(
            traced_run().finished(), str(tmp_path / "trace.json")
        )
        with open(path, encoding="utf-8") as handle:
            blob = json.load(handle)
        assert any(e["ph"] == "X" for e in blob["traceEvents"])


class TestJsonlAndMetrics:
    def test_jsonl_one_object_per_line(self):
        lines = to_jsonl(traced_run().finished()).splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert [record["name"] for record in parsed] == [
            "relay", "exchange", "probe",  # finish order
        ]

    def test_jsonl_export_handles_empty(self, tmp_path):
        path = export_jsonl([], str(tmp_path / "spans.jsonl"))
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == ""

    def test_metrics_export_accepts_registry_or_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("env.exchange.total", 3)
        path_a = export_metrics(registry, str(tmp_path / "a.json"))
        path_b = export_metrics(registry.snapshot(), str(tmp_path / "b.json"))
        with open(path_a, encoding="utf-8") as handle:
            blob_a = json.load(handle)
        with open(path_b, encoding="utf-8") as handle:
            blob_b = json.load(handle)
        assert blob_a == blob_b
        assert blob_a["counters"]["env.exchange.total"] == 3
