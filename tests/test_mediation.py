"""Tests for the mediation subsystem: trader-published conversion
capabilities, multi-hop plan synthesis, fidelity negotiation, keyed plan
caching, and the exchange-pipeline / federation integration.

The acceptance bar (E17): apps publish O(N) converters yet every one of
the N·(N−1) pairs is reachable through synthesized plans; a withdrawn
or re-published converter evicts exactly the plans that used it (never
the whole cache); and a caller's ``min_fidelity`` floor either selects
a negotiated downgrade or fails with a structured ``REASON_FIDELITY``.
"""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.apps.workflow import WorkflowSystem
from repro.communication.model import Communicator
from repro.environment.environment import (
    REASON_DELIVERED,
    REASON_FIDELITY,
    CSCWEnvironment,
    ExchangeRequest,
)
from repro.environment.registry import (
    AppDescriptor,
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
)
from repro.federation import Federation
from repro.information.interchange import FormatConverter, is_common, make_common
from repro.mediation import (
    KIND_DIRECT,
    KIND_PARTIAL,
    SERVICE_TYPE_CONVERTER,
    ConversionCapability,
    MediationError,
    Mediator,
    capabilities_from_converter,
    direct_capability,
)
from repro.obs.metrics import MetricsRegistry
from repro.odp.trader import Trader
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World
from repro.util.errors import ConfigurationError, FidelityError, InteropError

QUAD = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]


def _identity(document):
    return dict(document)


def _converter(name: str, fidelity: float = 1.0) -> FormatConverter:
    return FormatConverter(
        name,
        to_common=lambda d, n=name: make_common(
            "note", d.get(f"{n}-title", ""), d.get(f"{n}-body", "")
        ),
        from_common=lambda c, n=name: {
            f"{n}-title": c["title"],
            f"{n}-body": c["body"],
        },
        fidelity=fidelity,
    )


@pytest.fixture
def mediator() -> Mediator:
    return Mediator(Trader("hq"))


class TestCapability:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConversionCapability("", "a", "b", _identity)
        with pytest.raises(ConfigurationError):
            ConversionCapability("x", "a", "a", _identity)
        with pytest.raises(ConfigurationError):
            ConversionCapability("x", "a", "b", _identity, fidelity=0.0)
        with pytest.raises(ConfigurationError):
            ConversionCapability("x", "a", "b", _identity, fidelity=1.5)
        with pytest.raises(ConfigurationError):
            ConversionCapability("x", "a", "b", _identity, cost=0.0)
        with pytest.raises(ConfigurationError):
            ConversionCapability("x", "a", "b", _identity, kind="mystery")

    def test_offer_properties_carry_metadata_not_code(self):
        capability = direct_capability("a", "b", _identity, fidelity=0.8, cost=2.0)
        properties = capability.offer_properties()
        assert properties["source"] == "a"
        assert properties["target"] == "b"
        assert properties["fidelity"] == 0.8
        assert properties["kind"] == KIND_DIRECT
        assert not any(callable(value) for value in properties.values())

    def test_capabilities_from_converter(self):
        pair = capabilities_from_converter(_converter("memo", fidelity=0.9))
        assert [c.capability_id for c in pair] == ["to-common:memo", "from-common:memo"]
        assert all(c.fidelity == 0.9 for c in pair)
        common = pair[0].convert({"memo-title": "t", "memo-body": "b"})
        assert is_common(common)
        back = pair[1].convert(common)
        assert back == {"memo-title": "t", "memo-body": "b"}

    def test_from_common_capability_rejects_non_common_input(self):
        _, from_common = capabilities_from_converter(_converter("memo"))
        with pytest.raises(InteropError):
            from_common.convert({"not": "common"})


class TestPlanning:
    def test_publish_exports_trader_offer(self, mediator):
        mediator.publish(direct_capability("a", "b", _identity))
        offers = mediator._trader.import_(SERVICE_TYPE_CONVERTER, max_offers=10)
        assert len(offers) == 1
        assert offers[0].properties["source"] == "a"

    def test_identity_plan_is_trivial(self, mediator):
        plan = mediator.plan("a", "a")
        assert plan.hops == 0
        assert plan.fidelity == 1.0

    def test_direct_route_beats_hub_on_cost(self, mediator):
        for capability in capabilities_from_converter(_converter("a")):
            mediator.publish(capability)
        for capability in capabilities_from_converter(_converter("b")):
            mediator.publish(capability)
        mediator.publish(direct_capability("a", "b", _identity, cost=1.0))
        plan = mediator.plan("a", "b")
        assert plan.path == ("a", "b")
        assert plan.hops == 1

    def test_lossless_hub_beats_lossy_direct(self, mediator):
        # ranking is fidelity-first: a 2-hop lossless route through the
        # common form wins over a cheaper but lossy direct converter
        for capability in capabilities_from_converter(_converter("a")):
            mediator.publish(capability)
        for capability in capabilities_from_converter(_converter("b")):
            mediator.publish(capability)
        mediator.publish(
            direct_capability("a", "b", _identity, fidelity=0.9, cost=0.5,
                              kind=KIND_PARTIAL)
        )
        plan = mediator.plan("a", "b")
        assert plan.path == ("a", "common", "b")
        assert plan.fidelity == 1.0

    def test_multi_hop_synthesis(self, mediator):
        # fax -> scan -> document -> common -> memo: four hops no single
        # converter covers
        mediator.publish(
            direct_capability("fax", "scan", _identity, fidelity=0.95,
                              kind=KIND_PARTIAL)
        )
        mediator.publish(
            direct_capability("scan", "document", _identity, fidelity=0.9,
                              kind=KIND_PARTIAL)
        )
        for capability in capabilities_from_converter(_converter("document")):
            mediator.publish(capability)
        for capability in capabilities_from_converter(_converter("memo")):
            mediator.publish(capability)
        plan = mediator.plan("fax", "memo")
        assert plan.path == ("fax", "scan", "document", "common", "memo")
        assert plan.hops == 4
        assert plan.fidelity == pytest.approx(0.95 * 0.9)

    def test_no_route_raises(self, mediator):
        mediator.publish(direct_capability("a", "b", _identity))
        with pytest.raises(MediationError):
            mediator.plan("b", "z")
        assert mediator.failures == 1

    def test_plan_cache_hits(self, mediator):
        mediator.publish(direct_capability("a", "b", _identity))
        mediator.plan("a", "b")
        mediator.plan("a", "b")
        assert mediator.plans_synthesized == 1
        assert mediator.plan_hits == 1

    def test_reachability_quadratic_from_linear_converters(self, mediator):
        names = [f"fmt{i}" for i in range(5)]
        for name in names:
            for capability in capabilities_from_converter(_converter(name)):
                mediator.publish(capability)
        assert mediator.capability_count() == 2 * len(names)
        assert mediator.reachable_pairs() == len(names) * (len(names) - 1)


class TestNegotiation:
    def _lossy(self, mediator):
        mediator.publish(
            direct_capability("a", "b", _identity, fidelity=0.9, kind=KIND_PARTIAL)
        )

    def test_accepts_within_floor(self, mediator):
        self._lossy(mediator)
        plan = mediator.negotiate("a", "b", min_fidelity=0.8)
        assert plan.fidelity == 0.9
        assert mediator.negotiated_downgrades == 1

    def test_lossless_plan_is_not_a_downgrade(self, mediator):
        mediator.publish(direct_capability("a", "b", _identity))
        mediator.negotiate("a", "b", min_fidelity=0.99)
        assert mediator.negotiated_downgrades == 0

    def test_rejects_below_floor_with_structured_error(self, mediator):
        self._lossy(mediator)
        with pytest.raises(FidelityError) as excinfo:
            mediator.negotiate("a", "b", min_fidelity=0.95)
        assert excinfo.value.best_fidelity == 0.9
        assert excinfo.value.min_fidelity == 0.95
        assert mediator.fidelity_rejections == 1


class TestKeyedEviction:
    def _populated(self, mediator):
        for name in ("a", "b", "c"):
            for capability in capabilities_from_converter(_converter(name)):
                mediator.publish(capability)
        mediator.publish(
            direct_capability("a", "b", _identity, cost=0.5, kind=KIND_DIRECT)
        )
        mediator.plan("a", "b")  # uses direct:a->b
        mediator.plan("b", "c")  # uses b/c common bridge

    def test_withdraw_evicts_only_dependent_plans(self, mediator):
        self._populated(mediator)
        mediator.withdraw("direct:a->b")
        stats = mediator.stats()
        assert stats["plan_evictions"] == 1
        assert stats["whole_cache_invalidations"] == 0
        # the surviving plan still hits; the evicted pair re-synthesizes
        # through the common form
        hits = mediator.plan_hits
        mediator.plan("b", "c")
        assert mediator.plan_hits == hits + 1
        assert mediator.plan("a", "b").path == ("a", "common", "b")

    def test_publish_evicts_only_endpoint_plans(self, mediator):
        self._populated(mediator)
        mediator.publish(
            direct_capability("c", "z", _identity, cost=0.5, kind=KIND_DIRECT)
        )
        stats = mediator.stats()
        # (b, c) has endpoint c so it goes; (a, b) survives
        assert stats["plan_evictions"] == 1
        assert stats["whole_cache_invalidations"] == 0
        hits = mediator.plan_hits
        mediator.plan("a", "b")
        assert mediator.plan_hits == hits + 1

    def test_hub_registration_evicts_nothing(self, mediator):
        # "common" is never a plan endpoint, so a new app joining the
        # hub must not disturb any cached plan
        self._populated(mediator)
        for capability in capabilities_from_converter(_converter("d")):
            mediator.publish(capability)
        assert mediator.stats()["plan_evictions"] == 0

    def test_invalidate_all_is_the_only_whole_cache_path(self, mediator):
        self._populated(mediator)
        mediator.invalidate_all()
        stats = mediator.stats()
        assert stats["whole_cache_invalidations"] == 1
        assert stats["plans_cached"] == 0

    def test_replace_converter_republishes(self, mediator):
        converter = _converter("a")
        mediator.publish_converter(converter)
        with pytest.raises(ConfigurationError):
            mediator.publish_converter(converter)
        mediator.publish_converter(_converter("a", fidelity=0.8), replace=True)
        capability = mediator.capability("to-common:a")
        assert capability.fidelity == 0.8


class TestTranslate:
    def test_multi_hop_execution(self, mediator):
        mediator.publish(
            direct_capability(
                "fax", "scan",
                lambda d: {"scan-title": d["fax-title"], "scan-body": d["fax-body"]},
                fidelity=0.95, kind=KIND_PARTIAL,
            )
        )
        for capability in capabilities_from_converter(_converter("scan")):
            mediator.publish(capability)
        for capability in capabilities_from_converter(_converter("memo")):
            mediator.publish(capability)
        result = mediator.translate(
            "fax", "memo", {"fax-title": "t", "fax-body": "b"}
        )
        assert result.document == {"memo-title": "t", "memo-body": "b"}
        assert result.hops == 3
        assert result.fidelity == pytest.approx(0.95)

    def test_identity_deep_copies(self, mediator):
        original = {"nested": {"n": 1}}
        result = mediator.translate("a", "a", original)
        assert result.document == original
        result.document["nested"]["n"] = 2
        assert original["nested"]["n"] == 1
        assert mediator.identities == 1

    def test_translate_enforces_floor(self, mediator):
        mediator.publish(
            direct_capability("a", "b", _identity, fidelity=0.7, kind=KIND_PARTIAL)
        )
        with pytest.raises(FidelityError):
            mediator.translate("a", "b", {}, min_fidelity=0.9)


def make_env(world, *, metrics=None, mediation=True):
    builder = CSCWEnvironment.builder().with_world(world)
    if mediation:
        builder = builder.with_mediation()
    if metrics is not None:
        builder = builder.with_metrics(metrics)
    env = builder.build()
    upc = Organisation("upc", "UPC")
    upc.add_person(Person("ana", "Ana Lopez", "upc"))
    upc.add_person(Person("wolf", "Wolf Prinz", "upc"))
    env.knowledge_base.add_organisation(upc)
    world.add_site("bcn", ["ws-ana", "ws-wolf"])
    env.register_person(Communicator("ana", "ws-ana"))
    env.register_person(Communicator("wolf", "ws-wolf"))
    return env


def _fax_descriptor():
    return AppDescriptor(
        name="faxline",
        quadrants=QUAD,
        native_format="fax",
        capabilities=[
            direct_capability(
                "fax", "memo",
                lambda d: {
                    "subject": d.get("fax-title", ""),
                    "text": d.get("fax-body", ""),
                    "fields": {},
                },
                fidelity=0.95, kind=KIND_PARTIAL, exporter="faxline",
            )
        ],
    )


class TestEnvironmentIntegration:
    def test_builder_wires_mediator_and_registry_publishes(self):
        env = make_env(World(seed=3))
        MessageSystem().attach(env)
        assert env.mediator is not None
        assert env.mediator.capability_count() == 2  # to/from common
        assert "memo" in env.mediator.formats()

    def test_capabilities_require_mediation(self):
        env = make_env(World(seed=3), mediation=False)
        with pytest.raises(ConfigurationError, match="no mediator"):
            env.register_application(_fax_descriptor(), lambda p, d, i: None)

    def test_mediator_only_format_flows_through_exchange(self):
        env = make_env(World(seed=3))
        MessageSystem().attach(env)
        inbox = []
        env.register_application(
            _fax_descriptor(), lambda person, doc, info: inbox.append(doc)
        )
        outcome = env.exchange(
            "ana", "wolf", "faxline", "message-system",
            {"fax-title": "offer", "fax-body": "sign here"},
        )
        assert outcome.delivered
        assert outcome.reason_code == REASON_DELIVERED
        assert outcome.fidelity == pytest.approx(0.95)
        message_system = env.applications.descriptor("message-system")
        assert message_system.format_name == "memo"

    def test_unmeetable_floor_fails_with_reason_fidelity(self):
        env = make_env(World(seed=3))
        MessageSystem().attach(env)
        env.register_application(
            _fax_descriptor(), lambda person, doc, info: None
        )
        outcome = env.exchange(
            "ana", "wolf", "faxline", "message-system",
            {"fax-title": "t", "fax-body": "b"},
            min_fidelity=0.99,
        )
        assert not outcome.delivered
        assert outcome.reason_code == REASON_FIDELITY

    def test_hub_pair_too_lossy_without_better_plan(self):
        # both formats live in the static hub; the hub result (0.9 via
        # the lossy form converter) misses the floor and no mediated
        # plan improves on it -> structured fidelity failure
        env = make_env(World(seed=3))
        ConferencingSystem().attach(env)
        WorkflowSystem().attach(env)
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "workflow",
            {"topic": "t", "entry": "e"},
            min_fidelity=0.95,
        )
        assert not outcome.delivered
        assert outcome.reason_code == REASON_FIDELITY

    def test_mediator_shortcut_rescues_lossy_hub_pair(self):
        env = make_env(World(seed=3))
        ConferencingSystem().attach(env)
        WorkflowSystem().attach(env)
        env.mediator.publish(
            direct_capability(
                "conference", "form",
                lambda d: {"form_name": d.get("topic", ""),
                           "slots": {"entry": d.get("entry", "")}},
                fidelity=1.0, cost=0.5,
            )
        )
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "workflow",
            {"topic": "t", "entry": "e"},
            min_fidelity=0.95,
        )
        assert outcome.delivered
        assert outcome.fidelity == 1.0

    def test_min_fidelity_round_trips_the_wire_form(self):
        request = ExchangeRequest.from_kwargs(
            "ana", "wolf", "a", "b", {"x": 1}, min_fidelity=0.9
        )
        document = request.to_document()
        assert document["min_fidelity"] == 0.9
        assert ExchangeRequest.from_document(document).min_fidelity == 0.9

    def test_exchange_many_groups_by_floor(self):
        env = make_env(World(seed=3))
        MessageSystem().attach(env)
        env.register_application(
            _fax_descriptor(), lambda person, doc, info: None
        )
        doc = {"fax-title": "t", "fax-body": "b"}
        requests = [
            ExchangeRequest.from_kwargs(
                "ana", "wolf", "faxline", "message-system", doc, min_fidelity=floor
            )
            for floor in (0.8, 0.8, 0.99)
        ]
        outcomes = env.exchange_many(requests)
        assert [o.delivered for o in outcomes] == [True, True, False]
        assert outcomes[2].reason_code == REASON_FIDELITY


class TestFederationRelay:
    def test_mediated_plan_metadata_crosses_the_gateway(self):
        world = World(seed=11)
        metrics = MetricsRegistry()
        federation = Federation(world, metrics=metrics, mediation=True)
        federation.add_domain("upc")
        federation.add_domain("gmd")
        federation.open_policies()
        federation.add_person("ana", "upc")
        federation.add_person("bob", "gmd")
        inbox = []
        federation.register_application(
            AppDescriptor(name="app0", quadrants=QUAD, converter=_converter("fmt0")),
            lambda person, doc, info: inbox.append(doc),
        )
        federation.register_application(
            AppDescriptor(name="app1", quadrants=QUAD, converter=_converter("fmt1")),
            lambda person, doc, info: inbox.append(doc),
        )
        outcome = federation.federated_exchange(
            "ana", "bob", "app0", "app1", {"fmt0-title": "t", "fmt0-body": "b"}
        )
        assert outcome.outcome.delivered
        assert metrics.counter("mediation.plan.relayed").value == 1

    def test_same_format_relay_carries_no_plan(self):
        world = World(seed=11)
        metrics = MetricsRegistry()
        federation = Federation(world, metrics=metrics, mediation=True)
        federation.add_domain("upc")
        federation.add_domain("gmd")
        federation.open_policies()
        federation.add_person("ana", "upc")
        federation.add_person("bob", "gmd")
        federation.register_application(
            AppDescriptor(name="app0", quadrants=QUAD, converter=_converter("fmt0")),
            lambda person, doc, info: None,
        )
        outcome = federation.federated_exchange(
            "ana", "bob", "app0", "app0", {"fmt0-title": "t", "fmt0-body": "b"}
        )
        assert outcome.outcome.delivered
        assert metrics.counter("mediation.plan.relayed").value == 0
