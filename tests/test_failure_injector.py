"""Fault-path regressions for the failure injector.

Two bugs fixed in the resilience PR get pinned here: an earlier crash
window's recovery must not resurrect a node mid-way through a later,
overlapping outage, and a partition window's heal must be scoped to its
own window — healing the earlier of two overlapping partitions re-asserts
the later cut instead of clearing the network.
"""

from __future__ import annotations

import pytest

from repro.sim.world import World
from repro.util.errors import ConfigurationError


@pytest.fixture
def net(world):
    world.add_site("s", ["a", "b", "c"])
    return world.network


class TestOverlappingOutages:
    def test_earlier_recovery_respects_later_window(self, world, net):
        """Regression: crash [1,3) + crash [2,6) — the t=3 recovery must
        not resurrect the node while the second outage still covers it."""
        world.failures.crash_at("a", at=1.0, duration=2.0)
        world.failures.crash_at("a", at=2.0, duration=4.0)
        world.run_for(3.5)  # past the first window's end
        assert not net.node("a").is_up
        world.run_for(3.0)  # past the second window's end
        assert net.node("a").is_up

    def test_infinite_outage_blocks_recovery_forever(self, world, net):
        world.failures.crash_at("a", at=1.0, duration=2.0)
        world.failures.crash_at("a", at=2.0)  # no duration: down forever
        world.run_for(100.0)
        assert not net.node("a").is_up

    def test_disjoint_windows_recover_normally(self, world, net):
        world.failures.crash_at("a", at=1.0, duration=1.0)
        world.failures.crash_at("a", at=5.0, duration=1.0)
        world.run_for(3.0)
        assert net.node("a").is_up
        world.run_for(2.5)
        assert not net.node("a").is_up
        world.run_for(1.0)
        assert net.node("a").is_up

    def test_outages_recorded_for_reporting(self, world, net):
        outage = world.failures.crash_at("a", at=1.0, duration=2.0)
        assert outage.start == 1.0 and outage.end == 3.0
        assert world.failures.planned_outages == [outage]


class TestWindowScopedHeal:
    def test_earlier_heal_reasserts_later_partition(self, world, net):
        """Regression: partition [1,4) and partition [2,8) overlap — the
        t=4 heal must re-assert the second cut, not clear everything."""
        world.failures.partition_at([["a"], ["b", "c"]], at=1.0, duration=3.0)
        world.failures.partition_at([["a", "b"], ["c"]], at=2.0, duration=6.0)
        world.run_for(4.5)  # past the first window's heal
        assert not net.reachable("b", "c")  # second cut still holds
        assert net.reachable("a", "b")
        world.run_for(4.0)  # past the second window's heal
        assert net.reachable("b", "c")
        assert net.reachable("a", "c")

    def test_single_window_heals_cleanly(self, world, net):
        world.failures.partition_at([["a"], ["b", "c"]], at=1.0, duration=2.0)
        world.run_for(1.5)
        assert not net.reachable("a", "b")
        world.run_for(2.0)
        assert net.reachable("a", "b")

    def test_partition_windows_recorded(self, world, net):
        window = world.failures.partition_at([["a"], ["b", "c"]], at=1.0, duration=2.0)
        assert window.groups == (("a",), ("b", "c"))
        assert window.covers(1.0) and window.covers(2.9)
        assert not window.covers(3.0)
        assert world.failures.planned_partitions == [window]

    def test_infinite_partition_never_heals(self, world, net):
        world.failures.partition_at([["a"], ["b", "c"]], at=1.0)
        world.run_for(50.0)
        assert not net.reachable("a", "b")

    def test_validation(self, world, net):
        with pytest.raises(ConfigurationError):
            world.failures.partition_at([["a"], ["b"]], at=1.0, duration=0.0)
        world.run_for(2.0)
        with pytest.raises(ConfigurationError):
            world.failures.partition_at([["a"], ["b"]], at=1.0)
