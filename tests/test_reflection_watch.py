"""Tests for ODP deployment reflection and information-change watching."""

from __future__ import annotations

import pytest

from repro.information.objects import InformationBase
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import ComputationalObject, InterfaceRef, signature
from repro.odp.reflection import conformance_errors, describe_deployment
from repro.odp.trader import Trader
from repro.odp.viewpoints import OdpSystemSpec


def _object(object_id: str, *interfaces: str) -> ComputationalObject:
    obj = ComputationalObject(object_id)
    for name in interfaces:
        obj.offer(signature(name, "op"), {"op": lambda args: None})
    return obj


@pytest.fixture
def deployment(world):
    world.add_site("hq", ["n1", "n2"])
    first = Capsule(world.network, "n1")
    second = Capsule(world.network, "n2")
    first.deploy(_object("dir-service", "directory"))
    second.deploy(_object("mail-service", "mailbox", "admin"))
    return [first, second]


class TestReflection:
    def test_describe_deployment_captures_objects(self, deployment):
        spec = describe_deployment("live", deployment)
        assert spec.computation.objects == {
            "dir-service": ["directory"],
            "mail-service": ["mailbox", "admin"],
        }
        assert spec.engineering.node_of("mail-service") == "n2"
        assert spec.is_consistent()

    def test_trader_offers_recorded(self, deployment):
        trader = Trader("t")
        trader.export("directory", InterfaceRef("n1", "dir-service", "directory"))
        spec = describe_deployment("live", deployment, trader)
        service_entries = [k for k in spec.technology.choices if k.startswith("service:")]
        assert len(service_entries) == 1

    def test_conformance_clean(self, deployment):
        spec = describe_deployment("live", deployment)
        assert conformance_errors(spec, deployment) == []

    def test_conformance_detects_missing_deployment(self, deployment):
        spec = describe_deployment("live", deployment)
        spec.computation.declare_object("ghost", ["iface"])
        errors = conformance_errors(spec, deployment)
        assert any("not deployed" in e for e in errors)

    def test_conformance_detects_undeclared_object(self, deployment):
        spec = OdpSystemSpec("declared")
        spec.computation.declare_object("dir-service", ["directory"])
        spec.engineering.place("n1", "dir-service")
        errors = conformance_errors(spec, deployment)
        assert any("undeclared" in e for e in errors)

    def test_conformance_detects_wrong_placement(self, deployment):
        spec = describe_deployment("live", deployment)
        # Simulate a migration the spec never learned about.
        deployment[0].migrate_to("dir-service", deployment[1])
        errors = conformance_errors(spec, deployment)
        assert any("declared on 'n1'" in e for e in errors)


class TestInformationWatching:
    @pytest.fixture
    def base(self) -> InformationBase:
        base = InformationBase()
        base.create("spec", "document", {"text": "v1"}, owner="ana")
        base.create("impl", "document", {"text": "code"}, owner="joan")
        base.derive("impl", "spec")
        return base

    def test_watcher_fires_on_update(self, base):
        seen = []
        base.watch("spec", lambda object_id, version: seen.append((object_id, version.number)))
        base.update("spec", {"text": "v2"}, author="ana")
        assert seen == [("spec", 2)]

    def test_wildcard_watcher(self, base):
        seen = []
        base.watch("*", lambda object_id, version: seen.append(object_id))
        base.update("spec", {"text": "v2"}, "ana")
        base.update("impl", {"text": "new code"}, "joan")
        assert seen == ["spec", "impl"]

    def test_direct_object_update_stays_silent(self, base):
        seen = []
        base.watch("spec", lambda *args: seen.append(1))
        base.get("spec").update({"text": "quiet"}, "ana")
        assert seen == []

    def test_watch_unknown_object_rejected(self, base):
        from repro.util.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            base.watch("ghost", lambda *args: None)

    def test_notify_impacted_fans_out(self, base):
        base.create("manual", "document", {}, "ana")
        base.derive("manual", "impl")
        told = []
        count = base.notify_impacted("spec", told.append)
        assert count == 2
        assert told == ["impl", "manual"]

    def test_watch_integrates_with_event_bus(self, base):
        """The cooperative pattern: object updates flow to activity topics."""
        from repro.util.events import EventBus, EventRecorder

        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe("activity/review", recorder)
        base.watch(
            "spec",
            lambda object_id, version: bus.publish(
                f"activity/review/information/{object_id}",
                {"version": version.number},
            ),
        )
        base.update("spec", {"text": "v2"}, "ana")
        assert recorder.payloads() == [{"version": 2}]
