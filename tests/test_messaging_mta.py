"""End-to-end tests for the message handling system on the simulator."""

from __future__ import annotations

import pytest

from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import or_name
from repro.messaging.reports import (
    REASON_HOP_LIMIT,
    REASON_NO_ROUTE,
    REASON_TRANSFER_FAILURE,
    REASON_UNKNOWN_RECIPIENT,
    DeliveryReport,
    NonDeliveryReport,
)
from repro.messaging.ua import UserAgent

ANA = or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez")
WOLF = or_name("C=DE;A= ;P=GMD;G=Wolf;S=Prinz")
TOM = or_name("C=UK;A= ;P=Lancaster;G=Tom;S=Rodden")


@pytest.fixture
def mhs(world):
    """Three sites, one MTA each, fully routed; three registered users."""
    world.add_site("bcn", ["mta-upc", "ws-ana"])
    world.add_site("bonn", ["mta-gmd", "ws-wolf"])
    world.add_site("lancs", ["mta-lancs", "ws-tom"])
    upc = MessageTransferAgent(world, "mta-upc", "upc", [("es", "", "upc")])
    gmd = MessageTransferAgent(world, "mta-gmd", "gmd", [("de", "", "gmd")])
    lancs = MessageTransferAgent(world, "mta-lancs", "lancs", [("uk", "", "lancaster")])
    for mta in (upc, gmd, lancs):
        for other in (upc, gmd, lancs):
            if other is not mta:
                mta.add_peer(other.name, other.node)
    upc.routing.add_route("de", "*", "*", "gmd")
    upc.routing.add_route("uk", "*", "*", "lancs")
    gmd.routing.add_route("es", "*", "*", "upc")
    gmd.routing.add_route("uk", "*", "*", "lancs")
    lancs.routing.add_route("es", "*", "*", "upc")
    lancs.routing.add_route("de", "*", "*", "gmd")
    ana = UserAgent(world, "ws-ana", ANA, "mta-upc")
    wolf = UserAgent(world, "ws-wolf", WOLF, "mta-gmd")
    tom = UserAgent(world, "ws-tom", TOM, "mta-lancs")
    for ua in (ana, wolf, tom):
        ua.register()
    return world, {"upc": upc, "gmd": gmd, "lancs": lancs}, {"ana": ana, "wolf": wolf, "tom": tom}


class TestDelivery:
    def test_cross_domain_delivery(self, mhs):
        world, mtas, uas = mhs
        uas["ana"].send([WOLF], "greetings", "hello from Barcelona")
        world.run()
        inbox = uas["wolf"].list_inbox()
        assert len(inbox) == 1
        assert inbox[0]["subject"] == "greetings"
        envelope = uas["wolf"].fetch(inbox[0]["sequence"])
        assert envelope.content.body_parts[0].content["text"] == "hello from Barcelona"

    def test_trace_records_both_mtas(self, mhs):
        world, mtas, uas = mhs
        uas["ana"].send([WOLF], "s", "b")
        world.run()
        envelope = uas["wolf"].fetch(uas["wolf"].list_inbox()[0]["sequence"])
        assert [t.mta for t in envelope.trace] == ["upc", "gmd"]

    def test_multi_recipient_split(self, mhs):
        world, mtas, uas = mhs
        uas["ana"].send([WOLF, TOM], "to both", "body")
        world.run()
        assert len(uas["wolf"].list_inbox()) == 1
        assert len(uas["tom"].list_inbox()) == 1

    def test_local_delivery_same_domain(self, mhs):
        world, mtas, uas = mhs
        maria = or_name("C=ES;A= ;P=UPC;G=Maria;S=Serra")
        ua_maria = UserAgent(world, "ws-ana", maria, "mta-upc")
        ua_maria.register()
        uas["ana"].send([maria], "intra", "same site")
        world.run()
        assert len(ua_maria.list_inbox()) == 1
        assert mtas["upc"].relayed == 0  # never left the MTA

    def test_delivery_report_round_trip(self, mhs):
        world, mtas, uas = mhs
        uas["ana"].send([WOLF], "important", "check", delivery_report=True)
        world.run()
        reports = uas["ana"].unread_reports()
        assert len(reports) == 1
        assert isinstance(reports[0], DeliveryReport)

    def test_deferred_delivery(self, mhs):
        world, mtas, uas = mhs
        uas["ana"].send([WOLF], "later", "after t=50", deferred_until=50.0)
        world.run_for(10.0)
        assert uas["wolf"].list_inbox() == []
        world.run_for(60.0)
        world.run()
        assert len(uas["wolf"].list_inbox()) == 1

    def test_deferred_mail_still_pays_priority_delay(self, mhs):
        # regression: a deferred envelope used to jump straight to
        # _process at release time, skipping its per-hop priority delay
        from repro.messaging.envelope import PRIORITY_NORMAL
        from repro.messaging.mta import PRIORITY_DELAYS

        world, mtas, uas = mhs
        maria = or_name("C=ES;A= ;P=UPC;G=Maria;S=Serra")
        ua_maria = UserAgent(world, "ws-ana", maria, "mta-upc")
        ua_maria.register()
        world.run()
        deliveries = []
        mtas["upc"].add_delivery_hook(lambda mailbox, stored: deliveries.append(stored))
        uas["ana"].send([maria], "later", "after t=50", deferred_until=50.0)
        world.run()
        assert len(deliveries) == 1
        released_at = 50.0 + PRIORITY_DELAYS[PRIORITY_NORMAL]
        assert deliveries[0].delivered_at == pytest.approx(released_at)


class TestNonDelivery:
    def test_unknown_recipient_ndr(self, mhs):
        world, mtas, uas = mhs
        ghost = or_name("C=DE;A= ;P=GMD;G=No;S=Body")
        uas["ana"].send([ghost], "void", "hello?")
        world.run()
        reports = uas["ana"].unread_reports()
        assert len(reports) == 1
        assert isinstance(reports[0], NonDeliveryReport)
        assert reports[0].reason == REASON_UNKNOWN_RECIPIENT

    def test_no_route_ndr(self, mhs):
        world, mtas, uas = mhs
        martian = or_name("C=MARS;A= ;P=OLYMPUS;S=Marvin")
        uas["ana"].send([martian], "far", "too far")
        world.run()
        reports = uas["ana"].unread_reports()
        assert reports[0].reason == REASON_NO_ROUTE

    def test_transfer_failure_ndr_when_peer_dead(self, mhs):
        world, mtas, uas = mhs
        world.network.node("mta-gmd").crash()
        uas["ana"].send([WOLF], "s", "b")
        world.run()
        reports = uas["ana"].unread_reports()
        assert reports[0].reason == REASON_TRANSFER_FAILURE

    def test_transient_outage_retried_successfully(self, mhs):
        world, mtas, uas = mhs
        world.failures.crash_at("mta-gmd", at=world.now, duration=3.0)
        uas["ana"].send([WOLF], "s", "b")
        world.run()
        assert len(uas["wolf"].list_inbox()) == 1
        assert uas["ana"].unread_reports() == []

    def test_routing_loop_produces_hop_limit_ndr(self, mhs):
        world, mtas, uas = mhs
        # Misconfigure: upc routes FR to gmd, gmd routes FR back to upc.
        mtas["upc"].routing.add_route("fr", "*", "*", "gmd")
        mtas["gmd"].routing.add_route("fr", "*", "*", "upc")
        pierre = or_name("C=FR;A= ;P=INRIA;S=Pierre")
        uas["ana"].send([pierre], "loop", "round and round")
        world.run()
        reports = uas["ana"].unread_reports()
        assert reports[0].reason == REASON_HOP_LIMIT

    def test_no_report_storms(self, mhs):
        """NDRs about undeliverable reports are suppressed."""
        world, mtas, uas = mhs
        # Ana sends to an unknown GMD user from an unregistered originator
        # mailbox: the NDR back to her is deliverable, so just check the
        # system quiesces with a bounded number of reports.
        ghost = or_name("C=DE;A= ;P=GMD;G=No;S=Body")
        uas["ana"].send([ghost], "void", "x")
        world.run()
        total_reports = sum(m.reports_issued for m in mtas.values())
        assert total_reports == 1


class TestMailboxManagement:
    def test_register_wrong_domain_rejected(self, mhs):
        world, mtas, uas = mhs
        from repro.util.errors import MessagingError

        with pytest.raises(MessagingError):
            mtas["upc"].register_mailbox(WOLF)

    def test_delete_from_store_via_ua(self, mhs):
        world, mtas, uas = mhs
        uas["ana"].send([WOLF], "s", "b")
        world.run()
        seq = uas["wolf"].list_inbox()[0]["sequence"]
        uas["wolf"].delete(seq)
        assert uas["wolf"].list_inbox() == []

    def test_delivery_hook_fires(self, mhs):
        world, mtas, uas = mhs
        seen = []
        mtas["gmd"].add_delivery_hook(lambda mailbox, stored: seen.append(mailbox))
        uas["ana"].send([WOLF], "s", "b")
        world.run()
        assert seen == ["wolf.prinz"]
