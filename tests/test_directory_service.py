"""Integration tests: DSA/DUA over the simulated network, shadowing."""

from __future__ import annotations

import pytest

from repro.directory.dsa import DirectoryServiceAgent
from repro.directory.dua import DirectoryUserAgent
from repro.directory.replication import ShadowingAgreement
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.util.errors import BindingError


@pytest.fixture
def deployment(world):
    world.add_site("hq", ["dsa-node", "client"])
    capsule = Capsule(world.network, "dsa-node")
    factory = BindingFactory(world.network)
    factory.register_capsule(capsule)
    dsa = DirectoryServiceAgent("dsa-hq")
    ref = dsa.deploy(capsule)
    dua = DirectoryUserAgent(factory, "client", ref)
    dua.add(world, "c=ES", {"objectclass": ["country"]})
    dua.add(world, "o=UPC,c=ES", {"objectclass": ["organization"]})
    return world, factory, dsa, ref, dua


class TestRemoteDirectory:
    def test_add_and_read_over_network(self, deployment):
        world, factory, dsa, ref, dua = deployment
        dua.add(world, "cn=Ana,o=UPC,c=ES", {"objectclass": ["person"], "sn": ["Lopez"]})
        entry = dua.read(world, "cn=Ana,o=UPC,c=ES")
        assert entry.first("sn") == "Lopez"

    def test_search_with_string_filter(self, deployment):
        world, factory, dsa, ref, dua = deployment
        dua.add(world, "cn=Ana,o=UPC,c=ES", {"objectclass": ["person"], "sn": ["Lopez"]})
        dua.add(world, "cn=Joan,o=UPC,c=ES", {"objectclass": ["person"], "sn": ["Puig"]})
        found = dua.search(world, base="o=UPC,c=ES", where="(sn=Puig)")
        assert [e.first("cn") for e in found] == ["Joan"]

    def test_modify_and_delete(self, deployment):
        world, factory, dsa, ref, dua = deployment
        dua.add(world, "cn=Ana,o=UPC,c=ES", {"objectclass": ["person"], "sn": ["Lopez"]})
        dua.modify(world, "cn=Ana,o=UPC,c=ES", add={"mail": ["ana@upc.es"]})
        assert dua.read(world, "cn=Ana,o=UPC,c=ES").get("mail") == ["ana@upc.es"]
        dua.delete(world, "cn=Ana,o=UPC,c=ES")
        with pytest.raises(BindingError, match="no entry"):
            dua.read(world, "cn=Ana,o=UPC,c=ES")

    def test_error_propagates_as_binding_error(self, deployment):
        world, factory, dsa, ref, dua = deployment
        with pytest.raises(BindingError):
            dua.add(world, "cn=Orphan,o=Ghost,c=ES", {"objectclass": ["person"], "sn": ["X"]})

    def test_children_and_csn(self, deployment):
        world, factory, dsa, ref, dua = deployment
        assert [str(e.name) for e in dua.children(world, "c=ES")] == ["o=UPC,c=ES"]
        assert dua.csn(world) == dsa.dit.csn


class TestShadowing:
    def _shadow_setup(self, world, factory, master_ref):
        world.add_site("remote", ["shadow-node", "remote-client"])
        shadow_capsule = Capsule(world.network, "shadow-node")
        factory.register_capsule(shadow_capsule)
        shadow = DirectoryServiceAgent("dsa-shadow")
        shadow_ref = shadow.deploy(shadow_capsule)
        agreement = ShadowingAgreement(
            world, factory, shadow, "shadow-node", master_ref, period_s=10.0
        )
        return shadow, shadow_ref, agreement

    def test_periodic_pull_converges(self, deployment):
        world, factory, dsa, ref, dua = deployment
        shadow, shadow_ref, agreement = self._shadow_setup(world, factory, ref)
        agreement.start()
        dua.add(world, "cn=Ana,o=UPC,c=ES", {"objectclass": ["person"], "sn": ["Lopez"]})
        world.run_for(25.0)
        assert shadow.dit.exists("cn=Ana,o=UPC,c=ES")
        assert agreement.high_water == dsa.dit.csn
        assert agreement.changes_applied >= 3

    def test_shadow_serves_reads_locally(self, deployment):
        world, factory, dsa, ref, dua = deployment
        shadow, shadow_ref, agreement = self._shadow_setup(world, factory, ref)
        agreement.sync_now()
        world.run_for(1.0)
        remote_dua = DirectoryUserAgent(factory, "remote-client", shadow_ref)
        entry = remote_dua.read(world, "o=UPC,c=ES")
        assert entry.first("o") == "UPC"

    def test_master_outage_tolerated(self, deployment):
        world, factory, dsa, ref, dua = deployment
        shadow, shadow_ref, agreement = self._shadow_setup(world, factory, ref)
        agreement.start()
        world.failures.crash_at("dsa-node", at=5.0, duration=20.0)
        world.run_for(12.0)  # one pull fails during the outage
        # Master recovers; later writes still replicate.
        world.run_for(20.0)
        dua.add(world, "cn=Late,o=UPC,c=ES", {"objectclass": ["person"], "sn": ["Late"]})
        world.run_for(15.0)
        assert shadow.dit.exists("cn=Late,o=UPC,c=ES")
        assert agreement.failed_pulls >= 1

    def test_incremental_not_full(self, deployment):
        """After the first sync, later pulls carry only the delta."""
        world, factory, dsa, ref, dua = deployment
        shadow, shadow_ref, agreement = self._shadow_setup(world, factory, ref)
        agreement.sync_now()
        world.run_for(1.0)
        applied_after_first = agreement.changes_applied
        dua.add(world, "cn=New,o=UPC,c=ES", {"objectclass": ["person"], "sn": ["New"]})
        agreement.sync_now()
        world.run_for(1.0)
        assert agreement.changes_applied == applied_after_first + 1


class TestShadowingBackoff:
    def _shadow_setup(self, world, factory, master_ref, metrics=None):
        world.add_site("remote", ["shadow-node"])
        shadow_capsule = Capsule(world.network, "shadow-node")
        factory.register_capsule(shadow_capsule)
        shadow = DirectoryServiceAgent("dsa-shadow")
        shadow.deploy(shadow_capsule)
        agreement = ShadowingAgreement(
            world, factory, shadow, "shadow-node", master_ref,
            period_s=10.0, metrics=metrics,
        )
        return shadow, agreement

    def test_failing_pull_backs_off_and_recovers(self, deployment):
        """A dead master is probed at stretched intervals, not hammered.

        Channel timeouts are 5 s and the period is 10 s, so pulls land at
        t=10 (fails, noted t=15), t=35 (15 + 10*2, fails, noted t=40) and
        t=80 (40 + 10*4) — by which point the master has recovered, so
        the third pull succeeds and the cadence resets to 10 s.
        """
        world, factory, dsa, ref, dua = deployment
        shadow, agreement = self._shadow_setup(world, factory, ref)
        agreement.start()
        world.failures.crash_at("dsa-node", at=5.0, duration=60.0)
        world.run_for(75.0)
        # without backoff there would be 7 pulls by t=75; with it, two
        # failed probes and a third still pending
        assert agreement.pulls == 2
        assert agreement.failed_pulls == 2
        assert agreement.fail_streak == 2
        assert agreement.current_period_s == 40.0
        world.run_for(15.0)  # t=90: pull at t=80 hits the recovered master
        assert agreement.pulls == 3
        assert agreement.syncs == 1
        assert agreement.fail_streak == 0
        assert agreement.current_period_s == 10.0
        assert agreement.high_water == dsa.dit.csn
        # cadence is back to one pull per period
        world.run_for(25.0)
        assert agreement.pulls >= 5
        assert agreement.failed_pulls == 2

    def test_backoff_is_capped(self, deployment):
        world, factory, dsa, ref, dua = deployment
        shadow, agreement = self._shadow_setup(world, factory, ref)
        agreement._fail_streak = 50
        assert agreement.current_period_s == 80.0  # period_s * 8 default cap

    def test_shadow_metrics_counters(self, deployment):
        from repro.obs.metrics import MetricsRegistry

        world, factory, dsa, ref, dua = deployment
        registry = MetricsRegistry()
        shadow, agreement = self._shadow_setup(world, factory, ref, metrics=registry)
        agreement.sync_now()
        world.run_for(1.0)
        world.failures.crash_at("dsa-node", at=1.5, duration=30.0)
        world.run_for(1.0)
        agreement.sync_now()
        world.run_for(10.0)
        counters = registry.snapshot()["counters"]
        assert counters["directory.shadow.pulls"] == 2
        assert counters["directory.shadow.syncs"] == 1
        assert counters["directory.shadow.failures"] == 1
        assert counters["directory.shadow.changes_applied"] == agreement.changes_applied
