"""Tests for directory schema validation."""

from __future__ import annotations

import pytest

from repro.directory.schema import AttributeType, Schema, standard_schema
from repro.util.errors import ConfigurationError, SchemaViolationError


@pytest.fixture
def schema() -> Schema:
    return standard_schema()


class TestDefinitions:
    def test_duplicate_attribute_rejected(self, schema):
        with pytest.raises(ConfigurationError):
            schema.define_attribute(AttributeType("cn"))

    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(ConfigurationError):
            schema.define_class("person")

    def test_class_with_undefined_attribute_rejected(self, schema):
        with pytest.raises(ConfigurationError):
            schema.define_class("thing", must={"nonexistent"})

    def test_unknown_lookups_raise(self, schema):
        with pytest.raises(SchemaViolationError):
            schema.attribute("ghost")
        with pytest.raises(SchemaViolationError):
            schema.object_class("ghost")

    def test_inheritance_accumulates(self, schema):
        person = schema.object_class("person")
        assert "description" in person.all_may()  # inherited from top
        assert "cn" in person.all_must()


class TestValidation:
    def test_valid_person(self, schema):
        schema.validate_entry(
            {"objectclass": ["person"], "cn": ["Ana"], "sn": ["Lopez"], "mail": ["ana@upc.es"]}
        )

    def test_missing_objectclass_rejected(self, schema):
        with pytest.raises(SchemaViolationError, match="objectClass"):
            schema.validate_entry({"cn": ["Ana"]})

    def test_missing_mandatory_rejected(self, schema):
        with pytest.raises(SchemaViolationError, match="mandatory"):
            schema.validate_entry({"objectclass": ["person"], "cn": ["Ana"]})

    def test_unpermitted_attribute_rejected(self, schema):
        with pytest.raises(SchemaViolationError, match="not permitted"):
            schema.validate_entry(
                {"objectclass": ["country"], "c": ["ES"], "mail": ["x@y"]}
            )

    def test_single_valued_enforced(self, schema):
        with pytest.raises(SchemaViolationError, match="single-valued"):
            schema.validate_entry(
                {"objectclass": ["organization"], "o": ["UPC", "GMD"]}
            )

    def test_multiple_classes_union_permissions(self, schema):
        schema.validate_entry(
            {
                "objectclass": ["person", "cscwrole"],
                "cn": ["Ana"],
                "sn": ["Lopez"],
                "responsibility": ["review"],
            }
        )

    def test_cscw_classes_present(self, schema):
        for name in ("cscwactivity", "cscwrole", "cscwservice"):
            assert schema.has_class(name)
