"""Tests for distribution transparencies as binder interceptors."""

from __future__ import annotations

import pytest

from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import ComputationalObject, InterfaceRef, signature
from repro.odp.trader import Trader
from repro.odp.transparencies import (
    FailureTransparency,
    LocationTransparency,
    MigrationTransparency,
    Relocator,
    ReplicationTransparency,
    TransparencySelection,
)
from repro.util.errors import BindingError, ConfigurationError


def _service(object_id: str, reply: str) -> ComputationalObject:
    obj = ComputationalObject(object_id)
    obj.offer(signature("svc", "who"), {"who": lambda args: reply})
    return obj


@pytest.fixture
def cluster(world):
    world.add_site("hq", ["n1", "n2", "n3", "client"])
    capsules = {name: Capsule(world.network, name) for name in ("n1", "n2", "n3")}
    factory = BindingFactory(world.network)
    for capsule in capsules.values():
        factory.register_capsule(capsule)
    return world, capsules, factory


class TestMigrationTransparency:
    def test_stale_ref_rewritten(self, cluster):
        world, capsules, factory = cluster
        relocator = Relocator()
        old_refs = capsules["n1"].deploy(_service("mobile", "hi"))
        relocator.record(old_refs["svc"])
        new_refs = capsules["n1"].migrate_to("mobile", capsules["n2"])
        relocator.moved(old_refs["svc"], new_refs["svc"])
        channel = factory.bind("client", old_refs["svc"], [MigrationTransparency(relocator)])
        assert channel.call(world, "who") == "hi"
        assert relocator.relocations == 1

    def test_without_transparency_stale_ref_fails(self, cluster):
        world, capsules, factory = cluster
        old_refs = capsules["n1"].deploy(_service("mobile", "hi"))
        capsules["n1"].migrate_to("mobile", capsules["n2"])
        channel = factory.bind("client", old_refs["svc"])
        with pytest.raises(BindingError):
            channel.call(world, "who")

    def test_migration_during_use_recovers_on_failure(self, cluster):
        world, capsules, factory = cluster
        relocator = Relocator()
        refs = capsules["n1"].deploy(_service("mobile", "hi"))
        relocator.record(refs["svc"])
        channel = factory.bind("client", refs["svc"], [MigrationTransparency(relocator)])
        # First call succeeds at n1.
        assert channel.call(world, "who") == "hi"
        # Move the object; the relocator learns the new location.
        new_refs = capsules["n1"].migrate_to("mobile", capsules["n2"])
        relocator.moved(refs["svc"], new_refs["svc"])
        assert channel.call(world, "who") == "hi"

    def test_moved_must_keep_identity(self):
        relocator = Relocator()
        with pytest.raises(ConfigurationError):
            relocator.moved(InterfaceRef("a", "x", "i"), InterfaceRef("b", "y", "i"))


class TestLocationTransparency:
    def test_resolves_service_type_via_trader(self, cluster):
        world, capsules, factory = cluster
        trader = Trader("t")
        refs = capsules["n1"].deploy(_service("printer", "printed"))
        trader.export("printing", refs["svc"])
        location = LocationTransparency(trader, "printing")
        channel = factory.bind("client", location.placeholder_ref(), [location])
        assert channel.call(world, "who") == "printed"

    def test_fails_over_to_other_offer_when_first_dies(self, cluster):
        world, capsules, factory = cluster
        trader = Trader("t")
        refs1 = capsules["n1"].deploy(_service("printer-a", "from-n1"))
        refs2 = capsules["n2"].deploy(_service("printer-b", "from-n2"))
        trader.export("printing", refs1["svc"])
        trader.export("printing", refs2["svc"])
        world.network.node("n1").crash()
        location = LocationTransparency(trader, "printing")
        channel = factory.bind("client", location.placeholder_ref(), [location], timeout_s=0.5)
        assert channel.call(world, "who") == "from-n2"


class TestReplicationTransparency:
    def test_prefers_first_replica(self, cluster):
        world, capsules, factory = cluster
        refs1 = capsules["n1"].deploy(_service("rep-a", "primary"))
        refs2 = capsules["n2"].deploy(_service("rep-b", "backup"))
        replication = ReplicationTransparency([refs1["svc"], refs2["svc"]])
        channel = factory.bind("client", refs1["svc"], [replication])
        assert channel.call(world, "who") == "primary"
        assert replication.failovers == 0

    def test_fails_over_to_backup(self, cluster):
        world, capsules, factory = cluster
        refs1 = capsules["n1"].deploy(_service("rep-a", "primary"))
        refs2 = capsules["n2"].deploy(_service("rep-b", "backup"))
        world.network.node("n1").crash()
        replication = ReplicationTransparency([refs1["svc"], refs2["svc"]])
        channel = factory.bind("client", refs1["svc"], [replication], timeout_s=0.5)
        assert channel.call(world, "who") == "backup"
        assert replication.failovers == 1

    def test_all_replicas_dead_fails(self, cluster):
        world, capsules, factory = cluster
        refs1 = capsules["n1"].deploy(_service("rep-a", "primary"))
        refs2 = capsules["n2"].deploy(_service("rep-b", "backup"))
        world.network.node("n1").crash()
        world.network.node("n2").crash()
        replication = ReplicationTransparency([refs1["svc"], refs2["svc"]])
        channel = factory.bind("client", refs1["svc"], [replication], timeout_s=0.5)
        with pytest.raises(BindingError):
            channel.call(world, "who")

    def test_empty_replica_group_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationTransparency([])


class TestFailureTransparency:
    def test_retries_through_transient_outage(self, cluster):
        world, capsules, factory = cluster
        refs = capsules["n1"].deploy(_service("flaky", "ok"))
        # n1 is down for 1.5s; retries (timeout 1s) should eventually land.
        world.failures.crash_at("n1", at=0.0, duration=1.5)
        failure = FailureTransparency(max_retries=5)
        channel = factory.bind("client", refs["svc"], [failure], timeout_s=1.0)
        assert channel.call(world, "who") == "ok"
        assert failure.retries >= 1

    def test_gives_up_after_bound(self, cluster):
        world, capsules, factory = cluster
        refs = capsules["n1"].deploy(_service("dead", "never"))
        world.network.node("n1").crash()
        failure = FailureTransparency(max_retries=2)
        channel = factory.bind("client", refs["svc"], [failure], timeout_s=0.2)
        with pytest.raises(BindingError):
            channel.call(world, "who")
        assert failure.retries == 2


class TestTransparencySelection:
    def test_enable_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            TransparencySelection().enable("invisibility")

    def test_build_order_and_contents(self):
        relocator = Relocator()
        trader = Trader("t")
        trader.export("svc", InterfaceRef("n", "o", "svc"))
        selection = TransparencySelection(
            trader=trader,
            service_type="svc",
            relocator=relocator,
            replicas=[InterfaceRef("n", "o", "svc")],
        )
        for name in ("access", "location", "migration", "replication", "failure"):
            selection.enable(name)
        chain = selection.build()
        names = [type(i).__name__ for i in chain]
        assert names == [
            "ReplicationTransparency",
            "MigrationTransparency",
            "LocationTransparency",
            "FailureTransparency",
            "AccessTransparency",
        ]

    def test_disable_removes(self):
        selection = TransparencySelection()
        selection.enable("failure").disable("failure")
        assert selection.build() == []

    def test_migration_requires_relocator(self):
        selection = TransparencySelection()
        selection.enable("migration")
        with pytest.raises(ConfigurationError):
            selection.build()

    def test_location_requires_trader(self):
        selection = TransparencySelection()
        selection.enable("location")
        with pytest.raises(ConfigurationError):
            selection.build()

    def test_selection_is_user_tailorable_per_binding(self, cluster):
        """Two bindings to the same service can select different transparencies."""
        world, capsules, factory = cluster
        refs = capsules["n1"].deploy(_service("shared", "ok"))
        plain = factory.bind("client", refs["svc"])
        tolerant = factory.bind(
            "client", refs["svc"], TransparencySelection({"failure"}).build(), timeout_s=0.5
        )
        world.failures.crash_at("n1", at=0.0, duration=0.7)
        with pytest.raises(BindingError):
            plain.call(world, "who")
        assert tolerant.call(world, "who") == "ok"
