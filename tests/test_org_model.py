"""Tests for organisational objects, relations and rules."""

from __future__ import annotations

import pytest

from repro.org.model import Organisation, OrgUnit, Person, Resource, ResourceKind, Role
from repro.org.relations import RelationKind, RelationStore
from repro.org.rules import RuleEngine
from repro.util.errors import AccessDeniedError, ConfigurationError, UnknownObjectError


@pytest.fixture
def upc() -> Organisation:
    org = Organisation("upc", "UPC")
    org.add_person(Person("ana", "Ana Lopez", "upc", site="bcn"))
    org.add_person(Person("joan", "Joan Puig", "upc", site="bcn"))
    org.add_role(Role("editor", "Editor", "upc"))
    org.add_role(Role("reviewer", "Reviewer", "upc"))
    org.add_unit(OrgUnit("ac", "Computer Architecture", "upc"))
    org.add_resource(Resource("meeting-room", "Sala 1", "upc", ResourceKind.ROOM, capacity=1))
    return org


class TestOrganisation:
    def test_lookup(self, upc):
        assert upc.person("ana").name == "Ana Lopez"
        assert upc.role("editor").name == "Editor"
        assert upc.resource("meeting-room").kind is ResourceKind.ROOM

    def test_unknown_lookup_raises(self, upc):
        with pytest.raises(UnknownObjectError):
            upc.person("ghost")

    def test_duplicate_rejected(self, upc):
        with pytest.raises(ConfigurationError):
            upc.add_person(Person("ana", "Other Ana", "upc"))

    def test_wrong_owner_rejected(self, upc):
        with pytest.raises(ConfigurationError):
            upc.add_person(Person("wolf", "Wolf Prinz", "gmd"))

    def test_nested_unit_requires_parent(self, upc):
        with pytest.raises(UnknownObjectError):
            upc.add_unit(OrgUnit("sub", "Sub", "upc", parent_unit="ghost"))
        upc.add_unit(OrgUnit("sub", "Sub", "upc", parent_unit="ac"))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Resource("r", "R", "upc", capacity=0)


class TestRelations:
    @pytest.fixture
    def relations(self) -> RelationStore:
        store = RelationStore()
        store.relate(RelationKind.PLAYS_ROLE, "ana", "editor")
        store.relate(RelationKind.PLAYS_ROLE, "ana", "reviewer", scope="tunnel")
        store.relate(RelationKind.PLAYS_ROLE, "joan", "reviewer")
        store.relate(RelationKind.MEMBER_OF, "ana", "ac")
        store.relate(RelationKind.REPORTS_TO, "ana", "joan")
        store.relate(RelationKind.REPORTS_TO, "joan", "marta")
        store.relate(RelationKind.USES, "tunnel", "meeting-room")
        store.relate(RelationKind.USES, "bridge", "meeting-room")
        return store

    def test_roles_scoped_and_global(self, relations):
        assert relations.roles_of("ana") == ["editor", "reviewer"]
        assert relations.roles_of("ana", project="tunnel") == ["editor", "reviewer"]
        assert relations.roles_of("ana", project="other") == ["editor"]

    def test_players_of(self, relations):
        assert relations.players_of("reviewer") == ["ana", "joan"]
        assert relations.players_of("reviewer", project="other") == ["joan"]

    def test_membership(self, relations):
        assert relations.members_of("ac") == ["ana"]
        assert relations.memberships_of("ana") == ["ac"]

    def test_management_chain(self, relations):
        assert relations.management_chain("ana") == ["joan", "marta"]

    def test_management_chain_cycle_safe(self, relations):
        relations.relate(RelationKind.REPORTS_TO, "marta", "ana")
        chain = relations.management_chain("ana")
        assert chain[:2] == ["joan", "marta"]

    def test_shared_resources(self, relations):
        assert relations.shared_resources("tunnel", "bridge") == ["meeting-room"]

    def test_idempotent_relate_and_unrelate(self, relations):
        relations.relate(RelationKind.MEMBER_OF, "ana", "ac")
        assert relations.members_of("ac") == ["ana"]
        assert relations.unrelate(RelationKind.MEMBER_OF, "ana", "ac")
        assert not relations.unrelate(RelationKind.MEMBER_OF, "ana", "ac")
        assert relations.members_of("ac") == []


class TestRules:
    @pytest.fixture
    def engine(self) -> RuleEngine:
        relations = RelationStore()
        relations.relate(RelationKind.PLAYS_ROLE, "ana", "editor")
        relations.relate(RelationKind.PLAYS_ROLE, "joan", "reviewer")
        relations.relate(RelationKind.PLAYS_ROLE, "joan", "trainee")
        engine = RuleEngine(relations)
        engine.permit("editor", "modify", "report")
        engine.permit("reviewer", "read", "report")
        engine.prohibit("trainee", "read", "report")
        engine.oblige("reviewer", "review", "report")
        return engine

    def test_role_permission(self, engine):
        assert engine.allowed("ana", "modify", "report")
        assert not engine.allowed("ana", "read", "report")

    def test_prohibition_dominates_across_roles(self, engine):
        # joan is reviewer (read allowed) and trainee (read prohibited).
        assert not engine.allowed("joan", "read", "report")

    def test_obligation_grants_and_lists(self, engine):
        assert engine.allowed("joan", "review", "report")
        assert len(engine.obligations_of("joan")) == 1

    def test_require_raises(self, engine):
        with pytest.raises(AccessDeniedError):
            engine.require("ana", "read", "report")

    def test_exception_grants_despite_roles(self, engine):
        engine.add_exception("joan", "read", "report", grant=True, justification="audit")
        assert engine.allowed("joan", "read", "report")

    def test_exception_revokes_despite_roles(self, engine):
        engine.add_exception("ana", "modify", "report", grant=False)
        assert not engine.allowed("ana", "modify", "report")
