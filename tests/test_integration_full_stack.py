"""Full-stack integration: environment + models + substrates together.

These tests exercise the layering of Figure 4 end to end: groupware on
the environment, the environment's knowledge base published into the
X.500-style directory, group mail over the X.400-style MHS, ODP trading
with organisational policy, and failure injection underneath it all.
"""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.apps.shared_editor import SharedEditor
from repro.apps.workflow import Procedure, ProcedureStep, WorkflowSystem
from repro.communication.model import Communicator
from repro.directory.dsa import DirectoryServiceAgent
from repro.directory.dua import DirectoryUserAgent
from repro.environment.environment import CSCWEnvironment
from repro.environment.session import CooperationSession
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import or_name
from repro.messaging.ua import UserAgent
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.org.model import Organisation, Person
from repro.sim.world import World

ANA = or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez")
WOLF = or_name("C=DE;A= ;P=GMD;G=Wolf;S=Prinz")
TOM = or_name("C=UK;A= ;P=Lancaster;G=Tom;S=Rodden")
MOCCA = or_name("C=ES;A= ;P=UPC;S=mocca")


@pytest.fixture
def stack(world):
    """Three sites, full substrate + environment + people."""
    world.add_site("bcn", ["mta-upc", "ws-ana", "dsa-node"])
    world.add_site("bonn", ["mta-gmd", "ws-wolf"])
    world.add_site("lancs", ["mta-lancs", "ws-tom"])
    mtas = {
        "upc": MessageTransferAgent(world, "mta-upc", "upc", [("es", "", "upc")]),
        "gmd": MessageTransferAgent(world, "mta-gmd", "gmd", [("de", "", "gmd")]),
        "lancs": MessageTransferAgent(world, "mta-lancs", "lancs", [("uk", "", "lancaster")]),
    }
    for mta in mtas.values():
        for other in mtas.values():
            if other is not mta:
                mta.add_peer(other.name, other.node)
    mtas["upc"].routing.add_route("de", "*", "*", "gmd")
    mtas["upc"].routing.add_route("uk", "*", "*", "lancs")
    mtas["gmd"].routing.add_route("es", "*", "*", "upc")
    mtas["gmd"].routing.add_route("uk", "*", "*", "lancs")
    mtas["lancs"].routing.add_route("es", "*", "*", "upc")
    mtas["lancs"].routing.add_route("de", "*", "*", "gmd")
    uas = {
        "ana": UserAgent(world, "ws-ana", ANA, "mta-upc"),
        "wolf": UserAgent(world, "ws-wolf", WOLF, "mta-gmd"),
        "tom": UserAgent(world, "ws-tom", TOM, "mta-lancs"),
    }
    for ua in uas.values():
        ua.register()

    env = CSCWEnvironment(world)
    for org_id, person_id, name, oname, node in [
        ("upc", "ana", "Ana Lopez", ANA, "ws-ana"),
        ("gmd", "wolf", "Wolf Prinz", WOLF, "ws-wolf"),
        ("lancaster", "tom", "Tom Rodden", TOM, "ws-tom"),
    ]:
        org = Organisation(org_id, org_id.upper())
        org.add_person(Person(person_id, name, org_id, or_name=oname))
        env.knowledge_base.add_organisation(org)
        env.register_person(Communicator(person_id, node, or_name=oname))
    for a in ("upc", "gmd", "lancaster"):
        for b in ("upc", "gmd", "lancaster"):
            if a != b:
                env.knowledge_base.policies.declare(a, b, {"*"})
    return world, env, mtas, uas


class TestDirectoryIntegration:
    def test_knowledge_base_findable_through_directory(self, stack):
        world, env, mtas, uas = stack
        capsule = Capsule(world.network, "dsa-node")
        factory = BindingFactory(world.network)
        factory.register_capsule(capsule)
        dsa = DirectoryServiceAgent("dsa-eu")
        ref = dsa.deploy(capsule)
        env.knowledge_base.publish_to_directory(dsa.dit, country="EU")
        dua = DirectoryUserAgent(factory, "ws-wolf", ref)
        hits = dua.search(world, where="(&(objectClass=person)(cn=Ana*))")
        assert len(hits) == 1
        # The directory carries the person's O/R name: white pages for MHS.
        mail = hits[0].first("mail")
        resolved = or_name(mail)
        uas["wolf"].send([resolved], "found you", "via the directory")
        world.run()
        assert uas["ana"].list_inbox()[0]["subject"] == "found you"


class TestGroupCooperation:
    def test_activity_group_mail_via_distribution_list(self, stack):
        world, env, mtas, uas = stack
        mtas["upc"].create_distribution_list(MOCCA, [ANA, WOLF, TOM])
        uas["ana"].send([MOCCA], "kickoff", "agenda attached")
        world.run()
        # Every member including remote ones got it.
        assert len(uas["wolf"].list_inbox()) == 1
        assert len(uas["tom"].list_inbox()) == 1
        assert len(uas["ana"].list_inbox()) == 1

    def test_session_spanning_three_apps_and_orgs(self, stack):
        world, env, mtas, uas = stack
        conferencing = ConferencingSystem()
        messages = MessageSystem()
        workflow = WorkflowSystem()
        for app, org in [(conferencing, "upc"), (messages, "gmd"), (workflow, "lancaster")]:
            app.attach(env, exporter_org=org)
        env.create_activity("standards-reply", "reply to ODP draft")
        session = CooperationSession(env, "standards-reply")
        session.join("ana", "conferencing")
        session.join("wolf", "message-system")
        session.join("tom", "workflow")
        outcomes = session.broadcast(
            "ana", {"topic": "draft", "entry": "please review section 6",
                    "conference": "odp", "author": "ana"},
        )
        assert all(o.delivered for o in outcomes)
        assert messages.folder("wolf")[0].subject == "draft"
        # Workflow gets it as a structured form document in tom's inbox.
        assert workflow.inbox("tom")[0].document["form_name"] == "draft"

    def test_editor_snapshot_flows_to_conference(self, stack):
        world, env, mtas, uas = stack
        editor = SharedEditor(world)
        conferencing = ConferencingSystem()
        editor.attach(env, exporter_org="upc")
        conferencing.attach(env, exporter_org="gmd")
        editor.open_document("ana", "ws-ana")
        editor.open_document("wolf", "ws-wolf")
        editor.insert("ana", 0, "Position: ODP will help")
        world.run()
        assert editor.converged()
        outcome = env.exchange(
            "ana", "wolf", "shared-editor", "conferencing",
            editor.snapshot("ana", "position paper"),
        )
        assert outcome.delivered
        entries = conferencing.news_for("imported", "wolf")
        assert entries[0].text == "Position: ODP will help"


class TestFailureResilience:
    def test_group_mail_survives_mta_outage(self, stack):
        world, env, mtas, uas = stack
        mtas["upc"].create_distribution_list(MOCCA, [WOLF, TOM])
        world.failures.crash_at("mta-gmd", at=world.now + 0.01, duration=2.0)
        uas["ana"].send([MOCCA], "resilient", "body")
        world.run()
        assert len(uas["wolf"].list_inbox()) == 1
        assert len(uas["tom"].list_inbox()) == 1

    def test_partition_heals_and_mail_flows(self, stack):
        world, env, mtas, uas = stack
        world.failures.partition_at(
            [["mta-upc", "ws-ana", "dsa-node"], ["mta-gmd", "ws-wolf", "mta-lancs", "ws-tom"]],
            at=world.now + 0.01, duration=3.0,
        )
        uas["ana"].send([WOLF], "through the partition", "body")
        world.run()
        assert len(uas["wolf"].list_inbox()) == 1

    def test_exchange_unaffected_by_remote_substrate_failure(self, stack):
        """Environment exchanges between co-registered apps are local to
        the environment node; an unrelated MTA crash does not break them."""
        world, env, mtas, uas = stack
        conferencing = ConferencingSystem()
        messages = MessageSystem()
        conferencing.attach(env, exporter_org="upc")
        messages.attach(env, exporter_org="gmd")
        world.network.node("mta-lancs").crash()
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e", "conference": "c", "author": "ana"},
        )
        assert outcome.delivered


class TestWorkflowAcrossOrgs:
    def test_form_exchange_starts_remote_case(self, stack):
        world, env, mtas, uas = stack
        messages = MessageSystem()
        workflow = WorkflowSystem()
        messages.attach(env, exporter_org="upc")
        workflow.attach(env, exporter_org="gmd")
        workflow.define_procedure(Procedure("expense", [
            ProcedureStep("submit", "employee"),
            ProcedureStep("approve", "manager"),
        ]))
        workflow.grant_role("wolf", "manager")
        # Ana's memo (title == procedure name) becomes a running case.
        outcome = env.exchange(
            "ana", "wolf", "message-system", "workflow",
            {"subject": "expense", "text": "", "template": "plain",
             "fields": {"amount": 120}},
        )
        assert outcome.delivered
        cases = [c for c in workflow.inbox("wolf")]
        assert cases  # delivered to inbox
        # The on_receive hook started a case for the known procedure.
        started = workflow.work_list("wolf")
        assert started == []  # first step is 'employee', not wolf's role
