"""Tests for the CSCW environment facade and the exchange primitive."""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.environment.transparency import TransparencyProfile
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World
from repro.util.events import EventRecorder


@pytest.fixture
def env(world) -> CSCWEnvironment:
    env = CSCWEnvironment(world)
    upc = Organisation("upc", "UPC")
    upc.add_person(Person("ana", "Ana Lopez", "upc"))
    gmd = Organisation("gmd", "GMD")
    gmd.add_person(Person("wolf", "Wolf Prinz", "gmd"))
    env.knowledge_base.add_organisation(upc)
    env.knowledge_base.add_organisation(gmd)
    env.knowledge_base.policies.declare(
        "upc", "gmd", {INTERACTION_MESSAGE, "service-import"}, symmetric=True
    )
    world.add_site("bcn", ["ws-ana"])
    world.add_site("bonn", ["ws-wolf"])
    env.register_person(Communicator("ana", "ws-ana"))
    env.register_person(Communicator("wolf", "ws-wolf"))
    return env


@pytest.fixture
def two_apps(env):
    conferencing = ConferencingSystem()
    messages = MessageSystem()
    conferencing.attach(env, exporter_org="upc")
    messages.attach(env, exporter_org="gmd")
    return conferencing, messages


class TestExchange:
    def test_full_transparency_cross_org_cross_format(self, env, two_apps):
        conferencing, messages = two_apps
        outcome = env.exchange(
            sender="ana",
            receiver="wolf",
            sender_app="conferencing",
            receiver_app="message-system",
            document={"topic": "ODP", "entry": "will it help?", "author": "ana"},
        )
        assert outcome.delivered
        assert outcome.translated
        assert set(outcome.handled) >= {"organisation", "view"}
        memos = messages.folder("wolf")
        assert memos[0].subject == "ODP"
        assert memos[0].text == "will it help?"

    def test_same_format_no_translation(self, env, two_apps):
        conferencing, messages = two_apps
        second = ConferencingSystem(instance_name="conf2")
        # Same converter name would collide in interchange; register app
        # without converter re-registration by reusing descriptor format.
        from repro.environment.registry import AppDescriptor

        env.applications.register(
            AppDescriptor(name="conf2", quadrants=conferencing.quadrants,
                          converter=None),
            second.deliver,
        )
        # conf2 has no converter => format '' differs from 'conference';
        # instead test same-app exchange.
        outcome = env.exchange(
            sender="ana",
            receiver="wolf",
            sender_app="conferencing",
            receiver_app="conferencing",
            document={"topic": "t", "entry": "e", "conference": "general", "author": "ana"},
        )
        assert outcome.delivered
        assert not outcome.translated

    def test_org_transparency_off_blocks_cross_org(self, env, two_apps):
        profile = TransparencyProfile.all_on().without("organisation")
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, profile=profile,
        )
        assert not outcome.delivered
        assert "organisation transparency off" in outcome.reason

    def test_incompatible_policy_blocks_even_with_transparency(self, env, two_apps):
        env.knowledge_base.organisation("gmd").add_person(
            Person("heinz", "Heinz Berg", "gmd")
        )
        # No policy between gmd and an undeclared org is irrelevant here;
        # instead remove compatibility by using an interaction the policy
        # does not cover.
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, interaction="realtime",
        )
        assert not outcome.delivered
        assert "no compatible policy" in outcome.reason

    def test_view_transparency_off_blocks_format_mismatch(self, env, two_apps):
        profile = TransparencyProfile.all_on().without("view")
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, profile=profile,
        )
        assert not outcome.delivered
        assert "format mismatch" in outcome.reason

    def test_time_transparency_falls_back_to_async(self, env, two_apps):
        env.communicators.set_presence("wolf", False)
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"},
        )
        assert outcome.delivered
        assert outcome.mode == "asynchronous"
        assert "time" in outcome.handled

    def test_time_transparency_off_fails_when_absent(self, env, two_apps):
        env.communicators.set_presence("wolf", False)
        profile = TransparencyProfile.all_on().without("time")
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, profile=profile,
        )
        assert not outcome.delivered
        assert "time transparency off" in outcome.reason

    def test_activity_scoping_isolates_events(self, env, two_apps):
        env.create_activity("act1", "one", members={"ana": "chair", "wolf": "participant"})
        env.create_activity("act2", "two", members={"ana": "chair", "wolf": "participant"})
        act1_events = EventRecorder()
        act2_events = EventRecorder()
        env.bus.subscribe("activity/act1", act1_events)
        env.bus.subscribe("activity/act2", act2_events)
        env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, activity_id="act1",
        )
        assert len(act1_events.events) == 1
        assert act2_events.events == []

    def test_activity_transparency_off_leaks_globally(self, env, two_apps):
        env.create_activity("act1", "one", members={"ana": "chair", "wolf": "m"})
        global_events = EventRecorder()
        scoped_events = EventRecorder()
        env.bus.subscribe("exchange", global_events)
        env.bus.subscribe("activity/act1", scoped_events)
        profile = TransparencyProfile.all_on().without("activity")
        env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, activity_id="act1", profile=profile,
        )
        assert len(global_events.events) == 1
        assert scoped_events.events == []

    def test_nonmember_cannot_exchange_in_activity(self, env, two_apps):
        env.create_activity("act1", "one", members={"ana": "chair"})
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, activity_id="act1",
        )
        assert not outcome.delivered
        assert "not a member" in outcome.reason

    def test_view_rendering_applied(self, env, two_apps):
        conferencing, messages = two_apps
        env.views.set_view("wolf", language="de", font="large")
        env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"},
        )
        delivery = messages.inbox("wolf")[0]
        assert delivery.document["_view"] == {"language": "de", "font": "large"}

    def test_exchange_counters_and_log(self, env, two_apps):
        env.exchange("ana", "wolf", "conferencing", "message-system",
                     {"topic": "t", "entry": "e"})
        profile = TransparencyProfile.all_off()
        env.exchange("ana", "wolf", "conferencing", "message-system",
                     {"topic": "t", "entry": "e"}, profile=profile)
        assert env.exchanges_attempted == 2
        assert env.exchanges_failed == 1
        assert len(env.communication_log.all()) == 1

    def test_trading_policy_installed(self, env, two_apps):
        """Section 6.1: the org KB dictates the trader's policy."""
        from repro.odp.objects import InterfaceRef
        from repro.odp.trader import ImportContext
        from repro.util.errors import NoOfferError

        env.trader.export("archiving", InterfaceRef("n", "o", "i"), exporter="mars")
        with pytest.raises(NoOfferError):
            env.trader.import_one(
                "archiving", context=ImportContext(organisation="upc")
            )

    def test_interop_coverage_full_with_converters(self, env, two_apps):
        assert env.interop_coverage() == 1.0
        assert env.integration_cost() == 2

    def test_outcome_reason_code_uniform_for_success_and_failure(self, env, two_apps):
        ok = env.exchange("ana", "wolf", "conferencing", "message-system",
                          {"topic": "t", "entry": "e"})
        assert ok.reason_code == "delivered"
        assert ok.reason  # populated on success too, not only on failure
        bad = env.exchange("ana", "wolf", "conferencing", "message-system",
                           {"topic": "t", "entry": "e"},
                           profile=TransparencyProfile.all_off())
        assert bad.reason_code == "organisation-opaque"
        assert bad.reason

    def test_environment_stamps_event_time(self, env, two_apps):
        """Events published through the environment carry simulated time."""
        recorder = EventRecorder()
        env.bus.subscribe("exchange", recorder)
        env.world.engine.schedule(5.0, lambda: env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}))
        env.world.run()
        assert recorder.events[0].time == 5.0


class TestEnvironmentBuilder:
    """The fluent construction path and its observability knobs."""

    def _populate(self, env):
        upc = Organisation("upc", "UPC")
        upc.add_person(Person("ana", "Ana Lopez", "upc"))
        env.knowledge_base.add_organisation(upc)
        env.world.add_site("bcn", ["ws-ana"])
        env.register_person(Communicator("ana", "ws-ana"))
        ConferencingSystem().attach(env, exporter_org="upc")

    def test_builder_round_trip_matches_legacy_constructor(self, world):
        built = CSCWEnvironment.builder().with_world(world).with_name("mocca").build()
        legacy = CSCWEnvironment(World(seed=42), "mocca")
        assert type(built) is CSCWEnvironment
        assert built.name == legacy.name
        assert built.trader.name == legacy.trader.name
        # both paths end with the same wiring surface
        for attribute in ("bus", "knowledge_base", "trader", "applications",
                          "scheduler", "metrics", "tracer", "views"):
            assert hasattr(built, attribute) and hasattr(legacy, attribute)
        assert built.metrics.enabled is False
        assert built.tracer.enabled is False

    def test_built_environment_exchanges_end_to_end(self, world):
        env = CSCWEnvironment.builder().with_world(world).build()
        self._populate(env)
        outcome = env.exchange("ana", "ana", "conferencing", "conferencing",
                               {"topic": "t", "entry": "e", "author": "ana"})
        assert outcome.delivered

    def test_with_metrics_instruments_owned_layers(self, world):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        env = (CSCWEnvironment.builder()
               .with_world(world)
               .with_metrics(registry)
               .build())
        self._populate(env)
        env.exchange("ana", "ana", "conferencing", "conferencing",
                     {"topic": "t", "entry": "e", "author": "ana"})
        from repro.odp.objects import InterfaceRef

        env.trader.export("printing", InterfaceRef("n", "o", "i"))
        env.trader.import_one("printing")
        world.engine.schedule(1.0, lambda: None)
        world.run()
        counters = registry.snapshot()["counters"]
        assert counters["env.exchange.reason.delivered"] == 1
        assert counters["trader.exports"] == 1
        assert counters["trader.imports"] == 1
        assert counters["sim.engine.fired"] >= 1
        assert counters["events.published"] >= 1
        assert env.describe()["metrics"]["counters"] == counters

    def test_with_tracer_puts_trace_id_on_outcomes(self, world):
        from repro.obs import Tracer

        tracer = Tracer()
        env = (CSCWEnvironment.builder()
               .with_world(world)
               .with_tracer(tracer)
               .build())
        self._populate(env)
        outcome = env.exchange("ana", "ana", "conferencing", "conferencing",
                               {"topic": "t", "entry": "e", "author": "ana"})
        assert outcome.trace_id == "trace-0001"
        [span] = tracer.finished()
        assert span.name == "env.exchange"
        assert span.tags["delivered"] is True
        # failure path carries the same trace linkage
        failure = env.exchange("ana", "ghost", "conferencing", "conferencing",
                               {"topic": "t", "entry": "e"},
                               profile=TransparencyProfile.all_off())
        assert failure.trace_id == "trace-0002"
        assert tracer.finished()[-1].tags["reason_code"] == failure.reason_code

    def test_recorded_exchange_spans_carry_identity_tags(self, world):
        from repro.obs import Tracer

        tracer = Tracer()
        env = (CSCWEnvironment.builder()
               .with_world(world)
               .with_name("mocca")
               .with_tracer(tracer)
               .with_sharding(2)
               .build())
        self._populate(env)
        env.exchange("ana", "ana", "conferencing", "conferencing",
                     {"topic": "t", "entry": "e", "author": "ana"})
        [span] = tracer.finished()
        assert span.tags["domain"] == "mocca"
        assert span.tags["sender"] == "ana"
        assert span.tags["receiver"] == "ana"
        assert span.tags["sender_app"] == "conferencing"
        assert span.tags["receiver_app"] == "conferencing"
        assert span.tags["shard"]  # resolved through the directory ring

    def test_failed_unsampled_exchange_keeps_identity_context(self, world):
        # p=0.0 drops every healthy trace; the identity tags exist only
        # where a reader can see them: on retained (here: failed) spans
        from repro.obs import Tracer

        tracer = Tracer()
        env = (CSCWEnvironment.builder()
               .with_world(world)
               .with_name("mocca")
               .with_tracer(tracer)
               .with_trace_sampling(0.0, seed=1)
               .build())
        self._populate(env)
        env.exchange("ana", "ana", "conferencing", "conferencing",
                     {"topic": "t", "entry": "e", "author": "ana"})
        assert tracer.finished() == []  # healthy trace sampled out
        failure = env.exchange("ana", "ghost", "conferencing", "conferencing",
                               {"topic": "t", "entry": "e"},
                               profile=TransparencyProfile.all_off())
        [span] = tracer.finished()  # tail retention rescued the failure
        assert span.tags["reason_code"] == failure.reason_code
        assert span.tags["domain"] == "mocca"
        assert span.tags["receiver"] == "ghost"

    def test_with_trader_policy_installs_hook(self, world):
        from repro.util.errors import NoOfferError

        env = (CSCWEnvironment.builder()
               .with_world(world)
               .with_trader_policy(lambda offer, context: False)
               .build())
        from repro.odp.objects import InterfaceRef

        env.trader.export("printing", InterfaceRef("n", "o", "i"))
        with pytest.raises(NoOfferError):
            env.trader.import_one("printing")

    def test_builder_requires_world(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CSCWEnvironment.builder().build()

    def test_legacy_constructor_accepts_observability_kwargs(self, world):
        from repro.obs import MetricsRegistry, Tracer

        registry = MetricsRegistry()
        env = CSCWEnvironment(world, metrics=registry, tracer=Tracer())
        assert env.metrics is registry
        assert env.tracer.enabled is True
