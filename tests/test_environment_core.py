"""Tests for the CSCW environment facade and the exchange primitive."""

from __future__ import annotations

import pytest

from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.environment.transparency import TransparencyProfile
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.sim.world import World
from repro.util.events import EventRecorder


@pytest.fixture
def env(world) -> CSCWEnvironment:
    env = CSCWEnvironment(world)
    upc = Organisation("upc", "UPC")
    upc.add_person(Person("ana", "Ana Lopez", "upc"))
    gmd = Organisation("gmd", "GMD")
    gmd.add_person(Person("wolf", "Wolf Prinz", "gmd"))
    env.knowledge_base.add_organisation(upc)
    env.knowledge_base.add_organisation(gmd)
    env.knowledge_base.policies.declare(
        "upc", "gmd", {INTERACTION_MESSAGE, "service-import"}, symmetric=True
    )
    world.add_site("bcn", ["ws-ana"])
    world.add_site("bonn", ["ws-wolf"])
    env.register_person(Communicator("ana", "ws-ana"))
    env.register_person(Communicator("wolf", "ws-wolf"))
    return env


@pytest.fixture
def two_apps(env):
    conferencing = ConferencingSystem()
    messages = MessageSystem()
    conferencing.attach(env, exporter_org="upc")
    messages.attach(env, exporter_org="gmd")
    return conferencing, messages


class TestExchange:
    def test_full_transparency_cross_org_cross_format(self, env, two_apps):
        conferencing, messages = two_apps
        outcome = env.exchange(
            sender="ana",
            receiver="wolf",
            sender_app="conferencing",
            receiver_app="message-system",
            document={"topic": "ODP", "entry": "will it help?", "author": "ana"},
        )
        assert outcome.delivered
        assert outcome.translated
        assert set(outcome.handled) >= {"organisation", "view"}
        memos = messages.folder("wolf")
        assert memos[0].subject == "ODP"
        assert memos[0].text == "will it help?"

    def test_same_format_no_translation(self, env, two_apps):
        conferencing, messages = two_apps
        second = ConferencingSystem(instance_name="conf2")
        # Same converter name would collide in interchange; register app
        # without converter re-registration by reusing descriptor format.
        from repro.environment.registry import AppDescriptor

        env.applications.register(
            AppDescriptor(name="conf2", quadrants=conferencing.quadrants,
                          converter=None),
            second.deliver,
        )
        # conf2 has no converter => format '' differs from 'conference';
        # instead test same-app exchange.
        outcome = env.exchange(
            sender="ana",
            receiver="wolf",
            sender_app="conferencing",
            receiver_app="conferencing",
            document={"topic": "t", "entry": "e", "conference": "general", "author": "ana"},
        )
        assert outcome.delivered
        assert not outcome.translated

    def test_org_transparency_off_blocks_cross_org(self, env, two_apps):
        profile = TransparencyProfile.all_on().without("organisation")
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, profile=profile,
        )
        assert not outcome.delivered
        assert "organisation transparency off" in outcome.reason

    def test_incompatible_policy_blocks_even_with_transparency(self, env, two_apps):
        env.knowledge_base.organisation("gmd").add_person(
            Person("heinz", "Heinz Berg", "gmd")
        )
        # No policy between gmd and an undeclared org is irrelevant here;
        # instead remove compatibility by using an interaction the policy
        # does not cover.
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, interaction="realtime",
        )
        assert not outcome.delivered
        assert "no compatible policy" in outcome.reason

    def test_view_transparency_off_blocks_format_mismatch(self, env, two_apps):
        profile = TransparencyProfile.all_on().without("view")
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, profile=profile,
        )
        assert not outcome.delivered
        assert "format mismatch" in outcome.reason

    def test_time_transparency_falls_back_to_async(self, env, two_apps):
        env.communicators.set_presence("wolf", False)
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"},
        )
        assert outcome.delivered
        assert outcome.mode == "asynchronous"
        assert "time" in outcome.handled

    def test_time_transparency_off_fails_when_absent(self, env, two_apps):
        env.communicators.set_presence("wolf", False)
        profile = TransparencyProfile.all_on().without("time")
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, profile=profile,
        )
        assert not outcome.delivered
        assert "time transparency off" in outcome.reason

    def test_activity_scoping_isolates_events(self, env, two_apps):
        env.create_activity("act1", "one", members={"ana": "chair", "wolf": "participant"})
        env.create_activity("act2", "two", members={"ana": "chair", "wolf": "participant"})
        act1_events = EventRecorder()
        act2_events = EventRecorder()
        env.bus.subscribe("activity/act1", act1_events)
        env.bus.subscribe("activity/act2", act2_events)
        env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, activity_id="act1",
        )
        assert len(act1_events.events) == 1
        assert act2_events.events == []

    def test_activity_transparency_off_leaks_globally(self, env, two_apps):
        env.create_activity("act1", "one", members={"ana": "chair", "wolf": "m"})
        global_events = EventRecorder()
        scoped_events = EventRecorder()
        env.bus.subscribe("exchange", global_events)
        env.bus.subscribe("activity/act1", scoped_events)
        profile = TransparencyProfile.all_on().without("activity")
        env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, activity_id="act1", profile=profile,
        )
        assert len(global_events.events) == 1
        assert scoped_events.events == []

    def test_nonmember_cannot_exchange_in_activity(self, env, two_apps):
        env.create_activity("act1", "one", members={"ana": "chair"})
        outcome = env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"}, activity_id="act1",
        )
        assert not outcome.delivered
        assert "not a member" in outcome.reason

    def test_view_rendering_applied(self, env, two_apps):
        conferencing, messages = two_apps
        env.views.set_view("wolf", language="de", font="large")
        env.exchange(
            "ana", "wolf", "conferencing", "message-system",
            {"topic": "t", "entry": "e"},
        )
        delivery = messages.inbox("wolf")[0]
        assert delivery.document["_view"] == {"language": "de", "font": "large"}

    def test_exchange_counters_and_log(self, env, two_apps):
        env.exchange("ana", "wolf", "conferencing", "message-system",
                     {"topic": "t", "entry": "e"})
        profile = TransparencyProfile.all_off()
        env.exchange("ana", "wolf", "conferencing", "message-system",
                     {"topic": "t", "entry": "e"}, profile=profile)
        assert env.exchanges_attempted == 2
        assert env.exchanges_failed == 1
        assert len(env.communication_log.all()) == 1

    def test_trading_policy_installed(self, env, two_apps):
        """Section 6.1: the org KB dictates the trader's policy."""
        from repro.odp.objects import InterfaceRef
        from repro.odp.trader import ImportContext
        from repro.util.errors import NoOfferError

        env.trader.export("archiving", InterfaceRef("n", "o", "i"), exporter="mars")
        with pytest.raises(NoOfferError):
            env.trader.import_one(
                "archiving", context=ImportContext(organisation="upc")
            )

    def test_interop_coverage_full_with_converters(self, env, two_apps):
        assert env.interop_coverage() == 1.0
        assert env.integration_cost() == 2
