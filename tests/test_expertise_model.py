"""Tests for expertise profiles and matching."""

from __future__ import annotations

import pytest

from repro.expertise.matching import (
    SkillRequirement,
    find_expert,
    rank_candidates,
    score_profile,
    staff_activity,
)
from repro.expertise.model import Capability, ExpertiseRegistry
from repro.util.errors import ConfigurationError, ModelError


@pytest.fixture
def registry() -> ExpertiseRegistry:
    registry = ExpertiseRegistry()
    ana = registry.profile("ana")
    ana.add_capability("distributed-systems", 5)
    ana.add_capability("writing", 3)
    joan = registry.profile("joan")
    joan.add_capability("distributed-systems", 3)
    joan.add_capability("writing", 4)
    joan.add_capability("drawing", 2)
    marta = registry.profile("marta")
    marta.add_capability("writing", 5)
    return registry


class TestProfile:
    def test_capability_levels(self, registry):
        assert registry.get("ana").level_of("distributed-systems") == 5
        assert registry.get("ana").level_of("unknown") == 0

    def test_add_capability_never_downgrades(self, registry):
        ana = registry.get("ana")
        ana.add_capability("writing", 1)
        assert ana.level_of("writing") == 3
        ana.set_capability("writing", 1)
        assert ana.level_of("writing") == 1

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            Capability("x", 9)

    def test_responsibilities(self, registry):
        ana = registry.get("ana")
        ana.impose("review budget", imposed_by="upc", scope="tunnel")
        assert ana.is_responsible_for("review budget")
        assert ana.workload() == 1
        assert ana.discharge("review budget", scope="tunnel")
        assert not ana.discharge("review budget", scope="tunnel")
        assert ana.workload() == 0

    def test_profile_created_on_demand(self):
        registry = ExpertiseRegistry()
        assert not registry.known("new")
        registry.profile("new")
        assert registry.known("new")

    def test_get_unknown_raises(self):
        from repro.util.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            ExpertiseRegistry().get("ghost")


class TestMatching:
    def test_score_profile(self, registry):
        requirements = [SkillRequirement("distributed-systems", 3)]
        score = score_profile(registry.get("ana"), requirements)
        assert score.qualified
        assert score.score == pytest.approx(5 / 3)

    def test_unmet_counted(self, registry):
        requirements = [SkillRequirement("drawing", 3)]
        score = score_profile(registry.get("ana"), requirements)
        assert not score.qualified
        assert score.unmet == 1

    def test_rank_candidates(self, registry):
        requirements = [
            SkillRequirement("distributed-systems", 3),
            SkillRequirement("writing", 3),
        ]
        ranking = rank_candidates(registry, requirements)
        assert ranking[0].person_id == "ana"

    def test_qualified_only_filter(self, registry):
        requirements = [SkillRequirement("drawing", 1)]
        ranking = rank_candidates(registry, requirements, qualified_only=True)
        assert [r.person_id for r in ranking] == ["joan"]

    def test_empty_requirements_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            score_profile(registry.get("ana"), [])

    def test_find_expert(self, registry):
        assert find_expert(registry, "writing").person_id == "marta"

    def test_find_expert_nobody_qualifies(self, registry):
        with pytest.raises(ModelError):
            find_expert(registry, "cooking", 1)

    def test_find_expert_prefers_lower_workload_on_tie(self, registry):
        registry.profile("marta").impose("admin", "upc")
        registry.profile("busy").add_capability("writing", 5)
        expert = find_expert(registry, "writing", 5)
        assert expert.person_id == "busy"


class TestStaffing:
    def test_staff_activity_covers_all(self, registry):
        requirements = [
            SkillRequirement("distributed-systems", 4),
            SkillRequirement("writing", 4),
            SkillRequirement("drawing", 2),
        ]
        assignments = staff_activity(registry, requirements)
        assert assignments["distributed-systems"] == "ana"
        assert assignments["drawing"] == "joan"
        assert assignments["writing"] in ("marta", "joan")

    def test_staffing_balances_load(self, registry):
        requirements = [
            SkillRequirement("writing", 3),
            SkillRequirement("writing", 3),
            SkillRequirement("distributed-systems", 3),
        ]
        # Requirements dict is keyed by skill so duplicate skills collapse;
        # verify via assignment spread instead.
        assignments = staff_activity(registry, requirements, max_per_person=1)
        assert len(set(assignments.values())) >= 2

    def test_unstaffable_raises(self, registry):
        with pytest.raises(ModelError):
            staff_activity(registry, [SkillRequirement("cooking", 1)])
