"""Tests for the simulated network."""

from __future__ import annotations

import pytest

from repro.sim.network import LAN_LINK, WAN_LINK, LinkSpec, Network
from repro.sim.rng import SeededRng
from repro.sim.world import World
from repro.util.errors import ConfigurationError, NetworkError


def _collect(node, port="p"):
    received = []
    node.bind(port, lambda packet: received.append(packet))
    return received


class TestTopology:
    def test_duplicate_node_rejected(self, world):
        world.network.add_node("a")
        with pytest.raises(ConfigurationError):
            world.network.add_node("a")

    def test_unknown_node_lookup_raises(self, world):
        with pytest.raises(NetworkError):
            world.network.node("ghost")

    def test_same_site_defaults_to_lan(self, world):
        world.add_site("hq", ["a", "b"])
        assert world.network.link_between("a", "b") is LAN_LINK

    def test_cross_site_defaults_to_wan(self, world):
        world.add_site("hq", ["a"])
        world.add_site("remote", ["b"])
        assert world.network.link_between("a", "b") is WAN_LINK

    def test_explicit_link_overrides_default(self, world):
        world.add_site("hq", ["a", "b"])
        custom = LinkSpec(latency_s=9.0)
        world.network.set_link("a", "b", custom)
        assert world.network.link_between("a", "b") is custom
        assert world.network.link_between("b", "a") is custom


class TestDelivery:
    def test_packet_arrives_with_latency(self, world):
        world.add_site("hq", ["a", "b"])
        received = _collect(world.network.node("b"))
        world.network.send("a", "b", "p", "hello", size_bytes=0)
        world.run()
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert received[0].delivered_at == pytest.approx(LAN_LINK.latency_s)

    def test_larger_packets_take_longer(self, world):
        world.add_site("hq", ["a", "b"])
        received = _collect(world.network.node("b"))
        world.network.send("a", "b", "p", "big", size_bytes=10_000_000)
        world.run()
        assert received[0].delivered_at > LAN_LINK.latency_s + 0.5

    def test_unbound_port_counts_drop(self, world):
        world.add_site("hq", ["a", "b"])
        world.network.send("a", "b", "nobody-home", "x")
        world.run()
        assert world.metrics.counter("net.dropped.no_handler") == 1

    def test_crashed_destination_drops(self, world):
        world.add_site("hq", ["a", "b"])
        _collect(world.network.node("b"))
        world.network.node("b").crash()
        world.network.send("a", "b", "p", "x")
        world.run()
        assert world.metrics.counter("net.dropped.destination_down") == 1
        assert world.metrics.counter("net.delivered") == 0

    def test_crashed_source_drops_immediately(self, world):
        world.add_site("hq", ["a", "b"])
        world.network.node("a").crash()
        world.network.send("a", "b", "p", "x")
        world.run()
        assert world.metrics.counter("net.dropped.source_down") == 1

    def test_recovered_node_receives_again(self, world):
        world.add_site("hq", ["a", "b"])
        received = _collect(world.network.node("b"))
        world.network.node("b").crash()
        world.network.node("b").recover()
        world.network.send("a", "b", "p", "x")
        world.run()
        assert len(received) == 1

    def test_lossy_link_drops_some(self, world):
        world.add_site("hq", ["a", "b"])
        world.network.set_link("a", "b", LinkSpec(loss=0.5))
        _collect(world.network.node("b"))
        for _ in range(200):
            world.network.send("a", "b", "p", "x")
        world.run()
        delivered = world.metrics.counter("net.delivered")
        assert 40 < delivered < 160

    def test_loss_is_reproducible_across_seeds(self):
        outcomes = []
        for _ in range(2):
            world = World(seed=7)
            world.add_site("hq", ["a", "b"])
            world.network.set_link("a", "b", LinkSpec(loss=0.3))
            world.network.node("b").bind("p", lambda packet: None)
            for _ in range(50):
                world.network.send("a", "b", "p", "x")
            world.run()
            outcomes.append(world.metrics.counter("net.delivered"))
        assert outcomes[0] == outcomes[1]

    def test_broadcast_reaches_all_others(self, world):
        world.add_site("hq", ["a", "b", "c"])
        rb = _collect(world.network.node("b"))
        rc = _collect(world.network.node("c"))
        count = world.network.broadcast("a", "p", "hi")
        world.run()
        assert count == 2
        assert len(rb) == 1 and len(rc) == 1


class TestPartitions:
    def test_partition_blocks_cross_group(self, world):
        world.add_site("hq", ["a", "b"])
        _collect(world.network.node("b"))
        world.network.partition([["a"], ["b"]])
        world.network.send("a", "b", "p", "x")
        world.run()
        assert world.metrics.counter("net.dropped.partition") == 1

    def test_partition_allows_same_group(self, world):
        world.add_site("hq", ["a", "b", "c"])
        received = _collect(world.network.node("b"))
        world.network.partition([["a", "b"], ["c"]])
        world.network.send("a", "b", "p", "x")
        world.run()
        assert len(received) == 1

    def test_heal_restores_connectivity(self, world):
        world.add_site("hq", ["a", "b"])
        received = _collect(world.network.node("b"))
        world.network.partition([["a"], ["b"]])
        world.network.heal()
        world.network.send("a", "b", "p", "x")
        world.run()
        assert len(received) == 1

    def test_packet_in_flight_when_partition_forms_is_lost(self, world):
        """A packet crossing the cut when the partition forms is dropped."""
        world.add_site("hq", ["a"])
        world.add_site("far", ["b"])
        _collect(world.network.node("b"))
        world.network.send("a", "b", "p", "x")  # WAN: ~80ms
        world.engine.schedule(0.001, lambda: world.network.partition([["a"], ["b"]]))
        world.run()
        assert world.metrics.counter("net.dropped.partition") == 1


class TestNodePorts:
    def test_double_bind_rejected(self, world):
        node = world.network.add_node("n")
        node.bind("p", lambda packet: None)
        with pytest.raises(ConfigurationError):
            node.bind("p", lambda packet: None)

    def test_unbind_then_rebind(self, world):
        node = world.network.add_node("n")
        node.bind("p", lambda packet: None)
        node.unbind("p")
        node.bind("p", lambda packet: None)
        assert node.bound_ports() == ["p"]


class TestLinkSpec:
    def test_transmission_delay_includes_bandwidth(self):
        spec = LinkSpec(latency_s=1.0, bandwidth_bps=100.0)
        assert spec.transmission_delay(200, SeededRng(0)) == pytest.approx(3.0)

    def test_jitter_bounded(self):
        spec = LinkSpec(latency_s=1.0, bandwidth_bps=1e9, jitter_s=0.5)
        rng = SeededRng(1)
        for _ in range(50):
            delay = spec.transmission_delay(0, rng)
            assert 1.0 <= delay <= 1.5
