"""Tests for Lamport and vector clocks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.clock import LamportClock, Ordering, VectorClock, VectorTimestamp


class TestLamportClock:
    def test_tick_advances(self):
        clock = LamportClock("p1")
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_observe_jumps_past_remote(self):
        clock = LamportClock("p1")
        assert clock.observe(10) == 11

    def test_observe_smaller_remote_still_ticks(self):
        clock = LamportClock("p1")
        clock.tick()
        clock.tick()
        assert clock.observe(1) == 3

    def test_observe_negative_rejected(self):
        with pytest.raises(ValueError):
            LamportClock("p1").observe(-1)

    def test_stamp_totally_ordered(self):
        a = LamportClock("a")
        b = LamportClock("b")
        stamp_a = a.stamp()
        stamp_b = b.stamp()
        assert stamp_a != stamp_b
        assert sorted([stamp_b, stamp_a]) == [stamp_a, stamp_b]


class TestVectorTimestamp:
    def test_of_drops_zero_entries(self):
        ts = VectorTimestamp.of({"a": 0, "b": 2})
        assert ts.as_dict() == {"b": 2}

    def test_get_defaults_to_zero(self):
        assert VectorTimestamp.of({"a": 1}).get("z") == 0

    def test_equal(self):
        a = VectorTimestamp.of({"p": 1})
        b = VectorTimestamp.of({"p": 1})
        assert a.compare(b) is Ordering.EQUAL

    def test_before_and_after(self):
        a = VectorTimestamp.of({"p": 1})
        b = VectorTimestamp.of({"p": 2})
        assert a.compare(b) is Ordering.BEFORE
        assert b.compare(a) is Ordering.AFTER

    def test_concurrent(self):
        a = VectorTimestamp.of({"p": 1})
        b = VectorTimestamp.of({"q": 1})
        assert a.compare(b) is Ordering.CONCURRENT

    def test_merge_takes_componentwise_max(self):
        a = VectorTimestamp.of({"p": 3, "q": 1})
        b = VectorTimestamp.of({"q": 5})
        assert a.merge(b).as_dict() == {"p": 3, "q": 5}

    def test_dominates(self):
        a = VectorTimestamp.of({"p": 2, "q": 2})
        b = VectorTimestamp.of({"p": 1})
        assert a.dominates(b)
        assert not b.dominates(a)


class TestVectorClock:
    def test_tick_advances_own_component(self):
        clock = VectorClock("p")
        assert clock.tick().get("p") == 1
        assert clock.tick().get("p") == 2

    def test_observe_merges_then_ticks(self):
        clock = VectorClock("p")
        remote = VectorTimestamp.of({"q": 4})
        ts = clock.observe(remote)
        assert ts.get("q") == 4
        assert ts.get("p") == 1

    def test_message_exchange_creates_happens_before(self):
        sender = VectorClock("s")
        receiver = VectorClock("r")
        sent = sender.tick()
        received = receiver.observe(sent)
        assert sent.compare(received) is Ordering.BEFORE


@given(
    st.dictionaries(st.sampled_from("abcde"), st.integers(1, 50), max_size=5),
    st.dictionaries(st.sampled_from("abcde"), st.integers(1, 50), max_size=5),
)
def test_property_merge_dominates_both(left, right):
    a = VectorTimestamp.of(left)
    b = VectorTimestamp.of(right)
    merged = a.merge(b)
    assert merged.dominates(a)
    assert merged.dominates(b)


@given(
    st.dictionaries(st.sampled_from("abcde"), st.integers(1, 50), max_size=5),
    st.dictionaries(st.sampled_from("abcde"), st.integers(1, 50), max_size=5),
)
def test_property_compare_antisymmetric(left, right):
    a = VectorTimestamp.of(left)
    b = VectorTimestamp.of(right)
    forward = a.compare(b)
    backward = b.compare(a)
    opposite = {
        Ordering.BEFORE: Ordering.AFTER,
        Ordering.AFTER: Ordering.BEFORE,
        Ordering.EQUAL: Ordering.EQUAL,
        Ordering.CONCURRENT: Ordering.CONCURRENT,
    }
    assert backward is opposite[forward]
