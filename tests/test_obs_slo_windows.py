"""Regression: windowed SLO rings match the cumulative-deque semantics.

The original ``SLOEngine`` kept every tick's cumulative reading in a
list and popped expired entries from the front (``samples.pop(0)``).
The rewrite stores per-tick deltas in fixed ``WindowedCounter`` /
``WindowedHistogram`` rings instead.  This module pins the behavioural
contract: a reference sampler holding cumulative readings in a bounded
:class:`collections.deque` — the shape the old implementation reduces
to — must agree with ``evaluate()`` on every tick of a seeded run,
including the warm-up before the window fills.
"""

from __future__ import annotations

import math
import random
from collections import deque

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOEngine

LATENCY_BUCKETS = (0.1, 0.5, 1.0, 2.0, 5.0)
PERIOD_S = 1.0
WINDOW_S = 8.0


class ReferenceSLO:
    """Cumulative-sample reference: a deque of readings per objective.

    Keeps the last ``slots + 1`` cumulative readings; the oldest entry
    is the window baseline, exactly what the old list-of-samples code
    computed after pruning.  Memory here is O(window) by construction,
    which is what makes it a fair oracle for the ring rewrite.
    """

    def __init__(self, metrics: MetricsRegistry, window_s: float, period_s: float):
        self._metrics = metrics
        slots = max(1, int(math.ceil(window_s / period_s - 1e-9)))
        self.ratio_samples: deque = deque(maxlen=slots + 1)
        self.latency_samples: deque = deque(maxlen=slots + 1)

    def sample(self) -> None:
        self.ratio_samples.append(
            (
                self._metrics.counter("env.delivered").value,
                self._metrics.counter("env.total").value,
            )
        )
        histogram = self._metrics.histogram("env.latency")
        self.latency_samples.append(list(histogram.bucket_counts))

    def ratio_status(self, target: float) -> dict:
        good1 = self._metrics.counter("env.delivered").value
        total1 = self._metrics.counter("env.total").value
        good0, total0 = self.ratio_samples[0] if self.ratio_samples else (0, 0)
        good, total = good1 - good0, total1 - total0
        ratio = good / total if total else 1.0
        return {"value": round(ratio, 6), "met": ratio >= target, "observations": total}

    def latency_status(self, quantile: float, threshold_s: float) -> dict:
        histogram = self._metrics.histogram("env.latency")
        counts1 = list(histogram.bucket_counts)
        counts0 = (
            self.latency_samples[0] if self.latency_samples else [0] * len(counts1)
        )
        deltas = [c1 - c0 for c1, c0 in zip(counts1, counts0)]
        total = sum(deltas)
        if total <= 0:
            value = 0.0
        else:
            rank, cumulative, value = quantile * total, 0, None
            for bound, delta in zip(histogram.bounds, deltas):
                cumulative += delta
                if cumulative >= rank:
                    value = bound
                    break
            if value is None:
                value = histogram.maximum
        return {
            "value": round(value, 6),
            "met": value <= threshold_s,
            "observations": total,
        }


@pytest.fixture
def metrics() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.histogram("env.latency", LATENCY_BUCKETS)
    return registry


def drive(world, metrics, slo, reference, ticks: int, seed: int = 1234):
    """Seeded workload; yields (engine status, reference status) per tick."""
    rng = random.Random(seed)
    for _ in range(ticks):
        for _ in range(rng.randrange(0, 6)):
            metrics.inc("env.total")
            if rng.random() < 0.8:
                metrics.inc("env.delivered")
            metrics.observe("env.latency", rng.choice((0.05, 0.3, 0.8, 1.5, 4.0)))
        world.run_for(PERIOD_S)
        reference.sample()
        yield slo.evaluate()


class TestDequeEquivalence:
    def test_ratio_matches_reference_every_tick(self, world, metrics):
        slo = SLOEngine(world.engine, metrics, sample_period_s=PERIOD_S).add_ratio(
            "delivered",
            "env.delivered",
            "env.total",
            target=0.9,
            window_s=WINDOW_S,
        )
        slo.start()
        reference = ReferenceSLO(metrics, WINDOW_S, PERIOD_S)
        for tick, status in enumerate(drive(world, metrics, slo, reference, 40)):
            expected = reference.ratio_status(target=0.9)
            got = status["delivered"]
            assert got["value"] == expected["value"], f"tick {tick}"
            assert got["met"] == expected["met"], f"tick {tick}"
            assert got["observations"] == expected["observations"], f"tick {tick}"

    def test_latency_matches_reference_every_tick(self, world, metrics):
        slo = SLOEngine(world.engine, metrics, sample_period_s=PERIOD_S).add_latency(
            "p90",
            "env.latency",
            threshold_s=1.0,
            quantile=0.9,
            window_s=WINDOW_S,
        )
        slo.start()
        reference = ReferenceSLO(metrics, WINDOW_S, PERIOD_S)
        for tick, status in enumerate(drive(world, metrics, slo, reference, 40)):
            expected = reference.latency_status(quantile=0.9, threshold_s=1.0)
            got = status["p90"]
            assert got["value"] == expected["value"], f"tick {tick}"
            assert got["met"] == expected["met"], f"tick {tick}"
            assert got["observations"] == expected["observations"], f"tick {tick}"

    def test_mid_tick_reads_see_fresh_traffic(self, world, metrics):
        # evaluate() between ticks must behave like a live cumulative
        # difference: traffic since the last sample is already visible.
        slo = SLOEngine(world.engine, metrics, sample_period_s=PERIOD_S).add_ratio(
            "delivered", "env.delivered", "env.total", window_s=WINDOW_S
        )
        slo.start()
        world.run_for(PERIOD_S)
        metrics.inc("env.total")  # not yet sampled by any tick
        assert slo.evaluate()["delivered"]["observations"] == 1

    def test_window_memory_stays_bounded(self, world, metrics):
        slo = SLOEngine(world.engine, metrics, sample_period_s=PERIOD_S).add_ratio(
            "delivered", "env.delivered", "env.total", window_s=WINDOW_S
        )
        slo.start()
        slots = max(1, int(math.ceil(WINDOW_S / PERIOD_S - 1e-9)))
        for _ in range(200):
            metrics.inc("env.delivered")
            metrics.inc("env.total")
            world.run_for(PERIOD_S)
        objective = slo._objectives["delivered"]
        assert objective.good_window.cells <= slots
        assert objective.total_window.cells <= slots
