"""Tests for inter-organisational policies and the knowledge base."""

from __future__ import annotations

import pytest

from repro.directory.dit import DirectoryInformationTree
from repro.odp.objects import InterfaceRef
from repro.odp.trader import ImportContext, Trader
from repro.org.knowledge_base import OrganisationalKnowledgeBase
from repro.org.model import Organisation, OrgUnit, Person
from repro.org.policy import (
    INTERACTION_MESSAGE,
    INTERACTION_REALTIME,
    INTERACTION_SERVICE_IMPORT,
    PolicyRegistry,
)
from repro.org.relations import RelationKind
from repro.util.errors import NoOfferError, PolicyViolationError, UnknownObjectError


class TestPolicyRegistry:
    @pytest.fixture
    def policies(self) -> PolicyRegistry:
        registry = PolicyRegistry()
        registry.declare("upc", "gmd", {INTERACTION_MESSAGE, INTERACTION_SERVICE_IMPORT}, cost=2.0, symmetric=True)
        registry.declare("upc", "lancaster", {"*"}, symmetric=True)
        registry.declare("gmd", "lancaster", {INTERACTION_MESSAGE})  # one-way only
        return registry

    def test_intra_org_always_compatible(self, policies):
        assert policies.compatible("upc", "upc", INTERACTION_REALTIME)

    def test_symmetric_declaration(self, policies):
        assert policies.compatible("upc", "gmd", INTERACTION_MESSAGE)
        assert policies.compatible("gmd", "upc", INTERACTION_MESSAGE)

    def test_interaction_not_allowed(self, policies):
        assert not policies.compatible("upc", "gmd", INTERACTION_REALTIME)

    def test_wildcard_allows_everything(self, policies):
        assert policies.compatible("upc", "lancaster", INTERACTION_REALTIME)

    def test_one_way_policy_is_not_enough(self, policies):
        assert not policies.compatible("gmd", "lancaster", INTERACTION_MESSAGE)

    def test_undeclared_pair_incompatible(self, policies):
        assert not policies.compatible("upc", "mars", INTERACTION_MESSAGE)

    def test_budget_gate(self, policies):
        assert policies.compatible("upc", "gmd", INTERACTION_MESSAGE, budget=5.0)
        assert not policies.compatible("upc", "gmd", INTERACTION_MESSAGE, budget=1.0)

    def test_interaction_cost(self, policies):
        assert policies.interaction_cost("upc", "gmd") == 4.0
        assert policies.interaction_cost("upc", "upc") == 0.0
        with pytest.raises(PolicyViolationError):
            policies.interaction_cost("upc", "mars")

    def test_require_compatible_raises(self, policies):
        with pytest.raises(PolicyViolationError):
            policies.require_compatible("upc", "gmd", INTERACTION_REALTIME)

    def test_partners_of(self, policies):
        assert policies.partners_of("upc", INTERACTION_MESSAGE) == ["gmd", "lancaster"]

    def test_denial_counting(self, policies):
        policies.compatible("upc", "gmd", INTERACTION_REALTIME)
        assert policies.denials == 1


class TestKnowledgeBase:
    @pytest.fixture
    def kb(self) -> OrganisationalKnowledgeBase:
        kb = OrganisationalKnowledgeBase()
        upc = Organisation("upc", "UPC")
        upc.add_person(Person("ana", "Ana Lopez", "upc"))
        upc.add_unit(OrgUnit("ac", "AC", "upc"))
        gmd = Organisation("gmd", "GMD")
        gmd.add_person(Person("wolf", "Wolf Prinz", "gmd"))
        kb.add_organisation(upc)
        kb.add_organisation(gmd)
        kb.relations.relate(RelationKind.PLAYS_ROLE, "ana", "editor")
        return kb

    def test_find_person_across_orgs(self, kb):
        assert kb.organisation_of("wolf") == "gmd"
        with pytest.raises(UnknownObjectError):
            kb.find_person("ghost")

    def test_publish_to_directory(self, kb):
        dit = DirectoryInformationTree()
        created = kb.publish_to_directory(dit, country="EU")
        # country + 2 orgs + 1 unit + 2 persons
        assert created == 6
        entry = dit.read("cn=Ana Lopez,o=UPC,c=EU")
        assert entry.get("role") == ["editor"]
        # Re-publishing creates nothing new.
        assert kb.publish_to_directory(dit, country="EU") == 0

    def test_trader_policy_hook_filters_incompatible(self, kb):
        kb.policies.declare("upc", "gmd", {INTERACTION_SERVICE_IMPORT}, symmetric=True)
        trader = Trader("t")
        trader.add_policy_hook(kb.trader_policy_hook())
        trader.export("printing", InterfaceRef("n1", "o", "i"), exporter="gmd")
        trader.export("printing", InterfaceRef("n2", "o", "i"), exporter="mars")
        offers = trader.import_(
            "printing", context=ImportContext(organisation="upc"), max_offers=10
        )
        assert [o.exporter for o in offers] == ["gmd"]

    def test_trader_policy_hook_anonymous_sees_all(self, kb):
        trader = Trader("t")
        trader.add_policy_hook(kb.trader_policy_hook())
        trader.export("printing", InterfaceRef("n2", "o", "i"), exporter="mars")
        assert len(trader.import_("printing", max_offers=10)) == 1

    def test_trader_policy_hook_blocks_everything_without_policies(self, kb):
        trader = Trader("t")
        trader.add_policy_hook(kb.trader_policy_hook())
        trader.export("printing", InterfaceRef("n1", "o", "i"), exporter="gmd")
        with pytest.raises(NoOfferError):
            trader.import_one("printing", context=ImportContext(organisation="upc"))
