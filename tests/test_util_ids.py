"""Tests for deterministic id generation."""

from __future__ import annotations

import pytest

from repro.util.ids import IdFactory, next_id, reset_ids


class TestIdFactory:
    def test_sequential_within_namespace(self):
        ids = IdFactory()
        assert ids.next("msg") == "msg-0001"
        assert ids.next("msg") == "msg-0002"

    def test_namespaces_are_independent(self):
        ids = IdFactory()
        ids.next("a")
        assert ids.next("b") == "b-0001"

    def test_width_controls_padding(self):
        ids = IdFactory(width=2)
        assert ids.next("x") == "x-01"

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            IdFactory(width=0)

    def test_empty_namespace_rejected(self):
        with pytest.raises(ValueError):
            IdFactory().next("")

    def test_peek_does_not_consume(self):
        ids = IdFactory()
        ids.next("t")
        assert ids.peek("t") == 2
        assert ids.next("t") == "t-0002"

    def test_reset_single_namespace(self):
        ids = IdFactory()
        ids.next("a")
        ids.next("b")
        ids.reset("a")
        assert ids.next("a") == "a-0001"
        assert ids.next("b") == "b-0002"

    def test_reset_all(self):
        ids = IdFactory()
        ids.next("a")
        ids.next("b")
        ids.reset()
        assert ids.next("a") == "a-0001"
        assert ids.next("b") == "b-0001"


class TestGlobalFactory:
    def test_global_ids_reset_by_fixture(self):
        assert next_id("g") == "g-0001"

    def test_reset_ids_restarts_sequence(self):
        next_id("h")
        reset_ids("h")
        assert next_id("h") == "h-0001"
