"""Tests for activities, dependencies, scheduling and coordination."""

from __future__ import annotations

import pytest

from repro.activity.coordination import Barrier, ResourceCoordinator
from repro.activity.dependencies import (
    BEFORE,
    MEETS,
    SHARES_INFORMATION,
    SHARES_RESOURCE,
    SUBACTIVITY_OF,
    DependencyGraph,
)
from repro.activity.model import Activity, ActivityRegistry, ActivityStatus
from repro.activity.scheduler import ActivityMonitor, ActivityScheduler
from repro.org.model import Resource
from repro.util.errors import (
    ConfigurationError,
    DependencyCycleError,
    ModelError,
    UnknownObjectError,
)
from repro.util.events import EventBus, EventRecorder


class TestActivityLifecycle:
    def test_happy_path(self):
        activity = Activity("a1", "write report")
        activity.start(1.0)
        activity.report_progress(0.5, 2.0)
        activity.complete(3.0)
        assert activity.status is ActivityStatus.COMPLETED
        assert activity.progress == 1.0
        assert activity.started_at == 1.0
        assert activity.finished_at == 3.0

    def test_illegal_transition_rejected(self):
        activity = Activity("a1", "x")
        with pytest.raises(ModelError):
            activity.complete()

    def test_suspend_resume(self):
        activity = Activity("a1", "x")
        activity.start()
        activity.suspend()
        activity.resume()
        assert activity.status is ActivityStatus.ACTIVE

    def test_cancel_from_pending(self):
        activity = Activity("a1", "x")
        activity.cancel(5.0)
        assert activity.status is ActivityStatus.CANCELLED

    def test_completed_is_final(self):
        activity = Activity("a1", "x")
        activity.start()
        activity.complete()
        with pytest.raises(ModelError):
            activity.cancel()

    def test_progress_requires_active(self):
        activity = Activity("a1", "x")
        with pytest.raises(ModelError):
            activity.report_progress(0.5)

    def test_progress_bounds(self):
        activity = Activity("a1", "x")
        activity.start()
        with pytest.raises(ModelError):
            activity.report_progress(1.5)

    def test_overdue(self):
        activity = Activity("a1", "x", deadline=10.0)
        activity.start()
        assert not activity.is_overdue(5.0)
        assert activity.is_overdue(11.0)
        activity.complete()
        assert not activity.is_overdue(11.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Activity("a1", "x", mode="psychic")


class TestMembership:
    def test_join_leave_roles(self):
        activity = Activity("a1", "x")
        activity.join("ana", "chair")
        activity.join("joan")
        assert activity.member_ids() == ["ana", "joan"]
        assert activity.role_of("ana") == "chair"
        assert activity.members_with_role("participant") == ["joan"]
        activity.leave("joan")
        assert not activity.is_member("joan")

    def test_leave_nonmember_rejected(self):
        with pytest.raises(UnknownObjectError):
            Activity("a1", "x").leave("ghost")

    def test_registry_involving(self):
        registry = ActivityRegistry()
        a1 = registry.create(Activity("a1", "one", project="tunnel"))
        a2 = registry.create(Activity("a2", "two", project="tunnel"))
        a1.join("ana")
        a2.join("ana")
        a2.join("joan")
        assert [a.activity_id for a in registry.involving("ana")] == ["a1", "a2"]
        assert len(registry.by_project("tunnel")) == 2

    def test_duplicate_activity_rejected(self):
        registry = ActivityRegistry()
        registry.create(Activity("a1", "x"))
        with pytest.raises(ConfigurationError):
            registry.create(Activity("a1", "y"))


class TestDependencies:
    def test_ordering_and_cycle_rejection(self):
        graph = DependencyGraph()
        graph.add(BEFORE, "a", "b")
        graph.add(MEETS, "b", "c")
        with pytest.raises(DependencyCycleError):
            graph.add(BEFORE, "c", "a")

    def test_self_dependency_rejected(self):
        with pytest.raises(ModelError):
            DependencyGraph().add(BEFORE, "a", "a")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            DependencyGraph().add("psychic-link", "a", "b")

    def test_execution_order(self):
        graph = DependencyGraph()
        graph.add(BEFORE, "draft", "review")
        graph.add(BEFORE, "review", "publish")
        graph.add(BEFORE, "draft", "publish")
        assert graph.execution_order(["publish", "draft", "review"]) == [
            "draft",
            "review",
            "publish",
        ]

    def test_execution_order_deterministic_ties(self):
        graph = DependencyGraph()
        order = graph.execution_order(["b", "a", "c"])
        assert order == ["a", "b", "c"]

    def test_non_ordering_kinds_do_not_constrain(self):
        graph = DependencyGraph()
        graph.add(SHARES_RESOURCE, "a", "b", annotation="room")
        graph.add(SHARES_INFORMATION, "b", "a")
        # No cycle error: these are not ordering edges.
        assert graph.execution_order(["a", "b"]) == ["a", "b"]

    def test_partner_queries(self):
        graph = DependencyGraph()
        graph.add(SHARES_RESOURCE, "a", "b", annotation="room")
        graph.add(SHARES_RESOURCE, "a", "c", annotation="budget")
        assert graph.resource_partners("a") == ["b", "c"]
        assert graph.resource_partners("a", resource="room") == ["b"]

    def test_subactivities(self):
        graph = DependencyGraph()
        graph.add(SUBACTIVITY_OF, "meeting", "project")
        graph.add(SUBACTIVITY_OF, "report", "project")
        assert graph.subactivities_of("project") == ["meeting", "report"]

    def test_related_set(self):
        graph = DependencyGraph()
        graph.add(BEFORE, "a", "b")
        graph.add(SHARES_INFORMATION, "a", "c")
        assert graph.related("a") == {"b", "c"}


class TestScheduler:
    @pytest.fixture
    def setup(self):
        registry = ActivityRegistry()
        graph = DependencyGraph()
        for name in ("draft", "review", "publish"):
            registry.create(Activity(name, name))
        graph.add(BEFORE, "draft", "review")
        graph.add(BEFORE, "review", "publish")
        bus = EventBus()
        scheduler = ActivityScheduler(registry, graph, bus)
        return registry, graph, scheduler, bus

    def test_only_roots_start_initially(self, setup):
        registry, graph, scheduler, bus = setup
        started = scheduler.start_ready(0.0)
        assert started == ["draft"]
        assert registry.get("review").status is ActivityStatus.PENDING

    def test_completion_unblocks_successors(self, setup):
        registry, graph, scheduler, bus = setup
        scheduler.start_ready(0.0)
        newly = scheduler.complete("draft", 1.0)
        assert newly == ["review"]
        newly = scheduler.complete("review", 2.0)
        assert newly == ["publish"]

    def test_lifecycle_events_published(self, setup):
        registry, graph, scheduler, bus = setup
        recorder = EventRecorder()
        bus.subscribe("activity/draft", recorder)
        scheduler.start_ready(0.0)
        scheduler.complete("draft", 1.0)
        events = [e.payload["event"] for e in recorder.events]
        assert events == ["started", "completed"]

    def test_plan_is_total_order(self, setup):
        registry, graph, scheduler, bus = setup
        assert scheduler.plan() == ["draft", "review", "publish"]


class TestMonitor:
    def test_overdue_alert(self, world):
        registry = ActivityRegistry()
        activity = registry.create(Activity("late", "late", deadline=30.0))
        activity.start(0.0)
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe("activity/late/alert", recorder)
        monitor = ActivityMonitor(world, registry, bus, period_s=20.0).start()
        world.run_for(70.0)
        monitor.stop()
        reasons = {e.payload["reason"] for e in recorder.events}
        assert "overdue" in reasons
        assert monitor.alerts_raised >= 1

    def test_stall_alert(self, world):
        registry = ActivityRegistry()
        activity = registry.create(Activity("stuck", "stuck"))
        activity.start(0.0)
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe("stuck-alerts", lambda e: None)  # unrelated topic
        bus.subscribe("activity/stuck/alert", recorder)
        ActivityMonitor(world, registry, bus, period_s=50.0, stall_after_s=100.0).start()
        world.run_for(300.0)
        reasons = [e.payload["reason"] for e in recorder.events]
        assert "stalled" in reasons

    def test_progressing_activity_not_stalled(self, world):
        registry = ActivityRegistry()
        activity = registry.create(Activity("busy", "busy"))
        activity.start(0.0)
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe("activity/busy/alert", recorder)
        ActivityMonitor(world, registry, bus, period_s=50.0, stall_after_s=100.0).start()
        for i in range(1, 6):
            world.engine.schedule(i * 40.0, lambda i=i: activity.report_progress(i / 10))
        world.run_for(220.0)
        assert recorder.events == []


class TestCoordination:
    def test_capacity_and_queue(self):
        coordinator = ResourceCoordinator()
        coordinator.register(Resource("room", "Sala", "upc", capacity=1))
        granted = []
        assert coordinator.claim("room", "a1", granted.append)
        assert not coordinator.claim("room", "a2", granted.append)
        assert coordinator.queue_length("room") == 1
        coordinator.release("room", "a1")
        assert coordinator.holders_of("room") == ["a2"]
        assert granted == ["room", "room"]

    def test_double_claim_rejected(self):
        coordinator = ResourceCoordinator()
        coordinator.register(Resource("room", "Sala", "upc"))
        coordinator.claim("room", "a1")
        with pytest.raises(ModelError):
            coordinator.claim("room", "a1")

    def test_release_without_hold_rejected(self):
        coordinator = ResourceCoordinator()
        coordinator.register(Resource("room", "Sala", "upc"))
        with pytest.raises(ModelError):
            coordinator.release("room", "a1")

    def test_withdraw_queued_claim(self):
        coordinator = ResourceCoordinator()
        coordinator.register(Resource("room", "Sala", "upc", capacity=1))
        coordinator.claim("room", "a1")
        coordinator.claim("room", "a2")
        assert coordinator.withdraw_claim("room", "a2")
        coordinator.release("room", "a1")
        assert coordinator.holders_of("room") == []

    def test_multi_capacity(self):
        coordinator = ResourceCoordinator()
        coordinator.register(Resource("lab", "Lab", "upc", capacity=2))
        assert coordinator.claim("lab", "a1")
        assert coordinator.claim("lab", "a2")
        assert not coordinator.claim("lab", "a3")

    def test_unknown_resource_rejected(self):
        with pytest.raises(UnknownObjectError):
            ResourceCoordinator().claim("ghost", "a1")


class TestBarrier:
    def test_fires_when_all_arrive(self):
        barrier = Barrier(parties=frozenset({"a", "b"}))
        fired = []
        barrier.on_complete(lambda: fired.append(1))
        assert not barrier.arrive("a")
        assert barrier.waiting_for() == ["b"]
        assert barrier.arrive("b")
        assert fired == [1]

    def test_non_party_rejected(self):
        with pytest.raises(ModelError):
            Barrier(parties=frozenset({"a"})).arrive("z")

    def test_fires_once(self):
        barrier = Barrier(parties=frozenset({"a"}))
        fired = []
        barrier.on_complete(lambda: fired.append(1))
        barrier.arrive("a")
        assert not barrier.arrive("a")
        assert fired == [1]

    def test_empty_barrier_rejected(self):
        with pytest.raises(ModelError):
            Barrier(parties=frozenset())
