"""Tests for QoS specs and monitoring."""

from __future__ import annotations

import pytest

from repro.odp.qos import MESSAGING_QOS, REALTIME_QOS, QoSMonitor, QoSSpec
from repro.util.errors import ConfigurationError


class TestQoSSpec:
    def test_presets_shape(self):
        assert REALTIME_QOS.suits_synchronous_use()
        assert not MESSAGING_QOS.suits_synchronous_use()

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            QoSSpec(max_latency_s=0)

    def test_invalid_reliability_rejected(self):
        with pytest.raises(ConfigurationError):
            QoSSpec(min_reliability=1.5)


class TestQoSMonitor:
    def test_within_spec(self):
        monitor = QoSMonitor(QoSSpec(max_latency_s=1.0, min_reliability=0.9))
        for _ in range(10):
            monitor.observe_success(0.1)
        assert monitor.in_conformance()
        assert monitor.violations() == []

    def test_latency_violation_detected(self):
        monitor = QoSMonitor(QoSSpec(max_latency_s=0.1))
        assert not monitor.observe_success(0.5)
        assert monitor.latency_violations == 1
        assert not monitor.in_conformance()

    def test_reliability_violation_detected(self):
        monitor = QoSMonitor(QoSSpec(min_reliability=0.9))
        monitor.observe_success(0.01)
        monitor.observe_failure()
        assert monitor.reliability() == 0.5
        assert any("reliability" in v for v in monitor.violations())

    def test_clean_before_any_traffic(self):
        monitor = QoSMonitor(REALTIME_QOS)
        assert monitor.reliability() == 1.0
        assert monitor.in_conformance()
