"""Tests for the ODP-hosted environment server and the status report."""

from __future__ import annotations

import pytest

from repro.analysis.report import environment_report
from repro.apps.conferencing import ConferencingSystem
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.environment.server import EnvironmentClient, EnvironmentServer
from repro.environment.transparency import TransparencyProfile
from repro.odp.binding import BindingFactory
from repro.odp.node_mgmt import Capsule
from repro.org.model import Organisation, Person
from repro.util.errors import BindingError


@pytest.fixture
def hosted(world):
    """An environment hosted on its own server node, plus a remote client."""
    world.add_site("datacenter", ["env-node"])
    world.add_site("office", ["ws-ana", "ws-joan"])
    env = CSCWEnvironment(world)
    org = Organisation("upc", "UPC")
    org.add_person(Person("ana", "Ana", "upc"))
    org.add_person(Person("joan", "Joan", "upc"))
    env.knowledge_base.add_organisation(org)
    env.register_person(Communicator("ana", "ws-ana"))
    env.register_person(Communicator("joan", "ws-joan"))
    conferencing = ConferencingSystem()
    messages = MessageSystem()
    conferencing.attach(env)
    messages.attach(env)
    capsule = Capsule(world.network, "env-node")
    factory = BindingFactory(world.network)
    factory.register_capsule(capsule)
    server = EnvironmentServer(env)
    ref = server.deploy(capsule)
    client = EnvironmentClient(world, factory, "ws-ana", ref)
    return world, env, client, messages, ref

DOC = {"topic": "t", "entry": "e", "conference": "c", "author": "ana"}


class TestEnvironmentServer:
    def test_remote_exchange_round_trip(self, hosted):
        world, env, client, messages, ref = hosted
        outcome = client.exchange("ana", "joan", "conferencing", "message-system", DOC)
        assert outcome.delivered and outcome.translated
        assert messages.folder("joan")[0].subject == "t"

    def test_remote_exchange_pays_network_latency(self, hosted):
        world, env, client, messages, ref = hosted
        before = world.now
        client.exchange("ana", "joan", "conferencing", "message-system", DOC)
        # office <-> datacenter is a WAN round trip (>= 2 x 80 ms).
        assert world.now - before >= 0.16

    def test_remote_profile_respected(self, hosted):
        world, env, client, messages, ref = hosted
        profile = TransparencyProfile.all_on().without("view")
        outcome = client.exchange(
            "ana", "joan", "conferencing", "message-system", DOC, profile=profile
        )
        assert not outcome.delivered
        assert "view transparency off" in outcome.reason

    def test_remote_presence_and_pending(self, hosted):
        world, env, client, messages, ref = hosted
        client.person_leaves("joan")
        client.exchange("ana", "joan", "conferencing", "message-system", DOC)
        assert client.pending_for("joan") == 1
        assert client.person_arrives("joan") == 1
        assert client.pending_for("joan") == 0

    def test_remote_describe(self, hosted):
        world, env, client, messages, ref = hosted
        snapshot = client.describe()
        assert snapshot["organisations"] == ["upc"]
        assert snapshot["integration_cost"] == 2

    def test_environment_service_is_traded(self, hosted):
        world, env, client, messages, ref = hosted
        offer = env.trader.import_one("cscw-environment")
        assert offer.ref == ref

    def test_server_crash_fails_visibly(self, hosted):
        world, env, client, messages, ref = hosted
        world.network.node("env-node").crash()
        with pytest.raises(BindingError, match="timeout"):
            client.exchange("ana", "joan", "conferencing", "message-system", DOC)


class TestEnvironmentReport:
    def test_report_renders_all_sections(self, hosted):
        world, env, client, messages, ref = hosted
        env.create_activity("review", "review", members={"ana": "chair", "joan": "m"})
        env.activities.get("review").start(world.now)
        client.exchange("ana", "joan", "conferencing", "message-system", DOC,
                        activity_id="review")
        env.person_leaves("joan")
        client.exchange("ana", "joan", "conferencing", "message-system", DOC,
                        activity_id="review")
        report = environment_report(env)
        assert "CSCW environment report: mocca" in report
        assert "conferencing" in report and "message-system" in report
        assert "ana" in report and "joan" in report
        assert "1 queued" in report          # joan's pending delivery
        assert "active" in report            # the review activity
        assert "exchanges" in report
        assert "top talkers: ana (2)" in report

    def test_report_on_empty_environment(self, world):
        env = CSCWEnvironment(world)
        report = environment_report(env)
        assert "0 exchanges" in report
