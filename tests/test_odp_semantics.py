"""Tests for enforced ODP operation semantics and trader offer updates."""

from __future__ import annotations

import pytest

from repro.odp.objects import (
    ComputationalObject,
    InterfaceRef,
    InterfaceSignature,
    OperationSpec,
)
from repro.odp.trader import Constraint, Trader
from repro.util.errors import BindingError, TradingError


def _typed_object() -> ComputationalObject:
    obj = ComputationalObject("typed")
    sig = InterfaceSignature(
        "svc",
        (
            OperationSpec("add", parameters=("x", "y")),
            OperationSpec("notify", one_way=True),
            OperationSpec("loose"),
        ),
    )
    obj.offer(
        sig,
        {
            "add": lambda args: args["x"] + args["y"],
            "notify": lambda args: "this value must never escape",
            "loose": lambda args: dict(args),
        },
    )
    return obj


class TestOperationSemantics:
    def test_declared_parameters_enforced(self):
        obj = _typed_object()
        assert obj.invoke("svc", "add", {"x": 2, "y": 3}) == 5
        with pytest.raises(BindingError, match="missing arguments"):
            obj.invoke("svc", "add", {"x": 2})
        with pytest.raises(BindingError, match="unknown arguments"):
            obj.invoke("svc", "add", {"x": 2, "y": 3, "z": 4})

    def test_undeclared_parameters_accept_anything(self):
        obj = _typed_object()
        assert obj.invoke("svc", "loose", {"whatever": 1}) == {"whatever": 1}

    def test_one_way_discards_result(self):
        obj = _typed_object()
        assert obj.invoke("svc", "notify", {}) is None

    def test_one_way_over_the_network(self, world):
        """Announcement semantics hold end-to-end through a channel."""
        from repro.odp.binding import BindingFactory
        from repro.odp.node_mgmt import Capsule

        world.add_site("hq", ["server", "client"])
        capsule = Capsule(world.network, "server")
        factory = BindingFactory(world.network)
        factory.register_capsule(capsule)
        refs = capsule.deploy(_typed_object())
        channel = factory.bind("client", refs["svc"])
        assert channel.call(world, "notify") is None


class TestOfferModification:
    def test_modify_changes_properties_only(self):
        trader = Trader("t")
        offer = trader.export("printing", InterfaceRef("n", "o", "i"),
                              {"cost": 9}, exporter="ops")
        updated = trader.modify_offer(offer.offer_id, {"cost": 2, "color": True})
        assert updated.offer_id == offer.offer_id
        assert updated.exporter == "ops"
        assert updated.properties == {"cost": 2, "color": True}
        found = trader.import_one("printing", [Constraint("cost", "<=", 5)])
        assert found.offer_id == offer.offer_id

    def test_modify_unknown_offer_rejected(self):
        with pytest.raises(TradingError):
            Trader("t").modify_offer("offer-9999", {})

    def test_live_repricing_visible_to_importers(self):
        trader = Trader("t")
        cheap = trader.export("svc", InterfaceRef("n1", "o", "i"), {"cost": 1})
        trader.export("svc", InterfaceRef("n2", "o", "i"), {"cost": 5})
        assert trader.import_one("svc", preference="min:cost").ref.node == "n1"
        trader.modify_offer(cheap.offer_id, {"cost": 50})
        assert trader.import_one("svc", preference="min:cost").ref.node == "n2"
