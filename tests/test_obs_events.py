"""Tests for repro.obs.events: the bounded, trace-correlated event log."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    KIND_BREAKER_OPEN,
    KIND_DEAD_LETTER,
    KIND_SHED,
    NULL_EVENTS,
    Event,
    EventLog,
    NullEventLog,
)
from repro.util.errors import ConfigurationError


class TestEventLog:
    def test_records_in_arrival_order_with_attrs(self):
        log = EventLog()
        log.record(1.0, KIND_BREAKER_OPEN, trace_id="trace-0001", streak=3)
        log.record(2.5, KIND_SHED, receiver="bob")
        events = log.events()
        assert [event.kind for event in events] == [KIND_BREAKER_OPEN, KIND_SHED]
        assert events[0].trace_id == "trace-0001"
        assert events[0].attrs == {"streak": 3}
        assert events[1].time == 2.5

    def test_capacity_evicts_oldest_and_counts_drops(self):
        log = EventLog(capacity=2)
        for index in range(5):
            log.record(float(index), KIND_SHED, n=index)
        assert [event.attrs["n"] for event in log.events()] == [3, 4]
        assert log.recorded == 5
        assert log.dropped == 3

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)

    def test_filters_by_kind_and_trace(self):
        log = EventLog()
        log.record(0.0, KIND_SHED, trace_id="t1")
        log.record(1.0, KIND_DEAD_LETTER, trace_id="t1")
        log.record(2.0, KIND_SHED, trace_id="t2")
        assert len(log.events(kind=KIND_SHED)) == 2
        assert len(log.events(trace_id="t1")) == 2
        assert len(log.events(kind=KIND_SHED, trace_id="t1")) == 1

    def test_kinds_histogram_is_sorted(self):
        log = EventLog()
        log.record(0.0, "zeta")
        log.record(0.0, "alpha")
        log.record(0.0, "zeta")
        assert list(log.kinds().items()) == [("alpha", 1), ("zeta", 2)]

    def test_to_dicts_and_clear(self):
        log = EventLog()
        log.record(3.0, KIND_SHED, trace_id="t", n=1)
        [blob] = log.to_dicts()
        assert blob == {
            "time": 3.0,
            "kind": KIND_SHED,
            "trace_id": "t",
            "attrs": {"n": 1},
        }
        log.clear()
        assert log.events() == [] and log.recorded == 0

    def test_extend_merges_prebuilt_events(self):
        source = EventLog()
        source.record(0.0, KIND_SHED)
        merged = EventLog()
        merged.extend(source.events())
        merged.record(1.0, KIND_DEAD_LETTER)
        assert [event.kind for event in merged.events()] == [
            KIND_SHED,
            KIND_DEAD_LETTER,
        ]

    def test_events_are_frozen(self):
        event = Event(time=0.0, kind=KIND_SHED)
        with pytest.raises(AttributeError):
            event.kind = "other"


class TestNullEventLog:
    def test_discards_everything_and_reports_disabled(self):
        log = NullEventLog()
        assert log.enabled is False
        log.record(0.0, KIND_SHED, n=1)
        log.extend([Event(time=0.0, kind=KIND_SHED)])
        assert log.events() == []
        assert log.recorded == 0

    def test_shared_null_instance(self):
        assert NULL_EVENTS.enabled is False
        NULL_EVENTS.record(0.0, KIND_SHED)
        assert NULL_EVENTS.events() == []
