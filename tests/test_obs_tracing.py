"""Tests for repro.obs.tracing: span nesting under the simulated clock,
wall-clock mode, and the disabled tracer path."""

from __future__ import annotations

from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.sim.engine import Engine


class TestSimClockSpans:
    def test_span_durations_are_simulated_seconds(self):
        engine = Engine()
        tracer = Tracer()
        tracer.bind_engine(engine)
        durations = []

        def work():
            with tracer.span("work"):
                engine.schedule(2.5, lambda: None)

        engine.schedule(1.0, work)
        engine.run()
        [span] = tracer.finished()
        assert span.name == "work"
        assert span.start == 1.0
        # the span closed before the inner event fired, so zero sim time passed
        assert span.duration == 0.0
        assert span.clock == "sim"

        with tracer.span("outer"):
            engine.schedule(4.0, lambda: durations.append(True))
            engine.run()
        outer = tracer.finished()[-1]
        assert outer.duration == 4.0  # engine advanced while the span was open

    def test_nesting_shares_trace_and_links_parent(self):
        tracer = Tracer()
        with tracer.span("outer", who="ana") as outer:
            assert tracer.depth == 1
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert tracer.depth == 0
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id
        assert first.parent_id == "" and second.parent_id == ""

    def test_ids_are_deterministic(self):
        ids = []
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("a") as span:
                ids.append((span.trace_id, span.span_id))
        assert ids[0] == ids[1] == ("trace-0001", "span-0001")

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("bad")
        except RuntimeError:
            pass
        [span] = tracer.finished()
        assert span.finished
        assert "RuntimeError" in span.tags["error"]

    def test_tags_and_to_dict(self):
        tracer = Tracer()
        with tracer.span("op", a=1) as span:
            span.tag(b=2)
        data = span.to_dict()
        assert data["tags"] == {"a": 1, "b": 2}
        assert data["clock"] == "sim"
        assert data["duration"] == 0.0

    def test_reset_forgets_finished_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.finished() == []

    def test_reset_keeps_id_counters_by_default(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        with tracer.span("b") as span:
            pass
        # ids keep running: no collision with spans recorded pre-reset
        assert (span.trace_id, span.span_id) == ("trace-0002", "span-0002")

    def test_drain_consumes_finished_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        batch = tracer.drain()
        assert [span.name for span in batch] == ["a"]
        assert tracer.finished() == []  # consumed, not copied
        with tracer.span("b") as span:
            pass
        # ids keep running across drains (unlike reset(ids=True))
        assert span.trace_id == "trace-0002"
        assert [s.name for s in tracer.drain()] == ["b"]

    def test_drain_sweeps_retained_unsampled_traces(self):
        tracer = Tracer().configure_sampling(0.0, seed=1)
        with tracer.span("op", reason_code="timeout"):
            pass
        assert [span.name for span in tracer.drain()] == ["op"]
        assert tracer.drain() == []

    def test_reset_with_ids_restores_fresh_tracer_determinism(self):
        """reset(ids=True) makes a reused tracer emit exactly the ids a
        fresh one would — required when a reseeded run reuses it."""

        def run(tracer):
            with tracer.span("exchange"):
                with tracer.span("relay"):
                    pass
            return [(s.trace_id, s.span_id, s.parent_id) for s in tracer.finished()]

        tracer = Tracer()
        first = run(tracer)
        tracer.reset(ids=True)
        second = run(tracer)
        assert first == second == run(Tracer())


class TestWallClockMode:
    def test_wall_mode_reads_a_real_monotonic_clock(self):
        tracer = Tracer(wall=True)
        assert tracer.mode == "wall"
        with tracer.span("profiled") as span:
            sum(range(1000))
        assert span.clock == "wall"
        assert span.end >= span.start

    def test_wall_mode_ignores_bind_engine(self):
        engine = Engine()
        tracer = Tracer(wall=True)
        tracer.bind_engine(engine)
        with tracer.span("s") as span:
            pass
        # still wall time, not the engine's 0.0-forever clock
        assert span.clock == "wall"


class TestNullTracer:
    def test_disabled_and_yields_shared_inert_span(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", tag=1) as span:
            assert span is NULL_SPAN
            span.tag(more=2)
        assert span.trace_id == ""
        assert span.tags == {}
        assert NULL_TRACER.finished() == []

    def test_span_context_is_reused_not_allocated(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_environment_defaults_to_null_tracer(self, world):
        from repro.environment.environment import CSCWEnvironment

        env = CSCWEnvironment(world)
        assert env.tracer.enabled is False
        assert env.metrics.enabled is False

    def test_exception_escapes_null_span_without_corruption(self):
        """An exception through a null span must leave the shared context
        manager reusable — the null tracer keeps no per-entry state."""
        tracer = NullTracer()
        for _ in range(2):
            try:
                with tracer.span("boom"):
                    raise RuntimeError("bad")
            except RuntimeError:
                pass
        with tracer.span("after") as span:
            assert span is NULL_SPAN
        assert tracer.finished() == []

    def test_nested_null_spans_with_exception_stay_inert(self):
        tracer = NullTracer()
        try:
            with tracer.span("outer"):
                with tracer.span_from_context("inner", None):
                    detached = tracer.start_span("detached")
                    raise RuntimeError("bad")
        except RuntimeError:
            pass
        tracer.finish(detached)
        assert tracer.current_context() is None
        assert tracer.finished() == []

    def test_null_span_exception_does_not_leak_into_a_real_tracer(self):
        """Regression guard: code that raised inside NULL_TRACER spans must
        not leave residue that corrupts a later-enabled real tracer."""
        try:
            with NULL_TRACER.span("boom"):
                raise RuntimeError("bad")
        except RuntimeError:
            pass
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert tracer.depth == 0
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]
