"""The resilience subsystem: breakers, health probes, chaos, failover.

Acceptance bar (ISSUE 4): a dead inter-domain link fails fast through
its circuit breaker instead of burning the full retry budget per
exchange; with the direct link down, ``federated_exchange`` completes
via a healthy intermediate domain with ``reason_code`` unchanged from
the direct path (extra hops recorded); deadlines propagate through
gateway relays and the exchange pipeline; overload sheds instead of
queueing without bound.
"""

from __future__ import annotations

import pytest

from repro.communication.model import Communicator
from repro.environment.environment import (
    REASON_DEADLINE_EXCEEDED,
    REASON_DELIVERED,
    REASON_OVERLOAD,
    CSCWEnvironment,
)
from repro.environment.registry import (
    AppDescriptor,
    Q_DIFFERENT_TIME_DIFFERENT_PLACE,
)
from repro.federation.federation import Federation
from repro.federation.gateway import (
    REASON_RELAY_CIRCUIT_OPEN,
    REASON_RELAY_DEADLINE,
)
from repro.information.interchange import FormatConverter, make_common
from repro.obs.metrics import MetricsRegistry
from repro.org.model import Organisation, Person
from repro.resilience import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    ChaosRunner,
    CircuitBreaker,
    HealthMonitor,
)
from repro.sim.network import LinkSpec
from repro.sim.world import World
from repro.util.errors import ConfigurationError

QUAD = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]


def converter() -> FormatConverter:
    def to_common(document):
        return make_common("note", document.get("title", ""), document.get("body", ""))

    def from_common(common):
        return {"title": common["title"], "body": common["body"]}

    return FormatConverter("fmt", to_common, from_common)


def make_federation(world, names=("upc", "gmd"), metrics=None, **options):
    """N domains with one person each (p-<domain>) and one shared app."""
    assignment = {name: [f"p-{name}"] for name in names}
    federation = Federation.partition(world, assignment, metrics=metrics, **options)
    inbox: list = []
    federation.register_application(
        AppDescriptor(name="app0", quadrants=QUAD, converter=converter()),
        lambda person, doc, info: inbox.append((person, doc)),
    )
    return federation, inbox


DOC = {"title": "minutes", "body": "agenda"}


class TestCircuitBreaker:
    def test_validation(self, world):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(world.engine, failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(world.engine, cooldown_s=0)

    def test_trips_at_threshold_and_fails_fast(self, world):
        breaker = CircuitBreaker(world.engine, failure_threshold=3, cooldown_s=10.0)
        assert breaker.state == STATE_CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.ready()
        assert not breaker.allow()
        assert breaker.fast_failures == 1
        assert breaker.opened == 1

    def test_half_open_trial_success_recloses(self, world):
        breaker = CircuitBreaker(world.engine, failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        world.run_for(5.0)
        assert breaker.state == STATE_HALF_OPEN
        # exactly one trial is admitted at a time
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.reclosed == 1

    def test_half_open_trial_failure_reopens(self, world):
        breaker = CircuitBreaker(world.engine, failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        world.run_for(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.ready()
        # the reopen restarted the cooldown clock
        world.run_for(4.0)
        assert breaker.state == STATE_OPEN
        world.run_for(1.0)
        assert breaker.state == STATE_HALF_OPEN

    def test_success_recloses_from_open(self, world):
        """An external probe reaching the peer recloses a tripped breaker."""
        breaker = CircuitBreaker(world.engine, failure_threshold=1, cooldown_s=30.0)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.failure_streak == 0

    def test_force_open_and_reset(self, world):
        breaker = CircuitBreaker(world.engine)
        breaker.force_open()
        assert breaker.state == STATE_OPEN
        breaker.reset()
        assert breaker.state == STATE_CLOSED

    def test_metrics_counters(self, world):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            world.engine, failure_threshold=1, cooldown_s=5.0, metrics=metrics
        )
        breaker.record_failure()
        breaker.allow()
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["resilience.breaker.opened"] == 1
        assert snapshot["resilience.breaker.fast_failures"] == 1
        stats = breaker.stats()
        assert stats["state"] == STATE_OPEN
        assert stats["opened"] == 1


class TestHealthMonitor:
    def test_probe_outcomes_drive_breaker(self, world):
        breaker = CircuitBreaker(world.engine, failure_threshold=2, cooldown_s=60.0)
        monitor = HealthMonitor(world.engine, period_s=1.0)
        verdicts = [False, False, True]

        def probe(report):
            report(verdicts.pop(0) if verdicts else True)

        monitor.watch("link", probe, breaker=breaker)
        assert monitor.healthy("link")  # default before any probe
        world.run_for(2.0)  # two failed probes
        assert not monitor.healthy("link")
        assert breaker.state == STATE_OPEN
        world.run_for(1.0)  # successful probe recloses
        assert monitor.healthy("link")
        assert breaker.state == STATE_CLOSED
        stats = monitor.stats()["link"]
        assert stats["probes"] == 3 and stats["failures"] == 2

    def test_stop_halts_probing(self, world):
        monitor = HealthMonitor(world.engine, period_s=1.0)
        fired: list[bool] = []
        monitor.watch("k", lambda report: fired.append(True) or report(True))
        world.run_for(2.0)
        monitor.stop("k")
        world.run_for(5.0)
        assert len(fired) == 2

    def test_duplicate_watch_rejected(self, world):
        monitor = HealthMonitor(world.engine, period_s=1.0)
        monitor.watch("k", lambda report: report(True))
        with pytest.raises(ConfigurationError):
            monitor.watch("k", lambda report: report(True))


class TestChaosRunner:
    def test_flap_link_kills_and_restores(self, world):
        world.add_site("s", ["a", "b"])
        chaos = ChaosRunner(world)
        chaos.flap_link("a", "b", start=1.0, down_s=2.0, up_s=1.0, flaps=2)
        healthy_loss = world.network.link_between("a", "b").loss
        world.run_for(1.5)
        assert world.network.link_between("a", "b").loss == 1.0
        world.run_for(2.0)  # t=3.5: back up
        assert world.network.link_between("a", "b").loss == healthy_loss
        world.run_for(1.0)  # t=4.5: second flap down (4.0..6.0)
        assert world.network.link_between("a", "b").loss == 1.0
        assert [e["kind"] for e in chaos.describe()["events"]] == [
            "link_down",
            "link_down",
        ]

    def test_crash_storm_is_seed_reproducible(self):
        def storm_times(seed):
            world = World(seed=seed)
            world.add_site("s", ["n0", "n1", "n2"])
            chaos = ChaosRunner(world, name="storm")
            chaos.crash_storm(
                ["n0", "n1", "n2"], start=1.0, downtime_s=2.0,
                stagger_s=1.0, jitter_s=0.5,
            )
            return [e["at"] for e in chaos.events]

        assert storm_times(42) == storm_times(42)
        assert storm_times(42) != storm_times(43)

    def test_rolling_partitions_schedule_windows(self, world):
        world.add_site("s", ["a", "b", "c"])
        chaos = ChaosRunner(world)
        chaos.rolling_partitions(
            [[["a"], ["b", "c"]], [["a", "b"], ["c"]]],
            start=1.0, window_s=2.0, gap_s=1.0,
        )
        world.run_for(1.5)
        assert not world.network.reachable("a", "b")
        assert world.network.reachable("b", "c")
        world.run_for(2.0)  # t=3.5: gap, healed
        assert world.network.reachable("a", "b")
        world.run_for(1.0)  # t=4.5: second window
        assert not world.network.reachable("b", "c")
        assert world.network.reachable("a", "b")
        world.run_for(2.0)
        assert world.network.reachable("a", "c")


class TestGatewayBreaker:
    def test_dead_link_trips_breaker_then_fails_fast(self, world):
        federation, _ = make_federation(world)
        upc = federation.domain("upc")
        world.network.set_link(
            upc.node, federation.domain("gmd").node,
            LinkSpec(latency_s=0.02, bandwidth_bps=1_000_000.0, loss=1.0),
        )
        gateway = upc.gateway_to("gmd")
        # First exchange burns the full retry budget and trips the breaker.
        first = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert not first.delivered
        assert first.attempts == 4
        assert gateway.breaker.state == STATE_OPEN
        # No healthy intermediate exists: the next exchange fails fast.
        before = world.now
        second = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert not second.delivered
        assert second.attempts == 0
        assert gateway.fast_failed == 1
        assert world.now - before < 0.1  # no retry budget burned
        assert gateway.dead_letters[-1].reason == REASON_RELAY_CIRCUIT_OPEN

    def test_resilience_off_means_no_breakers(self, world):
        federation, _ = make_federation(world, resilience=False)
        gateway = federation.domain("upc").gateway_to("gmd")
        assert gateway.breaker is None
        assert gateway.ready()

    def test_shadow_pulls_skip_while_breaker_open(self, world):
        federation, _ = make_federation(world)
        federation.publish_directories()
        agreement = federation.shadowing[("upc", "gmd")]
        assert agreement.breaker is not None
        agreement.breaker.force_open()
        agreement.sync_now()
        assert agreement.skipped_pulls == 1
        assert agreement.pulls == 0


class TestFailoverRouting:
    def test_failover_via_healthy_intermediate(self, world):
        federation, inbox = make_federation(world, names=("upc", "gmd", "inria"))
        direct = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert direct.delivered
        assert [h.role for h in direct.hops] == ["origin", "deliver", "reply"]
        federation.domain("upc").gateway_to("gmd").breaker.force_open()
        routed = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert routed.delivered
        # outcomes stay field-identical, plus the extra relay hop
        assert routed.reason_code == direct.reason_code == REASON_DELIVERED
        assert routed.outcome.mode == direct.outcome.mode
        assert [h.role for h in routed.hops] == ["origin", "relay", "deliver", "reply"]
        assert routed.hops[1].domain == "inria"
        assert routed.attempts >= 2  # origin->via plus via->target
        assert len(inbox) == 2

    def test_failover_failure_reason_codes_survive(self, world):
        """A target-side failure through the relay keeps its reason code."""
        federation, _ = make_federation(world, names=("upc", "gmd", "inria"))
        federation.domain("upc").gateway_to("gmd").breaker.force_open()
        outcome = federation.federated_exchange(
            "p-upc", "unknown", "app0", "app0", DOC
        )
        assert not outcome.delivered
        assert outcome.reason_code == "unknown-receiver"

    def test_no_intermediate_falls_back_to_dead_letter(self, world):
        federation, _ = make_federation(world)  # two domains only
        federation.domain("upc").gateway_to("gmd").breaker.force_open()
        outcome = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert not outcome.delivered
        assert outcome.reason_code == "gateway-dead-letter"

    def test_failover_metrics(self, world):
        metrics = MetricsRegistry()
        federation, _ = make_federation(
            world, names=("upc", "gmd", "inria"), metrics=metrics
        )
        federation.domain("upc").gateway_to("gmd").breaker.force_open()
        federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        counters = metrics.snapshot()["counters"]
        assert counters["env.federation.failover"] == 1
        assert counters["env.federation.forwarded"] == 1

    def test_health_checks_trip_breaker_and_enable_failover(self, world):
        federation, inbox = make_federation(world, names=("upc", "gmd", "inria"))
        federation.start_health_checks(period_s=1.0, timeout_s=0.5)
        upc, gmd = federation.domain("upc"), federation.domain("gmd")
        world.network.set_link(
            upc.node, gmd.node,
            LinkSpec(latency_s=0.02, bandwidth_bps=1_000_000.0, loss=1.0),
        )
        # 4 failed probes (threshold) trip the breaker without any relay.
        world.run_for(6.0)
        gateway = upc.gateway_to("gmd")
        assert gateway.breaker.state == STATE_OPEN
        assert gateway.relays == 0
        routed = federation.federated_exchange("p-upc", "p-gmd", "app0", "app0", DOC)
        assert routed.delivered
        assert "relay" in [h.role for h in routed.hops]
        federation.stop_health_checks()

    def test_health_probes_reclose_breaker_after_heal(self, world):
        federation, _ = make_federation(world)
        federation.start_health_checks(period_s=1.0, timeout_s=0.5)
        gateway = federation.domain("upc").gateway_to("gmd")
        gateway.breaker.force_open()
        world.run_for(2.0)  # one successful probe recloses
        assert gateway.breaker.state == STATE_CLOSED
        federation.stop_health_checks()

    def test_describe_reports_resilience(self, world):
        federation, _ = make_federation(world)
        snapshot = federation.describe()
        assert "resilience" in snapshot
        assert snapshot["resilience"]["breakers"]["upc->gmd"]["state"] == STATE_CLOSED
        assert snapshot["resilience"]["health"] is None


class TestDeadlinePropagation:
    def test_expired_deadline_fails_before_pipeline(self, world):
        federation, _ = make_federation(world)
        world.run_for(5.0)
        outcome = federation.federated_exchange(
            "p-upc", "p-gmd", "app0", "app0", DOC, deadline=1.0
        )
        assert not outcome.delivered
        assert outcome.reason_code == REASON_DEADLINE_EXCEEDED

    def test_relay_deadline_cuts_retry_budget(self, world):
        """A relay against a dead link gives up at its deadline, unparked."""
        federation, _ = make_federation(world)
        upc = federation.domain("upc")
        world.network.set_link(
            upc.node, federation.domain("gmd").node,
            LinkSpec(latency_s=0.02, bandwidth_bps=1_000_000.0, loss=1.0),
        )
        started = world.now
        outcome = federation.federated_exchange(
            "p-upc", "p-gmd", "app0", "app0", DOC, deadline=world.now + 2.0
        )
        assert not outcome.delivered
        assert outcome.reason_code == REASON_DEADLINE_EXCEEDED
        assert world.now - started == pytest.approx(2.0)
        gateway = upc.gateway_to("gmd")
        assert gateway.expired == 1
        assert gateway.dead_letters == []  # expired relays are not parked

    def test_deadline_reaches_target_pipeline(self, world):
        """The absolute deadline rides the payload into the target env."""
        federation, _ = make_federation(world)
        gmd_env = federation.domain("gmd").env
        seen: dict = {}
        original = gmd_env.exchange

        def spy(request, *args, **kwargs):
            seen["deadline"] = request.deadline
            return original(request, *args, **kwargs)

        gmd_env.exchange = spy
        federation.federated_exchange(
            "p-upc", "p-gmd", "app0", "app0", DOC, deadline=world.now + 50.0
        )
        assert seen["deadline"] == pytest.approx(50.0)

    def test_local_deadline_in_plain_exchange(self, world):
        env = CSCWEnvironment(world)
        org = Organisation("upc", "UPC")
        org.add_person(Person("ana", "Ana", "upc"))
        org.add_person(Person("joan", "Joan", "upc"))
        env.knowledge_base.add_organisation(org)
        world.add_site("bcn", ["w1", "w2"])
        env.register_person(Communicator("ana", "w1"))
        env.register_person(Communicator("joan", "w2"))
        inbox: list = []
        env.register_application(
            AppDescriptor(name="app0", quadrants=QUAD, converter=converter()),
            lambda person, doc, info: inbox.append(doc),
        )
        ok = env.exchange("ana", "joan", "app0", "app0", DOC, deadline=world.now + 1.0)
        assert ok.delivered
        world.run_for(5.0)
        late = env.exchange("ana", "joan", "app0", "app0", DOC, deadline=1.0)
        assert not late.delivered
        assert late.reason_code == REASON_DEADLINE_EXCEEDED

    def test_expired_queued_deliveries_dropped_at_flush(self, world):
        metrics = MetricsRegistry()
        env = (
            CSCWEnvironment.builder().with_world(world).with_metrics(metrics).build()
        )
        org = Organisation("upc", "UPC")
        org.add_person(Person("ana", "Ana", "upc"))
        org.add_person(Person("joan", "Joan", "upc"))
        env.knowledge_base.add_organisation(org)
        world.add_site("bcn", ["w1", "w2"])
        env.register_person(Communicator("ana", "w1"))
        env.register_person(Communicator("joan", "w2"))
        inbox: list = []
        env.register_application(
            AppDescriptor(name="app0", quadrants=QUAD, converter=converter()),
            lambda person, doc, info: inbox.append(doc),
        )
        env.person_leaves("joan")
        queued = env.exchange(
            "ana", "joan", "app0", "app0", DOC, deadline=world.now + 2.0
        )
        assert queued.delivered and queued.mode == "asynchronous"
        world.run_for(5.0)  # deadline passes while joan is away
        flushed = env.person_arrives("joan")
        assert flushed == 0
        assert inbox == []
        assert metrics.snapshot()["counters"]["env.shed.expired"] == 1

    def test_default_deadline_builder_knob(self, world):
        env = (
            CSCWEnvironment.builder()
            .with_world(world)
            .with_default_deadline(10.0)
            .build()
        )
        assert env.effective_deadline(None) == pytest.approx(world.now + 10.0)
        assert env.effective_deadline(3.0) == 3.0
        with pytest.raises(ConfigurationError):
            CSCWEnvironment.builder().with_default_deadline(0.0)


class TestLoadShedding:
    def _env(self, world, limit):
        env = (
            CSCWEnvironment.builder()
            .with_world(world)
            .with_shed_limit(limit)
            .build()
        )
        org = Organisation("upc", "UPC")
        org.add_person(Person("ana", "Ana", "upc"))
        org.add_person(Person("joan", "Joan", "upc"))
        env.knowledge_base.add_organisation(org)
        world.add_site("bcn", ["w1", "w2"])
        env.register_person(Communicator("ana", "w1"))
        env.register_person(Communicator("joan", "w2"))
        inbox: list = []
        env.register_application(
            AppDescriptor(name="app0", quadrants=QUAD, converter=converter()),
            lambda person, doc, info: inbox.append(doc),
        )
        return env, inbox

    def test_overload_sheds_beyond_queue_limit(self, world):
        env, inbox = self._env(world, limit=2)
        env.person_leaves("joan")
        outcomes = [
            env.exchange("ana", "joan", "app0", "app0", DOC) for _ in range(4)
        ]
        codes = [o.reason_code for o in outcomes]
        assert codes == [
            REASON_DELIVERED, REASON_DELIVERED, REASON_OVERLOAD, REASON_OVERLOAD,
        ]
        assert env.pending_for("joan") == 2
        env.person_arrives("joan")
        assert len(inbox) == 2

    def test_shed_limit_validation(self, world):
        with pytest.raises(ConfigurationError):
            CSCWEnvironment.builder().with_shed_limit(0)

    def test_exchange_many_sheds_and_expires(self, world):
        from repro.environment.environment import ExchangeRequest

        env, inbox = self._env(world, limit=1)
        env.person_leaves("joan")
        requests = [
            ExchangeRequest("ana", "joan", "app0", "app0", DOC) for _ in range(3)
        ]
        outcomes = env.exchange_many(requests)
        assert [o.reason_code for o in outcomes] == [
            REASON_DELIVERED, REASON_OVERLOAD, REASON_OVERLOAD,
        ]
        world.run_for(10.0)
        expired = env.exchange_many(
            [ExchangeRequest("ana", "joan", "app0", "app0", DOC, deadline=1.0)]
        )
        assert expired[0].reason_code == REASON_DEADLINE_EXCEEDED


class TestMessagingDeadline:
    def test_expired_envelope_non_delivers(self, world):
        from repro.messaging.mta import MessageTransferAgent
        from repro.messaging.names import OrName
        from repro.messaging.ua import UserAgent

        world.add_site("a", ["mta-a", "wa"])
        world.add_site("b", ["mta-b", "wb"])
        mta_a = MessageTransferAgent(world, "mta-a", "a", [("xx", "", "a")])
        mta_b = MessageTransferAgent(world, "mta-b", "b", [("xx", "", "b")])
        mta_a.add_peer("b", "mta-b")
        mta_b.add_peer("a", "mta-a")
        mta_a.routing.add_default("b")
        mta_b.routing.add_default("a")
        alice = OrName(country="xx", admd="", prmd="a", surname="alice")
        bob = OrName(country="xx", admd="", prmd="b", surname="bob")
        ua_a = UserAgent(world, "wa", alice, "mta-a")
        ua_b = UserAgent(world, "wb", bob, "mta-b")
        ua_a.register()
        ua_b.register()
        reports: list = []
        mta_a.add_report_hook(reports.append)
        # In time: delivered normally.
        ua_a.send([bob], "on time", "body", expires_at=world.now + 30.0)
        world.run_for(5.0)
        assert len(ua_b.list_inbox()) == 1
        # Already expired at processing time: NDR with the deadline reason.
        envelope = ua_a.compose([bob], "too late", "body", expires_at=world.now)
        ua_a.submit(envelope)
        world.run_for(5.0)
        assert len(ua_b.list_inbox()) == 1
        expired = [
            r for r in reports
            if r.get("report") == "non-delivery"
            and r.get("reason") == "deadline-exceeded"
        ]
        assert len(expired) == 1

    def test_relay_deadline_constant_matches_env(self):
        # One reason-code vocabulary across layers: gateway, environment,
        # and messaging all call a missed deadline the same thing.
        from repro.messaging.reports import REASON_EXPIRED

        assert REASON_RELAY_DEADLINE == REASON_DEADLINE_EXCEEDED == REASON_EXPIRED


class TestGatewayRegressions:
    """Dedicated regressions for the two gateway fault-path bugs."""

    def _gateway(self, world, latency_s=0.01, serve=True, **kw):
        from repro.federation.gateway import Gateway
        from repro.sim.transport import RequestReply

        network = world.network
        network.add_node("src", site="s1")
        network.add_node("dst", site="s2")
        network.set_link(
            "src", "dst", LinkSpec(latency_s=latency_s, bandwidth_bps=1e9)
        )
        rpc_src = RequestReply(network, "src", port="gateway")
        rpc_dst = RequestReply(network, "dst", port="gateway")
        if serve:
            rpc_dst.serve("relay", lambda payload: {"ok": True, "n": payload["n"]})
        return Gateway(rpc_src, "a", "b", "dst", **kw)

    def test_late_reply_fires_on_reply_exactly_once(self, world):
        """Regression: link latency > retry interval makes several attempts
        race; only the first reply may settle the relay."""
        gateway = self._gateway(world, latency_s=1.0)
        replies: list = []
        letters: list = []
        gateway.relay({"n": 1}, lambda r, a: replies.append((r, a)), letters.append)
        world.run_for(12.0)
        # attempts at 0 / 0.5 / 1.5 all get replies (~2 s round trip each):
        # the first settles, the rest are counted as duplicates, and the
        # dead-letter path never fires.
        assert len(replies) == 1
        assert replies[0][0]["ok"] is True
        assert gateway.delivered == 1
        assert gateway.duplicate_replies >= 1
        assert letters == []
        assert gateway.stats()["dead_letters"] == 0

    def test_redrive_preserves_dead_letter_callback(self, world):
        """Regression: a redriven letter that dies again must notify the
        original on_dead_letter, and stats must not double-count."""
        gateway = self._gateway(world)
        world.network.node("dst").crash()
        replies: list = []
        letters: list = []
        gateway.relay({"n": 7}, lambda r, a: replies.append(r), letters.append)
        world.run_for(10.0)
        assert len(letters) == 1
        assert gateway.stats()["dead_letters"] == 1
        # Redrive while the target is still down: the letter dies again
        # and the preserved callback reports it.
        assert gateway.redrive() == 1
        world.run_for(10.0)
        assert len(letters) == 2
        assert len(gateway.dead_letters) == 2  # history keeps both entries
        assert gateway.stats()["dead_letters"] == 1  # but only one is live
        # Heal and redrive again: the original on_reply finally fires.
        world.network.node("dst").recover()
        assert gateway.redrive() == 1
        world.run_for(10.0)
        assert replies and replies[0]["n"] == 7
        assert gateway.stats()["dead_letters"] == 0
        assert gateway.redrive() == 0

    def test_redrive_recloses_breaker(self, world):
        breaker = CircuitBreaker(world.engine, failure_threshold=4, cooldown_s=60.0)
        gateway = self._gateway(world, breaker=breaker)
        world.network.node("dst").crash()
        letters: list = []
        gateway.relay({"n": 1}, lambda r, a: None, letters.append)
        world.run_for(10.0)
        assert breaker.state == STATE_OPEN  # one dead relay = 4 failures
        world.network.node("dst").recover()
        delivered_before = gateway.delivered
        assert gateway.redrive() == 1  # redrive asserts the link healed
        assert breaker.state == STATE_CLOSED
        world.run_for(5.0)
        assert gateway.delivered == delivered_before + 1
