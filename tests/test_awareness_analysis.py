"""Tests for the awareness service and the analysis package."""

from __future__ import annotations

import pytest

from repro.activity.dependencies import (
    BEFORE,
    SHARES_INFORMATION,
    SHARES_RESOURCE,
    DependencyGraph,
)
from repro.activity.model import Activity, ActivityRegistry
from repro.analysis.activity_network import (
    collaboration_graph,
    coupling_clusters,
    critical_path,
    key_collaborators,
    ordering_dag,
)
from repro.analysis.communication import (
    activity_breakdown,
    cross_organisation_flows,
    reciprocity,
    summarize,
    top_talkers,
)
from repro.communication.model import (
    CommunicationContext,
    CommunicationLog,
    Communicator,
    Exchange,
)
from repro.environment.awareness import AwarenessService
from repro.environment.environment import CSCWEnvironment
from repro.org.model import Organisation, Person


@pytest.fixture
def env(world) -> CSCWEnvironment:
    env = CSCWEnvironment(world)
    org = Organisation("upc", "UPC")
    for person_id in ("ana", "joan", "marta", "pere"):
        org.add_person(Person(person_id, person_id.title(), "upc"))
    env.knowledge_base.add_organisation(org)
    world.add_site("bcn", ["w1", "w2", "w3", "w4"])
    env.register_person(Communicator("ana", "w1"))
    env.register_person(Communicator("joan", "w2", present=False))
    env.register_person(Communicator("marta", "w3"))
    env.create_activity("survey", "survey", members={"ana": "lead", "joan": "m"})
    env.create_activity("report", "report", members={"ana": "editor", "marta": "m"})
    env.create_activity("unrelated", "other", members={"pere": "m"})
    env.dependencies.add(BEFORE, "survey", "report")
    env.dependencies.add(SHARES_INFORMATION, "survey", "report", annotation="data-set")
    env.dependencies.add(SHARES_RESOURCE, "report", "unrelated", annotation="printer")
    env.activities.get("survey").start(0.0)
    return env


class TestAwareness:
    def test_my_activities(self, env):
        awareness = AwarenessService(env)
        assert awareness.my_activities("ana") == ["report", "survey"]
        assert awareness.my_activities("ana", active_only=True) == ["survey"]

    def test_related_activities_one_hop(self, env):
        awareness = AwarenessService(env)
        # pere's 'unrelated' is reachable from ana's 'report' via the printer.
        assert awareness.related_activities("pere") == ["report"]
        assert awareness.related_activities("ana") == ["unrelated"]

    def test_activity_neighbourhood(self, env):
        awareness = AwarenessService(env)
        hood = awareness.activity_neighbourhood("report")
        assert hood["predecessors"] == ["survey"]
        assert hood["shares_resources_with"] == ["unrelated"]
        assert hood["shares_information_with"] == ["survey"]

    def test_colleagues_and_reachability(self, env):
        awareness = AwarenessService(env)
        colleagues = awareness.colleagues_of("ana")
        by_id = {c.person_id: c for c in colleagues}
        assert set(by_id) == {"joan", "marta"}
        assert by_id["joan"].shared_activities == ("survey",)
        assert not by_id["joan"].present
        assert by_id["marta"].present
        assert by_id["marta"].organisation == "upc"
        assert awareness.reachable_now("ana") == ["marta"]

    def test_who_works_with_object(self, env):
        awareness = AwarenessService(env)
        assert awareness.who_works_with("data-set") == ["ana", "joan", "marta"]
        assert awareness.who_works_with("nothing") == []

    def test_unknown_activity_rejected(self, env):
        from repro.util.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            AwarenessService(env).activity_neighbourhood("ghost")


def _log() -> CommunicationLog:
    log = CommunicationLog()
    ctx_ab = CommunicationContext(activity="act1", from_org="upc", to_org="gmd")
    ctx_ba = CommunicationContext(activity="act1", from_org="gmd", to_org="upc")
    log.record(Exchange("ana", "wolf", "synchronous", "text", 100, 1.0, ctx_ab))
    log.record(Exchange("wolf", "ana", "synchronous", "text", 50, 2.0, ctx_ba))
    log.record(Exchange("ana", "tom", "asynchronous", "document", 400, 3.0,
                        CommunicationContext(activity="act2", from_org="upc", to_org="lancaster")))
    log.record(Exchange("ana", "wolf", "asynchronous", "text", 70, 4.0, ctx_ab))
    return log


class TestCommunicationAnalysis:
    def test_summary(self):
        summary = summarize(_log())
        assert summary.exchanges == 4
        assert summary.bytes_total == 620
        assert summary.synchronous == 2
        assert summary.distinct_pairs == 3
        assert summary.synchronous_share == 0.5

    def test_empty_summary(self):
        summary = summarize(CommunicationLog())
        assert summary.exchanges == 0
        assert summary.synchronous_share == 0.0

    def test_top_talkers(self):
        assert top_talkers(_log(), limit=1) == [("ana", 3)]

    def test_cross_org_flows(self):
        flows = cross_organisation_flows(_log())
        assert flows[("upc", "gmd")] == 2
        assert flows[("gmd", "upc")] == 1
        assert flows[("upc", "lancaster")] == 1

    def test_activity_breakdown(self):
        breakdown = activity_breakdown(_log())
        assert breakdown == {"act1": 3, "act2": 1}

    def test_reciprocity(self):
        # (ana,wolf) reciprocated; (wolf,ana) reciprocated; (ana,tom) not.
        assert reciprocity(_log()) == pytest.approx(2 / 3)
        assert reciprocity(CommunicationLog()) == 0.0


class TestActivityNetwork:
    @pytest.fixture
    def programme(self):
        graph = DependencyGraph()
        graph.add(BEFORE, "a", "b")
        graph.add(BEFORE, "b", "d")
        graph.add(BEFORE, "a", "c")
        graph.add(SHARES_RESOURCE, "c", "d", annotation="lab")
        graph.add(SHARES_INFORMATION, "b", "c")
        return graph

    def test_ordering_dag(self, programme):
        dag = ordering_dag(programme, ["a", "b", "c", "d"])
        assert set(dag.edges) == {("a", "b"), ("b", "d"), ("a", "c")}

    def test_critical_path(self, programme):
        durations = {"a": 2.0, "b": 3.0, "c": 1.0, "d": 4.0}
        path, total = critical_path(programme, durations)
        assert path == ["a", "b", "d"]
        assert total == 9.0

    def test_critical_path_without_edges(self):
        graph = DependencyGraph()
        path, total = critical_path(graph, {"x": 5.0, "y": 2.0})
        assert path == ["x"]
        assert total == 5.0

    def test_lone_heavy_activity_beats_chain(self, programme):
        durations = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0, "monster": 99.0}
        path, total = critical_path(programme, durations)
        assert path == ["monster"]
        assert total == 99.0

    def test_coupling_clusters(self, programme):
        clusters = coupling_clusters(programme, ["a", "b", "c", "d"])
        as_sets = sorted(clusters, key=len)
        assert {"b", "c", "d"} in as_sets
        assert {"a"} in as_sets

    def test_collaboration_graph_and_centrality(self):
        registry = ActivityRegistry()
        first = registry.create(Activity("a1", "one"))
        second = registry.create(Activity("a2", "two"))
        for person in ("ana", "joan"):
            first.join(person)
        for person in ("ana", "joan", "marta"):
            second.join(person)
        graph = collaboration_graph(registry)
        assert graph["ana"]["joan"]["weight"] == 2
        assert key_collaborators(registry, limit=1)[0][0] == "ana"

    def test_key_collaborators_empty(self):
        assert key_collaborators(ActivityRegistry()) == []
