#!/usr/bin/env sh
# One-command tier-1 verification (tox-free): unit/integration tests,
# whole-tree bytecode compilation, a doctest pass over the
# observability subsystem, and a smoke run of the exchange-throughput
# bench (exercises the fast path end to end without timing asserts).
# Run from the repository root:
#
#   sh scripts/check.sh
#
set -e

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== pytest (tier-1) =="
python -m pytest -x -q

echo "== compileall src =="
python -m compileall -q src

echo "== doctest src/repro/obs =="
python - <<'EOF'
import doctest
import sys

failures = 0
for module_name in ("repro.obs.metrics", "repro.obs.tracing", "repro.obs.instrument"):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    print(f"{module_name}: {result.attempted} doctests, {result.failed} failures")
    failures += result.failed
sys.exit(1 if failures else 0)
EOF

echo "== bench_e7 throughput (smoke) =="
python benchmarks/bench_e7_throughput.py --smoke

echo "== all checks passed =="
