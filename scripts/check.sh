#!/usr/bin/env sh
# One-command tier-1 verification (tox-free): unit/integration tests,
# whole-tree bytecode compilation, a doctest pass over the
# observability subsystem, and a smoke run of the exchange-throughput
# bench (exercises the fast path end to end without timing asserts).
# Run from the repository root:
#
#   sh scripts/check.sh
#
set -e

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== pytest (tier-1) =="
python -m pytest -x -q

echo "== compileall src =="
python -m compileall -q src

echo "== doctest src/repro/obs =="
python - <<'EOF'
import doctest
import sys

failures = 0
for module_name in (
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.obs.instrument",
    "repro.obs.context",
    "repro.obs.events",
    "repro.obs.export",
    "repro.obs.analyze",
    "repro.obs.windows",
    "repro.obs.profile",
):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    print(f"{module_name}: {result.attempted} doctests, {result.failed} failures")
    failures += result.failed
sys.exit(1 if failures else 0)
EOF

echo "== bench_e7 throughput (smoke) =="
python benchmarks/bench_e7_throughput.py --smoke

echo "== federation smoke (2-domain round trip) =="
python - <<'EOF'
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.information.interchange import FormatConverter, make_common
from repro.sim.world import World

world = World(seed=42)
federation = Federation.partition(world, {"upc": ["ana"], "gmd": ["bob"]})
inbox = []
for index, name in enumerate(("editor", "reviewer")):
    key = f"fmt{index}"
    converter = FormatConverter(
        key,
        lambda doc, key=key: make_common("note", doc[f"{key}-title"], doc[f"{key}-body"]),
        lambda common, key=key: {f"{key}-title": common["title"], f"{key}-body": common["body"]},
    )
    federation.register_application(
        AppDescriptor(name=name, quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE], converter=converter),
        lambda person, doc, info: inbox.append((person, doc)),
    )
outcome = federation.federated_exchange(
    "ana", "bob", "editor", "reviewer", {"fmt0-title": "ping", "fmt0-body": "x"}
)
assert outcome.delivered and outcome.cross_domain, outcome
assert [hop.role for hop in outcome.hops] == ["origin", "deliver", "reply"]
assert inbox == [("bob", {"fmt1-title": "ping", "fmt1-body": "x"})], inbox
back = federation.federated_exchange(
    "bob", "ana", "reviewer", "editor", {"fmt1-title": "pong", "fmt1-body": "y"}
)
assert back.delivered and back.origin == "gmd" and back.target == "upc", back
print(f"round trip ok: {outcome.latency_s*1000:.1f} ms out, {back.latency_s*1000:.1f} ms back")
EOF

echo "== bench_e8 federation (quick) =="
python benchmarks/bench_e8_federation.py --quick

echo "== federation fast-path guard (batched cross-domain cost) =="
python - <<'EOF'
# Regression fence for the federated batch fast path: the quick E12 run
# above wrote BENCH_federation.json; a change that reopens the
# cross-domain gap (per-request relays, re-resolved homes, unbatched
# intra runs) fails here, not in a full bench run someone forgets.
import json

with open("BENCH_federation.json", encoding="utf-8") as handle:
    blob = json.load(handle)
for sweep in blob["sweeps"]:
    if "cross_eps" not in sweep:
        continue
    n = sweep["domains"]
    ratio = sweep["cross_over_intra_wall"]
    assert ratio <= 2.0, (
        f"{n}-domain batched cross exchange costs {ratio}x a per-request "
        "intra exchange (budget: 2.0x)"
    )
    assert sweep["batch_speedup"] >= 2.0, (
        f"{n}-domain batch speedup {sweep['batch_speedup']}x under 2.0x"
    )
    # one batched relay per (pair, run): n pairs -> n relays
    assert sweep["cross_batch_relays"] == n, sweep["cross_batch_relays"]
    # exactly two home lookups per batched request (one per endpoint)
    assert sweep["home_hits_per_batch_request"] == 2.0, (
        sweep["home_hits_per_batch_request"]
    )
    print(f"  {n} domains: {ratio}x intra wall, "
          f"{sweep['batch_speedup']}x per-request cross, "
          f"{sweep['cross_batch_relays']} batched relays, "
          f"{sweep['home_hits_per_batch_request']} home hits/request")
print("fast-path guard ok")
EOF

echo "== resilience smoke (failover across an open breaker) =="
python - <<'EOF'
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.sim.world import World

world = World(seed=42)
federation = Federation.partition(
    world, {"upc": ["ana"], "gmd": ["bob"], "inria": ["eva"]}
)
inbox = []
federation.register_application(
    AppDescriptor(name="editor", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE]),
    lambda person, doc, info: inbox.append((person, doc)),
)
# Trip the direct upc->gmd breaker: the exchange must route via inria.
federation.domain("upc").gateway_to("gmd").breaker.force_open()
outcome = federation.federated_exchange(
    "ana", "bob", "editor", "editor", {"title": "ping", "body": "x"}
)
assert outcome.delivered, outcome
assert [hop.role for hop in outcome.hops] == ["origin", "relay", "deliver", "reply"], outcome.hops
assert outcome.hops[1].domain == "inria", outcome.hops
assert inbox == [("bob", {"title": "ping", "body": "x"})], inbox
# Deadlines propagate: an already-expired exchange fails fast, reason-coded.
expired = federation.federated_exchange(
    "ana", "bob", "editor", "editor", {"title": "late", "body": "y"},
    deadline=world.now - 1.0,
)
assert not expired.delivered and expired.reason_code == "deadline-exceeded", expired
print(f"failover ok via {outcome.hops[1].domain}: {outcome.latency_s*1000:.1f} ms")
EOF

echo "== bench_e9 resilience (quick) =="
python benchmarks/bench_e9_resilience.py --quick

echo "== obs smoke (one connected trace across a failover exchange) =="
python - <<'EOF'
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.federation import Federation
from repro.obs import EventLog, TraceAnalyzer, Tracer, chrome_trace_json
from repro.sim.world import World
import json

world = World(seed=42)
tracer = Tracer()
events = EventLog()
federation = Federation.partition(
    world, {"upc": ["ana"], "gmd": ["bob"], "inria": ["eva"]},
    tracer=tracer, events=events,
)
federation.register_application(
    AppDescriptor(name="editor", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE]),
    lambda person, doc, info: None,
)
# Trip the direct breaker so the relay reroutes via inria: the trace
# must still come back as ONE connected tree under the origin's id.
federation.domain("upc").gateway_to("gmd").breaker.force_open()
outcome = federation.federated_exchange(
    "ana", "bob", "editor", "editor", {"title": "ping", "body": "x"}
)
assert outcome.delivered, outcome
analyzer = TraceAnalyzer.from_tracers(tracer)
[trace_id] = analyzer.trace_ids()
assert outcome.outcome.trace_id == trace_id, (outcome.outcome.trace_id, trace_id)
assert analyzer.is_connected(trace_id), analyzer.summary()
path = [span["name"] for span in analyzer.critical_path(trace_id)]
assert path[0] == "federation.exchange" and "federation.forward" in path, path
coverage = analyzer.critical_path_coverage(trace_id)
assert coverage >= 0.95, coverage
blob = json.loads(chrome_trace_json(tracer.finished()))
assert any(event["ph"] == "X" for event in blob["traceEvents"])
assert events.events(kind="breaker-open"), events.kinds()
print(f"trace {trace_id} connected: {len(path)} hops on the critical "
      f"path, coverage {coverage:.2f}, events {events.kinds()}")
EOF

echo "== determinism guard (no wall clock outside obs wall mode) =="
python - <<'EOF'
# Simulated time is the repo's contract: the only sanctioned wall-clock
# reads live in repro/obs (Tracer(wall=True) profiling mode).  A stray
# time.time()/datetime.now() anywhere else silently breaks seeded
# reproducibility, so fail loudly here.
import pathlib
import re
import sys

FORBIDDEN = re.compile(r"time\.time\(|datetime\.now\(")
hits = []
for path in sorted(pathlib.Path("src").rglob("*.py")):
    if "obs" in path.parts:
        continue  # wall-mode tracing is the sanctioned escape hatch
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if FORBIDDEN.search(line):
            hits.append(f"{path}:{number}: {line.strip()}")
print(f"scanned src/ for wall-clock reads: {len(hits)} hits")
if hits:
    print("\n".join(hits))
    sys.exit(1)
EOF

echo "== bench_e10 observability (quick) =="
python benchmarks/bench_e10_observability.py --quick

echo "== control smoke (one burn -> one action -> one reversal) =="
python - <<'EOF'
# Deterministic closed loop: starve an SLO until it burns (one edge),
# watch the control plane tighten the shed limit once, then feed it a
# clean window and watch the single reversal restore the exact limit.
from repro.control import ControlPlane, ControlPolicy
from repro.obs import EventLog, MetricsRegistry, RatioSLO, SLOEngine
from repro.obs.events import KIND_CONTROL_ACTION, KIND_CONTROL_REVERT
from repro.obs.tracing import Tracer
from repro.sim.world import World


class Shedder:
    shed_limit = 10
    def set_shed_limit(self, limit):
        self.shed_limit = limit


world = World(seed=7)
metrics, events = MetricsRegistry(), EventLog()
slo = SLOEngine(world.engine, metrics, events=events, sample_period_s=0.5).declare(
    RatioSLO("delivery", "good", "total", target=0.9, window_s=4.0)
)
slo.start()
shedder = Shedder()
plane = ControlPlane(
    world.engine,
    policy=ControlPolicy(tick_s=0.25, cooldown_s=1.0),
    metrics=metrics, events=events, tracer=Tracer(),
).watch_slo(slo)
plane.manage_environment("env", shedder)
plane.start()
for _ in range(4):  # burn: a window of pure errors
    metrics.inc("total")
    world.run_for(0.5)
assert plane.burning == {"delivery"} and shedder.shed_limit == 5, plane.describe()
for _ in range(12):  # recovery: a clean stretch longer than the window
    metrics.inc("good"); metrics.inc("total")
    world.run_for(0.5)
assert plane.burning == set() and shedder.shed_limit == 10, plane.describe()
assert plane.actions_applied == 1 and plane.actions_reverted == 1, plane.describe()
assert plane.fully_reverted()
[apply_event] = events.events(kind=KIND_CONTROL_ACTION)
[revert_event] = events.events(kind=KIND_CONTROL_REVERT)
assert apply_event.trace_id and revert_event.trace_id
print(f"control loop ok: burn at t={apply_event.time:.2f}s applied "
      f"{apply_event.attrs['action']}, reverted at t={revert_event.time:.2f}s")
EOF

echo "== bench_e11 control (quick) =="
python benchmarks/bench_e11_control.py --quick

echo "== shard smoke (cross-shard exchange + keyed eviction) =="
python - <<'EOF'
# The ISSUE 7 storm, end to end: exchange across two DSA shards, then
# mutate an unrelated org and assert the cached route SURVIVES (the old
# whole-cache listener evicted everything on any KB mutation).
from repro.communication.model import Communicator
from repro.environment.environment import CSCWEnvironment
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.org.model import Organisation, Person
from repro.sharding import ShardedKnowledgeBase
from repro.sim.world import World

world = World(seed=42)
env = CSCWEnvironment.builder().with_world(world).with_sharding(4).build()
kb = env.knowledge_base
assert isinstance(kb, ShardedKnowledgeBase), type(kb)
for org_id in ("upc", "gmd", "acme", "zeta"):
    org = Organisation(org_id, org_id.upper())
    org.add_person(Person(f"p-{org_id}", f"P {org_id}", org_id))
    kb.add_organisation(org)
    world.network.add_node(f"ws-{org_id}", site=org_id)
    env.register_person(Communicator(f"p-{org_id}", f"ws-{org_id}"))
kb.policies.declare("upc", "gmd", {"*"}, symmetric=True)
inbox = []
env.applications.register(
    AppDescriptor(name="editor", quadrants=[Q_DIFFERENT_TIME_DIFFERENT_PLACE]),
    lambda person, doc, info: inbox.append(person),
)
by_shard = {kb.shard_of_org(o.org_id) for o in kb.organisations()}
assert len(by_shard) >= 2, f"4 orgs landed on one shard: {by_shard}"
outcome = env.exchange("p-upc", "p-gmd", "editor", "editor", {"title": "hi", "body": "x"})
assert outcome.delivered and inbox == ["p-gmd"], (outcome, inbox)
before = env.resolution.stats()
kb.add_person(Person("hire", "New Hire", "acme"))          # unrelated org
kb.move_person("p-zeta", "acme")                           # unrelated person
assert env.resolution.stats()["evictions"] == before["evictions"], env.resolution.stats()
assert env.resolution.stats()["routes_cached"] == before["routes_cached"]
again = env.exchange("p-upc", "p-gmd", "editor", "editor", {"title": "hi", "body": "x"})
assert again.delivered
assert env.resolution.stats()["route_hits"] == before["route_hits"] + 1
print(f"cross-shard exchange ok across {len(by_shard)} shards; "
      "unrelated mutations evicted 0 cached routes")
EOF

echo "== bench_e12 shard scale (quick) =="
python benchmarks/bench_e12_shard.py --quick

echo "== mediation smoke (multi-hop plan + negotiated downgrade) =="
python - <<'EOF'
# The PR 8 tentpole, end to end: four apps on a mediated environment,
# a mediator-only format reaching the message system through a
# synthesized multi-hop plan, and a fidelity floor either accepting a
# negotiated downgrade or failing with the structured reason code.
from repro.apps.document import DocumentProcessor
from repro.apps.message_system import MessageSystem
from repro.communication.model import Communicator
from repro.environment.environment import REASON_FIDELITY, CSCWEnvironment
from repro.environment.registry import AppDescriptor, Q_DIFFERENT_TIME_DIFFERENT_PLACE
from repro.mediation import KIND_PARTIAL, direct_capability
from repro.org.model import Organisation, Person
from repro.sim.world import World
from repro.util.errors import FidelityError

world = World(seed=8)
env = CSCWEnvironment.builder().with_world(world).with_mediation().build()
org = Organisation("upc", "UPC")
org.add_person(Person("ana", "Ana", "upc"))
org.add_person(Person("bob", "Bob", "upc"))
env.knowledge_base.add_organisation(org)
world.add_site("bcn", ["ws-ana", "ws-bob"])
env.register_person(Communicator("ana", "ws-ana"))
env.register_person(Communicator("bob", "ws-bob"))
message_system = MessageSystem()
message_system.attach(env)
DocumentProcessor().attach(env)
QUAD = [Q_DIFFERENT_TIME_DIFFERENT_PLACE]
env.register_application(
    AppDescriptor(name="faxline", quadrants=QUAD, native_format="fax",
                  capabilities=[direct_capability(
                      "fax", "scan",
                      lambda d: {"scan-title": d.get("fax-title", ""),
                                 "scan-body": d.get("fax-body", "")},
                      fidelity=0.95, kind=KIND_PARTIAL, exporter="faxline")]),
    lambda person, doc, info: None,
)
env.register_application(
    AppDescriptor(name="scanstore", quadrants=QUAD, native_format="scan",
                  capabilities=[direct_capability(
                      "scan", "document",
                      lambda d: {"title": d.get("scan-title", ""),
                                 "paragraphs": [d.get("scan-body", "")]},
                      fidelity=0.9, kind=KIND_PARTIAL, exporter="scanstore")]),
    lambda person, doc, info: None,
)
plan = env.mediator.plan("fax", "memo")
assert plan.hops >= 3, plan
downgraded = env.mediator.negotiate("fax", "memo", min_fidelity=0.8)
assert downgraded.fidelity < 1.0
try:
    env.mediator.negotiate("fax", "memo", min_fidelity=0.9)
    raise AssertionError("floor 0.9 must reject the 0.855 plan")
except FidelityError:
    pass
doc = {"fax-title": "offer", "fax-body": "sign here"}
delivered = env.exchange("ana", "bob", "faxline", "message-system", doc,
                         min_fidelity=0.8)
assert delivered.delivered, delivered
assert message_system.inbox("bob")[-1].document["subject"] == "offer"
refused = env.exchange("ana", "bob", "faxline", "message-system", doc,
                       min_fidelity=0.99)
assert not refused.delivered and refused.reason_code == REASON_FIDELITY, refused
assert env.mediator.stats()["whole_cache_invalidations"] == 0
print(f"mediated {' -> '.join(plan.path)} ({plan.hops} hops, "
      f"fidelity {plan.fidelity:.3f}); downgrade accepted at floor 0.8, "
      "rejected at 0.9; zero whole-cache invalidations")
EOF

echo "== bench_e13 mediation (quick) =="
python benchmarks/bench_e13_mediation.py --quick

echo "== telemetry smoke (labelled family, sampled trace, profile) =="
python - <<'EOF'
# The PR 10 tentpole surface in one breath: a labelled counter family
# with deterministic snapshots, a sampling tracer that drops a healthy
# trace but tail-retains a failed one, and a sim-time profile built
# from the retained spans.
from repro.obs import MetricsRegistry, Tracer, profile_spans

registry = MetricsRegistry()
outcomes = registry.counter("env.exchange.outcomes", labels=("domain", "outcome"))
outcomes.labels(domain="upc", outcome="delivered").inc()
outcomes.labels(domain="upc", outcome="failed").inc(2)
snapshot = registry.snapshot()["counters"]
assert snapshot == {
    "env.exchange.outcomes{domain=upc,outcome=delivered}": 1,
    "env.exchange.outcomes{domain=upc,outcome=failed}": 2,
}, snapshot
assert registry.cardinality()["env.exchange.outcomes"] == 2

ticks = iter([0.0, 1.0, 2.0, 3.0])
tracer = Tracer(clock=lambda: next(ticks)).configure_sampling(0.0, seed=11)
with tracer.span("env.exchange"):
    pass                                    # healthy: sampled out
with tracer.span("env.exchange", reason_code="unknown-receiver"):
    pass                                    # failed: tail-retained
spans = tracer.finished()
assert [s.tags.get("reason_code") for s in spans] == ["unknown-receiver"], spans
assert tracer.sampled_out == 2 and tracer.tail_retained == 1

profile = profile_spans(spans)
[row] = profile.layers()
assert row["layer"] == "env" and row["total_s"] == 1.0, row
print(f"labelled family ok ({registry.cardinality()}), tail retention ok, "
      f"profile: {row['layer']} self {row['self_s']}s")
EOF

echo "== bench_e14 telemetry (quick) =="
python benchmarks/bench_e14_telemetry.py --quick

echo "== telemetry guard (cardinality, retention, overhead cut) =="
python - <<'EOF'
# Regression fence for the PR 10 telemetry stack: the quick E18 run
# above wrote BENCH_telemetry.json; fail the build on a label-family
# cardinality breach, a lost error trace (tail retention must be
# complete and connected), growing SLO window memory, a non-reproducible
# export, or a sampling overhead cut below the floor.
import json

with open("BENCH_telemetry.json", encoding="utf-8") as handle:
    blob = json.load(handle)
limit = blob["cardinality_limit"]
for row in blob["sweep"] + [blob["overhead_point"]]:
    assert row["max_cardinality"] <= limit, row
    assert row["error_retention"] == 1.0, (
        f"lost error traces: {row['errors_retained']}/{row['errors_expected']}"
    )
    assert row["disconnected"] == 0, row
last = blob["sweep"][-1]
assert last["window_cells_mid"] == last["window_cells_end"], last
determinism = blob["determinism"]
assert determinism["snapshot_identical"] and determinism["jsonl_identical"]
reduction = blob["overhead"]["overhead_reduction"]
floor = blob["overhead"]["reduction_floor"]
assert reduction == "inf" or reduction >= floor, (
    f"sampling cut tracer overhead only {reduction}x (floor {floor}x)"
)
print(f"telemetry guard ok: cardinality <= {limit}, "
      f"{last['errors_retained']}/{last['errors_expected']} error traces "
      f"retained, {reduction}x overhead cut")
EOF

echo "== all checks passed =="
