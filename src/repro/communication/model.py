"""The communication model: communicators, exchanges, contexts.

Paper section 5: *"The communication model aims to represents
communication in terms of the communicators, the information objects they
exchange, and the context within which communication takes place."*

A :class:`Communicator` is a person's communication endpoint (their node,
the media they can receive, and their presence).  Every concrete exchange
— synchronous or asynchronous — is recorded as an :class:`Exchange` in the
:class:`CommunicationLog`, which supports the who-talks-to-whom analyses
message-based systems build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.messaging.body_parts import MEDIA_TEXT
from repro.messaging.names import OrName
from repro.util.errors import ConfigurationError, UnknownObjectError


@dataclass
class Communicator:
    """One person's communication endpoint."""

    person_id: str
    node: str
    or_name: OrName | None = None
    #: media this communicator can receive directly
    accepts_media: set[str] = field(default_factory=lambda: {MEDIA_TEXT})
    #: presence: True while the user is at their workstation
    present: bool = True

    def __post_init__(self) -> None:
        if not self.person_id or not self.node:
            raise ConfigurationError("communicator needs a person id and a node")
        if not self.accepts_media:
            raise ConfigurationError("communicator must accept at least one medium")

    def can_receive(self, media: str) -> bool:
        """True when the medium needs no conversion for this communicator."""
        return media in self.accepts_media


@dataclass(frozen=True)
class CommunicationContext:
    """The setting of an exchange: activity, purpose, organisation pair."""

    activity: str = ""
    purpose: str = ""
    from_org: str = ""
    to_org: str = ""


@dataclass(frozen=True)
class Exchange:
    """One recorded communication act."""

    sender: str
    receiver: str
    mode: str  # "synchronous" | "asynchronous"
    media: str
    size_bytes: int
    time: float
    context: CommunicationContext = CommunicationContext()
    info_objects: tuple[str, ...] = ()


class CommunicatorRegistry:
    """All communicators known to one environment."""

    def __init__(self) -> None:
        self._communicators: dict[str, Communicator] = {}

    def register(self, communicator: Communicator) -> Communicator:
        """Register an endpoint (one per person)."""
        if communicator.person_id in self._communicators:
            raise ConfigurationError(
                f"communicator for {communicator.person_id!r} already registered"
            )
        self._communicators[communicator.person_id] = communicator
        return communicator

    def get(self, person_id: str) -> Communicator:
        """Look up a communicator."""
        try:
            return self._communicators[person_id]
        except KeyError:
            raise UnknownObjectError(f"no communicator for {person_id!r}") from None

    def all(self) -> list[Communicator]:
        """All registered communicators."""
        return list(self._communicators.values())

    def remove(self, person_id: str) -> Communicator:
        """Remove and return a person's endpoint (e.g. on domain move)."""
        try:
            return self._communicators.pop(person_id)
        except KeyError:
            raise UnknownObjectError(f"no communicator for {person_id!r}") from None

    def set_presence(self, person_id: str, present: bool) -> None:
        """Flip a person's presence (arrive at / leave the workstation)."""
        self.get(person_id).present = present

    def present_ids(self) -> list[str]:
        """Everyone currently present, sorted."""
        return sorted(c.person_id for c in self._communicators.values() if c.present)


class CommunicationLog:
    """Records exchanges and answers structural queries."""

    def __init__(self) -> None:
        self._exchanges: list[Exchange] = []

    def record(self, exchange: Exchange) -> None:
        """Append one exchange."""
        self._exchanges.append(exchange)

    def all(self) -> list[Exchange]:
        """All exchanges in order."""
        return list(self._exchanges)

    def between(self, a: str, b: str) -> list[Exchange]:
        """Exchanges in either direction between two people."""
        return [
            e
            for e in self._exchanges
            if {e.sender, e.receiver} == {a, b}
        ]

    def by_mode(self, mode: str) -> list[Exchange]:
        """Exchanges of one mode."""
        return [e for e in self._exchanges if e.mode == mode]

    def in_activity(self, activity: str) -> list[Exchange]:
        """Exchanges that happened within one activity context."""
        return [e for e in self._exchanges if e.context.activity == activity]

    def traffic_matrix(self) -> dict[tuple[str, str], int]:
        """(sender, receiver) -> count of exchanges."""
        matrix: dict[tuple[str, str], int] = {}
        for e in self._exchanges:
            key = (e.sender, e.receiver)
            matrix[key] = matrix.get(key, 0) + 1
        return matrix

    def volume_bytes(self) -> int:
        """Total bytes exchanged."""
        return sum(e.size_bytes for e in self._exchanges)
