"""Time transparency: one send primitive across sync and async modes.

Paper section 4: *"Transparency of time deals with the mode of work,
synchronous or asynchronous.  The result of applying this transparency is
that interaction will be independent of the mode we are using."*

The :class:`TimeTransparencyBridge` gives callers a single
:meth:`converse` primitive: when the receiver is present in a live
real-time session the message goes synchronously; otherwise it falls back
to the asynchronous channel.  Callers never branch on mode — that is the
transparency.  Experiment E4 ablates this bridge.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.communication.asynchronous import AsyncChannel
from repro.communication.model import CommunicationContext, CommunicatorRegistry
from repro.communication.realtime import RealTimeSession
from repro.messaging.body_parts import text_body
from repro.util.errors import ModelError


@dataclass(frozen=True)
class ConverseResult:
    """How a converse() call was delivered."""

    mode: str  # "synchronous" | "asynchronous"
    detail: str = ""


class TimeTransparencyBridge:
    """Routes messages to the live session or the message system."""

    def __init__(
        self,
        communicators: CommunicatorRegistry,
        session: RealTimeSession | None = None,
    ) -> None:
        self._communicators = communicators
        self._session = session
        self._async_channels: dict[str, AsyncChannel] = {}
        self.synchronous_sends = 0
        self.asynchronous_sends = 0

    def attach_session(self, session: RealTimeSession) -> None:
        """Attach (or replace) the live session used for sync delivery."""
        self._session = session

    def attach_async_channel(self, person_id: str, channel: AsyncChannel) -> None:
        """Register a person's asynchronous channel (their UA wrapper)."""
        self._async_channels[person_id] = channel

    def _receiver_reachable_synchronously(self, receiver: str) -> bool:
        if self._session is None:
            return False
        if receiver not in self._session.participants():
            return False
        return self._communicators.get(receiver).present

    def converse(
        self,
        sender: str,
        receiver: str,
        text: str,
        subject: str = "",
        context: CommunicationContext = CommunicationContext(),
    ) -> ConverseResult:
        """Deliver *text* from *sender* to *receiver*, mode-independently."""
        if self._receiver_reachable_synchronously(receiver):
            assert self._session is not None
            if sender not in self._session.participants():
                # The sender joins implicitly through their async channel
                # when not in the session; fall through to async.
                pass
            else:
                self._session.say(sender, {"text": text, "subject": subject})
                self.synchronous_sends += 1
                return ConverseResult("synchronous", self._session.session_id)
        channel = self._async_channels.get(sender)
        if channel is None:
            raise ModelError(
                f"sender {sender!r} can reach {receiver!r} neither synchronously "
                "nor asynchronously (no channel registered)"
            )
        message_id = channel.send_to_person(
            sender, receiver, subject or "(conversation)", [text_body(text)], context=context
        )
        self.asynchronous_sends += 1
        return ConverseResult("asynchronous", message_id)
