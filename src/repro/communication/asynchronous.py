"""Asynchronous communication over the message handling system.

The "different time" half of the matrix: an :class:`AsyncChannel` wraps a
user agent so communication-model clients send and receive with the same
vocabulary (person ids, body parts, contexts) they use for real-time
sessions, while delivery rides the X.400-style substrate with all its
store-and-forward guarantees.
"""

from __future__ import annotations

from typing import Any

from repro.communication.model import (
    CommunicationContext,
    CommunicationLog,
    CommunicatorRegistry,
    Exchange,
)
from repro.messaging.body_parts import BodyPart, convert, text_body
from repro.messaging.ua import UserAgent
from repro.util.errors import ModelError, UnknownObjectError


class AsyncChannel:
    """Person-addressed asynchronous messaging for one sender."""

    def __init__(
        self,
        ua: UserAgent,
        communicators: CommunicatorRegistry,
        log: CommunicationLog | None = None,
    ) -> None:
        self._ua = ua
        self._communicators = communicators
        self._log = log
        self.sent = 0

    @property
    def person_id(self) -> str:
        """The sender this channel belongs to (mailbox key)."""
        return self._ua.user.mailbox

    def send_to_person(
        self,
        sender_person: str,
        receiver_person: str,
        subject: str,
        body: "list[BodyPart] | str",
        context: CommunicationContext = CommunicationContext(),
        adapt_media: bool = True,
        extensions: dict[str, Any] | None = None,
    ) -> str:
        """Send a message addressed by person id.

        The receiver's O/R name is resolved through the communicator
        registry; body parts are adapted to media the receiver accepts
        when *adapt_media* (e.g. text rendered to fax for a fax-only
        recipient).  Returns the message id.
        """
        receiver = self._communicators.get(receiver_person)
        if receiver.or_name is None:
            raise UnknownObjectError(
                f"communicator {receiver_person!r} has no O/R name; cannot message them"
            )
        parts = [text_body(body)] if isinstance(body, str) else list(body)
        if adapt_media:
            parts = [self._adapt(part, receiver.accepts_media) for part in parts]
        message_id = self._ua.send(
            [receiver.or_name], subject, parts, extensions=dict(extensions or {})
        )
        self.sent += 1
        if self._log is not None:
            for part in parts:
                self._log.record(
                    Exchange(
                        sender=sender_person,
                        receiver=receiver_person,
                        mode="asynchronous",
                        media=part.media,
                        size_bytes=part.size_bytes(),
                        time=0.0,
                        context=context,
                    )
                )
        return message_id

    @staticmethod
    def _adapt(part: BodyPart, accepted: set[str]) -> BodyPart:
        if part.media in accepted:
            return part
        for target in sorted(accepted):
            try:
                return convert(part, target)
            except Exception:
                continue
        raise ModelError(
            f"cannot adapt a {part.media!r} body part to any of {sorted(accepted)}"
        )

    # -- receiving ------------------------------------------------------------
    def inbox_summaries(self, unread_only: bool = False) -> list[dict[str, Any]]:
        """The receiver-side view: summaries from the message store."""
        return self._ua.list_inbox(unread_only=unread_only)

    def fetch_bodies(self, sequence: int) -> list[BodyPart]:
        """Fetch one message's body parts."""
        envelope = self._ua.fetch(sequence)
        return list(envelope.content.body_parts)
