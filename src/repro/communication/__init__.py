"""The Communication Model (paper section 5).

Communicators with media capabilities and presence, a communication log of
exchanges in context, real-time sessions with floor control, asynchronous
channels over the MHS, and the time-transparency bridge unifying both
modes behind one primitive.
"""

from repro.communication.asynchronous import AsyncChannel
from repro.communication.bridge import ConverseResult, TimeTransparencyBridge
from repro.communication.model import (
    CommunicationContext,
    CommunicationLog,
    Communicator,
    CommunicatorRegistry,
    Exchange,
)
from repro.communication.realtime import RealTimeSession

__all__ = [
    "AsyncChannel",
    "ConverseResult",
    "TimeTransparencyBridge",
    "CommunicationContext",
    "CommunicationLog",
    "Communicator",
    "CommunicatorRegistry",
    "Exchange",
    "RealTimeSession",
]
