"""Real-time (synchronous) communication sessions.

The "same time" half of the groupware matrix: a :class:`RealTimeSession`
fans every utterance out to all joined participants over the simulated
network, tracks presence, and offers optional floor control (one speaker
at a time — the desktop-conferencing discipline of systems like Shared X).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.communication.model import CommunicationContext, CommunicationLog, Exchange
from repro.sim.world import World
from repro.util.errors import ConfigurationError, ModelError
from repro.util.serialization import document_size

MessageHandler = Callable[[str, dict[str, Any]], None]


@dataclass
class _Participant:
    person_id: str
    node: str
    handler: MessageHandler


class RealTimeSession:
    """A synchronous multi-party session with fan-out delivery."""

    def __init__(
        self,
        world: World,
        session_id: str,
        log: CommunicationLog | None = None,
        context: CommunicationContext = CommunicationContext(),
        floor_controlled: bool = False,
    ) -> None:
        if not session_id:
            raise ConfigurationError("session needs an id")
        self._world = world
        self.session_id = session_id
        self._log = log
        self._context = context
        self.floor_controlled = floor_controlled
        self._participants: dict[str, _Participant] = {}
        self._floor_holder: str | None = None
        self._floor_queue: deque[str] = deque()
        self.utterances = 0

    # -- membership -----------------------------------------------------------
    def join(self, person_id: str, node: str, handler: MessageHandler) -> None:
        """Join the session; *handler*(sender, payload) receives messages."""
        if person_id in self._participants:
            raise ModelError(f"{person_id!r} already joined session {self.session_id}")
        port = self._port(person_id)
        self._world.network.node(node).bind(
            port, lambda packet: handler(packet.payload["sender"], packet.payload["body"])
        )
        self._participants[person_id] = _Participant(person_id, node, handler)

    def leave(self, person_id: str) -> None:
        """Leave the session; releases the floor if held."""
        participant = self._participants.pop(person_id, None)
        if participant is None:
            raise ModelError(f"{person_id!r} is not in session {self.session_id}")
        self._world.network.node(participant.node).unbind(self._port(person_id))
        if self._floor_holder == person_id:
            self._floor_holder = None
            self._grant_next_floor()
        if person_id in self._floor_queue:
            self._floor_queue.remove(person_id)

    def participants(self) -> list[str]:
        """Everyone currently joined, sorted."""
        return sorted(self._participants)

    def _port(self, person_id: str) -> str:
        return f"rts-{self.session_id}-{person_id}"

    # -- floor control ----------------------------------------------------------
    @property
    def floor_holder(self) -> str | None:
        """Who currently holds the floor (None when uncontrolled/free)."""
        return self._floor_holder

    def request_floor(self, person_id: str) -> bool:
        """Request the floor; True when granted immediately."""
        if not self.floor_controlled:
            raise ModelError("session is not floor controlled")
        if person_id not in self._participants:
            raise ModelError(f"{person_id!r} is not in the session")
        if self._floor_holder is None:
            self._floor_holder = person_id
            return True
        if person_id == self._floor_holder or person_id in self._floor_queue:
            return False
        self._floor_queue.append(person_id)
        return False

    def release_floor(self, person_id: str) -> None:
        """Release the floor; the head of the queue (if any) gets it."""
        if self._floor_holder != person_id:
            raise ModelError(f"{person_id!r} does not hold the floor")
        self._floor_holder = None
        self._grant_next_floor()

    def _grant_next_floor(self) -> None:
        if self._floor_queue:
            self._floor_holder = self._floor_queue.popleft()

    # -- speaking ---------------------------------------------------------------
    def say(self, person_id: str, body: dict[str, Any], media: str = "text") -> int:
        """Fan a message out to every other participant.

        Returns the number of recipients.  Under floor control only the
        floor holder may speak.
        """
        sender = self._participants.get(person_id)
        if sender is None:
            raise ModelError(f"{person_id!r} is not in session {self.session_id}")
        if self.floor_controlled and self._floor_holder != person_id:
            raise ModelError(f"{person_id!r} does not hold the floor")
        payload = {"sender": person_id, "body": body}
        size = document_size(payload)
        count = 0
        for other in self._participants.values():
            if other.person_id == person_id:
                continue
            self._world.network.send(
                sender.node, other.node, self._port(other.person_id), payload, size_bytes=size
            )
            count += 1
            if self._log is not None:
                self._log.record(
                    Exchange(
                        sender=person_id,
                        receiver=other.person_id,
                        mode="synchronous",
                        media=media,
                        size_bytes=size,
                        time=self._world.now,
                        context=self._context,
                    )
                )
        self.utterances += 1
        return count
