"""Human-readable status reports over a running environment.

Combines the environment's inventory snapshot with the communication and
activity analyses into one plain-text report — the "monitoring the
progress of activities" surface an administrator or project manager
would actually read.
"""

from __future__ import annotations

from repro.analysis.activity_network import coupling_clusters, key_collaborators
from repro.analysis.communication import (
    cross_organisation_flows,
    summarize,
    top_talkers,
)
from repro.environment.environment import CSCWEnvironment


def environment_report(environment: CSCWEnvironment) -> str:
    """Render a multi-section status report for one environment."""
    snapshot = environment.describe()
    lines = [f"=== CSCW environment report: {snapshot['name']} ==="]

    lines.append("")
    lines.append("-- applications (time-space matrix) --")
    for quadrant, apps in snapshot["applications"].items():
        lines.append(f"  {quadrant:36s} {', '.join(apps) if apps else '-'}")
    lines.append(
        f"  integration cost: {snapshot['integration_cost']} converters; "
        f"coverage: {snapshot['interop_coverage']:.0%}"
    )

    lines.append("")
    lines.append("-- people --")
    for person_id, info in sorted(snapshot["people"].items()):
        presence = "present" if info["present"] else "away"
        pending = environment.pending_for(person_id)
        queued = f", {pending} queued" if pending else ""
        lines.append(f"  {person_id:16s} {presence:8s} @{info['node']}{queued}")

    lines.append("")
    lines.append("-- activities --")
    by_status: dict[str, list[str]] = {}
    for activity_id, status in snapshot["activities"].items():
        by_status.setdefault(status, []).append(activity_id)
    for status in sorted(by_status):
        lines.append(f"  {status:10s} {', '.join(sorted(by_status[status]))}")
    all_ids = list(snapshot["activities"])
    if all_ids:
        clusters = coupling_clusters(environment.dependencies, all_ids)
        coupled = [sorted(c) for c in clusters if len(c) > 1]
        if coupled:
            lines.append(f"  coupled clusters: {coupled}")
    collaborators = key_collaborators(environment.activities, limit=3)
    if collaborators:
        names = ", ".join(f"{p} ({c:.2f})" for p, c in collaborators)
        lines.append(f"  key collaborators: {names}")

    lines.append("")
    lines.append("-- communication --")
    summary = summarize(environment.communication_log)
    lines.append(
        f"  {summary.exchanges} exchanges, {summary.bytes_total} bytes, "
        f"{summary.synchronous_share:.0%} synchronous, "
        f"{summary.distinct_pairs} pairs"
    )
    talkers = top_talkers(environment.communication_log, limit=3)
    if talkers:
        lines.append(
            "  top talkers: " + ", ".join(f"{p} ({n})" for p, n in talkers)
        )
    flows = cross_organisation_flows(environment.communication_log)
    if flows:
        rendered = ", ".join(f"{a}->{b}: {n}" for (a, b), n in sorted(flows.items()))
        lines.append(f"  cross-org flows: {rendered}")

    lines.append("")
    lines.append(
        f"-- exchanges: {snapshot['exchanges']['attempted']} attempted, "
        f"{snapshot['exchanges']['failed']} failed --"
    )
    return "\n".join(lines)
