"""Analyses over the running environment: traffic, activity networks.

Supports the monitoring side of the paper's activity services and the
research questions its communication model is built for.
"""

from repro.analysis.activity_network import (
    collaboration_graph,
    coupling_clusters,
    critical_path,
    key_collaborators,
    ordering_dag,
)
from repro.analysis.report import environment_report
from repro.analysis.communication import (
    TrafficSummary,
    activity_breakdown,
    cross_organisation_flows,
    reciprocity,
    summarize,
    top_talkers,
)

__all__ = [
    "environment_report",
    "collaboration_graph",
    "coupling_clusters",
    "critical_path",
    "key_collaborators",
    "ordering_dag",
    "TrafficSummary",
    "activity_breakdown",
    "cross_organisation_flows",
    "reciprocity",
    "summarize",
    "top_talkers",
]
