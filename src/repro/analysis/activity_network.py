"""Graph analyses of the inter-activity model (networkx-backed).

Section 3's picture — "many inter-related activities taking place within
a world of shared resources, people and information" — is literally a
graph.  These helpers expose it: the ordering DAG as a
:class:`networkx.DiGraph`, critical paths under per-activity duration
estimates, clusters of activities coupled by shared resources or
information, and the people-to-people collaboration graph induced by
activity co-membership.
"""

from __future__ import annotations

import networkx as nx

from repro.activity.dependencies import (
    ORDERING_KINDS,
    SHARES_INFORMATION,
    SHARES_RESOURCE,
    DependencyGraph,
)
from repro.activity.model import ActivityRegistry


def ordering_dag(graph: DependencyGraph, activities: list[str]) -> "nx.DiGraph":
    """The precedence DAG restricted to *activities*."""
    dag = nx.DiGraph()
    dag.add_nodes_from(activities)
    wanted = set(activities)
    for dependency in graph.all():
        if dependency.kind in ORDERING_KINDS:
            if dependency.source in wanted and dependency.target in wanted:
                dag.add_edge(dependency.source, dependency.target)
    return dag


def critical_path(
    graph: DependencyGraph,
    durations: dict[str, float],
) -> tuple[list[str], float]:
    """The longest duration-weighted chain through the ordering DAG.

    *durations* maps every activity to its estimated duration; the
    returned pair is (path, total duration) — the minimum possible
    makespan of the programme.
    """
    activities = list(durations)
    dag = ordering_dag(graph, activities)
    for node in dag.nodes:
        dag.nodes[node]["duration"] = durations[node]
    # Longest path by duration: dag_longest_path supports node weights via
    # edge weights, so push each node's duration onto its outgoing edges
    # and add the path-end duration afterwards.
    weighted = nx.DiGraph()
    weighted.add_nodes_from(dag.nodes)
    for source, target in dag.edges:
        weighted.add_edge(source, target, weight=durations[source])
    if weighted.number_of_edges() == 0:
        best = max(activities, key=lambda a: (durations[a], a))
        return [best], durations[best]
    path = nx.dag_longest_path(weighted, weight="weight")
    total = sum(durations[a] for a in path)
    # A lone heavier activity can still beat the chained path.
    heaviest = max(activities, key=lambda a: (durations[a], a))
    if durations[heaviest] > total:
        return [heaviest], durations[heaviest]
    return path, total


def coupling_clusters(graph: DependencyGraph, activities: list[str]) -> list[set[str]]:
    """Groups of activities coupled by shared resources/information.

    Activities in one cluster cannot be managed in isolation — the
    paper's argument for environment-level coordination.
    """
    undirected = nx.Graph()
    undirected.add_nodes_from(activities)
    wanted = set(activities)
    for dependency in graph.all():
        if dependency.kind in (SHARES_RESOURCE, SHARES_INFORMATION):
            if dependency.source in wanted and dependency.target in wanted:
                undirected.add_edge(dependency.source, dependency.target)
    return [set(c) for c in nx.connected_components(undirected)]


def collaboration_graph(registry: ActivityRegistry) -> "nx.Graph":
    """People as nodes; edges weighted by shared-activity count."""
    graph = nx.Graph()
    for activity in registry.all():
        members = activity.member_ids()
        graph.add_nodes_from(members)
        for index, first in enumerate(members):
            for second in members[index + 1:]:
                if graph.has_edge(first, second):
                    graph[first][second]["weight"] += 1
                else:
                    graph.add_edge(first, second, weight=1)
    return graph


def key_collaborators(registry: ActivityRegistry, limit: int = 5) -> list[tuple[str, float]]:
    """People ranked by degree centrality in the collaboration graph."""
    graph = collaboration_graph(registry)
    if graph.number_of_nodes() == 0:
        return []
    centrality = nx.degree_centrality(graph)
    ordered = sorted(centrality.items(), key=lambda pair: (-pair[1], pair[0]))
    return ordered[:limit]
