"""Analyses over the communication log.

The communication model records every exchange "in terms of the
communicators, the information objects they exchange, and the context"
(paper section 5); these helpers turn that log into the structures
monitoring and research need: traffic matrices, cross-organisation flow
summaries, mode mixes and per-activity breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.communication.model import CommunicationLog


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate view of one log."""

    exchanges: int
    bytes_total: int
    synchronous: int
    asynchronous: int
    distinct_pairs: int

    @property
    def synchronous_share(self) -> float:
        """Fraction of exchanges that were synchronous."""
        if self.exchanges == 0:
            return 0.0
        return self.synchronous / self.exchanges


def summarize(log: CommunicationLog) -> TrafficSummary:
    """Aggregate the whole log."""
    exchanges = log.all()
    pairs = {(e.sender, e.receiver) for e in exchanges}
    return TrafficSummary(
        exchanges=len(exchanges),
        bytes_total=sum(e.size_bytes for e in exchanges),
        synchronous=len(log.by_mode("synchronous")),
        asynchronous=len(log.by_mode("asynchronous")),
        distinct_pairs=len(pairs),
    )


def top_talkers(log: CommunicationLog, limit: int = 5) -> list[tuple[str, int]]:
    """People by number of exchanges sent, busiest first."""
    counts: dict[str, int] = {}
    for exchange in log.all():
        counts[exchange.sender] = counts.get(exchange.sender, 0) + 1
    ordered = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    return ordered[:limit]


def cross_organisation_flows(log: CommunicationLog) -> dict[tuple[str, str], int]:
    """(from_org, to_org) -> exchange count, inter-org pairs only."""
    flows: dict[tuple[str, str], int] = {}
    for exchange in log.all():
        from_org = exchange.context.from_org
        to_org = exchange.context.to_org
        if from_org and to_org and from_org != to_org:
            key = (from_org, to_org)
            flows[key] = flows.get(key, 0) + 1
    return flows


def activity_breakdown(log: CommunicationLog) -> dict[str, int]:
    """activity id -> exchanges in that activity ('' for unscoped)."""
    breakdown: dict[str, int] = {}
    for exchange in log.all():
        key = exchange.context.activity
        breakdown[key] = breakdown.get(key, 0) + 1
    return breakdown


def reciprocity(log: CommunicationLog) -> float:
    """Fraction of directed pairs whose reverse direction also occurs.

    High reciprocity signals conversation; low signals broadcast-style
    communication.
    """
    pairs = {(e.sender, e.receiver) for e in log.all()}
    if not pairs:
        return 0.0
    reciprocated = sum(1 for (a, b) in pairs if (b, a) in pairs)
    return reciprocated / len(pairs)
