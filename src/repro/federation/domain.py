"""One administrative domain: a full CSCW environment behind a gateway.

The paper treats an open CSCW system as a specialisation of an open
*distributed* system: each organisational unit runs its own environment
with its own naming, directory, messaging and trading services, and
interoperates with peers through explicit boundary objects.  A
:class:`Domain` bundles exactly that per-unit service stack:

* a :class:`~repro.environment.environment.CSCWEnvironment` (which owns
  the unit's trader, knowledge base, interchange and exchange pipeline),
* a :class:`~repro.odp.naming.NamingDomain` for federated naming
  (``other-unit:/people/ana``),
* a :class:`~repro.directory.dsa.DirectoryServiceAgent` deployed in a
  capsule on the domain's gateway node (so peers can shadow it),
* a :class:`~repro.messaging.mta.MessageTransferAgent` serving the
  unit's X.400 routing domain, and
* one inbound **gateway endpoint** plus one outbound
  :class:`~repro.federation.gateway.Gateway` per peer domain.

Domains are created and wired by a
:class:`~repro.federation.federation.Federation`; they all share one
simulated world (one engine), which is what makes whole-federation runs
deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.directory.dsa import DirectoryServiceAgent
from repro.environment.environment import CSCWEnvironment
from repro.federation.gateway import GATEWAY_PORT, Gateway
from repro.messaging.mta import MessageTransferAgent
from repro.messaging.names import OrName
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.odp.naming import NamingDomain
from repro.odp.node_mgmt import Capsule
from repro.odp.objects import InterfaceRef
from repro.sim.transport import RequestReply
from repro.sim.world import World

if TYPE_CHECKING:
    from repro.odp.trader import Trader

#: the X.400 country/admd every federation domain routes under
MAIL_COUNTRY = "xx"
MAIL_ADMD = "mhs"

#: inbound relay dedup entries kept per domain; retries of one relay all
#: land within its attempt budget (seconds of simulated time), so FIFO
#: eviction far beyond that window keeps at-most-once processing while
#: bounding what was previously unbounded growth over long soaks
RELAY_SEEN_LIMIT = 2048


class Domain:
    """One org unit's environment, naming, directory, messaging, gateway."""

    def __init__(
        self,
        world: World,
        name: str,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        shed_limit: int | None = None,
        default_deadline_s: float | None = None,
        shards: int | None = None,
        mediation: bool = False,
    ) -> None:
        self.world = world
        self.name = name
        self.node = f"gw-{name}"
        world.network.add_node(self.node, site=name)
        builder = CSCWEnvironment.builder().with_world(world).with_name(name)
        if shards is not None:
            # large-population domains shard their KB/white pages across
            # N DSAs; home resolution then reads one owning shard only
            builder = builder.with_sharding(shards)
        if mediation:
            builder = builder.with_mediation()
        if metrics is not None:
            builder = builder.with_metrics(metrics)
        if tracer is not None:
            builder = builder.with_tracer(tracer)
        if events is not None:
            builder = builder.with_event_log(events)
        if shed_limit is not None:
            builder = builder.with_shed_limit(shed_limit)
        if default_deadline_s is not None:
            builder = builder.with_default_deadline(default_deadline_s)
        self.env: CSCWEnvironment = builder.build()
        self.naming = NamingDomain(name)
        self.capsule = Capsule(world.network, self.node)
        self.dsa = DirectoryServiceAgent(f"dsa-{name}")
        self.directory_ref: InterfaceRef = self.dsa.deploy(self.capsule)
        self.mta = MessageTransferAgent(
            world, self.node, f"mta-{name}", domains=[(MAIL_COUNTRY, MAIL_ADMD, name)]
        )
        if tracer is not None:
            self.mta.attach_tracer(tracer)
        #: inbound relay endpoint; the federation installs the handler
        self.gateway_rpc = RequestReply(world.network, self.node, port=GATEWAY_PORT)
        #: outbound gateways, one per peer domain, wired by the federation
        self.gateways: dict[str, Gateway] = {}
        #: person ids homed in this domain
        self.people: set[str] = set()
        #: relay_id -> reply (or in-flight DeferredReply): the inbound
        #: dedup cache that makes at-least-once relays at-most-once here
        #: (bounded; insert via :meth:`remember_relay`)
        self.relay_seen: dict[str, object] = {}

    def remember_relay(self, relay_id: str, reply: object) -> None:
        """Record *reply* for dedup, evicting oldest entries past the cap.

        Re-recording an in-flight ``relay_id`` (a deferred forward
        resolving to its final reply) replaces the entry in place
        without consuming extra capacity.
        """
        seen = self.relay_seen
        if relay_id not in seen and len(seen) >= RELAY_SEEN_LIMIT:
            # dicts iterate in insertion order: drop the oldest entry —
            # its retry window is long gone
            del seen[next(iter(seen))]
        seen[relay_id] = reply

    @property
    def trader(self) -> "Trader":
        """The unit's ODP trader (owned by the environment)."""
        return self.env.trader

    def gateway_to(self, other: str) -> Gateway:
        """The outbound gateway towards peer domain *other*."""
        try:
            return self.gateways[other]
        except KeyError:
            raise KeyError(
                f"domain {self.name!r} has no gateway to {other!r}"
            ) from None

    def workstation(self, person_id: str) -> str:
        """The name of a person's workstation node in this domain."""
        return f"{self.name}-ws-{person_id}"

    def or_name(self, person_id: str) -> OrName:
        """A person's O/R name in this domain's mail routing domain."""
        return OrName(
            country=MAIL_COUNTRY, admd=MAIL_ADMD, prmd=self.name, surname=person_id
        )

    def describe(self) -> dict:
        """A small inventory snapshot (the per-domain slice of the federation)."""
        return {
            "name": self.name,
            "node": self.node,
            "people": sorted(self.people),
            "federated_naming": self.naming.federated_domains(),
            "trader_links": self.trader.links(),
            "gateways": {peer: gw.stats() for peer, gw in sorted(self.gateways.items())},
            "directory_csn": self.dsa.dit.csn,
        }
