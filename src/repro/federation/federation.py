"""The federation coordinator: N domains, one engine, explicit boundaries.

This module composes the library's single-node primitives —
``NamingDomain.federate``, trader links, directory
:class:`~repro.directory.replication.ShadowingAgreement`, MTAs — into a
running multi-domain CSCW system: the "open distributed system" shape
the paper says open CSCW must take (organisation transparency across
administrative boundaries, not just inside one environment).

A :class:`Federation` owns a set of :class:`~repro.federation.domain.Domain`
objects on one shared :class:`~repro.sim.world.World` and keeps them
wired pairwise:

* **naming** — every domain's :class:`~repro.odp.naming.NamingDomain`
  federates with every peer, so ``people/ana`` resolves from anywhere as
  ``<home>:/people/ana``; the federation's home-domain lookups go through
  this federated naming and are memoised (invalidated on moves),
* **trading** — every env trader links to every peer trader, so an
  import that finds no local offer falls back over the links while each
  side's organisational import policy still applies,
* **directory** — each domain's DSA holds a shadowing agreement against
  every peer DSA (created unstarted; :meth:`start_shadowing` arms them),
* **messaging** — MTAs peer and route each other's X.400 domains,
* **gateways** — a directed :class:`~repro.federation.gateway.Gateway`
  per ordered pair relays exchange payloads over a configurable
  inter-domain link.

The headline operation is :meth:`federated_exchange`: resolve the
receiver's home domain via federated naming, run the origin-side checks
against the local environment, relay through the gateway, and reuse the
unmodified local exchange pipeline at the target — so a federated
outcome carries exactly the reason codes a single-domain
``CSCWEnvironment.exchange`` would produce, plus hop metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.communication.model import Communicator
from repro.environment.environment import (
    REASON_DEADLINE_EXCEEDED,
    REASON_MEMBERSHIP,
    REASON_ORGANISATION_OPAQUE,
    REASON_POLICY,
    REASON_UNKNOWN_RECEIVER,
    CSCWEnvironment,
    ExchangeOutcome,
    ExchangeRequest,
)
from repro.environment.registry import AppDescriptor, DeliveryCallback
from repro.environment.transparency import TransparencyProfile
from repro.directory.replication import ShadowingAgreement
from repro.federation.domain import Domain
from repro.federation.gateway import (
    REASON_RELAY_DEADLINE,
    DeadLetter,
    Gateway,
)
from repro.obs.context import TRACE_KEY, TraceContext
from repro.obs.events import NULL_EVENTS, EventLog
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Span, Tracer
from repro.odp.binding import BindingFactory
from repro.odp.objects import InterfaceRef
from repro.org.model import Organisation, Person
from repro.org.policy import INTERACTION_MESSAGE
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.health import HealthMonitor
from repro.sim.network import LinkSpec, WAN_LINK
from repro.sim.transport import DeferredReply
from repro.sim.world import World
from repro.util.errors import (
    ConfigurationError,
    InteropError,
    NameError_,
    NotRegisteredError,
    UnknownObjectError,
)

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from repro.control.plane import ControlPlane, ControlPolicy
    from repro.obs.slo import SLOEngine

#: a federated exchange whose relay exhausted its gateway attempts
REASON_GATEWAY_DEAD_LETTER = "gateway-dead-letter"

#: outcome fields shipped over the gateway — trace_id included, so the
#: origin's reconstructed outcome stays correlated with the trace the
#: target pipeline actually ran under
_OUTCOME_FIELDS = (
    "delivered", "mode", "reason", "translated",
    "fidelity", "handled", "reason_code", "size_bytes", "trace_id",
)


@dataclass(frozen=True, slots=True)
class Hop:
    """One step in a federated exchange's path, stamped in simulated time."""

    domain: str
    role: str  # "local" | "origin" | "deliver" | "reply"
    time: float


@dataclass(frozen=True, slots=True)
class FederatedOutcome:
    """A cross-domain exchange outcome with its hop metadata.

    ``outcome`` is a plain :class:`ExchangeOutcome` with field parity to
    the single-domain exchange path (same reason codes on the same
    failure classes); the federation adds where the exchange ran
    (``origin``/``target``), the hops it took, how many gateway attempts
    the relay needed and the end-to-end simulated latency.
    """

    outcome: ExchangeOutcome
    origin: str
    target: str
    hops: tuple[Hop, ...] = ()
    attempts: int = 1
    latency_s: float = 0.0

    @property
    def delivered(self) -> bool:
        """Whether the document reached the receiving application."""
        return self.outcome.delivered

    @property
    def mode(self) -> str:
        """Delivery mode of the underlying exchange."""
        return self.outcome.mode

    @property
    def reason_code(self) -> str:
        """Structured reason code of the underlying exchange."""
        return self.outcome.reason_code

    @property
    def cross_domain(self) -> bool:
        """True when the exchange crossed a domain boundary."""
        return self.origin != self.target


def _same_wire_shape(a: ExchangeRequest, b: ExchangeRequest) -> bool:
    """True when two requests serialize identically except their payload
    document — the batch relay then reuses one envelope wire form."""
    return (
        a.sender == b.sender
        and a.receiver == b.receiver
        and a.sender_app == b.sender_app
        and a.receiver_app == b.receiver_app
        and a.activity_id == b.activity_id
        and a.profile == b.profile
        and a.interaction == b.interaction
        and a.deadline == b.deadline
        and a.priority == b.priority
        and a.shed_class == b.shed_class
        and a.min_fidelity == b.min_fidelity
    )


def _outcome_document(outcome: ExchangeOutcome) -> dict[str, Any]:
    """The gateway wire form of an outcome."""
    document = {name: getattr(outcome, name) for name in _OUTCOME_FIELDS}
    document["handled"] = list(outcome.handled)
    return document


def _outcome_from_document(
    document: dict[str, Any], trace_id: str = ""
) -> ExchangeOutcome:
    """Rebuild an outcome at the origin.

    The wire document carries the trace id the target pipeline ran
    under; with trace propagation that *is* the origin's trace.
    *trace_id* is only a fallback for documents from older/untraced
    remotes.
    """
    fields = dict(document)
    fields["handled"] = tuple(fields.get("handled", ()))
    if not fields.get("trace_id"):
        fields["trace_id"] = trace_id
    return ExchangeOutcome(**fields)


class Federation:
    """N administrative domains on one sim engine, fully cross-wired."""

    def __init__(
        self,
        world: World,
        name: str = "federation",
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        link: LinkSpec = WAN_LINK,
        gateway_retry_s: float = 0.5,
        gateway_attempts: int = 4,
        gateway_backoff: float = 2.0,
        shadow_period_s: float = 30.0,
        resilience: bool = True,
        breaker_threshold: int = 4,
        breaker_cooldown_s: float = 30.0,
        shed_limit: int | None = None,
        default_deadline_s: float | None = None,
        shards: int | None = None,
        mediation: bool = False,
    ) -> None:
        self.world = world
        self.name = name
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._env_metrics = metrics
        self._tracer = tracer
        #: the federation's own span handle (never None; NULL_TRACER no-ops)
        self._trace: Tracer = tracer if tracer is not None else NULL_TRACER
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self._link = link
        self._gateway_retry_s = gateway_retry_s
        self._gateway_attempts = gateway_attempts
        self._gateway_backoff = gateway_backoff
        self._shadow_period_s = shadow_period_s
        #: resilience=False reverts to bare retry gateways: no breakers,
        #: no failover routing (the bench's "retry-only" baseline)
        self._resilience = resilience
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._shed_limit = shed_limit
        self._default_deadline_s = default_deadline_s
        self._shards = shards
        #: mediation=True builds every domain with_mediation(): relayed
        #: exchanges then carry the origin's synthesized plan metadata
        self._mediation = mediation
        self._health: HealthMonitor | None = None
        self._health_timeout_s = 1.0
        self._domains: dict[str, Domain] = {}
        #: memoised person -> home-domain name (resolved via federated
        #: naming on miss; invalidated by add/move)
        self._home_cache: dict[str, str] = {}
        #: freshness token for home resolution, bumped by add/move —
        #: ``federated_exchange_many`` watches it so a delivery callback
        #: that re-homes someone mid-batch forces the already-resolved
        #: routes of the remaining items to be re-derived (the federated
        #: mirror of the resolution cache's ``generation``)
        self._home_generation = 0
        self._binding_factory = BindingFactory(world.network)
        #: (consumer, master) -> shadowing agreement (created unstarted)
        self.shadowing: dict[tuple[str, str], ShadowingAgreement] = {}
        self._shadowing_started = False
        #: adaptive control plane (attached via :meth:`attach_control`)
        self.control: "ControlPlane | None" = None

    @classmethod
    def partition(
        cls,
        world: World,
        assignment: dict[str, list[str]],
        name: str = "federation",
        **options: Any,
    ) -> "Federation":
        """Partition a world's population across domains in one call.

        *assignment* maps domain name -> the person ids homed there;
        extra keyword options go to the constructor.  Policies between
        all domain pairs are opened for messages and service imports
        (tighten afterwards with :meth:`declare_policy`).
        """
        federation = cls(world, name=name, **options)
        for domain_name in assignment:
            federation.add_domain(domain_name)
        federation.open_policies()
        for domain_name, people in assignment.items():
            for person_id in people:
                federation.add_person(person_id, domain_name)
        return federation

    # -- topology ----------------------------------------------------------
    def add_domain(self, name: str) -> Domain:
        """Create a domain and wire it to every existing domain."""
        if name in self._domains:
            raise ConfigurationError(f"domain {name!r} already exists in {self.name!r}")
        domain = Domain(
            self.world,
            name,
            metrics=self._env_metrics,
            tracer=self._tracer,
            events=self._events if self._events.enabled else None,
            shed_limit=self._shed_limit,
            default_deadline_s=self._default_deadline_s,
            shards=self._shards,
            mediation=self._mediation,
        )
        domain.gateway_rpc.serve(
            "relay", lambda payload, d=domain: self._handle_relay(d, payload)
        )
        domain.gateway_rpc.serve(
            "ping", lambda body, d=domain: {"domain": d.name, "at": self.world.now}
        )
        self._binding_factory.register_capsule(domain.capsule)
        # Every KB knows every organisation, so org/policy verdicts agree
        # at both ends of a relay (the KB-level shadowing contract).
        domain.env.knowledge_base.add_organisation(Organisation(name, name.upper()))
        for peer in self._domains.values():
            domain.env.knowledge_base.add_organisation(
                Organisation(peer.name, peer.name.upper())
            )
            peer.env.knowledge_base.add_organisation(Organisation(name, name.upper()))
            for person_id in peer.people:
                person = peer.env.knowledge_base.find_person(person_id)
                domain.env.knowledge_base.add_person(
                    Person(person_id, person.name, peer.name)
                )
            self._wire_pair(domain, peer)
        self._domains[name] = domain
        if self._metrics.enabled:
            self._metrics.set_gauge("env.federation.domains", len(self._domains))
        return domain

    def _wire_pair(self, a: Domain, b: Domain) -> None:
        """Symmetric wiring between two domains (naming, trade, mail,
        directory shadowing, gateway link + relays)."""
        a.naming.federate(b.naming)
        b.naming.federate(a.naming)
        a.trader.link(b.trader, link_name=b.name)
        b.trader.link(a.trader, link_name=a.name)
        a.mta.add_peer(b.mta.name, b.node)
        b.mta.add_peer(a.mta.name, a.node)
        a.mta.routing.add_route("*", "*", b.name, b.mta.name)
        b.mta.routing.add_route("*", "*", a.name, a.mta.name)
        self.world.network.set_link(a.node, b.node, self._link)
        for source, target in ((a, b), (b, a)):
            source.gateways[target.name] = Gateway(
                source.gateway_rpc,
                source.name,
                target.name,
                target.node,
                retry_s=self._gateway_retry_s,
                max_attempts=self._gateway_attempts,
                backoff=self._gateway_backoff,
                metrics=self._env_metrics,
                breaker=self._make_breaker(f"gw:{source.name}->{target.name}"),
                tracer=self._tracer,
                events=self._events if self._events.enabled else None,
            )
            self.shadowing[(source.name, target.name)] = ShadowingAgreement(
                self.world,
                self._binding_factory,
                source.dsa,
                source.node,
                target.directory_ref,
                period_s=self._shadow_period_s,
                metrics=self._env_metrics,
                breaker=self._make_breaker(
                    f"shadow:{source.name}<-{target.name}"
                ),
                events=self._events if self._events.enabled else None,
            )
            if self._health is not None:
                self._watch_pair(source, target)

    def _make_breaker(self, name: str) -> CircuitBreaker | None:
        """A circuit breaker for one directed dependency (None when the
        federation runs in retry-only mode)."""
        if not self._resilience:
            return None
        return CircuitBreaker(
            self.world.engine,
            name=name,
            failure_threshold=self._breaker_threshold,
            cooldown_s=self._breaker_cooldown_s,
            metrics=self._env_metrics,
            events=self._events if self._events.enabled else None,
        )

    def domain(self, name: str) -> Domain:
        """Look up a domain by name."""
        try:
            return self._domains[name]
        except KeyError:
            raise UnknownObjectError(f"unknown domain {name!r}") from None

    def domains(self) -> list[Domain]:
        """All domains, in creation order."""
        return list(self._domains.values())

    def set_pair_link(self, a: str, b: str, link: LinkSpec) -> None:
        """Override the (symmetric) inter-domain link for one pair."""
        self.world.network.set_link(self.domain(a).node, self.domain(b).node, link)

    # -- directory shadowing ------------------------------------------------
    def publish_directories(self) -> int:
        """Publish each domain's KB into its own DSA; return entries created."""
        return sum(
            d.env.knowledge_base.publish_to_directory(d.dsa.dit)
            for d in self._domains.values()
        )

    def start_shadowing(self) -> None:
        """Arm every DSA shadowing agreement (periodic pulls begin).

        Started agreements keep the engine's queue non-empty; prefer
        ``world.run_for`` over ``world.run`` while they are live.
        """
        if self._shadowing_started:
            return
        for agreement in self.shadowing.values():
            agreement.start()
        self._shadowing_started = True

    def stop_shadowing(self) -> None:
        """Stop every shadowing agreement's periodic pulls."""
        for agreement in self.shadowing.values():
            agreement.stop()
        self._shadowing_started = False

    # -- gateway health checks ----------------------------------------------
    def start_health_checks(
        self, period_s: float = 5.0, timeout_s: float = 1.0
    ) -> HealthMonitor:
        """Probe every directed gateway link periodically (opt-in).

        Each probe is a tiny ``ping`` RPC from the source domain's
        gateway node to the target's; outcomes feed the pair's circuit
        breaker, so a dead link is discovered (breaker tripped, failover
        engaged) and its recovery noticed (breaker reclosed) without a
        real relay having to burn its retry budget first.  Like
        shadowing, running probes keep the engine queue non-empty —
        prefer ``world.run_for`` over ``world.run`` while they are live.
        """
        if self._health is not None:
            return self._health
        self._health = HealthMonitor(
            self.world.engine,
            period_s=period_s,
            metrics=self._env_metrics,
            events=self._events if self._events.enabled else None,
        )
        self._health_timeout_s = timeout_s
        domains = list(self._domains.values())
        for source in domains:
            for target in domains:
                if source is not target:
                    self._watch_pair(source, target)
        return self._health

    def stop_health_checks(self) -> None:
        """Stop all gateway health probes."""
        if self._health is not None:
            self._health.stop()
            self._health = None

    def _watch_pair(self, source: Domain, target: Domain) -> None:
        """Register the directed health probe source -> target."""
        assert self._health is not None

        def probe(
            report: Any, source: Domain = source, target: Domain = target
        ) -> None:
            source.gateway_rpc.request(
                target.node,
                "ping",
                {},
                on_reply=lambda reply: report(
                    not (isinstance(reply, dict) and "error" in reply)
                ),
                timeout_s=self._health_timeout_s,
                on_timeout=lambda: report(False),
                size_bytes=32,
            )

        self._health.watch(
            f"{source.name}->{target.name}",
            probe,
            breaker=source.gateways[target.name].breaker,
        )

    # -- policies and applications -----------------------------------------
    def declare_policy(
        self, org_a: str, org_b: str, interactions: set[str], symmetric: bool = True
    ) -> None:
        """Declare an inter-org policy in every domain's knowledge base."""
        for domain in self._domains.values():
            domain.env.knowledge_base.policies.declare(
                org_a, org_b, set(interactions), symmetric=symmetric
            )

    def open_policies(self) -> None:
        """Open every domain pair for every interaction (demo/bench default)."""
        names = list(self._domains)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                self.declare_policy(a, b, {"*"})

    def register_application(
        self,
        descriptor: AppDescriptor,
        on_deliver: DeliveryCallback,
        exporter_org: str = "",
    ) -> None:
        """Register one application in every domain environment.

        Federation keeps the paper's O(N) integration cost: one
        descriptor + converter serves all domains (the delivery callback
        receives deliveries from whichever domain the receiver lives in).
        """
        for domain in self._domains.values():
            domain.env.register_application(descriptor, on_deliver, exporter_org)

    def create_shared_activity(
        self, activity_id: str, name: str, members: dict[str, str] | None = None
    ) -> None:
        """Create one activity, visible (with its members) in every domain."""
        for domain in self._domains.values():
            domain.env.create_activity(activity_id, name, dict(members or {}))

    # -- people ------------------------------------------------------------
    def add_person(self, person_id: str, domain_name: str, name: str = "") -> Person:
        """Home a person in *domain_name*; known to every domain's KB.

        The person gets a workstation node and communicator in the home
        domain, a mailbox at the home MTA, and a federated-naming binding
        ``people/<id>`` in the home naming domain.
        """
        home = self.domain(domain_name)
        display = name or person_id
        person = Person(person_id, display, domain_name)
        for domain in self._domains.values():
            domain.env.knowledge_base.add_person(Person(person_id, display, domain_name))
        workstation = home.workstation(person_id)
        if not self.world.network.has_node(workstation):
            self.world.network.add_node(workstation, site=domain_name)
        home.env.register_person(Communicator(person_id, workstation))
        home.mta.register_mailbox(home.or_name(person_id))
        home.naming.bind(
            f"people/{person_id}",
            InterfaceRef(workstation, person_id, "communicator"),
        )
        home.people.add(person_id)
        self._home_cache[person_id] = domain_name
        self._home_generation += 1
        return person

    def home_of(self, person_id: str) -> str:
        """The name of a person's home domain, via federated naming.

        The lookup is memoised; :meth:`add_person` and :meth:`move_person`
        invalidate the memo so a moved person's very next exchange routes
        to their new home.
        """
        cached = self._home_cache.get(person_id)
        if cached is not None:
            if self._metrics.enabled:
                self._metrics.inc("env.federation.home.hit")
            return cached
        if self._metrics.enabled:
            self._metrics.inc("env.federation.home.miss")
        domains = list(self._domains.values())
        if not domains:
            raise UnknownObjectError(f"federation {self.name!r} has no domains")
        viewpoint = domains[0].naming
        path = f"people/{person_id}"
        try:
            viewpoint.resolve(path)
            self._home_cache[person_id] = domains[0].name
            return domains[0].name
        except NameError_:
            pass
        for other in viewpoint.federated_domains():
            try:
                viewpoint.resolve(f"{other}:/{path}")
            except NameError_:
                continue
            self._home_cache[person_id] = other
            return other
        raise UnknownObjectError(
            f"person {person_id!r} is not homed in any domain of {self.name!r}"
        )

    def move_person(self, person_id: str, to_domain: str) -> Person:
        """Move a person's home to another domain mid-run.

        Every domain's knowledge base performs the move (firing its KB
        listeners, so each environment's resolution cache drops its
        memoised verdicts), the communicator and naming binding migrate,
        and the federation's home memo is invalidated — the next
        federated exchange resolves against the new home.  Deliveries
        queued at the old home for the person's return are discarded.
        """
        old_name = self.home_of(person_id)
        if old_name == to_domain:
            return self._domains[old_name].env.knowledge_base.find_person(person_id)
        old = self.domain(old_name)
        new = self.domain(to_domain)
        moved: Person | None = None
        for domain in self._domains.values():
            moved = domain.env.knowledge_base.move_person(person_id, to_domain)
        old.env.deregister_person(person_id)
        old.naming.unbind(f"people/{person_id}")
        old.people.discard(person_id)
        workstation = new.workstation(person_id)
        if not self.world.network.has_node(workstation):
            self.world.network.add_node(workstation, site=to_domain)
        new.env.register_person(Communicator(person_id, workstation))
        new.mta.register_mailbox(new.or_name(person_id))
        new.naming.bind(
            f"people/{person_id}", InterfaceRef(workstation, person_id, "communicator")
        )
        new.people.add(person_id)
        self._home_cache.pop(person_id, None)
        self._home_cache[person_id] = to_domain
        self._home_generation += 1
        if self._metrics.enabled:
            self._metrics.inc("env.federation.moves")
        assert moved is not None
        return moved

    # -- the federated exchange path ---------------------------------------
    def federated_exchange(
        self, request: ExchangeRequest | None = None, /, *args: Any, **kwargs: Any
    ) -> FederatedOutcome:
        """Deliver one :class:`ExchangeRequest` across the federation.

        The request object is the single call currency shared with
        :meth:`CSCWEnvironment.exchange`; the legacy keyword form
        (``federated_exchange(sender, receiver, sender_app, ...)``)
        remains available as a thin shim over
        :meth:`ExchangeRequest.from_kwargs`.

        Intra-domain exchanges run the home environment's pipeline
        unchanged.  Cross-domain exchanges run the origin-side checks
        (activity membership, organisation/policy — the same checks in
        the same order with the same reason codes as
        :meth:`CSCWEnvironment.exchange`), relay the payload through the
        origin's gateway, and re-enter the *target* environment's local
        exchange pipeline, so view/time/activity handling and all
        remaining failure modes are decided exactly as at home.  A relay
        that exhausts its gateway attempts returns a
        :data:`REASON_GATEWAY_DEAD_LETTER` outcome and parks the payload
        in the gateway's dead-letter queue.

        When the direct gateway's circuit breaker is open, the relay
        fails over through a healthy intermediate domain (when one
        exists): the intermediate's inbound handler forwards the payload
        onward and the outcome comes back field-identical, with the
        extra ``relay`` hops recorded in :attr:`FederatedOutcome.hops`.

        *deadline* (absolute simulated time) rides along the whole
        path — gateway hops, forwarding, the target pipeline — and an
        exchange that cannot settle before it fails with
        :data:`~repro.environment.environment.REASON_DEADLINE_EXCEEDED`.

        The call is synchronous on simulated time: for cross-domain
        exchanges the engine is stepped until the relay resolves, so the
        returned outcome's latency is the simulated round trip.

        With a tracer attached the whole operation runs under one
        ``federation.exchange`` root span whose context rides the relay
        payloads: gateway hops, failover intermediates and the target
        pipeline all continue the *same* trace, and the returned
        outcome's ``trace_id`` is that root's trace id.
        """
        if not isinstance(request, ExchangeRequest):
            positional = () if request is None else (request,)
            request = ExchangeRequest.from_kwargs(*positional, *args, **kwargs)
        with self._trace.span(
            "federation.exchange", sender=request.sender, receiver=request.receiver
        ) as span:
            result = self._federated_exchange(request)
            span.tag(
                delivered=result.delivered,
                target=result.target,
                reason_code=result.reason_code,
            )
            return result

    def federated_exchange_many(
        self, requests: list[ExchangeRequest]
    ) -> list[FederatedOutcome]:
        """Deliver a batch of requests; outcomes in request order.

        The federated mirror of :meth:`CSCWEnvironment.exchange_many`:
        consecutive requests that resolve to the same (origin, target)
        domain pair form a *run*.  Intra-domain runs go through the
        home environment's batched fast path (one ``exchange_many``
        call per run, with the federation's own deadline accounting and
        hop metadata preserved); cross-domain runs ship as **one**
        gateway relay carrying the whole run (one payload, one round
        trip, one dedup id), and the target unpacks it into its own
        ``exchange_many``.  Mixed batches degrade gracefully — a
        cross-domain run of one is exactly ``federated_exchange``.

        Each request resolves its route **once** (two home lookups —
        the per-request path re-resolving inside ``_federated_exchange``
        would double that), and the hoisted routes never serve stale
        homes: the batch watches the federation's home ``generation``
        token, so a delivery callback that re-homes a person mid-batch
        re-routes the remaining items — an item that failed
        ``unknown-receiver`` under a route its own dispatch invalidated
        is re-dispatched against the fresh home (re-dispatched items
        count ``env.federation.exchanges`` once per attempt).
        """
        if not requests:
            return []
        outcomes: list[FederatedOutcome | None] = [None] * len(requests)
        with self._trace.span(
            "federation.exchange_many", batch=len(requests)
        ):
            indices = list(range(len(requests)))
            # One re-route round per home change is enough for a single
            # move; the depth bound keeps a pathological callback that
            # re-homes someone on every delivery from looping forever.
            depth = 4
            while indices and depth:
                depth -= 1
                indices = self._exchange_batch(requests, indices, outcomes)
        return outcomes  # type: ignore[return-value]

    def _exchange_batch(
        self,
        requests: list[ExchangeRequest],
        indices: list[int],
        outcomes: "list[FederatedOutcome | None]",
    ) -> list[int]:
        """Dispatch *indices* grouped into same-route runs; fill
        *outcomes* in place and return the indices that must be
        re-dispatched because their dispatch re-homed their route."""
        rerouted: list[int] = []
        run: list[int] = []
        run_route: tuple[str, str] | None = None
        for index in indices:
            route = self._route_of(requests[index])
            if run and route != run_route:
                generation = self._home_generation
                self._dispatch_run(requests, run_route, run, outcomes, rerouted)
                run = []
                if self._home_generation != generation:
                    # The dispatch's delivery callbacks moved someone;
                    # this request's route (resolved before the
                    # dispatch) may be stale — re-derive it.
                    route = self._route_of(requests[index])
            run_route = route
            run.append(index)
        if run:
            self._dispatch_run(requests, run_route, run, outcomes, rerouted)
        return rerouted

    def _dispatch_run(
        self,
        requests: list[ExchangeRequest],
        route: tuple[str, str] | None,
        indices: list[int],
        outcomes: "list[FederatedOutcome | None]",
        rerouted: list[int],
    ) -> None:
        """Deliver one same-route run and detect mid-run re-homing.

        When the run's own delivery callbacks bumped the home
        generation, items that failed ``unknown-receiver`` under the
        dispatched route and now resolve to a *different* route were
        victims of the stale hoisting (a move deregisters the person
        from the old home, so the stale attempt fails without side
        effects) — their indices go to *rerouted* for a fresh dispatch,
        exactly as per-item calls resolving at their own turn would
        behave.
        """
        generation = self._home_generation
        results = self._exchange_run(route, [requests[i] for i in indices])
        for index, result in zip(indices, results):
            outcomes[index] = result
        if route is None or self._home_generation == generation:
            return
        for index, result in zip(indices, results):
            if (
                result.delivered
                or result.outcome.reason_code != REASON_UNKNOWN_RECEIVER
            ):
                continue
            fresh = self._route_of(requests[index])
            if fresh is not None and fresh != route:
                rerouted.append(index)

    def _route_of(self, request: ExchangeRequest) -> tuple[str, str] | None:
        """(origin, target) for a request, or None when unresolvable
        (the per-request path then reports the precise failure)."""
        try:
            return (self.home_of(request.sender), self.home_of(request.receiver))
        except UnknownObjectError:
            return None

    def _exchange_run(
        self, route: tuple[str, str] | None, run: list[ExchangeRequest]
    ) -> list[FederatedOutcome]:
        """Deliver one same-route run (batched where the route allows)."""
        if route is None:
            # Unresolvable routes reuse the single-request path, which
            # reports the precise unknown-sender/receiver failure.
            return [self._federated_exchange(request) for request in run]
        if route[0] == route[1]:
            return self._local_exchange_run(self.domain(route[0]), run)
        origin = self.domain(route[0])
        target = self.domain(route[1])
        if len(run) == 1:
            return [self._federated_exchange(run[0], route=route)]
        if self._metrics.enabled:
            self._metrics.inc("env.federation.exchanges", len(run))
            self._metrics.inc("env.federation.remote", len(run))
        return self._relay_exchange_group(origin, target, run)

    def _local_exchange_run(
        self, origin: Domain, run: list[ExchangeRequest]
    ) -> list[FederatedOutcome]:
        """Run an intra-domain run through the home env's batched path.

        One ``exchange_many`` call per run — the batched pipeline the
        :meth:`federated_exchange_many` docstring promises — while the
        federation still does its own accounting first: already-expired
        requests fail with the *federated* deadline reason string and
        counter, and every outcome carries the same ``local`` hop
        metadata the per-request path stamps.
        """
        obs = self._metrics
        started = self.world.now
        if obs.enabled:
            obs.inc("env.federation.exchanges", len(run))
        results: list[FederatedOutcome | None] = [None] * len(run)
        shipped_indices: list[int] = []
        shipped: list[ExchangeRequest] = []
        for index, request in enumerate(run):
            expires_at = origin.env.effective_deadline(request.deadline)
            if expires_at is not None and started >= expires_at:
                if obs.enabled:
                    obs.inc("env.federation.expired")
                results[index] = FederatedOutcome(
                    outcome=origin.env._fail(
                        REASON_DEADLINE_EXCEEDED,
                        f"federated exchange deadline {expires_at:.3f} "
                        f"already passed at {started:.3f}",
                    ),
                    origin=origin.name,
                    target="",
                    hops=(Hop(origin.name, "local", started),),
                )
                continue
            shipped_indices.append(index)
            shipped.append(
                request
                if request.deadline == expires_at
                else replace(request, deadline=expires_at)
            )
        if shipped:
            if obs.enabled:
                obs.inc("env.federation.local", len(shipped))
            exchange_outcomes = origin.env.exchange_many(shipped)
            now = self.world.now
            hops = (Hop(origin.name, "local", now),)
            latency = now - started
            for index, outcome in zip(shipped_indices, exchange_outcomes):
                results[index] = FederatedOutcome(
                    outcome=outcome,
                    origin=origin.name,
                    target=origin.name,
                    hops=hops,
                    latency_s=latency,
                )
        return results  # type: ignore[return-value]

    def _federated_exchange(
        self,
        request: ExchangeRequest,
        route: tuple[str, str] | None = None,
    ) -> FederatedOutcome:
        obs = self._metrics
        if obs.enabled:
            obs.inc("env.federation.exchanges")
        # A batch caller passes the route it already resolved — home
        # resolution then runs once per request, not twice.
        origin = self.domain(
            route[0] if route is not None else self.home_of(request.sender)
        )
        sender, receiver = request.sender, request.receiver
        expires_at = origin.env.effective_deadline(request.deadline)
        if expires_at is not None and self.world.now >= expires_at:
            if obs.enabled:
                obs.inc("env.federation.expired")
            outcome = origin.env._fail(
                REASON_DEADLINE_EXCEEDED,
                f"federated exchange deadline {expires_at:.3f} already passed "
                f"at {self.world.now:.3f}",
            )
            return FederatedOutcome(
                outcome=outcome,
                origin=origin.name,
                target="",
                hops=(Hop(origin.name, "local", self.world.now),),
            )
        try:
            target_name = route[1] if route is not None else self.home_of(receiver)
        except UnknownObjectError:
            if obs.enabled:
                obs.inc("env.federation.unknown_receiver")
            outcome = origin.env._fail(
                REASON_UNKNOWN_RECEIVER,
                f"receiver {receiver!r} has no home domain in {self.name!r}",
            )
            return FederatedOutcome(
                outcome=outcome,
                origin=origin.name,
                target="",
                hops=(Hop(origin.name, "local", self.world.now),),
            )
        if target_name == origin.name:
            if obs.enabled:
                obs.inc("env.federation.local")
            started = self.world.now
            outcome = origin.env.exchange(replace(request, deadline=expires_at))
            return FederatedOutcome(
                outcome=outcome,
                origin=origin.name,
                target=origin.name,
                hops=(Hop(origin.name, "local", self.world.now),),
                latency_s=self.world.now - started,
            )
        if obs.enabled:
            obs.inc("env.federation.remote")
        target = self.domain(target_name)
        return self._relay_exchange(origin, target, request, expires_at)

    def _origin_checks(
        self, origin: Domain, request: ExchangeRequest
    ) -> tuple[str, str] | None:
        """Origin-side checks, mirroring ``CSCWEnvironment._exchange``.

        Returns ``(reason_code, reason)`` on failure, ``None`` when the
        request may be relayed — same checks, same order, same reason
        codes as a single-domain run.
        """
        sender, receiver = request.sender, request.receiver
        active = (
            request.profile
            if request.profile is not None
            else TransparencyProfile.all_on()
        )
        if request.activity_id:
            activity = origin.env.activities.get(request.activity_id)
            for person in (sender, receiver):
                if not activity.is_member(person):
                    return (
                        REASON_MEMBERSHIP,
                        f"{person} is not a member of {request.activity_id}",
                    )
        verdict = origin.env.resolution.route(sender, receiver, request.interaction)
        if verdict.cross_org:
            if not active.organisation:
                return (
                    REASON_ORGANISATION_OPAQUE,
                    f"cross-organisation exchange ({verdict.sender_org} -> "
                    f"{verdict.receiver_org}) with organisation transparency off",
                )
            if not verdict.policy_ok:
                return (
                    REASON_POLICY,
                    f"no compatible policy between {verdict.sender_org} and "
                    f"{verdict.receiver_org} for {request.interaction}",
                )
        return None

    def _mediation_metadata(
        self, origin: Domain, request: ExchangeRequest
    ) -> "dict[str, Any] | None":
        """The origin mediator's plan for a relayed exchange, as envelope
        metadata.

        When the origin domain runs mediated (``mediation=True``), the
        plan the target's pipeline will effectively execute is
        synthesized here first and stamped on the relay envelope — the
        receiving side counts it (``mediation.plan.relayed``) and tags
        its relay span, so operators see mediated routes and expected
        fidelity on the wire without re-deriving them.  Returns ``None``
        for unmediated domains, same-format pairs, unknown apps and
        unplannable routes (the target pipeline remains authoritative
        and will fail those its own way).
        """
        mediator = origin.env.mediator
        if mediator is None:
            return None
        try:
            source, target = origin.env.resolution.formats(
                request.sender_app, request.receiver_app
            )
        except NotRegisteredError:
            return None
        if source == target:
            return None
        try:
            plan = mediator.negotiate(source, target, request.min_fidelity)
        except InteropError:
            return None
        return plan.to_document()

    def _stamp_payload(
        self, payload: dict[str, Any], origin: Domain
    ) -> TraceContext | None:
        """Stamp a relay payload with its origin and the open trace.

        The origin's span identity rides the payload; every hop
        (gateway, forwarder, target pipeline) continues this trace.
        Returns the captured context for outcome correlation.
        """
        payload["origin"] = origin.name
        context = self._trace.current_context()
        if context is not None:
            payload[TRACE_KEY] = context.to_document()
        return context

    def _choose_gateway(
        self, origin: Domain, target: Domain, payload: dict[str, Any]
    ) -> Gateway:
        """The direct gateway, or a failover intermediate's when the
        direct one is not ready (breaker open or control-plane drain)."""
        gateway = origin.gateway_to(target.name)
        if self._resilience and not gateway.ready():
            # Route via a healthy intermediate, whose inbound relay
            # handler forwards the payload onward to the final target.
            via = self._pick_intermediate(origin, target)
            if via is not None:
                if self._metrics.enabled:
                    self._metrics.inc("env.federation.failover")
                gateway = origin.gateway_to(via.name)
                payload["final_target"] = target.name
        return gateway

    def _await_relay(
        self, origin: Domain, target: Domain, holder: dict[str, Any]
    ) -> None:
        """Step the engine until the relay settles (reply or dead letter)."""
        engine = self.world.engine
        while "reply" not in holder and "dead_letter" not in holder:
            if not engine.step():  # pragma: no cover - timeouts guarantee progress
                raise ConfigurationError(
                    f"relay {origin.name}->{target.name} neither replied nor timed out"
                )

    def _relay_exchange(
        self,
        origin: Domain,
        target: Domain,
        request: ExchangeRequest,
        deadline: float | None = None,
    ) -> FederatedOutcome:
        obs = self._metrics
        started = self.world.now
        origin_hop = Hop(origin.name, "origin", started)

        def fail(code: str, reason: str) -> FederatedOutcome:
            return FederatedOutcome(
                outcome=origin.env._fail(code, reason),
                origin=origin.name,
                target=target.name,
                hops=(origin_hop,),
            )

        failure = self._origin_checks(origin, request)
        if failure is not None:
            return fail(*failure)

        payload = request.to_document()
        payload["document"] = dict(request.document)
        payload["deadline"] = deadline
        mediation = self._mediation_metadata(origin, request)
        if mediation is not None:
            payload["mediation"] = mediation
        context = self._stamp_payload(payload, origin)
        holder: dict[str, Any] = {}

        def on_reply(reply: dict[str, Any], attempts: int) -> None:
            holder["reply"] = reply
            holder["attempts"] = attempts

        def on_dead_letter(letter: DeadLetter) -> None:
            holder["dead_letter"] = letter

        gateway = self._choose_gateway(origin, target, payload)
        gateway.relay(payload, on_reply, on_dead_letter, deadline=deadline)
        self._await_relay(origin, target, holder)
        now = self.world.now
        if "dead_letter" in holder:
            letter: DeadLetter = holder["dead_letter"]
            if letter.reason == REASON_RELAY_DEADLINE:
                if obs.enabled:
                    obs.inc("env.federation.expired")
                outcome = origin.env._fail(
                    REASON_DEADLINE_EXCEEDED,
                    f"relay {origin.name}->{target.name} missed its deadline "
                    f"after {letter.attempts} attempts",
                )
            else:
                if obs.enabled:
                    obs.inc("env.federation.dead_letters")
                outcome = origin.env._fail(
                    REASON_GATEWAY_DEAD_LETTER,
                    f"gateway {origin.name}->{target.name} unreachable after "
                    f"{letter.attempts} attempts; payload parked in dead-letter queue",
                )
            return FederatedOutcome(
                outcome=outcome,
                origin=origin.name,
                target=target.name,
                hops=(origin_hop,),
                attempts=letter.attempts,
                latency_s=now - started,
            )
        reply = holder["reply"]
        relay_path = reply.get("relay_path", ()) if isinstance(reply, dict) else ()
        relay_hops = tuple(
            Hop(h["domain"], "relay", h["at"]) for h in relay_path
        )
        attempts = holder["attempts"] + sum(h.get("attempts", 0) for h in relay_path)
        if isinstance(reply, dict) and "error" in reply:
            if obs.enabled:
                obs.inc("env.federation.dead_letters")
            outcome = origin.env._fail(
                REASON_GATEWAY_DEAD_LETTER,
                f"relay {origin.name}->{target.name} failed remotely: "
                f"{reply['error']}",
            )
            return FederatedOutcome(
                outcome=outcome,
                origin=origin.name,
                target=target.name,
                hops=(origin_hop, *relay_hops),
                attempts=attempts,
                latency_s=now - started,
            )
        if isinstance(reply, dict) and "failed" in reply:
            # A forwarded leg died downstream; the intermediate reported
            # the structured failure back instead of an outcome.
            code = reply["failed"]
            if obs.enabled:
                obs.inc(
                    "env.federation.expired"
                    if code == REASON_DEADLINE_EXCEEDED
                    else "env.federation.dead_letters"
                )
            outcome = origin.env._fail(
                code, reply.get("detail", "forwarded relay failed")
            )
            return FederatedOutcome(
                outcome=outcome,
                origin=origin.name,
                target=target.name,
                hops=(origin_hop, *relay_hops),
                attempts=attempts,
                latency_s=now - started,
            )
        outcome = _outcome_from_document(
            reply["outcome"],
            trace_id=context.trace_id if context is not None else "",
        )
        if obs.enabled:
            obs.observe("env.federation.relay_latency_s", now - started)
            if outcome.delivered:
                obs.inc("env.federation.delivered")
        return FederatedOutcome(
            outcome=outcome,
            origin=origin.name,
            target=target.name,
            hops=(
                origin_hop,
                *relay_hops,
                Hop(target.name, "deliver", reply["handled_at"]),
                Hop(origin.name, "reply", now),
            ),
            attempts=attempts,
            latency_s=now - started,
        )

    def _relay_exchange_group(
        self, origin: Domain, target: Domain, run: list[ExchangeRequest]
    ) -> list[FederatedOutcome]:
        """Relay one same-route run as a single gateway round trip.

        Origin-side checks and already-expired deadlines are decided
        per request before shipping; the survivors travel as one
        ``requests`` payload that the target's relay handler feeds into
        its environment's ``exchange_many``.  One relay id covers the
        run, so retries deduplicate the whole batch at once.
        """
        obs = self._metrics
        started = self.world.now
        origin_hop = Hop(origin.name, "origin", started)
        results: list[FederatedOutcome | None] = [None] * len(run)

        def local_fail(index: int, code: str, reason: str) -> None:
            if obs.enabled and code == REASON_DEADLINE_EXCEEDED:
                obs.inc("env.federation.expired")
            results[index] = FederatedOutcome(
                outcome=origin.env._fail(code, reason),
                origin=origin.name,
                target=target.name,
                hops=(origin_hop,),
            )

        shipped: list[tuple[int, ExchangeRequest, float | None]] = []
        for index, request in enumerate(run):
            expires_at = origin.env.effective_deadline(request.deadline)
            if expires_at is not None and started >= expires_at:
                local_fail(
                    index,
                    REASON_DEADLINE_EXCEEDED,
                    f"federated exchange deadline {expires_at:.3f} already "
                    f"passed at {started:.3f}",
                )
                continue
            failure = self._origin_checks(origin, request)
            if failure is not None:
                local_fail(index, *failure)
                continue
            shipped.append((index, request, expires_at))
        if not shipped:
            return [result for result in results if result is not None]

        # One serialized envelope per run shape: consecutive same-route
        # requests usually differ only in their payload, so the first
        # request's wire form seeds the rest (a shallow copy plus the
        # per-request payload and deadline) instead of re-deriving
        # ``to_document`` per relay entry, and the origin mediator's
        # plan is synthesized once per (apps, fidelity floor).
        documents: list[dict[str, Any]] = []
        base_request: ExchangeRequest | None = None
        base_document: dict[str, Any] = {}
        plans: "dict[tuple[str, str, float], dict[str, Any] | None]" = {}
        for _, request, expires_at in shipped:
            if base_request is not None and _same_wire_shape(request, base_request):
                document = dict(base_document)
            else:
                document = request.to_document()
                base_request = request
                base_document = dict(document)
            document["document"] = dict(request.document)
            document["deadline"] = expires_at
            plan_key = (request.sender_app, request.receiver_app, request.min_fidelity)
            try:
                mediation = plans[plan_key]
            except KeyError:
                mediation = plans[plan_key] = self._mediation_metadata(origin, request)
            if mediation is not None:
                document["mediation"] = mediation
            documents.append(document)
        # The gateway-level deadline only applies when every shipped
        # request carries one (the loosest wins; per-request deadlines
        # are still enforced by the target pipeline).
        expiries = [expires for _, _, expires in shipped]
        group_deadline = max(expiries) if all(e is not None for e in expiries) else None
        payload: dict[str, Any] = {"requests": documents}
        context = self._stamp_payload(payload, origin)
        holder: dict[str, Any] = {}

        def on_reply(reply: dict[str, Any], attempts: int) -> None:
            holder["reply"] = reply
            holder["attempts"] = attempts

        def on_dead_letter(letter: DeadLetter) -> None:
            holder["dead_letter"] = letter

        gateway = self._choose_gateway(origin, target, payload)
        gateway.relay(payload, on_reply, on_dead_letter, deadline=group_deadline)
        self._await_relay(origin, target, holder)
        now = self.world.now

        def ship_fail(code: str, reason: str, attempts: int, hops: tuple) -> None:
            for index, _, _ in shipped:
                if obs.enabled:
                    obs.inc(
                        "env.federation.expired"
                        if code == REASON_DEADLINE_EXCEEDED
                        else "env.federation.dead_letters"
                    )
                results[index] = FederatedOutcome(
                    outcome=origin.env._fail(code, reason),
                    origin=origin.name,
                    target=target.name,
                    hops=hops,
                    attempts=attempts,
                    latency_s=now - started,
                )

        if "dead_letter" in holder:
            letter: DeadLetter = holder["dead_letter"]
            code = (
                REASON_DEADLINE_EXCEEDED
                if letter.reason == REASON_RELAY_DEADLINE
                else REASON_GATEWAY_DEAD_LETTER
            )
            ship_fail(
                code,
                f"gateway {origin.name}->{target.name} batch relay failed "
                f"({letter.reason}) after {letter.attempts} attempts",
                letter.attempts,
                (origin_hop,),
            )
            return [result for result in results if result is not None]
        reply = holder["reply"]
        relay_path = reply.get("relay_path", ()) if isinstance(reply, dict) else ()
        relay_hops = tuple(Hop(h["domain"], "relay", h["at"]) for h in relay_path)
        attempts = holder["attempts"] + sum(h.get("attempts", 0) for h in relay_path)
        if isinstance(reply, dict) and "error" in reply:
            ship_fail(
                REASON_GATEWAY_DEAD_LETTER,
                f"batch relay {origin.name}->{target.name} failed remotely: "
                f"{reply['error']}",
                attempts,
                (origin_hop, *relay_hops),
            )
            return [result for result in results if result is not None]
        if isinstance(reply, dict) and "failed" in reply:
            ship_fail(
                reply["failed"],
                reply.get("detail", "forwarded batch relay failed"),
                attempts,
                (origin_hop, *relay_hops),
            )
            return [result for result in results if result is not None]
        hops = (
            origin_hop,
            *relay_hops,
            Hop(target.name, "deliver", reply["handled_at"]),
            Hop(origin.name, "reply", now),
        )
        for (index, _, _), outcome_document in zip(shipped, reply["outcomes"]):
            outcome = _outcome_from_document(
                outcome_document,
                trace_id=context.trace_id if context is not None else "",
            )
            if obs.enabled and outcome.delivered:
                obs.inc("env.federation.delivered")
            results[index] = FederatedOutcome(
                outcome=outcome,
                origin=origin.name,
                target=target.name,
                hops=hops,
                attempts=attempts,
                latency_s=now - started,
            )
        if obs.enabled:
            obs.observe("env.federation.relay_latency_s", now - started)
        return [result for result in results if result is not None]

    def _pick_intermediate(self, origin: Domain, target: Domain) -> Domain | None:
        """The first domain (creation order) with both legs healthy.

        A viable intermediate has ready breakers on origin -> via and
        via -> target; ``None`` when no such domain exists (the relay
        then falls through to the direct gateway and fast-fails).
        """
        for via in self._domains.values():
            if via is origin or via is target:
                continue
            first = origin.gateways.get(via.name)
            second = via.gateways.get(target.name)
            if (
                first is not None
                and second is not None
                and first.ready()
                and second.ready()
            ):
                return via
        return None

    def _handle_relay(self, domain: Domain, payload: dict[str, Any]) -> Any:
        """Inbound gateway handler: dedup, forward on, or run the pipeline.

        Gateways are at-least-once on the wire; the ``relay_id`` dedup
        cache makes the processing at-most-once — a retried relay whose
        earlier attempt already got through returns the cached reply
        instead of re-delivering.  A payload whose ``final_target`` is
        another domain arrived here as a failover intermediate and is
        forwarded through this domain's own gateway (the transport holds
        the inbound request open via a deferred reply meanwhile).
        """
        relay_id = payload.get("relay_id")
        if relay_id is not None and relay_id in domain.relay_seen:
            if self._metrics.enabled:
                self._metrics.inc("gateway.deduplicated")
            return domain.relay_seen[relay_id]
        final = payload.get("final_target")
        if final is not None and final != domain.name:
            return self._forward_relay(domain, payload, final)
        if "requests" in payload:
            # A batched run from federated_exchange_many: unpack into
            # this environment's own batched fast path, one reply for
            # the whole run.
            requests = [
                ExchangeRequest.from_document(document)
                for document in payload["requests"]
            ]
            if self._metrics.enabled:
                self._metrics.inc("gateway.inbound", len(requests))
                mediated = sum(
                    1 for document in payload["requests"] if "mediation" in document
                )
                if mediated:
                    self._metrics.inc("mediation.plan.relayed", mediated)
            with self._trace.span_from_context(
                "federation.relay",
                TraceContext.from_document(payload.get(TRACE_KEY)),
                domain=domain.name,
                batch=len(requests),
            ):
                outcomes = domain.env.exchange_many(requests)
            reply = {
                "outcomes": [_outcome_document(outcome) for outcome in outcomes],
                "handled_at": self.world.now,
                "domain": domain.name,
                "relay_path": [],
            }
            if relay_id is not None:
                domain.remember_relay(relay_id, reply)
            return reply
        request = ExchangeRequest.from_document(payload)
        mediation = payload.get("mediation")
        if self._metrics.enabled:
            self._metrics.inc("gateway.inbound")
            if mediation is not None:
                self._metrics.inc("mediation.plan.relayed")
        # Continue the trace the payload carries: the target pipeline's
        # env.exchange span nests under this one, so the outcome's
        # trace_id is the origin's — the receiving half of propagation.
        with self._trace.span_from_context(
            "federation.relay",
            TraceContext.from_document(payload.get(TRACE_KEY)),
            domain=domain.name,
        ) as span:
            if mediation is not None and span is not None:
                span.tag(
                    mediated_fidelity=mediation.get("fidelity"),
                    mediated_hops=mediation.get("hops"),
                )
            outcome = domain.env.exchange(request)
        reply = {
            "outcome": _outcome_document(outcome),
            "handled_at": self.world.now,
            "domain": domain.name,
            "relay_path": [],
        }
        if relay_id is not None:
            domain.remember_relay(relay_id, reply)
        return reply

    def _forward_relay(
        self, domain: Domain, payload: dict[str, Any], final: str
    ) -> DeferredReply:
        """Forward a failover relay from intermediate *domain* to *final*."""
        obs = self._metrics
        if obs.enabled:
            obs.inc("env.federation.forwarded")
        deferred = DeferredReply()
        relay_id = payload.get("relay_id")
        forwarded_at = self.world.now
        if relay_id is not None:
            # Cache the in-flight deferred so a duplicate of the inbound
            # leg latches onto the same forwarding, not a second one.
            domain.remember_relay(relay_id, deferred)
        span: Span | None = None
        if self._trace.enabled:
            # A detached span for the forwarding leg: it stays open
            # across the async relay, and the re-stamped payload parents
            # the next hop under it — breaker-triggered failover paths
            # stay inside the origin's trace.
            span = self._trace.start_span(
                "federation.forward",
                context=TraceContext.from_document(payload.get(TRACE_KEY)),
                via=domain.name,
                final=final,
            )
            payload = dict(payload)
            payload[TRACE_KEY] = TraceContext(
                span.trace_id, span.span_id, span.sampled
            ).to_document()

        def close_span(outcome: str) -> None:
            if span is not None:
                span.tag(outcome=outcome)
                self._trace.finish(span)

        def on_reply(reply: Any, attempts: int) -> None:
            close_span("delivered")
            if isinstance(reply, dict) and "relay_path" in reply:
                reply = dict(reply)
                reply["relay_path"] = [
                    {"domain": domain.name, "at": forwarded_at, "attempts": attempts}
                ] + list(reply["relay_path"])
            if relay_id is not None:
                domain.remember_relay(relay_id, reply)
            deferred.resolve(reply)

        def on_dead_letter(letter: DeadLetter) -> None:
            close_span(letter.reason)
            code = (
                REASON_DEADLINE_EXCEEDED
                if letter.reason == REASON_RELAY_DEADLINE
                else REASON_GATEWAY_DEAD_LETTER
            )
            failure = {
                "failed": code,
                "detail": (
                    f"forwarded relay {domain.name}->{final} failed "
                    f"({letter.reason}) after {letter.attempts} attempts"
                ),
                "relay_path": [
                    {
                        "domain": domain.name,
                        "at": forwarded_at,
                        "attempts": letter.attempts,
                    }
                ],
            }
            if relay_id is not None:
                domain.remember_relay(relay_id, failure)
            deferred.resolve(failure)

        try:
            gateway = domain.gateway_to(final)
        except KeyError:
            close_span("no-gateway")
            deferred.fail(f"no gateway from {domain.name} to {final}")
            return deferred
        gateway.relay(
            dict(payload), on_reply, on_dead_letter, deadline=payload.get("deadline")
        )
        return deferred

    # -- adaptive control ----------------------------------------------------
    def attach_control(
        self,
        policy: "ControlPolicy | None" = None,
        slo: "SLOEngine | None" = None,
    ) -> "ControlPlane":
        """Wire an adaptive :class:`~repro.control.plane.ControlPlane`
        over the whole federation (call after the topology is built).

        Every directed gateway is managed (pre-emptive drain on health
        trend / retry surge, attempt-budget boost under SLO burn), every
        shadowing agreement gets burn-time re-balancing, and every
        domain environment gets burn-time shed tightening.  *slo* (when
        given) feeds its burn alerts into the plane; health trends come
        from :meth:`start_health_checks` when probes are running.  The
        plane is exposed as :attr:`control` and returned unstarted —
        call ``.start()`` to arm the loop.
        """
        from repro.control.plane import ControlPlane

        plane = ControlPlane(
            self.world.engine,
            policy=policy,
            metrics=self._env_metrics,
            events=self._events if self._events.enabled else None,
            tracer=self._tracer,
        )
        if slo is not None:
            plane.watch_slo(slo)
        for source in self._domains.values():
            for peer, gateway in sorted(source.gateways.items()):
                plane.manage_gateway(
                    f"{source.name}->{peer}", gateway, health=self._health
                )
        for (consumer, master), agreement in sorted(self.shadowing.items()):
            plane.manage_shadowing(f"shadow:{consumer}<-{master}", agreement)
        for domain in self._domains.values():
            plane.manage_environment(domain.name, domain.env)
        self.control = plane
        return plane

    # -- trading across domains --------------------------------------------
    def import_service(
        self,
        domain_name: str,
        service_type: str,
        constraints: list | None = None,
        preference: str = "first",
        context: Any = None,
    ) -> Any:
        """Import one offer as *domain_name*: local trader first, links after.

        Cross-domain offer lookup rides the trader links wired between
        every pair; each linked trader applies its own organisational
        import policy, so a peer's policy can hide its offers from this
        importer even when the link is up.
        """
        return self.domain(domain_name).trader.import_one(
            service_type, constraints, preference, context
        )

    # -- introspection -----------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """A federation-wide inventory snapshot."""
        inventory: dict[str, Any] = {
            "name": self.name,
            "domains": {name: d.describe() for name, d in self._domains.items()},
            "people": {
                person: home for person, home in sorted(self._home_cache.items())
            },
            "shadowing": {
                f"{consumer}<-{master}": {
                    "pulls": agreement.pulls,
                    "syncs": agreement.syncs,
                    "failed_pulls": agreement.failed_pulls,
                }
                for (consumer, master), agreement in sorted(self.shadowing.items())
            },
        }
        if self._resilience:
            inventory["resilience"] = {
                "breakers": {
                    f"{source}->{peer}": domain.gateways[peer].breaker.stats()
                    for source, domain in sorted(self._domains.items())
                    for peer in sorted(domain.gateways)
                    if domain.gateways[peer].breaker is not None
                },
                "health": None if self._health is None else self._health.stats(),
            }
        if self._metrics.enabled:
            inventory["metrics"] = self._metrics.snapshot()
        return inventory
