"""Inter-domain gateways: store-and-forward relay between two domains.

The paper's openness argument is inter-organisational: "the progression
towards open CSCW systems requires the consideration of co-operation
across different organisations" — which in ODP terms means crossing an
*administrative domain boundary*.  A :class:`Gateway` is the engineering
object sitting on that boundary: each domain runs one gateway endpoint
(an RPC server on its gateway node), and a directed ``Gateway`` object
per (source, target) pair relays exchange payloads over the simulated
inter-domain link.

Relay semantics are store-and-forward with at-least-once delivery:

* each relay gets an attempt budget: retries fire with exponential
  backoff (``retry_s * backoff ** (attempt-1)`` between attempts) while
  any in-flight attempt's reply — however late — can still settle the
  relay; exactly one of reply / dead-letter wins (the ``settled`` flag),
* every relay is stamped with a ``relay_id`` so the receiving side can
  deduplicate: at-least-once on the wire, at-most-once downstream,
* a relay that exhausts its budget lands in the gateway's **dead-letter
  queue** together with the reason, where an operator (or
  :meth:`Gateway.redrive` after the link heals) can pick it up,
* an optional per-relay ``deadline`` clamps the budget: a relay that
  cannot settle before its deadline fails with
  :data:`REASON_RELAY_DEADLINE` and is *not* parked (redriving an
  expired request helps nobody),
* an optional :class:`~repro.resilience.breaker.CircuitBreaker` gates
  admission: while the breaker is open new relays fail fast to the
  dead-letter queue (:data:`REASON_RELAY_CIRCUIT_OPEN`) instead of
  burning the full retry budget; attempt failures feed the breaker and
  :meth:`redrive` recloses it (redriving asserts the link healed),
* round-trip latency, retries and dead letters are exported as
  ``gateway.*`` metrics when a registry is attached.

The link itself is ordinary :mod:`repro.sim.network` fabric — the
federation sets an explicit :class:`~repro.sim.network.LinkSpec` between
the two gateway nodes, so link latency/loss/partition behaviour is
configurable per domain pair and observable in every relay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.context import TRACE_KEY, TraceContext
from repro.obs.events import (
    KIND_DEAD_LETTER,
    KIND_DEADLINE,
    KIND_REDRIVE,
    NULL_EVENTS,
    EventLog,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Span, Tracer
from repro.resilience.breaker import CircuitBreaker
from repro.sim.engine import EventHandle
from repro.sim.transport import RequestReply
from repro.util.errors import ConfigurationError
from repro.util.ids import IdFactory
from repro.util.serialization import document_size

#: RPC port gateway endpoints listen on (one per domain gateway node)
GATEWAY_PORT = "gateway"

#: dead-letter reasons
REASON_RELAY_TIMEOUT = "relay timeout"
REASON_RELAY_CIRCUIT_OPEN = "circuit-open"
REASON_RELAY_DEADLINE = "deadline-exceeded"

#: histogram buckets for relay round-trip latency (simulated seconds)
LATENCY_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: reply callback — receives the remote handler's reply document
RelayReply = Callable[[dict[str, Any], int], None]
#: dead-letter callback — receives the dead letter entry
RelayFailed = Callable[["DeadLetter"], None]


@dataclass
class DeadLetter:
    """One relay that exhausted its attempts; parked for redelivery."""

    payload: dict[str, Any]
    target: str
    attempts: int
    reason: str
    parked_at: float
    #: filled when the dead letter is redriven
    redriven: bool = False
    #: original completion callbacks, reused on redrive
    _on_reply: RelayReply | None = field(default=None, repr=False)
    _on_dead_letter: RelayFailed | None = field(default=None, repr=False)


class _Relay:
    """Mutable state of one relay: its attempts and its single settlement."""

    __slots__ = ("payload", "on_reply", "on_dead_letter", "deadline",
                 "park_at", "attempts", "settled", "span",
                 "budget_timer", "retry_timer")

    def __init__(
        self,
        payload: dict[str, Any],
        on_reply: RelayReply,
        on_dead_letter: RelayFailed | None,
        deadline: float | None,
    ) -> None:
        self.payload = payload
        self.on_reply = on_reply
        self.on_dead_letter = on_dead_letter
        self.deadline = deadline
        self.park_at = 0.0
        self.attempts = 0
        self.settled = False
        #: detached gateway.relay span, open from launch to settlement
        self.span: Span | None = None
        #: pending budget/retry events, cancelled on settlement — a
        #: settled relay must not leave garbage events deepening the heap
        #: for the relay's whole unused budget window
        self.budget_timer: "EventHandle | None" = None
        self.retry_timer: "EventHandle | None" = None


class Gateway:
    """Directed store-and-forward relay from one domain to another.

    The gateway owns no transport of its own: it sends over the *source*
    domain's shared gateway RPC endpoint to the *target* domain's
    gateway node, where the federation's relay handler feeds the payload
    into the target environment's local exchange pipeline.
    """

    def __init__(
        self,
        rpc: RequestReply,
        source: str,
        target: str,
        target_node: str,
        retry_s: float = 0.5,
        max_attempts: int = 4,
        backoff: float = 2.0,
        metrics: MetricsRegistry | None = None,
        breaker: CircuitBreaker | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError("gateway needs max_attempts >= 1")
        if retry_s <= 0:
            raise ConfigurationError("gateway retry_s must be > 0")
        self._rpc = rpc
        self._engine = rpc._engine
        self.source = source
        self.target = target
        self.target_node = target_node
        self._retry_s = retry_s
        self._max_attempts = max_attempts
        self._backoff = backoff
        self.attach_metrics(metrics)
        self._tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self._events: EventLog = events if events is not None else NULL_EVENTS
        self.breaker = breaker
        self._ids = IdFactory(width=6)
        self.relays = 0
        self.delivered = 0
        self.retries = 0
        self.duplicate_replies = 0
        self.expired = 0
        self.fast_failed = 0
        self.dead_letters: list[DeadLetter] = []
        #: relays launched but not yet settled (queue-depth signal)
        self.in_flight = 0
        #: soft-drained by the control plane: routing avoids this gateway
        self.drained = False

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report relay activity to *metrics* (``None`` detaches).

        Counters ``gateway.relays``/``delivered``/``retries``/
        ``dead_letters``/``duplicate_replies``/``expired``/
        ``fast_failed`` plus the ``gateway.latency_s`` round-trip
        histogram (simulated seconds).  The same signals are also
        recorded per link through ``(source, target)``-labelled families
        (``gateway.relays{source=..,target=..}`` etc.), so one registry
        attributes traffic across every directed gateway of a
        federation; the per-link child handles are resolved once here,
        not per relay.
        """
        self._obs = metrics if metrics is not None else NULL_METRICS
        obs, link = self._obs, {"source": self.source, "target": self.target}
        self._m_relays = obs.counter("gateway.relays", labels=("source", "target")).labels(**link)
        self._m_delivered = obs.counter("gateway.delivered", labels=("source", "target")).labels(**link)
        self._m_retries = obs.counter("gateway.retries", labels=("source", "target")).labels(**link)
        self._m_dead_letters = obs.counter("gateway.dead_letters", labels=("source", "target")).labels(**link)
        self._m_expired = obs.counter("gateway.expired", labels=("source", "target")).labels(**link)
        self._m_latency = obs.histogram(
            "gateway.latency_s", buckets=LATENCY_BUCKETS, labels=("source", "target")
        ).labels(**link)

    def ready(self) -> bool:
        """Whether routing should currently prefer this gateway.

        Side-effect free; the federation's failover routing consults
        this before choosing a path.  False while the breaker is open
        *or* while the control plane has soft-drained the gateway —
        draining steers new relays onto an intermediate route without
        refusing admission (a drained gateway with no alternative path
        still relays).
        """
        if self.drained:
            return False
        return self.breaker is None or self.breaker.ready()

    def drain(self) -> None:
        """Soft-drain: make :meth:`ready` report False (idempotent).

        Used by the adaptive control plane to steer traffic away from a
        degrading link *before* its breaker trips.  Unlike an open
        breaker, a drained gateway still admits relays when the caller
        has no alternative route.
        """
        self.drained = True

    def undrain(self) -> None:
        """Lift a soft drain (idempotent)."""
        self.drained = False

    def set_attempt_budget(self, max_attempts: int) -> None:
        """Change the per-relay attempt budget at runtime.

        Applies to relays launched after the call; in-flight relays
        keep the budget they were admitted with.  The control plane
        uses this to open extra relay capacity under burn and restore
        the configured budget after recovery.
        """
        if max_attempts < 1:
            raise ConfigurationError("gateway needs max_attempts >= 1")
        self._max_attempts = max_attempts

    @property
    def max_attempts(self) -> int:
        """The current per-relay attempt budget."""
        return self._max_attempts

    def _budget_s(self) -> float:
        """Total simulated seconds one relay may spend before parking."""
        return sum(
            self._retry_s * (self._backoff ** k) for k in range(self._max_attempts)
        )

    def relay(
        self,
        payload: dict[str, Any],
        on_reply: RelayReply,
        on_dead_letter: RelayFailed | None = None,
        deadline: float | None = None,
    ) -> None:
        """Relay *payload* to the target domain's gateway endpoint.

        *on_reply* fires with (reply_document, attempts) once the remote
        handler answers; after the attempt budget is exhausted the
        payload is parked in :attr:`dead_letters` and *on_dead_letter*
        (when given) fires instead.  Exactly one of the two callbacks
        fires per relay.  *deadline* (absolute simulated time) clamps
        the budget; a relay unsettled at its deadline fails with
        :data:`REASON_RELAY_DEADLINE` without being parked.
        """
        self.relays += 1
        self.in_flight += 1
        if self._obs.enabled:
            self._obs.inc("gateway.relays")
            self._m_relays.inc()
        payload.setdefault("relay_id", self._ids.next(f"relay:{self.source}>{self.target}"))
        state = _Relay(payload, on_reply, on_dead_letter, deadline)
        if self._tracer.enabled:
            # Continue the trace the payload carries (or the caller's open
            # span) and re-stamp the payload so the receiving side parents
            # under this hop — the wire half of trace propagation.  The
            # ``domain`` tag mirrors the labelled metrics (the hop runs in
            # the source domain); ``sampled`` rides along so every hop
            # honours the decision made at the trace's origin.
            state.span = self._tracer.start_span(
                "gateway.relay",
                context=TraceContext.from_document(payload.get(TRACE_KEY)),
                source=self.source,
                target=self.target,
                domain=self.source,
            )
            if state.span.sampled:
                payload[TRACE_KEY] = {
                    "trace_id": state.span.trace_id,
                    "span_id": state.span.span_id,
                }
            else:
                payload[TRACE_KEY] = {
                    "trace_id": state.span.trace_id,
                    "span_id": state.span.span_id,
                    "sampled": False,
                }
        now = self._engine.now
        if deadline is not None and now >= deadline:
            self._settle_expired(state)
            return
        if self.breaker is not None and not self.breaker.allow():
            self.fast_failed += 1
            if self._obs.enabled:
                self._obs.inc("gateway.fast_failed")
            self._settle_parked(state, REASON_RELAY_CIRCUIT_OPEN)
            return
        state.park_at = now + self._budget_s()
        if deadline is not None:
            state.park_at = min(state.park_at, deadline)
        state.budget_timer = self._engine.schedule_at(
            state.park_at,
            lambda: self._on_budget_exhausted(state),
            label=f"gateway-budget:{self.source}->{self.target}",
        )
        self._launch(state)

    def _launch(self, state: _Relay) -> None:
        if state.settled:
            return
        state.attempts += 1
        attempt = state.attempts
        now = self._engine.now
        sent_at = now

        def deliver(reply: Any) -> None:
            self._settle_delivered(state, reply, sent_at)

        # The RPC window stays open for the relay's whole remaining
        # budget: a slow reply to an earlier attempt still settles the
        # relay (the settled flag keeps later replies from firing twice).
        self._rpc.request(
            self.target_node,
            "relay",
            state.payload,
            on_reply=deliver,
            timeout_s=max(state.park_at - now, self._retry_s * 0.01),
            size_bytes=document_size(state.payload),
        )
        if attempt < self._max_attempts:
            delay = self._retry_s * (self._backoff ** (attempt - 1))
            if now + delay < state.park_at:
                state.retry_timer = self._engine.schedule(
                    delay,
                    lambda: self._retry(state),
                    label=f"gateway-retry:{self.source}->{self.target}",
                )

    def _cancel_timers(self, state: _Relay) -> None:
        """Drop a settled relay's pending budget/retry events.

        Without this every settled relay leaves events parked up to its
        whole unused budget window (~seconds of simulated time) in the
        engine heap, deepening every subsequent push/pop comparison.
        """
        if state.budget_timer is not None:
            state.budget_timer.cancel()
            state.budget_timer = None
        if state.retry_timer is not None:
            state.retry_timer.cancel()
            state.retry_timer = None

    def _retry(self, state: _Relay) -> None:
        state.retry_timer = None
        if state.settled:
            return
        self.retries += 1
        if self._obs.enabled:
            self._obs.inc("gateway.retries")
            self._m_retries.inc()
        self._note_failure()
        self._launch(state)

    def _note_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    def _close_span(self, state: _Relay, outcome: str) -> None:
        """Finish the relay's detached span, stamped with how it ended."""
        if state.span is not None:
            state.span.tag(outcome=outcome, attempts=state.attempts)
            self._tracer.finish(state.span)

    def _trace_id(self, state: _Relay) -> str:
        """The trace a relay ran under, for event correlation."""
        if state.span is not None:
            return state.span.trace_id
        context = TraceContext.from_document(state.payload.get(TRACE_KEY))
        return context.trace_id if context is not None else ""

    def _settle_delivered(self, state: _Relay, reply: Any, sent_at: float) -> None:
        if state.settled:
            self.duplicate_replies += 1
            if self._obs.enabled:
                self._obs.inc("gateway.duplicate_replies")
            return
        state.settled = True
        self._cancel_timers(state)
        self.in_flight -= 1
        self.delivered += 1
        if self.breaker is not None:
            self.breaker.record_success()
        if self._obs.enabled:
            self._obs.inc("gateway.delivered")
            self._m_delivered.inc()
            latency = self._engine.now - sent_at
            self._obs.observe("gateway.latency_s", latency, buckets=LATENCY_BUCKETS)
            self._m_latency.observe(latency)
        self._close_span(state, "delivered")
        state.on_reply(reply, state.attempts)

    def _on_budget_exhausted(self, state: _Relay) -> None:
        state.budget_timer = None
        if state.settled:
            return
        self._note_failure()
        if state.deadline is not None and self._engine.now >= state.deadline:
            self._settle_expired(state)
            return
        self._settle_parked(state, REASON_RELAY_TIMEOUT)

    def _settle_expired(self, state: _Relay) -> None:
        """Deadline hit: fail the relay without parking it."""
        state.settled = True
        self._cancel_timers(state)
        self.in_flight -= 1
        self.expired += 1
        if self._obs.enabled:
            self._obs.inc("gateway.expired")
            self._m_expired.inc()
        self._close_span(state, REASON_RELAY_DEADLINE)
        if self._events.enabled:
            self._events.record(
                self._engine.now,
                KIND_DEADLINE,
                trace_id=self._trace_id(state),
                gateway=f"{self.source}->{self.target}",
                attempts=state.attempts,
            )
        letter = DeadLetter(
            payload=state.payload,
            target=self.target,
            attempts=state.attempts,
            reason=REASON_RELAY_DEADLINE,
            parked_at=self._engine.now,
            _on_reply=state.on_reply,
            _on_dead_letter=state.on_dead_letter,
        )
        if state.on_dead_letter is not None:
            state.on_dead_letter(letter)

    def _settle_parked(self, state: _Relay, reason: str) -> None:
        state.settled = True
        self._cancel_timers(state)
        self.in_flight -= 1
        self._close_span(state, reason)
        if self._events.enabled:
            self._events.record(
                self._engine.now,
                KIND_DEAD_LETTER,
                trace_id=self._trace_id(state),
                gateway=f"{self.source}->{self.target}",
                reason=reason,
                attempts=state.attempts,
            )
        letter = DeadLetter(
            payload=state.payload,
            target=self.target,
            attempts=state.attempts,
            reason=reason,
            parked_at=self._engine.now,
            _on_reply=state.on_reply,
            _on_dead_letter=state.on_dead_letter,
        )
        self.dead_letters.append(letter)
        if self._obs.enabled:
            self._obs.inc("gateway.dead_letters")
            self._m_dead_letters.inc()
        if state.on_dead_letter is not None:
            state.on_dead_letter(letter)

    def redrive(self) -> int:
        """Re-relay every parked dead letter (after the link healed).

        Redriving is an operator assertion that the link is back: the
        breaker (when present) is reclosed first so the redriven relays
        are admitted.  Each redriven payload gets a fresh attempt budget
        with its original callbacks; letters that fail again are parked
        again as new entries.  Returns the number of letters redriven.
        """
        if self.breaker is not None:
            self.breaker.reset()
        parked = [letter for letter in self.dead_letters if not letter.redriven]
        if parked and self._events.enabled:
            self._events.record(
                self._engine.now,
                KIND_REDRIVE,
                gateway=f"{self.source}->{self.target}",
                letters=len(parked),
            )
        for letter in parked:
            letter.redriven = True
            on_reply = letter._on_reply or (lambda reply, attempts: None)
            self.relay(letter.payload, on_reply, letter._on_dead_letter)
        return len(parked)

    def stats(self) -> dict[str, int]:
        """Relay counters, for ``Federation.describe()`` and the bench.

        ``dead_letters`` counts letters still awaiting redrive — a
        redriven letter is the same payload continuing its life as a new
        relay, not a second loss.
        """
        return {
            "relays": self.relays,
            "delivered": self.delivered,
            "retries": self.retries,
            "dead_letters": sum(
                1 for letter in self.dead_letters if not letter.redriven
            ),
        }
