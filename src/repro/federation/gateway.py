"""Inter-domain gateways: store-and-forward relay between two domains.

The paper's openness argument is inter-organisational: "the progression
towards open CSCW systems requires the consideration of co-operation
across different organisations" — which in ODP terms means crossing an
*administrative domain boundary*.  A :class:`Gateway` is the engineering
object sitting on that boundary: each domain runs one gateway endpoint
(an RPC server on its gateway node), and a directed ``Gateway`` object
per (source, target) pair relays exchange payloads over the simulated
inter-domain link.

Relay semantics are store-and-forward with at-least-once delivery:

* a relay that times out is retried with exponential backoff
  (``retry_s * backoff ** (attempt-1)`` between attempts),
* a relay that exhausts its attempts lands in the gateway's
  **dead-letter queue** together with the reason, where an operator (or
  :meth:`Gateway.redrive` after the link heals) can pick it up,
* round-trip latency, retries and dead letters are exported as
  ``gateway.*`` metrics when a registry is attached.

The link itself is ordinary :mod:`repro.sim.network` fabric — the
federation sets an explicit :class:`~repro.sim.network.LinkSpec` between
the two gateway nodes, so link latency/loss/partition behaviour is
configurable per domain pair and observable in every relay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.sim.transport import RequestReply
from repro.util.errors import ConfigurationError
from repro.util.serialization import document_size

#: RPC port gateway endpoints listen on (one per domain gateway node)
GATEWAY_PORT = "gateway"

#: histogram buckets for relay round-trip latency (simulated seconds)
LATENCY_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: reply callback — receives the remote handler's reply document
RelayReply = Callable[[dict[str, Any], int], None]
#: dead-letter callback — receives the dead letter entry
RelayFailed = Callable[["DeadLetter"], None]


@dataclass
class DeadLetter:
    """One relay that exhausted its attempts; parked for redelivery."""

    payload: dict[str, Any]
    target: str
    attempts: int
    reason: str
    parked_at: float
    #: filled when the dead letter is redriven
    redriven: bool = False
    #: original completion callbacks, reused on redrive
    _on_reply: RelayReply | None = field(default=None, repr=False)


class Gateway:
    """Directed store-and-forward relay from one domain to another.

    The gateway owns no transport of its own: it sends over the *source*
    domain's shared gateway RPC endpoint to the *target* domain's
    gateway node, where the federation's relay handler feeds the payload
    into the target environment's local exchange pipeline.
    """

    def __init__(
        self,
        rpc: RequestReply,
        source: str,
        target: str,
        target_node: str,
        retry_s: float = 0.5,
        max_attempts: int = 4,
        backoff: float = 2.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError("gateway needs max_attempts >= 1")
        if retry_s <= 0:
            raise ConfigurationError("gateway retry_s must be > 0")
        self._rpc = rpc
        self._engine = rpc._engine
        self.source = source
        self.target = target
        self.target_node = target_node
        self._retry_s = retry_s
        self._max_attempts = max_attempts
        self._backoff = backoff
        self._obs: MetricsRegistry = metrics if metrics is not None else NULL_METRICS
        self.relays = 0
        self.delivered = 0
        self.retries = 0
        self.dead_letters: list[DeadLetter] = []

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report relay activity to *metrics* (``None`` detaches).

        Counters ``gateway.relays``/``delivered``/``retries``/
        ``dead_letters`` plus the ``gateway.latency_s`` round-trip
        histogram (simulated seconds).
        """
        self._obs = metrics if metrics is not None else NULL_METRICS

    def relay(
        self,
        payload: dict[str, Any],
        on_reply: RelayReply,
        on_dead_letter: RelayFailed | None = None,
    ) -> None:
        """Relay *payload* to the target domain's gateway endpoint.

        *on_reply* fires with (reply_document, attempts) once the remote
        handler answers; after ``max_attempts`` timed-out attempts the
        payload is parked in :attr:`dead_letters` and *on_dead_letter*
        (when given) fires instead.
        """
        self.relays += 1
        if self._obs.enabled:
            self._obs.inc("gateway.relays")
        self._attempt(payload, on_reply, on_dead_letter, attempt=1)

    def _attempt(
        self,
        payload: dict[str, Any],
        on_reply: RelayReply,
        on_dead_letter: RelayFailed | None,
        attempt: int,
    ) -> None:
        sent_at = self._engine.now

        def deliver(reply: Any) -> None:
            self.delivered += 1
            if self._obs.enabled:
                self._obs.inc("gateway.delivered")
                self._obs.observe(
                    "gateway.latency_s",
                    self._engine.now - sent_at,
                    buckets=LATENCY_BUCKETS,
                )
            on_reply(reply, attempt)

        def timed_out() -> None:
            if attempt >= self._max_attempts:
                self._park(payload, attempt, "relay timeout", on_reply, on_dead_letter)
                return
            self.retries += 1
            if self._obs.enabled:
                self._obs.inc("gateway.retries")
            delay = self._retry_s * (self._backoff ** (attempt - 1))
            self._engine.schedule(
                delay,
                lambda: self._attempt(payload, on_reply, on_dead_letter, attempt + 1),
                label=f"gateway-retry:{self.source}->{self.target}",
            )

        self._rpc.request(
            self.target_node,
            "relay",
            payload,
            on_reply=deliver,
            timeout_s=self._retry_s * (self._backoff ** (attempt - 1)),
            on_timeout=timed_out,
            size_bytes=document_size(payload),
        )

    def _park(
        self,
        payload: dict[str, Any],
        attempts: int,
        reason: str,
        on_reply: RelayReply,
        on_dead_letter: RelayFailed | None,
    ) -> None:
        letter = DeadLetter(
            payload=payload,
            target=self.target,
            attempts=attempts,
            reason=reason,
            parked_at=self._engine.now,
            _on_reply=on_reply,
        )
        self.dead_letters.append(letter)
        if self._obs.enabled:
            self._obs.inc("gateway.dead_letters")
        if on_dead_letter is not None:
            on_dead_letter(letter)

    def redrive(self) -> int:
        """Re-relay every parked dead letter (after the link healed).

        Each redriven payload gets a fresh attempt budget; letters that
        fail again are parked again as new entries.  Returns the number
        of letters redriven.
        """
        parked = [letter for letter in self.dead_letters if not letter.redriven]
        for letter in parked:
            letter.redriven = True
            on_reply = letter._on_reply or (lambda reply, attempts: None)
            self.relay(letter.payload, on_reply)
        return len(parked)

    def stats(self) -> dict[str, int]:
        """Relay counters, for ``Federation.describe()`` and the bench."""
        return {
            "relays": self.relays,
            "delivered": self.delivered,
            "retries": self.retries,
            "dead_letters": len(self.dead_letters),
        }
