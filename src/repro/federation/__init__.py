"""Multi-domain CSCW: federated environments behind inter-domain gateways.

The paper argues open CSCW systems are a specialisation of open
*distributed* systems — organisation transparency has to hold across
administrative domain boundaries, not just inside one environment.  This
package composes the library's single-node primitives (federated naming,
trader links, directory shadowing, MTAs) into a running multi-domain
system:

* :class:`~repro.federation.domain.Domain` — one org unit's environment
  plus its naming domain, DSA, MTA and gateway endpoint,
* :class:`~repro.federation.gateway.Gateway` — directed store-and-forward
  relay between two domains with retry/backoff and a dead-letter queue,
* :class:`~repro.federation.federation.Federation` — the coordinator that
  partitions a :class:`~repro.sim.world.World` across domains, keeps
  every pair wired, and provides
  :meth:`~repro.federation.federation.Federation.federated_exchange`.
"""

from repro.federation.domain import MAIL_ADMD, MAIL_COUNTRY, Domain
from repro.federation.federation import (
    REASON_GATEWAY_DEAD_LETTER,
    Federation,
    FederatedOutcome,
    Hop,
)
from repro.federation.gateway import GATEWAY_PORT, DeadLetter, Gateway

__all__ = [
    "Domain",
    "DeadLetter",
    "Federation",
    "FederatedOutcome",
    "GATEWAY_PORT",
    "Gateway",
    "Hop",
    "MAIL_ADMD",
    "MAIL_COUNTRY",
    "REASON_GATEWAY_DEAD_LETTER",
]
