"""O/R (Originator/Recipient) names for the message handling system.

X.400 addresses users by attribute lists rather than flat strings.  We keep
the attributes that matter for routing and directory lookup: country,
ADMD (administration domain), PRMD (private domain — typically the
organisation), organisational units, and personal name parts.

The *routing domain* of an O/R name — ``(country, admd, prmd)`` — is what
MTAs route on; the personal parts select the mailbox within the domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import MessagingError


@dataclass(frozen=True)
class OrName:
    """An X.400-style originator/recipient name."""

    country: str
    admd: str
    prmd: str
    surname: str
    given_name: str = ""
    organizational_units: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.country or not self.prmd or not self.surname:
            raise MessagingError("O/R name needs at least country, prmd and surname")

    @property
    def routing_domain(self) -> tuple[str, str, str]:
        """The (country, admd, prmd) triple MTAs route on."""
        return (self.country.lower(), self.admd.lower(), self.prmd.lower())

    @property
    def mailbox(self) -> str:
        """The within-domain mailbox key."""
        parts = [self.given_name.lower(), self.surname.lower()]
        return ".".join(p for p in parts if p)

    def __str__(self) -> str:
        attributes = [f"C={self.country}", f"A={self.admd}", f"P={self.prmd}"]
        attributes.extend(f"OU={ou}" for ou in self.organizational_units)
        if self.given_name:
            attributes.append(f"G={self.given_name}")
        attributes.append(f"S={self.surname}")
        return ";".join(attributes)

    @staticmethod
    def parse(text: str) -> "OrName":
        """Parse the ``C=..;A=..;P=..;OU=..;G=..;S=..`` form."""
        fields: dict[str, str] = {}
        org_units: list[str] = []
        for part in text.split(";"):
            key, sep, value = part.partition("=")
            if not sep:
                raise MessagingError(f"invalid O/R name component {part!r}")
            key = key.strip().upper()
            value = value.strip()
            if key == "OU":
                org_units.append(value)
            else:
                fields[key] = value
        try:
            return OrName(
                country=fields["C"],
                admd=fields.get("A", ""),
                prmd=fields["P"],
                surname=fields["S"],
                given_name=fields.get("G", ""),
                organizational_units=tuple(org_units),
            )
        except KeyError as missing:
            raise MessagingError(f"O/R name {text!r} is missing {missing}") from None

    def to_document(self) -> dict:
        """Serialize for envelopes."""
        return {
            "country": self.country,
            "admd": self.admd,
            "prmd": self.prmd,
            "surname": self.surname,
            "given_name": self.given_name,
            "organizational_units": list(self.organizational_units),
        }

    @staticmethod
    def from_document(document: dict) -> "OrName":
        """Deserialize from envelope form."""
        return OrName(
            country=document["country"],
            admd=document.get("admd", ""),
            prmd=document["prmd"],
            surname=document["surname"],
            given_name=document.get("given_name", ""),
            organizational_units=tuple(document.get("organizational_units", ())),
        )


def or_name(text: str) -> OrName:
    """Shorthand for :meth:`OrName.parse`.

    >>> or_name("C=ES;A= ;P=UPC;G=Ana;S=Lopez").mailbox
    'ana.lopez'
    """
    return OrName.parse(text)
