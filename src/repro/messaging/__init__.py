"""X.400-style message handling system: envelopes, MTAs, stores, UAs.

The paper (section 4): "Traditionally, communication support for CSCW
systems has been provided by asynchronous OSI communication standards such
as X.400."  This package provides that substrate — P1 envelopes and P2
interpersonal messages, multi-media body parts with a conversion matrix,
store-and-forward MTAs with routing/trace/reports, message stores and user
agents — all running on the simulator.
"""

from repro.messaging.body_parts import (
    CONVERSION_FIDELITY,
    MEDIA_BINARY,
    MEDIA_FAX,
    MEDIA_PAPER,
    MEDIA_TEXT,
    MEDIA_VOICE,
    BodyPart,
    binary_body,
    can_convert,
    conversion_fidelity,
    convert,
    fax_body,
    text_body,
    voice_body,
)
from repro.messaging.envelope import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Envelope,
    InterpersonalMessage,
    TraceEntry,
)
from repro.messaging.message_store import MessageStore, StoredMessage
from repro.messaging.mta import MHS_PORT, MessageTransferAgent
from repro.messaging.names import OrName, or_name
from repro.messaging.reports import (
    REASON_HOP_LIMIT,
    REASON_NO_ROUTE,
    REASON_TRANSFER_FAILURE,
    REASON_UNKNOWN_RECIPIENT,
    DeliveryReport,
    NonDeliveryReport,
    report_from_document,
)
from repro.messaging.routing import Route, RoutingTable
from repro.messaging.ua import UserAgent

__all__ = [
    "CONVERSION_FIDELITY",
    "MEDIA_BINARY",
    "MEDIA_FAX",
    "MEDIA_PAPER",
    "MEDIA_TEXT",
    "MEDIA_VOICE",
    "BodyPart",
    "binary_body",
    "can_convert",
    "conversion_fidelity",
    "convert",
    "fax_body",
    "text_body",
    "voice_body",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Envelope",
    "InterpersonalMessage",
    "TraceEntry",
    "MessageStore",
    "StoredMessage",
    "MHS_PORT",
    "MessageTransferAgent",
    "OrName",
    "or_name",
    "REASON_HOP_LIMIT",
    "REASON_NO_ROUTE",
    "REASON_TRANSFER_FAILURE",
    "REASON_UNKNOWN_RECIPIENT",
    "DeliveryReport",
    "NonDeliveryReport",
    "report_from_document",
    "Route",
    "RoutingTable",
    "UserAgent",
]
