"""Multi-media body parts for interpersonal messages.

The paper requires "support for a wide range of media, including telefax
and where applicable paper communication" and "interchange across
communication media" (section 4).  Body parts carry a media type, an
estimated wire size, and participate in a conversion matrix used by the
communication model's interchange service: fax pages can be rendered from
text, voice transcribed to text (lossy), and anything can be printed to
paper (an exit from the electronic system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import MessagingError

#: media types understood by the interchange service
MEDIA_TEXT = "text"
MEDIA_FAX = "fax"
MEDIA_VOICE = "voice"
MEDIA_BINARY = "binary"
MEDIA_PAPER = "paper"


@dataclass(frozen=True)
class BodyPart:
    """One body part: a media type plus its content document."""

    media: str
    content: dict[str, Any] = field(default_factory=dict)

    def size_bytes(self) -> int:
        """Estimated wire size used to charge network transmission."""
        if self.media == MEDIA_TEXT:
            return len(str(self.content.get("text", "")).encode("utf-8"))
        if self.media == MEDIA_FAX:
            return int(self.content.get("pages", 1)) * 30_000
        if self.media == MEDIA_VOICE:
            return int(self.content.get("duration_s", 1)) * 8_000
        if self.media == MEDIA_PAPER:
            return 0  # paper does not travel over the network
        return int(self.content.get("size", 256))

    def to_document(self) -> dict[str, Any]:
        """Serialize for envelopes."""
        return {"media": self.media, "content": dict(self.content)}

    @staticmethod
    def from_document(document: dict[str, Any]) -> "BodyPart":
        """Deserialize from envelope form."""
        return BodyPart(document["media"], dict(document.get("content", {})))


def text_body(text: str) -> BodyPart:
    """A plain text body part."""
    return BodyPart(MEDIA_TEXT, {"text": text})


def fax_body(pages: int, summary: str = "") -> BodyPart:
    """A telefax body part of *pages* raster pages."""
    if pages < 1:
        raise MessagingError("a fax needs at least one page")
    return BodyPart(MEDIA_FAX, {"pages": pages, "summary": summary})


def voice_body(duration_s: float, transcript: str = "") -> BodyPart:
    """A voice recording body part."""
    if duration_s <= 0:
        raise MessagingError("voice duration must be positive")
    return BodyPart(MEDIA_VOICE, {"duration_s": duration_s, "transcript": transcript})


def binary_body(size: int, description: str = "") -> BodyPart:
    """An opaque binary body part."""
    return BodyPart(MEDIA_BINARY, {"size": size, "description": description})


#: (source media -> target media) -> conversion fidelity in (0, 1];
#: absent pairs are not convertible.  Identity conversions are implicit.
CONVERSION_FIDELITY: dict[tuple[str, str], float] = {
    (MEDIA_TEXT, MEDIA_FAX): 1.0,     # render text onto fax pages
    (MEDIA_TEXT, MEDIA_PAPER): 1.0,   # print
    (MEDIA_FAX, MEDIA_PAPER): 1.0,    # print
    (MEDIA_FAX, MEDIA_TEXT): 0.7,     # OCR, lossy
    (MEDIA_VOICE, MEDIA_TEXT): 0.6,   # transcription, lossy
    (MEDIA_VOICE, MEDIA_PAPER): 0.6,  # transcribe then print
    (MEDIA_BINARY, MEDIA_PAPER): 0.3, # hex dump; technically paper
}


def can_convert(source: str, target: str) -> bool:
    """True when the interchange service can convert source -> target."""
    if source == target:
        return True
    return (source, target) in CONVERSION_FIDELITY


def conversion_fidelity(source: str, target: str) -> float:
    """Fidelity of converting source -> target (1.0 for identity)."""
    if source == target:
        return 1.0
    try:
        return CONVERSION_FIDELITY[(source, target)]
    except KeyError:
        raise MessagingError(f"no conversion from {source!r} to {target!r}") from None


def convert(part: BodyPart, target: str) -> BodyPart:
    """Convert a body part to the target media.

    The converted content records provenance (original media and the
    fidelity of the conversion) so tests and experiments can audit loss.
    """
    if part.media == target:
        return part
    fidelity = conversion_fidelity(part.media, target)
    converted: dict[str, Any] = {
        "converted_from": part.media,
        "fidelity": fidelity,
    }
    if part.media == MEDIA_TEXT and target == MEDIA_FAX:
        text = str(part.content.get("text", ""))
        converted["pages"] = max(1, len(text) // 2000 + 1)
        converted["summary"] = text[:64]
    elif part.media == MEDIA_FAX and target == MEDIA_TEXT:
        converted["text"] = str(part.content.get("summary", ""))
    elif part.media == MEDIA_VOICE and target in (MEDIA_TEXT, MEDIA_PAPER):
        converted["text"] = str(part.content.get("transcript", ""))
    elif target == MEDIA_PAPER:
        converted["rendering"] = f"printout of {part.media}"
    return BodyPart(target, converted)
