"""Message Transfer Agents: store-and-forward routing of envelopes.

Each MTA serves one or more routing domains, holds the message store for
its local mailboxes, and relays foreign envelopes to peer MTAs according
to its routing table.  Transfers retry on timeout (store-and-forward must
survive transient outages); final failures, unknown recipients, missing
routes and hop-limit violations produce non-delivery reports back to the
originator.  Delivery reports are generated when the envelope asks for
one.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.messaging.envelope import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Envelope,
    InterpersonalMessage,
)
from repro.messaging.message_store import MessageStore, StoredMessage
from repro.messaging.names import OrName
from repro.messaging.reports import (
    REASON_EXPIRED,
    REASON_HOP_LIMIT,
    REASON_NO_ROUTE,
    REASON_TRANSFER_FAILURE,
    REASON_UNKNOWN_RECIPIENT,
    DeliveryReport,
    NonDeliveryReport,
)
from repro.messaging.routing import RoutingTable
from repro.obs.context import TraceContext
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.transport import RequestReply
from repro.sim.world import World
from repro.util.errors import MessagingError, NoRouteError
from repro.util.ids import IdFactory

DeliveryHook = Callable[[str, StoredMessage], None]

#: RPC port MTAs and their clients use
MHS_PORT = "mhs"

#: per-hop processing delay (seconds) by envelope priority: urgent mail
#: jumps the queue, low-priority mail waits for quiet periods
PRIORITY_DELAYS = {
    PRIORITY_URGENT: 0.0,
    PRIORITY_NORMAL: 0.05,
    PRIORITY_LOW: 1.0,
}


class MessageTransferAgent:
    """One MTA bound to a simulated node."""

    def __init__(
        self,
        world: World,
        node: str,
        name: str,
        domains: list[tuple[str, str, str]],
        transfer_retry_s: float = 2.0,
        transfer_attempts: int = 4,
    ) -> None:
        self._world = world
        self.node = node
        self.name = name
        self._domains = {tuple(d.lower() for d in domain) for domain in domains}
        self.routing = RoutingTable()
        self.store = MessageStore()
        self._peers: dict[str, str] = {}
        self._mailboxes: set[str] = set()
        #: mailbox key -> distribution list members (AMIGO-style group
        #: communication: a message to the list fans out to all members)
        self._dlists: dict[str, list[OrName]] = {}
        self._ids = IdFactory(width=6)
        self._retry_s = transfer_retry_s
        self._attempts = transfer_attempts
        self._delivery_hooks: list[DeliveryHook] = []
        self._report_hooks: list[Callable[[dict[str, Any]], None]] = []
        self.relayed = 0
        self.delivered = 0
        self.reports_issued = 0
        self._obs: MetricsRegistry = NULL_METRICS
        self._tracer: Tracer = NULL_TRACER
        self.rpc = RequestReply(world.network, node, port=MHS_PORT)
        self.rpc.serve("submit", self._op_submit)
        self.rpc.serve("transfer", self._op_transfer)
        self.rpc.serve("register", self._op_register)
        self.rpc.serve("list", self._op_list)
        self.rpc.serve("fetch", self._op_fetch)
        self.rpc.serve("delete", self._op_delete)

    # -- configuration ----------------------------------------------------
    def add_peer(self, name: str, node: str) -> None:
        """Teach this MTA where a peer MTA lives."""
        if name == self.name:
            raise MessagingError("an MTA cannot peer with itself")
        self._peers[name] = node

    def register_mailbox(self, user: OrName) -> None:
        """Register a local mailbox (idempotent)."""
        if user.routing_domain not in self._domains:
            raise MessagingError(
                f"{user} is not in MTA {self.name!r}'s domains {sorted(self._domains)}"
            )
        if user.mailbox in self._dlists:
            raise MessagingError(
                f"{user.mailbox!r} names a distribution list, not a mailbox"
            )
        self._mailboxes.add(user.mailbox)

    def has_mailbox(self, mailbox: str) -> bool:
        """True when the mailbox is registered locally."""
        return mailbox in self._mailboxes

    def create_distribution_list(self, list_name: OrName, members: list[OrName]) -> None:
        """Create a distribution list served by this MTA.

        The list has an O/R name in one of this MTA's domains; messages
        addressed to it are expanded to all members (who may live
        anywhere) and re-routed.  Nested lists are allowed; expansion
        history on the envelope prevents loops.
        """
        if list_name.routing_domain not in self._domains:
            raise MessagingError(
                f"list {list_name} is not in MTA {self.name!r}'s domains"
            )
        if not members:
            raise MessagingError("a distribution list needs at least one member")
        if list_name.mailbox in self._mailboxes:
            raise MessagingError(
                f"mailbox {list_name.mailbox!r} already exists; cannot be a list"
            )
        self._dlists[list_name.mailbox] = list(members)

    def list_members(self, list_name: OrName) -> list[OrName]:
        """Members of a local distribution list."""
        try:
            return list(self._dlists[list_name.mailbox])
        except KeyError:
            raise MessagingError(f"no distribution list {list_name}") from None

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Report transfer activity to *metrics* (``None`` detaches).

        Counters ``mta.relayed``/``delivered``/``reports`` and
        ``mta.non_delivery.<reason>``, plus the ``mta.hops`` histogram of
        hop counts at local delivery.
        """
        self._obs = metrics if metrics is not None else NULL_METRICS

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Trace envelope handling with *tracer* (``None`` detaches).

        Accepted envelopes without a :class:`TraceContext` are stamped
        from the caller's open span, and local delivery opens an
        ``mta.deliver`` span continuing the envelope's context — so a
        message submitted inside a traced operation stays inside that
        trace across every MTA hop.
        """
        self._tracer = tracer if tracer is not None else NULL_TRACER

    def add_delivery_hook(self, hook: DeliveryHook) -> None:
        """Call *hook*(mailbox, stored) on every local delivery."""
        self._delivery_hooks.append(hook)

    def add_report_hook(self, hook: "Callable[[dict[str, Any]], None]") -> None:
        """Call *hook*(report_document) whenever this MTA issues a report.

        Gives operators an audit stream even for reports that later prove
        undeliverable themselves (which are dropped, never re-reported).
        """
        self._report_hooks.append(hook)

    def serves_domain(self, domain: tuple[str, str, str]) -> bool:
        """True when this MTA is responsible for the routing domain."""
        return tuple(d.lower() for d in domain) in self._domains

    # -- RPC operation handlers --------------------------------------------
    def _op_submit(self, body: dict[str, Any]) -> dict[str, Any]:
        envelope = Envelope.from_document(body)
        self.accept(envelope)
        return {"accepted": envelope.message_id}

    def _op_transfer(self, body: dict[str, Any]) -> dict[str, Any]:
        envelope = Envelope.from_document(body)
        self.accept(envelope)
        return {"accepted": envelope.message_id}

    def _op_register(self, body: dict[str, Any]) -> bool:
        self.register_mailbox(OrName.from_document(body["user"]))
        return True

    def _op_list(self, body: dict[str, Any]) -> list[dict[str, Any]]:
        return self.store.summary_documents(
            body["mailbox"], unread_only=body.get("unread_only", False)
        )

    def _op_fetch(self, body: dict[str, Any]) -> dict[str, Any]:
        stored = self.store.fetch(body["mailbox"], body["sequence"])
        return {
            "sequence": stored.sequence,
            "delivered_at": stored.delivered_at,
            "envelope": stored.envelope.to_document(),
        }

    def _op_delete(self, body: dict[str, Any]) -> bool:
        self.store.delete(body["mailbox"], body["sequence"])
        return True

    # -- transfer machinery -----------------------------------------------
    def accept(self, envelope: Envelope) -> None:
        """Accept an envelope for processing (from a UA or a peer MTA).

        Deferred envelopes wait for their release time; otherwise the
        envelope pays a per-hop processing delay determined by its
        priority (urgent mail jumps the queue).
        """
        if self._tracer.enabled and envelope.trace_context is None:
            # Stamp the submitter's open span onto the envelope once;
            # every downstream MTA then continues the same trace.
            envelope.trace_context = self._tracer.current_context()
        if envelope.deferred_until is not None and envelope.deferred_until > self._world.now:
            delay = envelope.deferred_until - self._world.now
            # Re-enter accept() at release time so the envelope still pays
            # its priority processing delay — deferral postpones a message,
            # it must not let it skip the per-hop queue.
            self._world.engine.schedule(delay, lambda: self.accept(envelope), label="deferred")
            return
        processing = PRIORITY_DELAYS.get(envelope.priority, PRIORITY_DELAYS[PRIORITY_NORMAL])
        if processing > 0:
            self._world.engine.schedule(
                processing, lambda: self._process(envelope), label="mta-processing"
            )
        else:
            self._process(envelope)

    def _process(self, envelope: Envelope) -> None:
        # Deadline propagation: the expiry stamp travels on the envelope,
        # so whichever MTA holds the message when it expires — including
        # after retries and deferrals — non-delivers it rather than
        # carrying it further.
        if envelope.expires_at is not None and self._world.now >= envelope.expires_at:
            self._non_deliver(
                envelope,
                REASON_EXPIRED,
                f"expired at {envelope.expires_at:.3f}, now {self._world.now:.3f}",
            )
            return
        if envelope.visited(self.name) or envelope.hop_count() >= envelope.max_hops:
            self._non_deliver(envelope, REASON_HOP_LIMIT, f"at {self.name}")
            return
        envelope.stamp(self.name, self._world.now)
        for recipient in list(envelope.recipients):
            single = envelope.for_single_recipient(recipient)
            self._route_single(single)

    def _route_single(self, envelope: Envelope) -> None:
        recipient = envelope.recipients[0]
        if self.serves_domain(recipient.routing_domain):
            self._deliver_local(envelope, recipient)
            return
        try:
            hop = self.routing.next_hop(recipient.routing_domain)
        except NoRouteError:
            self._non_deliver(envelope, REASON_NO_ROUTE, str(recipient.routing_domain))
            return
        node = self._peers.get(hop)
        if node is None:
            self._non_deliver(envelope, REASON_NO_ROUTE, f"unknown peer {hop!r}")
            return
        self._transfer(envelope, node, attempt=1)

    def _deliver_local(self, envelope: Envelope, recipient: OrName) -> None:
        if recipient.mailbox in self._dlists:
            self._expand_list(envelope, recipient)
            return
        if recipient.mailbox not in self._mailboxes:
            self._non_deliver(envelope, REASON_UNKNOWN_RECIPIENT, recipient.mailbox)
            return
        with self._tracer.span_from_context(
            "mta.deliver",
            envelope.trace_context,
            mta=self.name,
            mailbox=recipient.mailbox,
        ) as span:
            span.tag(hops=envelope.hop_count())
            stored = self.store.deliver(recipient.mailbox, envelope, self._world.now)
        self.delivered += 1
        obs = self._obs
        if obs.enabled:
            obs.inc("mta.delivered")
            obs.observe("mta.hops", envelope.hop_count())
        for hook in self._delivery_hooks:
            hook(recipient.mailbox, stored)
        if envelope.delivery_report_requested:
            report = DeliveryReport(
                subject_message_id=envelope.message_id,
                recipient=str(recipient),
                delivered_at=self._world.now,
            )
            self._send_report(envelope, report.to_document())

    def _expand_list(self, envelope: Envelope, list_name: OrName) -> None:
        """Fan a list-addressed message out to the members."""
        key = f"{self.name}:{list_name.mailbox}"
        if key in envelope.expanded_lists:
            return  # already expanded once for this message: loop control
        for member in self._dlists[list_name.mailbox]:
            expanded = envelope.for_single_recipient(member)
            expanded.expanded_lists.append(key)
            self._route_single(expanded)

    def _transfer(self, envelope: Envelope, node: str, attempt: int) -> None:
        self.relayed += 1
        if self._obs.enabled:
            self._obs.inc("mta.relayed")
        span = None
        if self._tracer.enabled:
            # Detached span for the async hop; the envelope is re-stamped
            # so the receiving MTA parents its work under this transfer.
            span = self._tracer.start_span(
                "mta.transfer",
                context=envelope.trace_context,
                mta=self.name,
                peer=node,
                attempt=attempt,
            )
            envelope.trace_context = TraceContext(
                span.trace_id, span.span_id, span.sampled
            )

        def close(outcome: str) -> None:
            if span is not None:
                span.tag(outcome=outcome)
                self._tracer.finish(span)

        def on_timeout() -> None:
            close("timeout")
            if attempt >= self._attempts:
                self._non_deliver(
                    envelope, REASON_TRANSFER_FAILURE, f"{attempt} attempts to {node}"
                )
                return
            self._world.engine.schedule(
                self._retry_s,
                lambda: self._transfer(envelope, node, attempt + 1),
                label="mta-retry",
            )

        self.rpc.request(
            node,
            "transfer",
            envelope.to_document(),
            on_reply=lambda reply: close("transferred"),
            timeout_s=self._retry_s,
            on_timeout=on_timeout,
            size_bytes=envelope.size_bytes(),
        )

    # -- reports ---------------------------------------------------------------
    def postmaster(self) -> OrName:
        """The O/R name reports originate from at this MTA."""
        country, admd, prmd = sorted(self._domains)[0]
        return OrName(
            country=country or "xx",
            admd=admd,
            prmd=prmd or "mhs",
            surname=f"postmaster-{self.name}",
        )

    def _non_deliver(self, envelope: Envelope, reason: str, diagnostic: str) -> None:
        # Never report about a report: that way lies mail loops.
        if envelope.content.extensions.get("report"):
            return
        if self._obs.enabled:
            self._obs.inc(f"mta.non_delivery.{reason}")
        report = NonDeliveryReport(
            subject_message_id=envelope.message_id,
            recipient=str(envelope.recipients[0]),
            reason=reason,
            diagnostic=diagnostic,
        )
        self._send_report(envelope, report.to_document())

    def _send_report(self, subject: Envelope, report_document: dict[str, Any]) -> None:
        self.reports_issued += 1
        if self._obs.enabled:
            self._obs.inc("mta.reports")
        for hook in self._report_hooks:
            hook(dict(report_document))
        content = InterpersonalMessage(
            ipm_id=self._ids.next("report"),
            subject=f"Report on {subject.message_id}",
            extensions=report_document,
        )
        report_envelope = Envelope(
            message_id=self._ids.next(f"{self.name}-rpt"),
            originator=self.postmaster(),
            recipients=[subject.originator],
            content=content,
        )
        self.accept(report_envelope)
