"""Per-recipient message stores.

An X.413-style message store sits with the recipient's home MTA and holds
delivered messages until a user agent fetches them — this is what makes
the system *asynchronous*: the recipient need not be online at delivery
time (the paper's "different time" quadrant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messaging.envelope import Envelope
from repro.util.errors import MessagingError


@dataclass
class StoredMessage:
    """One delivered message awaiting (or after) retrieval."""

    sequence: int
    envelope: Envelope
    delivered_at: float
    read: bool = False


class MessageStore:
    """Holds delivered messages for the mailboxes of one MTA's domain."""

    def __init__(self) -> None:
        self._boxes: dict[str, list[StoredMessage]] = {}
        self._sequence = 0
        self.delivered_total = 0

    def mailboxes(self) -> list[str]:
        """All mailbox keys that ever received mail, sorted."""
        return sorted(self._boxes)

    def deliver(self, mailbox: str, envelope: Envelope, time: float) -> StoredMessage:
        """File a message into *mailbox*."""
        self._sequence += 1
        stored = StoredMessage(sequence=self._sequence, envelope=envelope, delivered_at=time)
        self._boxes.setdefault(mailbox, []).append(stored)
        self.delivered_total += 1
        return stored

    def list_messages(self, mailbox: str, unread_only: bool = False) -> list[StoredMessage]:
        """Messages in a mailbox, oldest first."""
        messages = self._boxes.get(mailbox, [])
        if unread_only:
            return [m for m in messages if not m.read]
        return list(messages)

    def fetch(self, mailbox: str, sequence: int) -> StoredMessage:
        """Fetch one message by sequence number and mark it read."""
        for message in self._boxes.get(mailbox, []):
            if message.sequence == sequence:
                message.read = True
                return message
        raise MessagingError(f"mailbox {mailbox!r} has no message #{sequence}")

    def delete(self, mailbox: str, sequence: int) -> None:
        """Remove one message."""
        messages = self._boxes.get(mailbox, [])
        remaining = [m for m in messages if m.sequence != sequence]
        if len(remaining) == len(messages):
            raise MessagingError(f"mailbox {mailbox!r} has no message #{sequence}")
        self._boxes[mailbox] = remaining

    def unread_count(self, mailbox: str) -> int:
        """Number of unread messages in a mailbox."""
        return sum(1 for m in self._boxes.get(mailbox, []) if not m.read)

    # -- wire helpers -------------------------------------------------------
    def summary_documents(self, mailbox: str, unread_only: bool = False) -> list[dict[str, Any]]:
        """Lightweight listing for the UA protocol."""
        return [
            {
                "sequence": m.sequence,
                "message_id": m.envelope.message_id,
                "subject": m.envelope.content.subject,
                "originator": str(m.envelope.originator),
                "delivered_at": m.delivered_at,
                "read": m.read,
            }
            for m in self.list_messages(mailbox, unread_only=unread_only)
        ]
