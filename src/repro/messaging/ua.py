"""User Agents: authoring, submission and retrieval of messages.

A user agent lives on the user's workstation node, holds the user's O/R
name, and speaks to its home MTA over the simulated network: ``submit``
for outgoing mail, ``list``/``fetch``/``delete`` against the message
store for incoming mail.  Synchronous convenience methods run the world
until the RPC completes, mirroring the DUA style.
"""

from __future__ import annotations

from typing import Any

from repro.messaging.body_parts import BodyPart, text_body
from repro.messaging.envelope import PRIORITY_NORMAL, Envelope, InterpersonalMessage
from repro.messaging.mta import MHS_PORT
from repro.messaging.names import OrName
from repro.messaging.reports import report_from_document
from repro.sim.transport import RequestReply
from repro.sim.world import World
from repro.util.errors import MessagingError
from repro.util.ids import IdFactory


class UserAgent:
    """One user's messaging endpoint."""

    def __init__(self, world: World, node: str, user: OrName, mta_node: str) -> None:
        self._world = world
        self.node = node
        self.user = user
        self._mta_node = mta_node
        self._ids = IdFactory(width=6)
        # Distinct port per mailbox: several UAs may share a workstation.
        self._rpc = RequestReply(world.network, node, port=f"{MHS_PORT}-ua-{user.mailbox}")
        self.submitted = 0

    # -- plumbing -------------------------------------------------------------
    def _call(self, operation: str, body: dict[str, Any], size_bytes: int = 256) -> Any:
        outcome: dict[str, Any] = {}
        self._rpc.request(
            self._mta_node,
            operation,
            body,
            on_reply=lambda reply: outcome.__setitem__("reply", reply),
            timeout_s=10.0,
            on_timeout=lambda: outcome.__setitem__("error", "timeout"),
            size_bytes=size_bytes,
            server_port=MHS_PORT,
        )
        while "reply" not in outcome and "error" not in outcome:
            if not self._world.engine.step():
                break
        if "error" in outcome:
            raise MessagingError(f"{operation} failed: {outcome['error']}")
        reply = outcome.get("reply")
        if isinstance(reply, dict) and "error" in reply:
            raise MessagingError(f"{operation} failed: {reply['error']}")
        return reply

    # -- outgoing -------------------------------------------------------------
    def register(self) -> None:
        """Register this user's mailbox at the home MTA."""
        self._call("register", {"user": self.user.to_document()})

    def compose(
        self,
        recipients: list[OrName],
        subject: str,
        body: "list[BodyPart] | str",
        in_reply_to: str = "",
        extensions: dict[str, Any] | None = None,
        priority: str = PRIORITY_NORMAL,
        delivery_report: bool = False,
        deferred_until: float | None = None,
        expires_at: float | None = None,
        receipt_requested: bool = False,
    ) -> Envelope:
        """Build an envelope ready for submission.

        *expires_at* (absolute simulated time) gives the message a
        delivery deadline: an MTA still holding it past that time
        non-delivers with a ``deadline-exceeded`` report instead of
        carrying it further.
        """
        parts = [text_body(body)] if isinstance(body, str) else list(body)
        content = InterpersonalMessage(
            ipm_id=self._ids.next(f"ipm-{self.user.mailbox}"),
            subject=subject,
            body_parts=parts,
            in_reply_to=in_reply_to,
            receipt_requested=receipt_requested,
            extensions=dict(extensions or {}),
        )
        return Envelope(
            message_id=self._ids.next(f"msg-{self.user.mailbox}"),
            originator=self.user,
            recipients=list(recipients),
            content=content,
            priority=priority,
            delivery_report_requested=delivery_report,
            deferred_until=deferred_until,
            expires_at=expires_at,
        )

    def submit(self, envelope: Envelope) -> str:
        """Submit an envelope to the home MTA; returns the message id."""
        reply = self._call("submit", envelope.to_document(), size_bytes=envelope.size_bytes())
        self.submitted += 1
        return reply["accepted"]

    def send(
        self,
        recipients: list[OrName],
        subject: str,
        body: "list[BodyPart] | str",
        **kwargs: Any,
    ) -> str:
        """Compose and submit in one step."""
        return self.submit(self.compose(recipients, subject, body, **kwargs))

    # -- incoming -------------------------------------------------------------
    def list_inbox(self, unread_only: bool = False) -> list[dict[str, Any]]:
        """Summaries of messages in this user's mailbox."""
        return self._call(
            "list", {"mailbox": self.user.mailbox, "unread_only": unread_only}
        )

    def fetch(self, sequence: int) -> Envelope:
        """Fetch (and mark read) one message by sequence number.

        When the message asks for a read receipt, one is sent back to the
        originator automatically (a P2-level receipt notification, as
        distinct from the MTA-level delivery report).
        """
        reply = self._call("fetch", {"mailbox": self.user.mailbox, "sequence": sequence})
        envelope = Envelope.from_document(reply["envelope"])
        if envelope.content.receipt_requested and not envelope.content.extensions.get("receipt"):
            self.send(
                [envelope.originator],
                f"Read: {envelope.content.subject}",
                "",
                extensions={
                    "receipt": "read",
                    "subject_ipm": envelope.content.ipm_id,
                    "reader": str(self.user),
                },
            )
        return envelope

    def read_receipts(self) -> list[dict[str, Any]]:
        """Fetch all unread read-receipt notifications, marking them read."""
        receipts = []
        for summary in self.list_inbox(unread_only=True):
            envelope = self.fetch(summary["sequence"])
            if envelope.content.extensions.get("receipt") == "read":
                receipts.append(dict(envelope.content.extensions))
        return receipts

    def delete(self, sequence: int) -> None:
        """Delete one message from the store."""
        self._call("delete", {"mailbox": self.user.mailbox, "sequence": sequence})

    def unread_reports(self) -> list[Any]:
        """Fetch all unread report messages (DR/NDR), marking them read."""
        reports = []
        for summary in self.list_inbox(unread_only=True):
            envelope = self.fetch(summary["sequence"])
            report = report_from_document(envelope.content.extensions)
            if report is not None:
                reports.append(report)
        return reports
