"""P1 envelopes and P2 interpersonal message content.

X.400 separates the *envelope* (P1: addressing, priority, trace) from the
*content* (P2: the interpersonal message a user reads — heading plus body
parts).  MTAs look only at envelopes; user agents author and read content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.messaging.body_parts import BodyPart
from repro.messaging.names import OrName
from repro.obs.context import TraceContext
from repro.util.errors import MessagingError

#: envelope priorities, ordered
PRIORITY_LOW = "low"
PRIORITY_NORMAL = "normal"
PRIORITY_URGENT = "urgent"
_PRIORITIES = (PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_URGENT)


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One hop recorded in the envelope as it moves between MTAs."""

    mta: str
    arrival_time: float


@dataclass(slots=True)
class InterpersonalMessage:
    """P2 content: heading fields plus an ordered list of body parts."""

    ipm_id: str
    subject: str
    body_parts: list[BodyPart] = field(default_factory=list)
    in_reply_to: str = ""
    importance: str = "normal"
    #: ask the receiving UA to confirm when the user reads the message
    receipt_requested: bool = False
    #: semi-structured heading extensions (Object-Lens-style typed fields)
    extensions: dict[str, Any] = field(default_factory=dict)

    def to_document(self) -> dict[str, Any]:
        """Serialize for transport."""
        return {
            "ipm_id": self.ipm_id,
            "subject": self.subject,
            "body_parts": [p.to_document() for p in self.body_parts],
            "in_reply_to": self.in_reply_to,
            "importance": self.importance,
            "receipt_requested": self.receipt_requested,
            "extensions": dict(self.extensions),
        }

    @staticmethod
    def from_document(document: dict[str, Any]) -> "InterpersonalMessage":
        """Deserialize from transport form."""
        return InterpersonalMessage(
            ipm_id=document["ipm_id"],
            subject=document.get("subject", ""),
            body_parts=[BodyPart.from_document(d) for d in document.get("body_parts", [])],
            in_reply_to=document.get("in_reply_to", ""),
            importance=document.get("importance", "normal"),
            receipt_requested=document.get("receipt_requested", False),
            extensions=dict(document.get("extensions", {})),
        )

    def total_size(self) -> int:
        """Wire size of all body parts plus a heading allowance."""
        return 256 + sum(part.size_bytes() for part in self.body_parts)


@dataclass(slots=True)
class Envelope:
    """P1 envelope: what MTAs route on."""

    message_id: str
    originator: OrName
    recipients: list[OrName]
    content: InterpersonalMessage
    priority: str = PRIORITY_NORMAL
    delivery_report_requested: bool = False
    deferred_until: float | None = None
    #: absolute simulated time past which MTAs stop carrying the message
    #: (deadline propagation: an expired envelope non-delivers instead of
    #: queueing forever)
    expires_at: float | None = None
    max_hops: int = 8
    trace: list[TraceEntry] = field(default_factory=list)
    #: distribution lists already expanded for this message (loop control)
    expanded_lists: list[str] = field(default_factory=list)
    #: distributed-tracing context the submitting component stamped, so
    #: MTAs along the path continue the origin's trace (None = untraced)
    trace_context: TraceContext | None = None

    def __post_init__(self) -> None:
        if not self.recipients:
            raise MessagingError("an envelope needs at least one recipient")
        if self.priority not in _PRIORITIES:
            raise MessagingError(f"unknown priority {self.priority!r}")

    def hop_count(self) -> int:
        """Number of MTAs the envelope has traversed."""
        return len(self.trace)

    def stamp(self, mta: str, time: float) -> None:
        """Record a hop through *mta*."""
        self.trace.append(TraceEntry(mta, time))

    def visited(self, mta: str) -> bool:
        """True when *mta* already appears in the trace (loop check)."""
        return any(entry.mta == mta for entry in self.trace)

    def size_bytes(self) -> int:
        """Wire size for network transmission charging."""
        return 128 + len(self.recipients) * 64 + self.content.total_size()

    def for_single_recipient(self, recipient: OrName) -> "Envelope":
        """A copy of this envelope addressed to one recipient (splitting)."""
        return Envelope(
            message_id=self.message_id,
            originator=self.originator,
            recipients=[recipient],
            content=self.content,
            priority=self.priority,
            delivery_report_requested=self.delivery_report_requested,
            deferred_until=self.deferred_until,
            expires_at=self.expires_at,
            max_hops=self.max_hops,
            trace=list(self.trace),
            expanded_lists=list(self.expanded_lists),
            trace_context=self.trace_context,
        )

    def to_document(self) -> dict[str, Any]:
        """Serialize for transport between MTAs."""
        return {
            "message_id": self.message_id,
            "originator": self.originator.to_document(),
            "recipients": [r.to_document() for r in self.recipients],
            "content": self.content.to_document(),
            "priority": self.priority,
            "delivery_report_requested": self.delivery_report_requested,
            "deferred_until": self.deferred_until,
            "expires_at": self.expires_at,
            "max_hops": self.max_hops,
            "trace": [{"mta": t.mta, "arrival_time": t.arrival_time} for t in self.trace],
            "expanded_lists": list(self.expanded_lists),
            "trace_context": (
                None if self.trace_context is None
                else self.trace_context.to_document()
            ),
        }

    @staticmethod
    def from_document(document: dict[str, Any]) -> "Envelope":
        """Deserialize from transport form."""
        return Envelope(
            message_id=document["message_id"],
            originator=OrName.from_document(document["originator"]),
            recipients=[OrName.from_document(d) for d in document["recipients"]],
            content=InterpersonalMessage.from_document(document["content"]),
            priority=document.get("priority", PRIORITY_NORMAL),
            delivery_report_requested=document.get("delivery_report_requested", False),
            deferred_until=document.get("deferred_until"),
            expires_at=document.get("expires_at"),
            max_hops=document.get("max_hops", 8),
            trace=[
                TraceEntry(t["mta"], t["arrival_time"]) for t in document.get("trace", [])
            ],
            expanded_lists=list(document.get("expanded_lists", [])),
            trace_context=TraceContext.from_document(document.get("trace_context")),
        )
