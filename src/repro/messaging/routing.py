"""Routing tables mapping O/R routing domains to next-hop MTAs.

Routes are keyed on the ``(country, admd, prmd)`` triple, with ``*`` as a
wildcard in any position; the most specific matching route wins (a match
on prmd beats a match on admd beats a default route).  This mirrors how
X.400 management domains delegate routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import NoRouteError


@dataclass(frozen=True)
class Route:
    """One routing rule: a domain pattern and the next-hop MTA name."""

    country: str
    admd: str
    prmd: str
    next_hop: str

    def specificity(self) -> int:
        """Number of non-wildcard fields (higher wins)."""
        return sum(1 for f in (self.country, self.admd, self.prmd) if f != "*")

    def matches(self, domain: tuple[str, str, str]) -> bool:
        """True when the pattern covers the routing domain."""
        pattern = (self.country.lower(), self.admd.lower(), self.prmd.lower())
        return all(p in ("*", value) for p, value in zip(pattern, domain))


class RoutingTable:
    """An ordered rule set with longest-match (most-specific) selection."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add_route(self, country: str, admd: str, prmd: str, next_hop: str) -> None:
        """Add a rule; ``*`` wildcards any field."""
        self._routes.append(Route(country, admd, prmd, next_hop))

    def add_default(self, next_hop: str) -> None:
        """Add a catch-all route."""
        self.add_route("*", "*", "*", next_hop)

    def routes(self) -> list[Route]:
        """All rules in insertion order."""
        return list(self._routes)

    def next_hop(self, domain: tuple[str, str, str]) -> str:
        """The next-hop MTA for a routing domain.

        Raises :class:`NoRouteError` when no rule matches.
        """
        best: Route | None = None
        for route in self._routes:
            if not route.matches(domain):
                continue
            if best is None or route.specificity() > best.specificity():
                best = route
        if best is None:
            raise NoRouteError(f"no route toward domain {domain}")
        return best.next_hop
