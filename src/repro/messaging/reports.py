"""Delivery and non-delivery reports.

After attempting delivery an MTA generates a report back to the
originator: a :class:`DeliveryReport` when the envelope requested one, or
a :class:`NonDeliveryReport` on failure (no route, unknown recipient, hop
limit).  Reports travel as ordinary messages whose content carries the
report document, so they need no special transfer machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: non-delivery reason codes
REASON_NO_ROUTE = "no-route"
REASON_UNKNOWN_RECIPIENT = "unknown-recipient"
REASON_HOP_LIMIT = "hop-limit-exceeded"
REASON_TRANSFER_FAILURE = "transfer-failure"
REASON_EXPIRED = "deadline-exceeded"


@dataclass(frozen=True)
class DeliveryReport:
    """Positive confirmation: the message reached the recipient's store."""

    subject_message_id: str
    recipient: str
    delivered_at: float

    def to_document(self) -> dict[str, Any]:
        """Serialize as message content extensions."""
        return {
            "report": "delivery",
            "subject_message_id": self.subject_message_id,
            "recipient": self.recipient,
            "delivered_at": self.delivered_at,
        }


@dataclass(frozen=True)
class NonDeliveryReport:
    """Negative report: the message could not be delivered."""

    subject_message_id: str
    recipient: str
    reason: str
    diagnostic: str = ""

    def to_document(self) -> dict[str, Any]:
        """Serialize as message content extensions."""
        return {
            "report": "non-delivery",
            "subject_message_id": self.subject_message_id,
            "recipient": self.recipient,
            "reason": self.reason,
            "diagnostic": self.diagnostic,
        }


def report_from_document(document: dict[str, Any]) -> "DeliveryReport | NonDeliveryReport | None":
    """Reconstruct a report from message extensions (None when not a report)."""
    kind = document.get("report")
    if kind == "delivery":
        return DeliveryReport(
            subject_message_id=document["subject_message_id"],
            recipient=document["recipient"],
            delivered_at=document["delivered_at"],
        )
    if kind == "non-delivery":
        return NonDeliveryReport(
            subject_message_id=document["subject_message_id"],
            recipient=document["recipient"],
            reason=document["reason"],
            diagnostic=document.get("diagnostic", ""),
        )
    return None
