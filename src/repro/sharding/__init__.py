"""Directory/KB sharding across multiple DSAs (million-user scale-out).

One :class:`~repro.org.knowledge_base.OrganisationalKnowledgeBase` and one
DSA per environment is fine for a workgroup; a deployment serving 10^5–10^6
registered users needs the white pages partitioned.  The X.500 DIT already
draws the partition boundaries — every organisation is one subtree
(``o=<org>,c=<country>``) — so this package hashes those subtree keys onto
N :class:`~repro.directory.dsa.DirectoryServiceAgent` shards with a
consistent-hash ring:

* :class:`ConsistentHashRing` — deterministic (crc32-based, PYTHONHASHSEED
  proof) key -> shard mapping with virtual nodes;
* :class:`ShardedDirectory` — N DSAs behind one directory facade, routing
  every operation to the subtree's owning shard (structural entries above
  the org level are replicated to all shards; root-scoped searches fan
  out and merge);
* :class:`ShardedKnowledgeBase` — a drop-in
  :class:`~repro.org.knowledge_base.OrganisationalKnowledgeBase` whose
  person lookups are O(1) via a person->org index (the base class scans
  every organisation) and whose mutations keep the sharded white pages in
  step, firing the keyed change notifications the environment's
  :class:`~repro.environment.resolution.ResolutionCache` scopes its
  evictions by.

Enable per environment with ``CSCWEnvironment.builder().with_sharding(n)``.
"""

from repro.sharding.directory import ShardedDirectory
from repro.sharding.kb import ShardedKnowledgeBase
from repro.sharding.ring import ConsistentHashRing

__all__ = [
    "ConsistentHashRing",
    "ShardedDirectory",
    "ShardedKnowledgeBase",
]
