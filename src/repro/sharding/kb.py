"""A sharded, indexed organisational knowledge base.

Drop-in subclass of
:class:`~repro.org.knowledge_base.OrganisationalKnowledgeBase` built for
populations the base class cannot serve:

* **O(1) person resolution.**  The base ``find_person`` scans every
  organisation on every call — fine for a workgroup, ruinous for 10^5+
  users, and it sits directly on the exchange hot path (the resolution
  cache's cold miss calls ``organisation_of`` twice).  This subclass
  maintains a person -> org index kept in step by the KB-level mutators,
  with a lazy fallback scan for people registered directly on an
  :class:`~repro.org.model.Organisation`.

* **Sharded white pages.**  Every organisation subtree
  (``o=<org_id>,c=<country>``) lives on exactly one
  :class:`~repro.directory.dsa.DirectoryServiceAgent` of a
  :class:`~repro.sharding.directory.ShardedDirectory`; ``add_person`` /
  ``move_person`` / ``remove_person`` create, migrate and delete the
  person's entry on the owning shard(s), so a directory lookup touches
  one DSA no matter how large the federation grows.

Directory entries are keyed by id (``cn=<person_id>,o=<org_id>,c=..``),
not display name — ids are unique across the KB, names are not.

Keyed change notifications (kind, entity id, org) are inherited from the
base class: the environment's resolution cache evicts only the routes
touching the mutated entity, which is what keeps mutation storms from
wrecking the warm path at scale (ISSUE 7's 2,306-invalidation storm).
"""

from __future__ import annotations

from repro.directory.dit import Entry
from repro.directory.schema import Schema
from repro.org.knowledge_base import OrganisationalKnowledgeBase
from repro.org.model import Organisation, Person
from repro.sharding.directory import ShardedDirectory
from repro.util.errors import UnknownObjectError


class ShardedKnowledgeBase(OrganisationalKnowledgeBase):
    """Org/people knowledge partitioned across N directory shards."""

    def __init__(
        self,
        n_shards: int = 4,
        country: str = "ES",
        schema: Schema | None = None,
        replicas: int = 64,
    ) -> None:
        super().__init__()
        self.country = country
        self.directory = ShardedDirectory(
            n_shards=n_shards, name="kb-dsa", schema=schema, replicas=replicas
        )
        self._person_org: dict[str, str] = {}

    # -- naming ------------------------------------------------------------
    def org_dn(self, org_id: str) -> str:
        """The DIT subtree boundary (and hash key) of one organisation."""
        return f"o={org_id},c={self.country}"

    def person_dn(self, person_id: str, org_id: str) -> str:
        """The white-pages DN of one person under their organisation."""
        return f"cn={person_id},{self.org_dn(org_id)}"

    def shard_of_org(self, org_id: str) -> str:
        """The dsa_id owning an organisation's subtree."""
        return self.directory.shard_id_for(self.org_dn(org_id))

    def shard_of_person(self, person_id: str) -> str:
        """The dsa_id owning a person's entry (their org's shard)."""
        return self.shard_of_org(self.organisation_of(person_id))

    # -- indexed resolution ------------------------------------------------
    def find_person(self, person_id: str) -> Person:
        """O(1) person lookup via the index (scan fallback, then cached)."""
        org_id = self._person_org.get(person_id)
        if org_id is not None:
            try:
                return self.organisation(org_id).person(person_id)
            except UnknownObjectError:
                # stale index entry (direct Organisation mutation); re-scan
                self._person_org.pop(person_id, None)
        person = super().find_person(person_id)
        self._person_org[person.person_id] = person.organisation
        return person

    def resolve_person_entry(self, person_id: str) -> Entry:
        """The person's white-pages entry, read from the owning shard only."""
        person = self.find_person(person_id)
        return self.directory.read(self.person_dn(person_id, person.organisation))

    # -- mutators (keep index + shards in step, then notify via super) -----
    def add_organisation(self, organisation: Organisation) -> Organisation:
        result = super().add_organisation(organisation)
        if not self.directory.exists(self.org_dn(organisation.org_id)):
            self.directory.add(
                self.org_dn(organisation.org_id),
                {"objectclass": ["organization"], "description": [organisation.name]},
            )
        for person in organisation.persons():
            self._person_org[person.person_id] = organisation.org_id
            self._publish_person(person)
        return result

    def add_person(self, person: Person) -> Person:
        result = super().add_person(person)
        self._person_org[person.person_id] = person.organisation
        self._publish_person(person)
        return result

    def move_person(self, person_id: str, to_org: str) -> Person:
        previous = self.find_person(person_id)
        moved = super().move_person(person_id, to_org)
        self._person_org[person_id] = to_org
        old_dn = self.person_dn(person_id, previous.organisation)
        if self.directory.exists(old_dn):
            self.directory.delete(old_dn)
        self._publish_person(moved)
        return moved

    def remove_person(self, person_id: str) -> Person:
        person = super().remove_person(person_id)
        self._person_org.pop(person_id, None)
        entry_dn = self.person_dn(person_id, person.organisation)
        if self.directory.exists(entry_dn):
            self.directory.delete(entry_dn)
        return person

    def _publish_person(self, person: Person) -> None:
        entry_dn = self.person_dn(person.person_id, person.organisation)
        if self.directory.exists(entry_dn):
            return
        attributes = {
            "objectclass": ["person"],
            "sn": [person.name.split()[-1] if person.name else person.person_id],
            "role": self.relations.roles_of(person.person_id),
        }
        if person.or_name is not None:
            attributes["mail"] = [str(person.or_name)]
        self.directory.add(entry_dn, attributes)

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Index size plus the sharded directory's per-shard counters."""
        return {
            "indexed_persons": len(self._person_org),
            "organisations": len(self.organisations()),
            "directory": self.directory.stats(),
        }
