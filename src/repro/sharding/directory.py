"""N DSAs behind one directory facade, partitioned along DIT subtrees.

The unit of placement is the *organisation subtree*: every DN containing
an ``o=`` RDN belongs to the subtree rooted at its outermost ``o=`` (e.g.
``cn=Ana,ou=AC,o=UPC,c=ES`` belongs to ``o=UPC,c=ES``), and that whole
subtree lives on exactly one shard — the one the consistent-hash ring
assigns its key.  Keeping org subtrees atomic means a person lookup, an
org roster search or a unit listing always touches **one** DSA.

DNs *above* the org level (countries, the root) are structural: they are
replicated to every shard so each shard's DIT is a well-formed tree on
its own, and searches based there fan out and merge (deduplicating the
replicated structural entries).
"""

from __future__ import annotations

from typing import Any

from repro.directory.dit import SCOPE_SUBTREE, Entry
from repro.directory.dsa import DirectoryServiceAgent
from repro.directory.filters import Filter
from repro.directory.names import DistinguishedName, dn
from repro.directory.schema import Schema
from repro.sharding.ring import ConsistentHashRing
from repro.util.errors import NoSuchEntryError

#: objectclass assigned to auto-created structural ancestors, by RDN type
_STRUCTURAL_CLASSES = {
    "c": "country",
    "o": "organization",
    "ou": "organizationalunit",
}


def partition_key(name: "DistinguishedName | str") -> str:
    """The shard-placement key of a DN: its org subtree boundary.

    Returns the normalized string of the subtree rooted at the outermost
    ``o=`` RDN, or ``""`` for structural names above the org level (those
    are replicated, not partitioned).

    >>> partition_key("cn=Ana,ou=AC,o=UPC,c=ES")
    'o=upc,c=es'
    >>> partition_key("c=ES")
    ''
    """
    parsed = name if isinstance(name, DistinguishedName) else dn(name)
    rdns = parsed.rdns
    for index in range(len(rdns) - 1, -1, -1):
        if rdns[index].attribute == "o":
            return ",".join("=".join(r.normalized()) for r in rdns[index:])
    return ""


class ShardedDirectory:
    """A fleet of DSAs serving one logical white-pages directory."""

    def __init__(
        self,
        n_shards: int = 4,
        name: str = "dsa",
        schema: Schema | None = None,
        replicas: int = 64,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.shards: list[DirectoryServiceAgent] = [
            DirectoryServiceAgent(f"{name}-{index}", schema)
            for index in range(n_shards)
        ]
        self._by_id = {agent.dsa_id: agent for agent in self.shards}
        self.ring = ConsistentHashRing([agent.dsa_id for agent in self.shards], replicas)
        #: per-shard operation counters: dsa_id -> count (reads = read/
        #: exists/search routed there; writes = add/modify/delete)
        self.reads_by_shard: dict[str, int] = {agent.dsa_id: 0 for agent in self.shards}
        self.writes_by_shard: dict[str, int] = {agent.dsa_id: 0 for agent in self.shards}
        self.fanouts = 0
        # labelled metric children, bound by attach_metrics (None = off)
        self._m_reads: dict[str, Any] | None = None
        self._m_writes: dict[str, Any] | None = None
        self._m_fanouts: Any = None

    def attach_metrics(self, metrics: Any) -> "ShardedDirectory":
        """Mirror the per-shard counters into labelled metric families.

        ``directory.ops{shard=...,op=reads|writes}`` children are
        resolved once per shard here — the routing hot path then pays a
        dict lookup and an ``inc``, never a label resolution.  Shard
        count is fixed at construction, so family cardinality is bounded
        by 2 x n_shards.
        """
        if metrics is None or not metrics.enabled:
            return self
        ops = metrics.counter("directory.ops", labels=("shard", "op"))
        self._m_reads = {
            agent.dsa_id: ops.labels(shard=agent.dsa_id, op="reads")
            for agent in self.shards
        }
        self._m_writes = {
            agent.dsa_id: ops.labels(shard=agent.dsa_id, op="writes")
            for agent in self.shards
        }
        self._m_fanouts = metrics.counter("directory.fanouts")
        return self

    def _count_read(self, dsa_id: str) -> None:
        self.reads_by_shard[dsa_id] += 1
        if self._m_reads is not None:
            self._m_reads[dsa_id].inc()

    def _count_write(self, dsa_id: str) -> None:
        self.writes_by_shard[dsa_id] += 1
        if self._m_writes is not None:
            self._m_writes[dsa_id].inc()

    # -- routing -----------------------------------------------------------
    def shard_id_for(self, name: "DistinguishedName | str") -> str:
        """The dsa_id owning *name*'s subtree ("" for structural names)."""
        key = partition_key(name)
        return self.ring.shard_for(key) if key else ""

    def agent_for(self, name: "DistinguishedName | str") -> DirectoryServiceAgent | None:
        """The owning DSA, or None for structural (replicated) names."""
        shard_id = self.shard_id_for(name)
        return self._by_id[shard_id] if shard_id else None

    def agent(self, dsa_id: str) -> DirectoryServiceAgent:
        """Look up one shard agent by id."""
        return self._by_id[dsa_id]

    # -- structural scaffolding --------------------------------------------
    def _ensure_ancestors(self, agent: DirectoryServiceAgent, name: DistinguishedName) -> None:
        """Create missing structural ancestors of *name* on *agent*."""
        rdns = name.rdns
        for index in range(len(rdns) - 1, 0, -1):
            ancestor = DistinguishedName(rdns[index:])
            if agent.dit.exists(ancestor):
                continue
            objectclass = _STRUCTURAL_CLASSES.get(ancestor.rdn.attribute)
            if objectclass is None:
                raise ValueError(
                    f"cannot auto-create ancestor {ancestor} of {name}: "
                    f"unknown structural type {ancestor.rdn.attribute!r}"
                )
            agent.dit.add(ancestor, {"objectclass": [objectclass]})

    # -- operations --------------------------------------------------------
    def add(self, name: "DistinguishedName | str", attributes: dict[str, Any]) -> Entry:
        """Add an entry on its owning shard (structural: on every shard).

        Missing structural ancestors (country, org, unit) are created on
        the owning shard so each shard's DIT stays a well-formed tree.
        """
        parsed = name if isinstance(name, DistinguishedName) else dn(name)
        agent = self.agent_for(parsed)
        if agent is None:
            entry: Entry | None = None
            for shard in self.shards:
                self._count_write(shard.dsa_id)
                self._ensure_ancestors(shard, parsed)
                if not shard.dit.exists(parsed):
                    entry = shard.dit.add(parsed, attributes)
            if entry is None:
                entry = self.shards[0].dit.read(parsed)
            return entry
        self._count_write(agent.dsa_id)
        self._ensure_ancestors(agent, parsed)
        return agent.dit.add(parsed, attributes)

    def exists(self, name: "DistinguishedName | str") -> bool:
        """Entry present? (one shard consulted; structural: any shard)."""
        agent = self.agent_for(name)
        if agent is None:
            agent = self.shards[0]
        self._count_read(agent.dsa_id)
        return agent.dit.exists(name if isinstance(name, DistinguishedName) else dn(name))

    def read(self, name: "DistinguishedName | str") -> Entry:
        """Read an entry from its owning shard only."""
        agent = self.agent_for(name)
        if agent is None:
            agent = self.shards[0]
        self._count_read(agent.dsa_id)
        return agent.dit.read(name if isinstance(name, DistinguishedName) else dn(name))

    def modify(
        self,
        name: "DistinguishedName | str",
        add: dict[str, Any] | None = None,
        replace: dict[str, Any] | None = None,
        delete: "dict[str, Any] | list[str] | None" = None,
    ) -> Entry:
        """Modify an entry on its owning shard (structural: every shard)."""
        agents = [self.agent_for(name)]
        if agents[0] is None:
            agents = list(self.shards)
        entry: Entry | None = None
        for agent in agents:
            self._count_write(agent.dsa_id)
            entry = agent.dit.modify(name, add=add, replace=replace, delete=delete)
        assert entry is not None
        return entry

    def delete(self, name: "DistinguishedName | str") -> None:
        """Delete a leaf entry on its owning shard (structural: everywhere)."""
        agent = self.agent_for(name)
        if agent is None:
            for shard in self.shards:
                self._count_write(shard.dsa_id)
                shard.dit.delete(name)
            return
        self._count_write(agent.dsa_id)
        agent.dit.delete(name)

    def search(
        self,
        base: "DistinguishedName | str" = "",
        scope: str = SCOPE_SUBTREE,
        where: Filter | None = None,
        limit: int | None = None,
    ) -> list[Entry]:
        """Scoped search: one shard for org-subtree bases, else fan-out.

        Fan-out results are merged in DN order with replicated structural
        entries deduplicated, so the answer is what one giant DIT would
        have returned.
        """
        agent = self.agent_for(base)
        if agent is not None:
            self._count_read(agent.dsa_id)
            return agent.dit.search(base, scope=scope, where=where, limit=limit)
        self.fanouts += 1
        if self._m_fanouts is not None:
            self._m_fanouts.inc()
        merged: dict[str, Entry] = {}
        found_base = 0
        for shard in self.shards:
            self._count_read(shard.dsa_id)
            try:
                entries = shard.dit.search(base, scope=scope, where=where, limit=None)
            except NoSuchEntryError:
                # structural bases only exist on shards that own entries
                # beneath them; a shard without them holds no answers
                continue
            found_base += 1
            for entry in entries:
                merged.setdefault(str(entry.name).lower(), entry)
        if not found_base:
            raise NoSuchEntryError(f"search base {base} does not exist on any shard")
        results = sorted(merged.values(), key=lambda entry: entry.name)
        return results[:limit] if limit is not None else results

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Entry counts and routed-operation counters, per shard."""
        return {
            "shards": len(self.shards),
            "entries": {agent.dsa_id: len(agent.dit) for agent in self.shards},
            "reads": dict(self.reads_by_shard),
            "writes": dict(self.writes_by_shard),
            "fanouts": self.fanouts,
        }
