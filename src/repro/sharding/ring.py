"""A deterministic consistent-hash ring for shard placement.

Keys (DIT subtree boundaries, organisation ids) are mapped onto shards by
position on a hash circle.  Virtual nodes (``replicas`` points per shard)
smooth the distribution; adding or removing one shard moves only the keys
in the arcs it owned — the classic consistent-hashing property, which is
what lets a deployment grow its DSA fleet without re-homing every org.

Hashing uses :func:`zlib.crc32`, not builtin ``hash()``: string hashing is
randomized per process (PYTHONHASHSEED), and shard placement must be
identical across runs and processes for seeded benchmarks and shadowing
peers to agree (same reasoning as ``SeededRng.fork``).
"""

from __future__ import annotations

import zlib
from bisect import bisect_left, insort


def stable_hash(key: str) -> int:
    """A process-independent 32-bit hash of *key*.

    >>> stable_hash("o=upc,c=es") == stable_hash("o=upc,c=es")
    True
    """
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class ConsistentHashRing:
    """Maps string keys onto named shards, deterministically.

    >>> ring = ConsistentHashRing(["a", "b"], replicas=8)
    >>> ring.shard_for("some-key") in {"a", "b"}
    True
    """

    def __init__(self, shards: "list[str] | tuple[str, ...]" = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        #: sorted ring points: (hash, shard); ties break on shard name
        self._points: list[tuple[int, str]] = []
        self._shards: set[str] = set()
        for shard in shards:
            self.add_shard(shard)

    def add_shard(self, shard: str) -> None:
        """Place *shard*'s virtual nodes on the ring."""
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        self._shards.add(shard)
        for replica in range(self.replicas):
            insort(self._points, (stable_hash(f"{shard}#{replica}"), shard))

    def remove_shard(self, shard: str) -> None:
        """Take *shard* off the ring (its arcs fall to the successors)."""
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} not on the ring")
        self._shards.discard(shard)
        self._points = [point for point in self._points if point[1] != shard]

    def shards(self) -> list[str]:
        """All shard names, sorted."""
        return sorted(self._shards)

    def shard_for(self, key: str) -> str:
        """The shard owning *key*: first ring point at or after its hash."""
        if not self._points:
            raise ValueError("ring has no shards")
        index = bisect_left(self._points, (stable_hash(key), ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._points[index][1]

    def distribution(self, keys: "list[str]") -> dict[str, int]:
        """How many of *keys* each shard owns (shards with zero included)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
