"""The Inter-activity Model (paper section 5).

Activities with lifecycle/membership, typed inter-activity dependencies
(temporal, structural, resource, informational), dependency-aware
scheduling and monitoring, responsibility/competence negotiation, and
resource coordination with barriers.
"""

from repro.activity.coordination import Barrier, ResourceCoordinator
from repro.activity.dependencies import (
    ALL_KINDS,
    BEFORE,
    DURING,
    MEETS,
    ORDERING_KINDS,
    SHARES_INFORMATION,
    SHARES_RESOURCE,
    SUBACTIVITY_OF,
    Dependency,
    DependencyGraph,
)
from repro.activity.model import (
    Activity,
    ActivityRegistry,
    ActivityStatus,
    Membership,
)
from repro.activity.negotiation import (
    Negotiation,
    NegotiationKind,
    NegotiationService,
    NegotiationState,
)
from repro.activity.scheduler import ActivityMonitor, ActivityScheduler

__all__ = [
    "Barrier",
    "ResourceCoordinator",
    "ALL_KINDS",
    "BEFORE",
    "DURING",
    "MEETS",
    "ORDERING_KINDS",
    "SHARES_INFORMATION",
    "SHARES_RESOURCE",
    "SUBACTIVITY_OF",
    "Dependency",
    "DependencyGraph",
    "Activity",
    "ActivityRegistry",
    "ActivityStatus",
    "Membership",
    "Negotiation",
    "NegotiationKind",
    "NegotiationService",
    "NegotiationState",
    "ActivityMonitor",
    "ActivityScheduler",
]
