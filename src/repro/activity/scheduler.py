"""Scheduling and monitoring of activities.

Paper section 4, "Support for Activities": the environment should provide
"scheduling activities and monitoring the progress of activities".  The
:class:`ActivityScheduler` starts activities in dependency order as their
predecessors complete; the :class:`ActivityMonitor` watches deadlines and
stalled progress on simulated time and publishes alerts on the event bus
under ``activity/<id>/alert`` topics (so alerts respect activity
transparency scoping).
"""

from __future__ import annotations

from typing import Callable

from repro.activity.dependencies import DependencyGraph
from repro.activity.model import Activity, ActivityRegistry, ActivityStatus
from repro.sim.engine import PeriodicTask
from repro.sim.world import World
from repro.util.errors import ModelError
from repro.util.events import EventBus


class ActivityScheduler:
    """Starts activities when their ordering predecessors have completed."""

    def __init__(
        self,
        registry: ActivityRegistry,
        dependencies: DependencyGraph,
        bus: EventBus | None = None,
    ) -> None:
        self._registry = registry
        self._dependencies = dependencies
        self._bus = bus
        self.auto_started = 0

    def ready_to_start(self, activity_id: str) -> bool:
        """True when pending and every ordering predecessor is completed."""
        activity = self._registry.get(activity_id)
        if activity.status is not ActivityStatus.PENDING:
            return False
        for predecessor in self._dependencies.predecessors(activity_id):
            if self._registry.get(predecessor).status is not ActivityStatus.COMPLETED:
                return False
        return True

    def start_ready(self, now: float) -> list[str]:
        """Start every pending activity whose predecessors are done."""
        started = []
        for activity in self._registry.by_status(ActivityStatus.PENDING):
            if self.ready_to_start(activity.activity_id):
                activity.start(now)
                started.append(activity.activity_id)
                self.auto_started += 1
                self._announce(activity, "started", now)
        return started

    def complete(self, activity_id: str, now: float) -> list[str]:
        """Complete an activity, then start anything it unblocked.

        Returns the newly started activity ids.
        """
        activity = self._registry.get(activity_id)
        activity.complete(now)
        self._announce(activity, "completed", now)
        return self.start_ready(now)

    def plan(self, activity_ids: list[str] | None = None) -> list[str]:
        """A full execution order for the given (or all) activities."""
        ids = activity_ids if activity_ids is not None else [
            a.activity_id for a in self._registry.all()
        ]
        return self._dependencies.execution_order(ids)

    def _announce(self, activity: Activity, what: str, now: float) -> None:
        if self._bus is not None:
            self._bus.publish(
                f"activity/{activity.activity_id}/lifecycle",
                {"event": what, "activity": activity.activity_id},
                source="scheduler",
                time=now,
            )


class ActivityMonitor:
    """Periodic watchdog over deadlines and stalled activities."""

    def __init__(
        self,
        world: World,
        registry: ActivityRegistry,
        bus: EventBus,
        period_s: float = 60.0,
        stall_after_s: float = 600.0,
    ) -> None:
        if period_s <= 0 or stall_after_s <= 0:
            raise ModelError("monitor periods must be positive")
        self._world = world
        self._registry = registry
        self._bus = bus
        self._period_s = period_s
        self._stall_after_s = stall_after_s
        self._last_progress: dict[str, tuple[float, float]] = {}
        self._task: PeriodicTask | None = None
        self.alerts_raised = 0

    def start(self) -> "ActivityMonitor":
        """Begin periodic checking; returns self."""
        self._task = PeriodicTask(
            self._world.engine, self._period_s, self.check_now, label="activity-monitor"
        ).start()
        return self

    def stop(self) -> None:
        """Stop checking."""
        if self._task is not None:
            self._task.stop()

    def check_now(self) -> list[dict]:
        """Run one check pass; returns the alerts raised."""
        now = self._world.now
        alerts = []
        for activity in self._registry.all():
            if activity.is_overdue(now):
                alerts.append(self._alert(activity, "overdue", now))
            if activity.status is ActivityStatus.ACTIVE:
                previous = self._last_progress.get(activity.activity_id)
                if previous is not None:
                    last_time, last_value = previous
                    stalled = (
                        activity.progress == last_value
                        and now - last_time >= self._stall_after_s
                    )
                    if stalled:
                        alerts.append(self._alert(activity, "stalled", now))
                        self._last_progress[activity.activity_id] = (now, activity.progress)
                else:
                    self._last_progress[activity.activity_id] = (now, activity.progress)
                if previous is not None and activity.progress != previous[1]:
                    self._last_progress[activity.activity_id] = (now, activity.progress)
        return alerts

    def _alert(self, activity: Activity, reason: str, now: float) -> dict:
        alert = {"activity": activity.activity_id, "reason": reason, "time": now}
        self.alerts_raised += 1
        self._bus.publish(
            f"activity/{activity.activity_id}/alert", alert, source="monitor", time=now
        )
        return alert


Callback = Callable[[], None]
