"""Inter-activity dependencies.

Paper section 5, "The Inter-activity Model": rather than imposing one
representation of activities, the model captures *dependencies between*
activities — the paper's section 3 lists the kinds we implement:

* temporal: "activities can have well-defined temporal relationships"
  (:data:`BEFORE`, :data:`DURING`, :data:`MEETS` — an Allen-algebra
  subset sufficient for scheduling);
* structural: :data:`SUBACTIVITY_OF`;
* resource: "activities may use common resources" (:data:`SHARES_RESOURCE`);
* informational: "activities may share common information"
  (:data:`SHARES_INFORMATION`).

The :class:`DependencyGraph` rejects cycles among ordering edges and
computes a valid execution order.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.util.errors import DependencyCycleError, ModelError

#: activity A must complete before B starts
BEFORE = "before"
#: A runs entirely within B's span
DURING = "during"
#: A ends exactly when B starts (tighter BEFORE)
MEETS = "meets"
#: A is a component of B
SUBACTIVITY_OF = "subactivity-of"
#: A and B use a common resource (annotated with the resource id)
SHARES_RESOURCE = "shares-resource"
#: A and B read/write common information (annotated with the object id)
SHARES_INFORMATION = "shares-information"

#: kinds that impose an execution ordering (edge A -> B means A first)
ORDERING_KINDS = frozenset({BEFORE, MEETS})
#: all recognised kinds
ALL_KINDS = frozenset(
    {BEFORE, DURING, MEETS, SUBACTIVITY_OF, SHARES_RESOURCE, SHARES_INFORMATION}
)


@dataclass(frozen=True)
class Dependency:
    """One typed dependency between two activities."""

    kind: str
    source: str
    target: str
    annotation: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ModelError(f"unknown dependency kind {self.kind!r}")
        if self.source == self.target:
            raise ModelError("an activity cannot depend on itself")


class DependencyGraph:
    """Typed dependency edges with cycle checking and ordering queries."""

    def __init__(self) -> None:
        self._dependencies: list[Dependency] = []

    def add(self, kind: str, source: str, target: str, annotation: str = "") -> Dependency:
        """Add a dependency; ordering edges that would close a cycle raise."""
        dependency = Dependency(kind, source, target, annotation)
        if kind in ORDERING_KINDS and self._would_cycle(source, target):
            raise DependencyCycleError(
                f"{kind} edge {source} -> {target} would create an ordering cycle"
            )
        self._dependencies.append(dependency)
        return dependency

    def all(self) -> list[Dependency]:
        """All dependencies."""
        return list(self._dependencies)

    def of_kind(self, kind: str) -> list[Dependency]:
        """Dependencies of one kind."""
        return [d for d in self._dependencies if d.kind == kind]

    def between(self, a: str, b: str) -> list[Dependency]:
        """Dependencies touching both *a* and *b* in either direction."""
        return [
            d
            for d in self._dependencies
            if {d.source, d.target} == {a, b}
        ]

    def predecessors(self, activity_id: str) -> list[str]:
        """Activities that must finish before *activity_id* may start."""
        return sorted(
            d.source
            for d in self._dependencies
            if d.kind in ORDERING_KINDS and d.target == activity_id
        )

    def successors(self, activity_id: str) -> list[str]:
        """Activities ordered after *activity_id*."""
        return sorted(
            d.target
            for d in self._dependencies
            if d.kind in ORDERING_KINDS and d.source == activity_id
        )

    def subactivities_of(self, parent: str) -> list[str]:
        """Direct subactivities of *parent*."""
        return sorted(
            d.source
            for d in self._dependencies
            if d.kind == SUBACTIVITY_OF and d.target == parent
        )

    def resource_partners(self, activity_id: str, resource: str | None = None) -> list[str]:
        """Activities sharing a resource with *activity_id*."""
        partners = set()
        for d in self.of_kind(SHARES_RESOURCE):
            if resource is not None and d.annotation != resource:
                continue
            if d.source == activity_id:
                partners.add(d.target)
            elif d.target == activity_id:
                partners.add(d.source)
        return sorted(partners)

    def information_partners(self, activity_id: str) -> list[str]:
        """Activities sharing information with *activity_id*."""
        partners = set()
        for d in self.of_kind(SHARES_INFORMATION):
            if d.source == activity_id:
                partners.add(d.target)
            elif d.target == activity_id:
                partners.add(d.source)
        return sorted(partners)

    def related(self, activity_id: str) -> set[str]:
        """Every activity connected to *activity_id* by any dependency."""
        related = set()
        for d in self._dependencies:
            if d.source == activity_id:
                related.add(d.target)
            elif d.target == activity_id:
                related.add(d.source)
        return related

    # -- ordering ------------------------------------------------------------
    def execution_order(self, activities: list[str]) -> list[str]:
        """A start order of *activities* respecting ordering edges.

        Kahn's algorithm restricted to the given set; ties break by
        activity id for determinism.  Raises on cycles (which
        :meth:`add` should already have prevented).
        """
        wanted = set(activities)
        indegree: dict[str, int] = {a: 0 for a in activities}
        outgoing: dict[str, list[str]] = defaultdict(list)
        for d in self._dependencies:
            if d.kind in ORDERING_KINDS and d.source in wanted and d.target in wanted:
                outgoing[d.source].append(d.target)
                indegree[d.target] += 1
        ready = deque(sorted(a for a, deg in indegree.items() if deg == 0))
        order: list[str] = []
        while ready:
            current = ready.popleft()
            order.append(current)
            for nxt in sorted(outgoing[current]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(activities):
            raise DependencyCycleError("ordering edges contain a cycle")
        return order

    def _would_cycle(self, source: str, target: str) -> bool:
        """True when target can already reach source via ordering edges."""
        outgoing: dict[str, list[str]] = defaultdict(list)
        for d in self._dependencies:
            if d.kind in ORDERING_KINDS:
                outgoing[d.source].append(d.target)
        seen = set()
        frontier = deque([target])
        while frontier:
            current = frontier.popleft()
            if current == source:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(outgoing[current])
        return False
